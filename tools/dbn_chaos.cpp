// dbn_chaos — failure-scenario fuzzer for the network stack (src/net/),
// built on the chaos engine (src/testkit/chaos.hpp).
//
//   dbn_chaos [--seed N] [--iters N] [--time-budget SEC] [--no-shrink]
//             [--max-failures N] [--failure-dir DIR] [--quiet]
//             [--policy source|greedy|deflect|layer]
//   dbn_chaos --replay <scenario.chaos | directory>
//             [--policy source|greedy|deflect|layer]
//
// Flags accept both "--flag value" and "--flag=value". Both modes accept
// --trace-out FILE (simulator send/deliver/drop/fault events plus the
// reliable-transfer attempt stream, as trace/1 NDJSON, or Chrome
// trace_event JSON when FILE ends in ".json") and --metrics-out FILE
// (metrics/1 snapshot of the global registry after the run).
//
// The fuzz loop samples random fault schedules + traffic, runs each
// scenario to quiescence twice (determinism is one of the invariants),
// checks the chaos invariants, and greedily shrinks any violation.
// --failure-dir writes every shrunk violation as a replayable
// failure_<n>.chaos scenario (violations annotated as comments) so CI can
// upload the directory as an artifact.
//
// Exit status: 0 when every scenario holds every invariant, 1 on any
// violation, 2 on usage errors.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/contract.hpp"
#include "obs_flags.hpp"
#include "testkit/chaos.hpp"

namespace {

using namespace dbn;

void usage(std::ostream& out) {
  out << "usage:\n"
         "  dbn_chaos [--seed N] [--iters N] [--time-budget SEC] "
         "[--no-shrink]\n"
         "            [--max-failures N] [--failure-dir DIR] [--quiet]\n"
         "  dbn_chaos --replay <scenario.chaos | directory>\n"
         "both modes accept --trace-out FILE, --metrics-out FILE and\n"
         "--policy source|greedy|deflect|layer (pins the forwarding policy\n"
         "of every fuzzed scenario / overrides it on replay)\n";
}

struct ParsedArgs {
  std::vector<std::string> replays;
  std::string failure_dir;
  std::string trace_out;
  std::string metrics_out;
  bool quiet = false;
  bool ok = true;
  testkit::ChaosFuzzOptions fuzz;
};

std::optional<std::uint64_t> parse_u64(const std::string& text) {
  try {
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(text, &used);
    if (used != text.size()) {
      return std::nullopt;
    }
    return value;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

ParsedArgs parse_args(int argc, char** argv) {
  ParsedArgs parsed;
  std::vector<std::string> args(argv + 1, argv + argc);
  std::vector<std::string> flat;
  for (const std::string& a : args) {
    const auto eq = a.find('=');
    if (a.starts_with("--") && eq != std::string::npos) {
      flat.push_back(a.substr(0, eq));
      flat.push_back(a.substr(eq + 1));
    } else {
      flat.push_back(a);
    }
  }
  const auto take_value = [&flat](std::size_t& i) -> std::optional<std::string> {
    if (i + 1 >= flat.size()) {
      return std::nullopt;
    }
    return flat[++i];
  };
  for (std::size_t i = 0; i < flat.size(); ++i) {
    const std::string& arg = flat[i];
    const auto number = [&](std::uint64_t& out) {
      const auto text = take_value(i);
      const auto value = text ? parse_u64(*text) : std::nullopt;
      if (!value) {
        std::cerr << "dbn_chaos: " << arg << " needs a number\n";
        parsed.ok = false;
        return;
      }
      out = *value;
    };
    if (arg == "--seed") {
      number(parsed.fuzz.seed);
    } else if (arg == "--iters") {
      number(parsed.fuzz.iterations);
    } else if (arg == "--max-failures") {
      std::uint64_t value = parsed.fuzz.max_failures;
      number(value);
      parsed.fuzz.max_failures = static_cast<std::size_t>(value);
    } else if (arg == "--time-budget") {
      const auto text = take_value(i);
      try {
        parsed.fuzz.time_budget_seconds = text ? std::stod(*text) : -1.0;
      } catch (const std::exception&) {
        parsed.fuzz.time_budget_seconds = -1.0;
      }
      if (!text || parsed.fuzz.time_budget_seconds < 0) {
        std::cerr << "dbn_chaos: --time-budget needs seconds\n";
        parsed.ok = false;
      }
    } else if (arg == "--replay") {
      const auto text = take_value(i);
      if (!text) {
        std::cerr << "dbn_chaos: --replay needs an argument\n";
        parsed.ok = false;
      } else {
        parsed.replays.push_back(*text);
      }
    } else if (arg == "--failure-dir") {
      const auto text = take_value(i);
      if (!text) {
        std::cerr << "dbn_chaos: --failure-dir needs a directory\n";
        parsed.ok = false;
      } else {
        parsed.failure_dir = *text;
      }
    } else if (arg == "--trace-out") {
      const auto text = take_value(i);
      if (!text) {
        std::cerr << "dbn_chaos: --trace-out needs a path\n";
        parsed.ok = false;
      } else {
        parsed.trace_out = *text;
      }
    } else if (arg == "--metrics-out") {
      const auto text = take_value(i);
      if (!text) {
        std::cerr << "dbn_chaos: --metrics-out needs a path\n";
        parsed.ok = false;
      } else {
        parsed.metrics_out = *text;
      }
    } else if (arg == "--policy") {
      const auto text = take_value(i);
      const auto policy =
          text ? testkit::chaos_policy_from_name(*text) : std::nullopt;
      if (!policy) {
        std::cerr << "dbn_chaos: --policy needs one of "
                     "source|greedy|deflect|layer\n";
        parsed.ok = false;
      } else {
        parsed.fuzz.policy = policy;
      }
    } else if (arg == "--no-shrink") {
      parsed.fuzz.shrink = false;
    } else if (arg == "--quiet") {
      parsed.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      std::exit(0);
    } else {
      std::cerr << "dbn_chaos: unknown argument " << arg << "\n";
      parsed.ok = false;
    }
  }
  return parsed;
}

int run_replays(const ParsedArgs& parsed) {
  namespace fs = std::filesystem;
  std::ostream* log = parsed.quiet ? nullptr : &std::cout;
  std::vector<std::string> failures;
  for (const std::string& target : parsed.replays) {
    std::vector<std::string> files;
    if (fs::is_directory(target)) {
      files = testkit::list_chaos_files(target);
      if (files.empty()) {
        std::cerr << "dbn_chaos: no *.chaos files in " << target << "\n";
        return 2;
      }
    } else if (fs::is_regular_file(target)) {
      files.push_back(target);
    } else {
      std::cerr << "dbn_chaos: no such file or directory: " << target << "\n";
      return 2;
    }
    const auto file_failures =
        testkit::replay_chaos_files(files, log, parsed.fuzz.policy);
    failures.insert(failures.end(), file_failures.begin(),
                    file_failures.end());
  }
  if (!failures.empty()) {
    std::cerr << "dbn_chaos: " << failures.size() << " replay violation(s)\n";
    for (const std::string& f : failures) {
      std::cerr << "  " << f << "\n";
    }
    return 1;
  }
  if (log != nullptr) {
    *log << "dbn_chaos: all replayed scenarios hold every invariant\n";
  }
  return 0;
}

// Writes each shrunk violation as a replayable *.chaos file; returns the
// number written (0 also when the directory cannot be created).
std::size_t write_failure_scenarios(const std::string& dir,
                                    const testkit::ChaosFuzzReport& report) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    std::cerr << "dbn_chaos: cannot create --failure-dir " << dir << ": "
              << ec.message() << "\n";
    return 0;
  }
  std::size_t written = 0;
  for (std::size_t i = 0; i < report.failures.size(); ++i) {
    const testkit::ChaosFailure& failure = report.failures[i];
    const fs::path path =
        fs::path(dir) / ("failure_" + std::to_string(i) + ".chaos");
    std::ofstream file(path);
    if (!file) {
      std::cerr << "dbn_chaos: cannot write " << path.string() << "\n";
      continue;
    }
    file << "# shrunk chaos reproducer " << i
         << " (replay with: dbn_chaos --replay " << path.filename().string()
         << ")\n# violations:\n";
    std::istringstream details(failure.details);
    for (std::string line; std::getline(details, line);) {
      file << "#   " << line << "\n";
    }
    file << "# original scenario had " << failure.original.transfers.size()
         << " transfer(s), " << failure.original.schedule.size()
         << " fault event(s) on d=" << failure.original.d
         << " k=" << failure.original.k << "\n";
    file << failure.shrunk.to_text();
    ++written;
  }
  return written;
}

int run_fuzz_loop(ParsedArgs& parsed) {
  if (!parsed.quiet) {
    parsed.fuzz.log = &std::cout;
  }
  const testkit::ChaosFuzzReport report = testkit::run_chaos_fuzz(parsed.fuzz);
  if (!parsed.quiet) {
    std::cout << "dbn_chaos: " << report.iterations_run << " scenarios in "
              << report.elapsed_seconds << "s across "
              << report.point_coverage.size() << " (d, k) points\n";
    for (const auto& [point, count] : report.point_coverage) {
      std::cout << "  " << point << ": " << count << " scenarios\n";
    }
  }
  if (!report.ok()) {
    std::cerr << "dbn_chaos: " << report.failures.size()
              << " invariant violation(s); shrunk reproducers:\n";
    for (const auto& failure : report.failures) {
      std::cerr << failure.shrunk.to_text() << failure.details << "\n";
    }
    if (!parsed.failure_dir.empty()) {
      const std::size_t written =
          write_failure_scenarios(parsed.failure_dir, report);
      std::cerr << "dbn_chaos: wrote " << written << " scenario file(s) to "
                << parsed.failure_dir << "\n";
    }
    return 1;
  }
  if (!parsed.quiet) {
    std::cout << "dbn_chaos: zero invariant violations\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    ParsedArgs parsed = parse_args(argc, argv);
    if (!parsed.ok) {
      usage(std::cerr);
      return 2;
    }
    dbn::tools::ObsWriter obs_writer;
    if (!obs_writer.setup(parsed.trace_out, parsed.metrics_out)) {
      return 2;
    }
    if (!parsed.replays.empty()) {
      return run_replays(parsed);
    }
    return run_fuzz_loop(parsed);
  } catch (const dbn::ContractViolation& e) {
    std::cerr << "dbn_chaos: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "dbn_chaos: " << e.what() << "\n";
    return 2;
  }
}
