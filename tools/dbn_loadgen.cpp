// dbn_loadgen — deterministic load generator for `dbn serve`.
//
//   dbn_loadgen <d> <k> (--spawn=CMD | --port=N | --port-file=PATH)
//               [--requests=N] [--connections=C] [--inflight=W]
//               [--mode=closed|open] [--rate=R] [--seed=S]
//               [--distance-frac=F] [--stats] [--out=FILE]
//
// The workload is a pure function of (d, k, seed, requests, connections,
// distance-frac): connection c replays the query stream Rng(seed).fork(c),
// so two runs against any server answer the same questions in the same
// order. Responses are verified client-side — a Route response's hops are
// replayed from X (wildcards resolved to 0) and must land exactly on Y, a
// Distance response must equal the replayed route length's lower bound of
// 0 and never exceed the 2k undirected diameter bound.
//
// closed mode keeps at most --inflight requests outstanding per
// connection (steady-state benchmark shape); open mode fires at --rate
// requests/second per connection regardless of completions (backpressure
// probe — Overloaded responses are counted, not retried).
//
// --spawn runs the server as a child process speaking the protocol on its
// stdin/stdout (forces --connections=1), closes the child's stdin when the
// budget is spent, and requires the child to drain and exit 0.
//
// Results are NDJSON (schema "loadgen/1" via schema.hpp): one config line,
// one line per connection, with --stats one "server" line embedding the
// server's final metrics/1 snapshot verbatim, then one summary line with
// latency percentiles.
// Exit status is 0 only when every request was answered, every answer
// verified, and (with --spawn) the child exited cleanly.
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <netinet/in.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "common/schema.hpp"
#include "core/path.hpp"
#include "debruijn/word.hpp"
#include "obs/json.hpp"
#include "serve/protocol.hpp"

namespace {

using namespace dbn;
using namespace dbn::serve;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kReadChunk = 64 * 1024;

std::optional<std::string_view> flag_value(
    const std::vector<std::string_view>& args, std::string_view name) {
  const std::string prefix = std::string(name) + "=";
  for (const std::string_view a : args) {
    if (a.starts_with(prefix)) {
      return a.substr(prefix.size());
    }
  }
  return std::nullopt;
}

bool has_flag(const std::vector<std::string_view>& args,
              std::string_view name) {
  for (const std::string_view a : args) {
    if (a == name) {
      return true;
    }
  }
  return false;
}

// A bidirectional byte stream to the server: TCP socket or child pipes.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// Blocking all-or-nothing write. False on a broken stream.
  virtual bool send_all(std::string_view bytes) = 0;

  /// Waits up to timeout_ms, then reads what is available.
  /// Returns bytes read (> 0), 0 on timeout, -1 on EOF, -2 on error.
  virtual int recv_some(char* buf, std::size_t cap, int timeout_ms) = 0;

  /// Half-close: signals end-of-requests (EOF drain for --spawn / --stdio
  /// servers, orderly shutdown for TCP).
  virtual void close_write() = 0;
};

int poll_then_read(int fd, char* buf, std::size_t cap, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    return errno == EINTR ? 0 : -2;
  }
  if (ready == 0) {
    return 0;
  }
  const ssize_t n = ::read(fd, buf, cap);
  if (n > 0) {
    return static_cast<int>(n);
  }
  if (n == 0) {
    return -1;
  }
  return errno == EINTR ? 0 : -2;
}

bool write_all(int fd, std::string_view bytes, bool nosignal) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        nosignal ? ::send(fd, bytes.data() + sent, bytes.size() - sent,
                          MSG_NOSIGNAL)
                 : ::write(fd, bytes.data() + sent, bytes.size() - sent);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

class TcpEndpoint : public Endpoint {
 public:
  explicit TcpEndpoint(int fd) : fd_(fd) {}
  ~TcpEndpoint() override {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  bool send_all(std::string_view bytes) override {
    return write_all(fd_, bytes, /*nosignal=*/true);
  }
  int recv_some(char* buf, std::size_t cap, int timeout_ms) override {
    return poll_then_read(fd_, buf, cap, timeout_ms);
  }
  void close_write() override { ::shutdown(fd_, SHUT_WR); }

 private:
  int fd_;
};

/// The server as a child process: we hold its stdin (write) and stdout
/// (read); its stderr passes through for the smoke logs.
class SpawnEndpoint : public Endpoint {
 public:
  static std::unique_ptr<SpawnEndpoint> start(const std::string& command) {
    int to_child[2];
    int from_child[2];
    if (::pipe(to_child) != 0) {
      return nullptr;
    }
    if (::pipe(from_child) != 0) {
      ::close(to_child[0]);
      ::close(to_child[1]);
      return nullptr;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
      return nullptr;
    }
    if (pid == 0) {
      ::dup2(to_child[0], STDIN_FILENO);
      ::dup2(from_child[1], STDOUT_FILENO);
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
      ::execl("/bin/sh", "sh", "-c", command.c_str(),
              static_cast<char*>(nullptr));
      std::_Exit(127);
    }
    auto endpoint = std::make_unique<SpawnEndpoint>();
    endpoint->pid_ = pid;
    endpoint->write_fd_ = to_child[1];
    endpoint->read_fd_ = from_child[0];
    ::close(to_child[0]);
    ::close(from_child[1]);
    return endpoint;
  }

  ~SpawnEndpoint() override {
    close_write();
    if (read_fd_ >= 0) {
      ::close(read_fd_);
    }
    (void)wait_child();
  }

  bool send_all(std::string_view bytes) override {
    return write_fd_ >= 0 && write_all(write_fd_, bytes, /*nosignal=*/false);
  }
  int recv_some(char* buf, std::size_t cap, int timeout_ms) override {
    return poll_then_read(read_fd_, buf, cap, timeout_ms);
  }
  void close_write() override {
    if (write_fd_ >= 0) {
      ::close(write_fd_);
      write_fd_ = -1;
    }
  }

  /// Reaps the child (once) and returns its exit status, or -1 when it
  /// died abnormally.
  int wait_child() {
    if (pid_ < 0) {
      return exit_status_;
    }
    int status = 0;
    if (::waitpid(pid_, &status, 0) == pid_) {
      exit_status_ = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }
    pid_ = -1;
    return exit_status_;
  }

 private:
  pid_t pid_ = -1;
  int write_fd_ = -1;
  int read_fd_ = -1;
  int exit_status_ = -1;
};

std::unique_ptr<Endpoint> connect_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return nullptr;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<TcpEndpoint>(fd);
}

/// Polls for the server's --port-file (written atomically via rename).
std::optional<std::uint16_t> wait_for_port_file(const std::string& path,
                                                int timeout_ms) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    std::ifstream in(path);
    unsigned port = 0;
    if (in && (in >> port) && port > 0 && port < 65536) {
      return static_cast<std::uint16_t>(port);
    }
    if (Clock::now() >= deadline) {
      return std::nullopt;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

struct Options {
  std::uint32_t d = 2;
  std::size_t k = 10;
  std::string spawn;
  std::uint16_t port = 0;
  std::string port_file;
  std::uint64_t requests = 1000;
  std::size_t connections = 1;
  std::size_t inflight = 32;
  bool open_loop = false;
  double rate = 1000.0;  // per connection, open mode
  std::uint64_t seed = 42;
  double distance_frac = 0.25;
  bool stats_probe = false;
  std::string out;
};

struct Outstanding {
  RequestType type = RequestType::Route;
  Word x{1, {0}};  // Word has no default ctor; overwritten before use
  Word y{1, {0}};
  Clock::time_point sent_at;
};

struct ConnResult {
  std::uint64_t sent = 0;
  std::uint64_t answered = 0;
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t draining = 0;
  std::uint64_t bad = 0;
  std::uint64_t verify_failures = 0;
  bool transport_error = false;
  bool protocol_error = false;
  std::vector<std::uint64_t> latencies_us;
};

/// Replays a Route response from X; Ok iff the walk lands on Y. Wildcard
/// hops resolve to digit 0 — by construction a wildcard digit is shifted
/// out before the path ends, so any resolution must still reach Y.
bool verify_route(const Word& x, const Word& y, const std::vector<Hop>& hops,
                  std::size_t k) {
  if (hops.size() > 2 * k) {
    return false;
  }
  Word at = x;
  for (const Hop& h : hops) {
    const Digit digit = h.is_wildcard() ? 0 : h.digit;
    at = h.type == ShiftType::Left ? at.left_shift(digit)
                                   : at.right_shift(digit);
  }
  return at == y;
}

class Workload {
 public:
  Workload(const Options& options, std::size_t conn)
      : options_(options),
        rng_(Rng(options.seed).fork(conn)),
        vertices_(Word::vertex_count(options.d, options.k)) {}

  Outstanding next() {
    Outstanding q;
    q.type = rng_.uniform01() < options_.distance_frac ? RequestType::Distance
                                                       : RequestType::Route;
    q.x = Word::from_rank(options_.d, options_.k, rng_.below(vertices_));
    q.y = Word::from_rank(options_.d, options_.k, rng_.below(vertices_));
    return q;
  }

 private:
  const Options& options_;
  Rng rng_;
  std::uint64_t vertices_;
};

/// Drives one connection to completion (closed or open loop).
void run_connection(const Options& options, std::size_t conn,
                    Endpoint& endpoint, std::uint64_t budget,
                    ConnResult& result) {
  Workload workload(options, conn);
  FrameReader reader;
  std::unordered_map<std::uint64_t, Outstanding> outstanding;
  outstanding.reserve(options.inflight * 2);
  std::string frame;
  std::string payload;
  std::vector<char> buf(kReadChunk);
  std::uint64_t seq = 0;

  const auto send_next = [&]() -> bool {
    Outstanding q = workload.next();
    q.sent_at = Clock::now();
    const std::uint64_t id =
        (static_cast<std::uint64_t>(conn) << 48) | seq++;
    frame.clear();
    if (q.type == RequestType::Distance) {
      encode_distance_request(id, q.x, q.y, frame);
    } else {
      encode_route_request(id, q.x, q.y, frame);
    }
    if (!endpoint.send_all(frame)) {
      result.transport_error = true;
      return false;
    }
    outstanding.emplace(id, std::move(q));
    ++result.sent;
    return true;
  };

  const auto handle_payload = [&](std::string_view bytes) {
    const DecodedResponse decoded = decode_response(bytes);
    if (decoded.error != DecodeError::None) {
      result.protocol_error = true;
      return;
    }
    const Response& r = decoded.response;
    const auto it = outstanding.find(r.id);
    if (it == outstanding.end()) {
      result.protocol_error = true;  // answer for a question never asked
      return;
    }
    const Outstanding q = it->second;
    outstanding.erase(it);
    ++result.answered;
    result.latencies_us.push_back(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - q.sent_at)
                .count()));
    switch (r.status) {
      case Status::Ok:
        ++result.ok;
        if (r.type == RequestType::Route &&
            !verify_route(q.x, q.y, r.hops, options.k)) {
          ++result.verify_failures;
        }
        if (r.type == RequestType::Distance &&
            r.distance > 2 * options.k) {
          ++result.verify_failures;
        }
        break;
      case Status::Overloaded:
        ++result.overloaded;
        break;
      case Status::Draining:
        ++result.draining;
        break;
      default:
        ++result.bad;
        break;
    }
  };

  const auto pump_reads = [&](int timeout_ms) -> bool {
    const int n = endpoint.recv_some(buf.data(), buf.size(), timeout_ms);
    if (n == -1 || n == -2) {
      // EOF with answers still owed (or a hard error) is a failed run.
      if (!outstanding.empty() || result.sent < budget) {
        result.transport_error = true;
      }
      return false;
    }
    if (n > 0) {
      reader.feed(std::string_view(buf.data(), static_cast<std::size_t>(n)));
      for (;;) {
        const FrameReader::Result fr = reader.next(payload);
        if (fr == FrameReader::Result::Frame) {
          handle_payload(payload);
          continue;
        }
        if (fr == FrameReader::Result::Error) {
          result.protocol_error = true;
          return false;
        }
        break;
      }
    }
    return true;
  };

  if (!options.open_loop) {
    // Closed loop: keep the window full, block on responses.
    while (result.answered < budget && !result.transport_error &&
           !result.protocol_error) {
      while (result.sent < budget && outstanding.size() < options.inflight) {
        if (!send_next()) {
          break;
        }
      }
      if (result.transport_error || !pump_reads(1000)) {
        break;
      }
    }
  } else {
    // Open loop: fire on schedule; completions do not gate sends.
    const auto period = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(1.0 / std::max(options.rate, 1e-6)));
    const Clock::time_point start = Clock::now();
    Clock::time_point next_send = start;
    while (result.sent < budget && !result.transport_error &&
           !result.protocol_error) {
      const Clock::time_point now = Clock::now();
      if (now >= next_send) {
        if (!send_next()) {
          break;
        }
        next_send += period;
        continue;
      }
      const int wait_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(next_send -
                                                                now)
              .count());
      if (!pump_reads(std::max(wait_ms, 1))) {
        break;
      }
    }
    while (!outstanding.empty() && !result.transport_error &&
           !result.protocol_error) {
      if (!pump_reads(1000)) {
        break;
      }
    }
  }
}

std::uint64_t percentile(std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(rank + 0.5)];
}

int usage() {
  std::cerr
      << "usage: dbn_loadgen <d> <k> (--spawn=CMD | --port=N | "
         "--port-file=PATH)\n"
         "         [--requests=N] [--connections=C] [--inflight=W]\n"
         "         [--mode=closed|open] [--rate=R] [--seed=S]\n"
         "         [--distance-frac=F] [--stats] [--out=FILE]\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string_view> args(argv + 1, argv + argc);
  if (args.size() < 2) {
    return usage();
  }
  Options options;
  options.d =
      static_cast<std::uint32_t>(std::atoi(std::string(args[0]).c_str()));
  options.k =
      static_cast<std::size_t>(std::atoi(std::string(args[1]).c_str()));
  const std::vector<std::string_view> rest(args.begin() + 2, args.end());
  const auto num = [&rest](std::string_view name, std::uint64_t fallback) {
    const auto v = flag_value(rest, name);
    return v ? static_cast<std::uint64_t>(
                   std::atoll(std::string(*v).c_str()))
             : fallback;
  };
  options.spawn = std::string(flag_value(rest, "--spawn").value_or(""));
  options.port = static_cast<std::uint16_t>(num("--port", 0));
  options.port_file =
      std::string(flag_value(rest, "--port-file").value_or(""));
  options.requests = num("--requests", options.requests);
  options.connections =
      static_cast<std::size_t>(num("--connections", options.connections));
  options.inflight =
      std::max<std::size_t>(1, num("--inflight", options.inflight));
  options.open_loop = flag_value(rest, "--mode").value_or("closed") == "open";
  if (const auto v = flag_value(rest, "--rate")) {
    options.rate = std::atof(std::string(*v).c_str());
  }
  options.seed = num("--seed", options.seed);
  if (const auto v = flag_value(rest, "--distance-frac")) {
    options.distance_frac = std::atof(std::string(*v).c_str());
  }
  options.stats_probe = has_flag(rest, "--stats");
  options.out = std::string(flag_value(rest, "--out").value_or(""));
  if (options.d < 2 || options.d > kMaxWireRadix || options.k == 0) {
    return usage();
  }
  const bool spawn_mode = !options.spawn.empty();
  if (spawn_mode) {
    options.connections = 1;
  }
  if (options.connections == 0 ||
      (!spawn_mode && options.port == 0 && options.port_file.empty())) {
    return usage();
  }

  std::ofstream out_file;
  if (!options.out.empty()) {
    out_file.open(options.out);
    if (!out_file) {
      std::cerr << "cannot open --out file: " << options.out << "\n";
      return 1;
    }
  }
  std::ostream& out = options.out.empty() ? std::cout : out_file;

  // Resolve the target and open one endpoint per connection.
  std::unique_ptr<SpawnEndpoint> spawned;
  std::vector<std::unique_ptr<Endpoint>> endpoints;
  std::uint16_t port = options.port;
  if (spawn_mode) {
    spawned = SpawnEndpoint::start(options.spawn);
    if (spawned == nullptr) {
      std::cerr << "failed to spawn: " << options.spawn << "\n";
      return 1;
    }
  } else {
    if (port == 0) {
      const auto resolved = wait_for_port_file(options.port_file, 10000);
      if (!resolved) {
        std::cerr << "timed out waiting for port file: " << options.port_file
                  << "\n";
        return 1;
      }
      port = *resolved;
    }
    for (std::size_t c = 0; c < options.connections; ++c) {
      auto endpoint = connect_tcp(port);
      if (endpoint == nullptr) {
        std::cerr << "cannot connect to 127.0.0.1:" << port << "\n";
        return 1;
      }
      endpoints.push_back(std::move(endpoint));
    }
  }

  out << "{\"schema\":\"" << schema::kLoadgen << "\",\"event\":\"config\""
      << ",\"d\":" << options.d << ",\"k\":" << options.k
      << ",\"requests\":" << options.requests
      << ",\"connections\":" << options.connections
      << ",\"inflight\":" << options.inflight << ",\"mode\":\""
      << (options.open_loop ? "open" : "closed") << "\",\"rate\":"
      << obs::json_number(options.rate) << ",\"seed\":" << options.seed
      << ",\"distance_frac\":" << obs::json_number(options.distance_frac)
      << "}\n";

  // Split the budget evenly; the first connections take the remainder.
  std::vector<std::uint64_t> budgets(options.connections,
                                     options.requests / options.connections);
  for (std::uint64_t i = 0; i < options.requests % options.connections; ++i) {
    budgets[static_cast<std::size_t>(i)] += 1;
  }

  std::vector<ConnResult> results(options.connections);
  const Clock::time_point start = Clock::now();
  {
    std::vector<std::thread> workers;
    workers.reserve(options.connections);
    for (std::size_t c = 0; c < options.connections; ++c) {
      Endpoint& endpoint = spawn_mode ? *spawned : *endpoints[c];
      workers.emplace_back([&options, c, &endpoint, &budgets, &results] {
        run_connection(options, c, endpoint, budgets[c], results[c]);
      });
    }
    for (std::thread& w : workers) {
      w.join();
    }
  }
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  // Optional stats probe: one Stats request on connection 0's endpoint,
  // checked to carry a metrics/1 snapshot. The body is kept and recorded
  // verbatim as an "event":"server" line, so a loadgen run's output holds
  // the server-side accounting next to the client-side view of the same
  // load (and check_metrics.py can validate it straight from this file).
  bool stats_ok = true;
  std::string server_metrics;
  if (options.stats_probe) {
    stats_ok = false;
    Endpoint& endpoint = spawn_mode ? *spawned : *endpoints[0];
    std::string frame;
    encode_control_request(RequestType::Stats, 0xFFFF'FFFF'FFFFull, frame);
    if (endpoint.send_all(frame)) {
      FrameReader reader;
      std::string payload;
      std::vector<char> buf(kReadChunk);
      const Clock::time_point deadline =
          Clock::now() + std::chrono::seconds(10);
      while (Clock::now() < deadline) {
        const int n = endpoint.recv_some(buf.data(), buf.size(), 200);
        if (n == -1 || n == -2) {
          break;
        }
        if (n > 0) {
          reader.feed(
              std::string_view(buf.data(), static_cast<std::size_t>(n)));
        }
        if (reader.next(payload) == FrameReader::Result::Frame) {
          const DecodedResponse decoded = decode_response(payload);
          stats_ok = decoded.error == DecodeError::None &&
                     decoded.response.status == Status::Ok &&
                     decoded.response.body.find(schema::kMetrics) !=
                         std::string::npos;
          if (stats_ok) {
            server_metrics = decoded.response.body;
            while (!server_metrics.empty() && server_metrics.back() == '\n') {
              server_metrics.pop_back();
            }
          }
          break;
        }
      }
    }
  }

  // Orderly half-close; --spawn additionally requires a clean child exit.
  for (const auto& endpoint : endpoints) {
    endpoint->close_write();
  }
  int child_exit = 0;
  if (spawn_mode) {
    spawned->close_write();
    child_exit = spawned->wait_child();
  }

  ConnResult total;
  std::vector<std::uint64_t> latencies;
  for (std::size_t c = 0; c < results.size(); ++c) {
    const ConnResult& r = results[c];
    out << "{\"schema\":\"" << schema::kLoadgen << "\",\"event\":\"conn\""
        << ",\"conn\":" << c << ",\"sent\":" << r.sent
        << ",\"answered\":" << r.answered << ",\"ok\":" << r.ok
        << ",\"overloaded\":" << r.overloaded
        << ",\"draining\":" << r.draining << ",\"bad\":" << r.bad
        << ",\"verify_failures\":" << r.verify_failures
        << ",\"transport_error\":" << (r.transport_error ? "true" : "false")
        << ",\"protocol_error\":" << (r.protocol_error ? "true" : "false")
        << "}\n";
    total.sent += r.sent;
    total.answered += r.answered;
    total.ok += r.ok;
    total.overloaded += r.overloaded;
    total.draining += r.draining;
    total.bad += r.bad;
    total.verify_failures += r.verify_failures;
    total.transport_error = total.transport_error || r.transport_error;
    total.protocol_error = total.protocol_error || r.protocol_error;
    latencies.insert(latencies.end(), r.latencies_us.begin(),
                     r.latencies_us.end());
  }
  std::sort(latencies.begin(), latencies.end());
  const double qps =
      elapsed_s > 0 ? static_cast<double>(total.answered) / elapsed_s : 0;
  const bool complete =
      total.sent == options.requests && total.answered == total.sent;
  const bool success = complete && total.verify_failures == 0 &&
                       total.bad == 0 && !total.transport_error &&
                       !total.protocol_error && child_exit == 0 && stats_ok;
  if (!server_metrics.empty()) {
    out << "{\"schema\":\"" << schema::kLoadgen << "\",\"event\":\"server\""
        << ",\"metrics\":" << server_metrics << "}\n";
  }
  out << "{\"schema\":\"" << schema::kLoadgen << "\",\"event\":\"summary\""
      << ",\"sent\":" << total.sent << ",\"answered\":" << total.answered
      << ",\"ok\":" << total.ok << ",\"overloaded\":" << total.overloaded
      << ",\"draining\":" << total.draining << ",\"bad\":" << total.bad
      << ",\"verify_failures\":" << total.verify_failures
      << ",\"elapsed_s\":" << obs::json_number(elapsed_s)
      << ",\"qps\":" << obs::json_number(qps)
      << ",\"latency_us\":{\"p50\":" << percentile(latencies, 50)
      << ",\"p90\":" << percentile(latencies, 90)
      << ",\"p99\":" << percentile(latencies, 99) << ",\"max\":"
      << (latencies.empty() ? 0 : latencies.back()) << "}"
      << ",\"stats_ok\":" << (stats_ok ? "true" : "false")
      << ",\"child_exit\":" << child_exit
      << ",\"success\":" << (success ? "true" : "false") << "}\n";
  out.flush();
  return success ? 0 : 1;
}
