// dbn_fuzz — differential conformance fuzzer for every router in the
// library (src/testkit).
//
//   dbn_fuzz [--seed N] [--iters N] [--time-budget SEC] [--max-bfs N]
//            [--no-shrink] [--max-failures N] [--failure-dir DIR] [--quiet]
//   dbn_fuzz --replay <case-file | corpus-dir | inline-case>
//
// Flags accept both "--flag value" and "--flag=value". An inline replay
// case uses ':' separators, e.g. --replay undirected:2:4:0110:1001 (the
// corpus file format with spaces replaced).
//
// --failure-dir writes every shrunk disagreement as a replayable
// failure_<n>.case corpus file (with the conformance report and the
// paste-ready regression test as comments) so CI can upload the directory
// as an artifact.
//
// Exit status: 0 when every oracle agrees on every pair, 1 on any
// disagreement (the shrunk reproducer, its corpus line and a paste-ready
// regression test are printed), 2 on usage errors.
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/contract.hpp"
#include "testkit/fuzzer.hpp"

namespace {

using namespace dbn;

void usage(std::ostream& out) {
  out << "usage:\n"
         "  dbn_fuzz [--seed N] [--iters N] [--time-budget SEC] "
         "[--max-bfs N]\n"
         "           [--no-shrink] [--max-failures N] [--failure-dir DIR] "
         "[--quiet]\n"
         "  dbn_fuzz --replay <case-file | corpus-dir | inline-case>\n"
         "inline cases use ':' separators, e.g. undirected:2:4:0110:1001\n";
}

struct ParsedArgs {
  std::vector<std::string> replays;
  std::string failure_dir;
  bool quiet = false;
  bool ok = true;
  testkit::FuzzOptions fuzz;
};

std::optional<std::uint64_t> parse_u64(const std::string& text) {
  try {
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(text, &used);
    if (used != text.size()) {
      return std::nullopt;
    }
    return value;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

ParsedArgs parse_args(int argc, char** argv) {
  ParsedArgs parsed;
  std::vector<std::string> args(argv + 1, argv + argc);
  // Split "--flag=value" into "--flag value".
  std::vector<std::string> flat;
  for (const std::string& a : args) {
    const auto eq = a.find('=');
    if (a.starts_with("--") && eq != std::string::npos) {
      flat.push_back(a.substr(0, eq));
      flat.push_back(a.substr(eq + 1));
    } else {
      flat.push_back(a);
    }
  }
  const auto take_value = [&flat](std::size_t& i) -> std::optional<std::string> {
    if (i + 1 >= flat.size()) {
      return std::nullopt;
    }
    return flat[++i];
  };
  for (std::size_t i = 0; i < flat.size(); ++i) {
    const std::string& arg = flat[i];
    const auto number = [&](std::uint64_t& out) {
      const auto text = take_value(i);
      const auto value = text ? parse_u64(*text) : std::nullopt;
      if (!value) {
        std::cerr << "dbn_fuzz: " << arg << " needs a number\n";
        parsed.ok = false;
        return;
      }
      out = *value;
    };
    if (arg == "--seed") {
      number(parsed.fuzz.seed);
    } else if (arg == "--iters") {
      number(parsed.fuzz.iterations);
    } else if (arg == "--max-bfs") {
      number(parsed.fuzz.oracle_options.max_bfs_vertices);
    } else if (arg == "--max-failures") {
      std::uint64_t value = parsed.fuzz.max_failures;
      number(value);
      parsed.fuzz.max_failures = static_cast<std::size_t>(value);
    } else if (arg == "--time-budget") {
      const auto text = take_value(i);
      try {
        parsed.fuzz.time_budget_seconds = text ? std::stod(*text) : -1.0;
      } catch (const std::exception&) {
        parsed.fuzz.time_budget_seconds = -1.0;
      }
      if (!text || parsed.fuzz.time_budget_seconds < 0) {
        std::cerr << "dbn_fuzz: --time-budget needs seconds\n";
        parsed.ok = false;
      }
    } else if (arg == "--replay") {
      const auto text = take_value(i);
      if (!text) {
        std::cerr << "dbn_fuzz: --replay needs an argument\n";
        parsed.ok = false;
      } else {
        parsed.replays.push_back(*text);
      }
    } else if (arg == "--failure-dir") {
      const auto text = take_value(i);
      if (!text) {
        std::cerr << "dbn_fuzz: --failure-dir needs a directory\n";
        parsed.ok = false;
      } else {
        parsed.failure_dir = *text;
      }
    } else if (arg == "--no-shrink") {
      parsed.fuzz.shrink = false;
    } else if (arg == "--quiet") {
      parsed.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      std::exit(0);
    } else {
      std::cerr << "dbn_fuzz: unknown argument " << arg << "\n";
      parsed.ok = false;
    }
  }
  return parsed;
}

int run_replays(const ParsedArgs& parsed) {
  namespace fs = std::filesystem;
  std::ostream* log = parsed.quiet ? nullptr : &std::cout;
  std::vector<std::string> failures;
  for (const std::string& target : parsed.replays) {
    if (fs::is_directory(target)) {
      const auto files = testkit::list_corpus_files(target);
      if (files.empty()) {
        std::cerr << "dbn_fuzz: no *.case files in " << target << "\n";
        return 2;
      }
      const auto dir_failures = testkit::replay_corpus_files(
          files, parsed.fuzz.oracle_options, log);
      failures.insert(failures.end(), dir_failures.begin(),
                      dir_failures.end());
    } else if (fs::is_regular_file(target)) {
      const auto file_failures = testkit::replay_corpus_files(
          {target}, parsed.fuzz.oracle_options, log);
      failures.insert(failures.end(), file_failures.begin(),
                      file_failures.end());
    } else {
      // Inline case with ':' separators.
      std::string line = target;
      std::replace(line.begin(), line.end(), ':', ' ');
      const auto c = testkit::CorpusCase::parse(line);
      const auto report =
          testkit::replay_case(c, parsed.fuzz.oracle_options);
      if (log != nullptr) {
        *log << report.to_string() << "\n";
      }
      if (!report.ok()) {
        failures.push_back(c.to_line() + "\n" + report.to_string());
      }
    }
  }
  if (!failures.empty()) {
    std::cerr << "dbn_fuzz: " << failures.size() << " replay failure(s)\n";
    for (const std::string& f : failures) {
      std::cerr << f << "\n";
    }
    return 1;
  }
  if (log != nullptr) {
    *log << "dbn_fuzz: all replayed cases conform\n";
  }
  return 0;
}

// Writes each shrunk disagreement as a replayable *.case file; returns the
// number written (0 also when the directory cannot be created).
std::size_t write_failure_cases(const std::string& dir,
                                const testkit::FuzzReport& report) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    std::cerr << "dbn_fuzz: cannot create --failure-dir " << dir << ": "
              << ec.message() << "\n";
    return 0;
  }
  std::size_t written = 0;
  for (std::size_t i = 0; i < report.failures.size(); ++i) {
    const testkit::FuzzFailure& failure = report.failures[i];
    const fs::path path =
        fs::path(dir) / ("failure_" + std::to_string(i) + ".case");
    std::ofstream file(path);
    if (!file) {
      std::cerr << "dbn_fuzz: cannot write " << path.string() << "\n";
      continue;
    }
    file << "# shrunk reproducer " << i << " (replay with: dbn_fuzz --replay "
         << path.filename().string() << ")\n"
         << "# original: " << failure.original.to_line() << "\n";
    std::istringstream annotate(failure.report + "\n" + failure.snippet);
    for (std::string line; std::getline(annotate, line);) {
      file << "# " << line << "\n";
    }
    file << failure.shrunk.to_line() << "\n";
    ++written;
  }
  return written;
}

int run_fuzz_loop(ParsedArgs& parsed) {
  if (!parsed.quiet) {
    parsed.fuzz.log = &std::cout;
  }
  const testkit::FuzzReport report = testkit::run_fuzz(parsed.fuzz);
  if (!parsed.quiet) {
    std::cout << "dbn_fuzz: " << report.iterations_run << " iterations in "
              << report.elapsed_seconds << "s across "
              << report.point_coverage.size() << " (network, d, k) points\n";
    for (const auto& [point, count] : report.point_coverage) {
      std::cout << "  " << point << ": " << count << " pairs\n";
    }
  }
  if (!report.ok()) {
    std::cerr << "dbn_fuzz: " << report.failures.size()
              << " disagreement(s); shrunk reproducers:\n";
    for (const auto& failure : report.failures) {
      std::cerr << "  " << failure.shrunk.to_line() << "\n"
                << failure.report << "\n"
                << failure.snippet << "\n";
    }
    if (!parsed.failure_dir.empty()) {
      const std::size_t written =
          write_failure_cases(parsed.failure_dir, report);
      std::cerr << "dbn_fuzz: wrote " << written << " case file(s) to "
                << parsed.failure_dir << "\n";
    }
    return 1;
  }
  if (!parsed.quiet) {
    std::cout << "dbn_fuzz: zero disagreements across all oracles\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    ParsedArgs parsed = parse_args(argc, argv);
    if (!parsed.ok) {
      usage(std::cerr);
      return 2;
    }
    if (!parsed.replays.empty()) {
      return run_replays(parsed);
    }
    return run_fuzz_loop(parsed);
  } catch (const dbn::ContractViolation& e) {
    std::cerr << "dbn_fuzz: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "dbn_fuzz: " << e.what() << "\n";
    return 2;
  }
}
