// dbn_bench — batch-routing throughput runner with JSON perf reporting.
//
// Times BatchRouteEngine over a (d, k) grid for a sweep of thread counts
// and backends, and emits a normalized JSON document (schema "dbn-bench/1",
// documented in docs/benchmarking.md) that scripts/bench_report.py merges
// into the committed BENCH_<date>.json baselines.
//
//   dbn_bench [--smoke] [--d N] [--k N] [--queries N] [--repeats N]
//             [--threads CSV] [--backends CSV] [--cache N] [--flows N]
//             [--json PATH] [--min-speedup X] [--speedup-threads N]
//             [--trace-out PATH] [--metrics-out PATH] [--quiet]
//
// Backends: alg1-directed | bidi-engine | bidi-suffix-tree | compiled-table.
// --flows F > 0 cycles F hot pairs through the batch (the cache regime);
// --cache N enables the sharded memo cache with N entries.
// --smoke selects the CI smoke grid (d=2, k=10, 32768 queries, repeats 3,
// threads 1,2,4,8, backends alg1-directed + bidi-engine + compiled-table)
// and adds a cached bidi-engine sweep.
//
// --min-speedup X fails (exit 3) when the bidi-engine speedup at
// --speedup-threads (default 8) over single-thread falls below X — skipped
// with a warning when the host has fewer hardware threads than that, since
// a 1-core runner cannot exhibit parallel speedup.
//
// --trace-out PATH runs one extra *traced* pass (capped at 4096 queries so
// the file stays manageable) after the timed sweep — the timed runs stay
// untraced — and exports it as Chrome trace_event JSON when PATH ends in
// ".json" (per-worker lanes in Perfetto), trace/1 NDJSON otherwise.
// --metrics-out PATH snapshots the global metrics registry (batch.* query
// and cache counters accumulated across the whole sweep) as metrics/1.
//
// Exit status: 0 ok, 2 usage error, 3 failed speedup check.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "common/schema.hpp"
#include "core/batch_route_engine.hpp"
#include "obs_flags.hpp"

namespace {

using namespace dbn;

struct BenchConfig {
  std::uint32_t d = 2;
  std::size_t k = 10;
  std::size_t queries = 32768;
  std::size_t repeats = 3;
  std::vector<std::size_t> threads = {1, 2, 4, 8};
  std::vector<BatchBackend> backends = {BatchBackend::BidiEngine};
  std::size_t cache_entries = 0;  // explicit --cache run
  std::size_t flows = 0;
  bool smoke = false;
  bool quiet = false;
  std::string json_path;
  std::string trace_out;
  std::string metrics_out;
  double min_speedup = 0.0;
  std::size_t speedup_threads = 8;
};

struct ResultRow {
  std::string name;
  std::string backend;
  std::size_t threads = 1;
  std::size_t cache_entries = 0;
  std::size_t flows = 0;
  std::size_t queries = 0;
  double best_ns_per_query = 0.0;
  double qps = 0.0;
  double speedup_vs_1t = 1.0;
  double cache_hit_rate = 0.0;
};

std::optional<BatchBackend> parse_backend(const std::string& name) {
  if (name == "alg1-directed" || name == "alg1") {
    return BatchBackend::Alg1Directed;
  }
  if (name == "bidi-engine" || name == "engine") {
    return BatchBackend::BidiEngine;
  }
  if (name == "bidi-suffix-tree" || name == "st") {
    return BatchBackend::BidiSuffixTree;
  }
  if (name == "compiled-table" || name == "table") {
    return BatchBackend::CompiledTable;
  }
  return std::nullopt;
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> parts;
  std::stringstream stream(text);
  std::string part;
  while (std::getline(stream, part, ',')) {
    if (!part.empty()) {
      parts.push_back(part);
    }
  }
  return parts;
}

std::vector<RouteQuery> make_queries(const BenchConfig& config) {
  Rng rng(config.k * 1000003 + config.d);
  const auto random_word = [&rng, &config] {
    std::vector<Digit> digits(config.k);
    for (auto& digit : digits) {
      digit = static_cast<Digit>(rng.below(config.d));
    }
    return Word(config.d, std::move(digits));
  };
  std::vector<RouteQuery> queries;
  queries.reserve(config.queries);
  if (config.flows > 0) {
    std::vector<RouteQuery> hot;
    hot.reserve(config.flows);
    for (std::size_t i = 0; i < config.flows; ++i) {
      hot.push_back(RouteQuery{random_word(), random_word()});
    }
    for (std::size_t i = 0; i < config.queries; ++i) {
      queries.push_back(hot[i % config.flows]);
    }
  } else {
    for (std::size_t i = 0; i < config.queries; ++i) {
      queries.push_back(RouteQuery{random_word(), random_word()});
    }
  }
  return queries;
}

ResultRow run_one(const BenchConfig& config, BatchBackend backend,
                  std::size_t threads, std::size_t cache_entries,
                  const std::vector<RouteQuery>& queries) {
  BatchRouteEngine engine(
      config.d, config.k,
      BatchRouteOptions{.backend = backend,
                        .threads = threads,
                        .chunk = 256,
                        .cache_entries = cache_entries});
  std::vector<RoutingPath> out;
  engine.route_batch_into(queries, out);  // warmup (and cache fill)
  double best_seconds = -1.0;
  for (std::size_t repeat = 0; repeat < config.repeats; ++repeat) {
    const auto start = std::chrono::steady_clock::now();
    engine.route_batch_into(queries, out);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (best_seconds < 0 || elapsed.count() < best_seconds) {
      best_seconds = elapsed.count();
    }
  }
  ResultRow row;
  row.backend = std::string(batch_backend_name(backend));
  row.name = "batch/" + row.backend +
             (cache_entries > 0 ? "+cache" : "") + "/t" +
             std::to_string(threads);
  row.threads = threads;
  row.cache_entries = cache_entries;
  row.flows = config.flows;
  row.queries = queries.size();
  row.best_ns_per_query =
      best_seconds * 1e9 / static_cast<double>(queries.size());
  row.qps = static_cast<double>(queries.size()) / best_seconds;
  const BatchStats& stats = engine.last_stats();
  row.cache_hit_rate =
      stats.cache_lookups == 0
          ? 0.0
          : static_cast<double>(stats.cache_hits) /
                static_cast<double>(stats.cache_lookups);
  return row;
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buffer;
}

std::string json_escape_number(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

void write_json(std::ostream& out, const BenchConfig& config,
                const std::vector<ResultRow>& rows) {
  out << "{\n"
      << "  \"schema\": \"" << dbn::schema::kBench << "\",\n"
      << "  \"generated_by\": \"dbn_bench\",\n"
      << "  \"date_utc\": \"" << utc_timestamp() << "\",\n"
      << "  \"host\": {\"hardware_threads\": "
      << std::thread::hardware_concurrency() << "},\n"
      << "  \"grid\": {\"d\": " << config.d << ", \"k\": " << config.k
      << ", \"queries\": " << config.queries
      << ", \"repeats\": " << config.repeats << "},\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ResultRow& row = rows[i];
    out << "    {\"name\": \"" << row.name << "\", \"backend\": \""
        << row.backend << "\", \"threads\": " << row.threads
        << ", \"cache_entries\": " << row.cache_entries
        << ", \"flows\": " << row.flows << ", \"queries\": " << row.queries
        << ", \"best_ns_per_query\": "
        << json_escape_number(row.best_ns_per_query)
        << ", \"qps\": " << json_escape_number(row.qps)
        << ", \"speedup_vs_1t\": " << json_escape_number(row.speedup_vs_1t)
        << ", \"cache_hit_rate\": " << json_escape_number(row.cache_hit_rate)
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

void fill_speedups(std::vector<ResultRow>& rows) {
  for (ResultRow& row : rows) {
    if (row.threads == 1) {
      continue;
    }
    for (const ResultRow& base : rows) {
      if (base.threads == 1 && base.backend == row.backend &&
          base.cache_entries == row.cache_entries) {
        row.speedup_vs_1t = base.best_ns_per_query / row.best_ns_per_query;
        break;
      }
    }
  }
}

void usage(std::ostream& out) {
  out << "usage: dbn_bench [--smoke] [--d N] [--k N] [--queries N]\n"
         "                 [--repeats N] [--threads CSV] [--backends CSV]\n"
         "                 [--cache N] [--flows N] [--json PATH]\n"
         "                 [--min-speedup X] [--speedup-threads N]\n"
         "                 [--trace-out PATH] [--metrics-out PATH] [--quiet]\n"
         "backends: alg1-directed bidi-engine bidi-suffix-tree "
         "compiled-table\n";
}

std::optional<BenchConfig> parse_args(int argc, char** argv) {
  BenchConfig config;
  std::vector<std::string> args(argv + 1, argv + argc);
  std::vector<std::string> flat;
  for (const std::string& arg : args) {
    const auto eq = arg.find('=');
    if (arg.starts_with("--") && eq != std::string::npos) {
      flat.push_back(arg.substr(0, eq));
      flat.push_back(arg.substr(eq + 1));
    } else {
      flat.push_back(arg);
    }
  }
  const auto take_value = [&flat](std::size_t& i) -> std::optional<std::string> {
    if (i + 1 >= flat.size()) {
      return std::nullopt;
    }
    return flat[++i];
  };
  for (std::size_t i = 0; i < flat.size(); ++i) {
    const std::string& arg = flat[i];
    const auto number = [&](auto& out_value) -> bool {
      const auto text = take_value(i);
      if (!text) {
        std::cerr << "dbn_bench: " << arg << " needs a value\n";
        return false;
      }
      try {
        out_value = static_cast<std::remove_reference_t<decltype(out_value)>>(
            std::stoull(*text));
        return true;
      } catch (const std::exception&) {
        std::cerr << "dbn_bench: bad number for " << arg << "\n";
        return false;
      }
    };
    if (arg == "--smoke") {
      config.smoke = true;
    } else if (arg == "--d") {
      if (!number(config.d)) return std::nullopt;
    } else if (arg == "--k") {
      if (!number(config.k)) return std::nullopt;
    } else if (arg == "--queries") {
      if (!number(config.queries)) return std::nullopt;
    } else if (arg == "--repeats") {
      if (!number(config.repeats)) return std::nullopt;
    } else if (arg == "--cache") {
      if (!number(config.cache_entries)) return std::nullopt;
    } else if (arg == "--flows") {
      if (!number(config.flows)) return std::nullopt;
    } else if (arg == "--speedup-threads") {
      if (!number(config.speedup_threads)) return std::nullopt;
    } else if (arg == "--min-speedup") {
      const auto text = take_value(i);
      if (!text) {
        std::cerr << "dbn_bench: --min-speedup needs a value\n";
        return std::nullopt;
      }
      try {
        config.min_speedup = std::stod(*text);
      } catch (const std::exception&) {
        std::cerr << "dbn_bench: bad number for --min-speedup\n";
        return std::nullopt;
      }
    } else if (arg == "--threads") {
      const auto text = take_value(i);
      if (!text) {
        std::cerr << "dbn_bench: --threads needs a CSV list\n";
        return std::nullopt;
      }
      config.threads.clear();
      for (const std::string& part : split_csv(*text)) {
        config.threads.push_back(std::stoull(part));
      }
    } else if (arg == "--backends") {
      const auto text = take_value(i);
      if (!text) {
        std::cerr << "dbn_bench: --backends needs a CSV list\n";
        return std::nullopt;
      }
      config.backends.clear();
      for (const std::string& part : split_csv(*text)) {
        const auto backend = parse_backend(part);
        if (!backend) {
          std::cerr << "dbn_bench: unknown backend " << part << "\n";
          return std::nullopt;
        }
        config.backends.push_back(*backend);
      }
    } else if (arg == "--json") {
      const auto text = take_value(i);
      if (!text) {
        std::cerr << "dbn_bench: --json needs a path\n";
        return std::nullopt;
      }
      config.json_path = *text;
    } else if (arg == "--trace-out") {
      const auto text = take_value(i);
      if (!text) {
        std::cerr << "dbn_bench: --trace-out needs a path\n";
        return std::nullopt;
      }
      config.trace_out = *text;
    } else if (arg == "--metrics-out") {
      const auto text = take_value(i);
      if (!text) {
        std::cerr << "dbn_bench: --metrics-out needs a path\n";
        return std::nullopt;
      }
      config.metrics_out = *text;
    } else if (arg == "--quiet") {
      config.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      std::exit(0);
    } else {
      std::cerr << "dbn_bench: unknown argument " << arg << "\n";
      return std::nullopt;
    }
  }
  if (config.smoke) {
    config.d = 2;
    config.k = 10;
    config.queries = 32768;
    config.repeats = 3;
    config.threads = {1, 2, 4, 8};
    config.backends = {BatchBackend::Alg1Directed, BatchBackend::BidiEngine,
                       BatchBackend::CompiledTable};
    if (config.min_speedup == 0.0) {
      config.min_speedup = 3.0;
    }
  }
  if (config.threads.empty() || config.backends.empty() ||
      config.queries == 0 || config.repeats == 0) {
    std::cerr << "dbn_bench: empty sweep\n";
    return std::nullopt;
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const auto parsed = parse_args(argc, argv);
    if (!parsed) {
      usage(std::cerr);
      return 2;
    }
    const BenchConfig& config = *parsed;
    std::vector<ResultRow> rows;
    {
      BenchConfig uniform = config;
      uniform.flows = 0;
      const std::vector<RouteQuery> queries = make_queries(uniform);
      for (const BatchBackend backend : config.backends) {
        for (const std::size_t threads : config.threads) {
          rows.push_back(run_one(uniform, backend, threads,
                                 config.cache_entries, queries));
          if (!config.quiet) {
            const ResultRow& row = rows.back();
            std::cerr << "dbn_bench: " << row.name << "  "
                      << row.best_ns_per_query << " ns/query  " << row.qps
                      << " qps\n";
          }
        }
      }
    }
    if (config.smoke) {
      // Cached sweep: 64 hot flows through the sharded memo cache.
      BenchConfig cached = config;
      cached.flows = 64;
      const std::vector<RouteQuery> queries = make_queries(cached);
      for (const std::size_t threads : config.threads) {
        rows.push_back(
            run_one(cached, BatchBackend::BidiEngine, threads, 4096, queries));
        if (!config.quiet) {
          const ResultRow& row = rows.back();
          std::cerr << "dbn_bench: " << row.name << "  "
                    << row.best_ns_per_query << " ns/query  hit_rate "
                    << row.cache_hit_rate << "\n";
        }
      }
    }
    fill_speedups(rows);
    if (!config.trace_out.empty() || !config.metrics_out.empty()) {
      // Observability pass — after the timed sweep, so timings above are
      // untraced. The traced batch is capped to keep the file manageable.
      dbn::tools::ObsWriter writer;
      if (!writer.setup(config.trace_out, config.metrics_out)) {
        return 2;
      }
      if (!config.trace_out.empty()) {
        BenchConfig traced = config;
        traced.flows = 0;
        std::vector<RouteQuery> queries = make_queries(traced);
        if (queries.size() > 4096) {
          queries.erase(queries.begin() + 4096, queries.end());
        }
        BatchRouteEngine engine(
            config.d, config.k,
            BatchRouteOptions{.backend = config.backends.front(),
                              .threads = config.threads.back(),
                              .chunk = 256,
                              .cache_entries = config.cache_entries});
        std::vector<RoutingPath> out;
        engine.route_batch_into(queries, out);
        if (!config.quiet) {
          std::cerr << "dbn_bench: traced pass (" << queries.size()
                    << " queries, " << config.threads.back()
                    << " threads) -> " << config.trace_out << "\n";
        }
      }
      writer.finish();
    }
    if (!config.json_path.empty()) {
      std::ofstream file(config.json_path);
      if (!file) {
        std::cerr << "dbn_bench: cannot write " << config.json_path << "\n";
        return 2;
      }
      write_json(file, config, rows);
    } else {
      write_json(std::cout, config, rows);
    }
    if (config.min_speedup > 0.0) {
      const unsigned hardware = std::thread::hardware_concurrency();
      if (hardware < config.speedup_threads) {
        std::cerr << "dbn_bench: skipping speedup check (host has " << hardware
                  << " hardware threads < " << config.speedup_threads
                  << ")\n";
        return 0;
      }
      for (const ResultRow& row : rows) {
        if (row.backend == batch_backend_name(BatchBackend::BidiEngine) &&
            row.cache_entries == 0 && row.threads == config.speedup_threads) {
          if (row.speedup_vs_1t < config.min_speedup) {
            std::cerr << "dbn_bench: FAIL speedup " << row.speedup_vs_1t
                      << "x at " << row.threads << " threads < required "
                      << config.min_speedup << "x\n";
            return 3;
          }
          std::cerr << "dbn_bench: speedup check ok (" << row.speedup_vs_1t
                    << "x at " << row.threads << " threads)\n";
        }
      }
    }
    return 0;
  } catch (const dbn::ContractViolation& e) {
    std::cerr << "dbn_bench: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "dbn_bench: " << e.what() << "\n";
    return 2;
  }
}
