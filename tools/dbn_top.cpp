// dbn_top — live terminal dashboard for a running `dbn serve`.
//
//   dbn_top (--port=N | --port-file=PATH) [--interval=MS] [--samples=N]
//           [--once] [--metrics-out=FILE] [--no-clear]
//
// Polls the server's Introspect probe (serve/1 RequestType::Introspect —
// answered inline on a reader thread, so the dashboard works even when the
// dispatcher is saturated) and renders what changed between probes: QPS,
// shed/error rates, p50/p99 latency over the *window* (differenced from
// the serve.latency_us histogram embedded in each probe), queue depth,
// inflight count, per-connection request shares with their Jain fairness
// index, and the slow-request log.
//
//   --interval=MS     poll period (default 1000)
//   --samples=N       exit after N probes (0 = run until the server goes
//                     away or SIGINT)
//   --once            one probe, plain print, exit (= --samples=1
//                     --no-clear); the CI smoke's mid-load scrape
//   --metrics-out=F   also issue a Stats request each probe and write the
//                     server's metrics/1 document to F verbatim (so
//                     scripts/check_metrics.py can validate a *live*
//                     snapshot, not a post-drain one)
//   --no-clear        append frames instead of redrawing (logs, CI)
//
// Exit status: 0 after the requested samples, 1 on connection or probe
// failure.
#include <poll.h>
#include <sys/socket.h>
#include <netinet/in.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/schema.hpp"
#include "obs/json.hpp"
#include "serve/protocol.hpp"

namespace {

using namespace dbn;
using namespace dbn::serve;
using Clock = std::chrono::steady_clock;

std::optional<std::string_view> flag_value(
    const std::vector<std::string_view>& args, std::string_view name) {
  const std::string prefix = std::string(name) + "=";
  for (const std::string_view a : args) {
    if (a.starts_with(prefix)) {
      return a.substr(prefix.size());
    }
  }
  return std::nullopt;
}

bool has_flag(const std::vector<std::string_view>& args,
              std::string_view name) {
  for (const std::string_view a : args) {
    if (a == name) {
      return true;
    }
  }
  return false;
}

int connect_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::optional<std::uint16_t> wait_for_port_file(const std::string& path,
                                                int timeout_ms) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    std::ifstream in(path);
    unsigned port = 0;
    if (in && (in >> port) && port > 0 && port < 65536) {
      return static_cast<std::uint16_t>(port);
    }
    if (Clock::now() >= deadline) {
      return std::nullopt;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

bool send_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// One synchronous request/response round trip (the probe connection has
/// nothing else in flight, so the next frame is always our answer).
std::optional<Response> round_trip(int fd, FrameReader& reader,
                                   RequestType type, std::uint64_t id,
                                   int timeout_ms) {
  std::string frame;
  encode_control_request(type, id, frame);
  if (!send_all(fd, frame)) {
    return std::nullopt;
  }
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::string payload;
  char buf[64 * 1024];
  for (;;) {
    switch (reader.next(payload)) {
      case FrameReader::Result::Frame: {
        DecodedResponse decoded = decode_response(payload);
        if (decoded.error != DecodeError::None) {
          return std::nullopt;
        }
        return std::move(decoded.response);
      }
      case FrameReader::Result::Error:
        return std::nullopt;
      case FrameReader::Result::NeedMore:
        break;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) {
      return std::nullopt;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (ready < 0 && errno != EINTR) {
      return std::nullopt;
    }
    if (ready <= 0) {
      continue;
    }
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      return std::nullopt;
    }
    reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

/// A histogram as the probe's embedded metrics doc carries it.
struct HistogramState {
  std::vector<double> bounds;
  std::vector<double> buckets;  // bounds.size() + 1 (overflow last)
  double count = 0;
};

std::optional<HistogramState> find_histogram(const obs::JsonValue& metrics,
                                             std::string_view name) {
  const obs::JsonValue* entries = metrics.find("metrics");
  if (entries == nullptr || !entries->is_array()) {
    return std::nullopt;
  }
  for (const obs::JsonValue& entry : entries->items) {
    if (entry.string_at("name") != name) {
      continue;
    }
    const obs::JsonValue* bounds = entry.find("bounds");
    const obs::JsonValue* buckets = entry.find("buckets");
    if (bounds == nullptr || buckets == nullptr) {
      return std::nullopt;
    }
    HistogramState state;
    for (const obs::JsonValue& b : bounds->items) {
      state.bounds.push_back(b.number);
    }
    for (const obs::JsonValue& b : buckets->items) {
      state.buckets.push_back(b.number);
      state.count += b.number;
    }
    if (state.buckets.size() != state.bounds.size() + 1) {
      return std::nullopt;
    }
    return state;
  }
  return std::nullopt;
}

/// Percentile over bucketed counts, linear interpolation inside the
/// winning bucket; the open overflow bucket reports the top bound.
double histogram_percentile(const HistogramState& h, double q) {
  if (h.count <= 0) {
    return 0.0;
  }
  const double target = q * h.count;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    const double next = cumulative + h.buckets[i];
    if (next >= target && h.buckets[i] > 0) {
      if (i >= h.bounds.size()) {
        return h.bounds.back();
      }
      const double lo = i == 0 ? 0.0 : h.bounds[i - 1];
      const double hi = h.bounds[i];
      const double frac = (target - cumulative) / h.buckets[i];
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return h.bounds.empty() ? 0.0 : h.bounds.back();
}

HistogramState histogram_delta(const HistogramState& now,
                               const HistogramState& before) {
  if (before.buckets.size() != now.buckets.size()) {
    return now;
  }
  HistogramState delta = now;
  delta.count = 0;
  for (std::size_t i = 0; i < now.buckets.size(); ++i) {
    delta.buckets[i] = now.buckets[i] - before.buckets[i];
    if (delta.buckets[i] < 0) {
      delta.buckets[i] = 0;  // registry reset between probes
    }
    delta.count += delta.buckets[i];
  }
  return delta;
}

double counter_value(const obs::JsonValue& metrics, std::string_view name) {
  const obs::JsonValue* entries = metrics.find("metrics");
  if (entries == nullptr || !entries->is_array()) {
    return 0.0;
  }
  for (const obs::JsonValue& entry : entries->items) {
    if (entry.string_at("name") == name) {
      return entry.number_at("count");
    }
  }
  return 0.0;
}

// One probe's parsed state, kept so the next frame can be differenced.
struct ProbeState {
  obs::JsonValue doc;
  Clock::time_point taken;
  std::optional<HistogramState> latency;
};

std::string ascii_spark(const std::deque<double>& values) {
  static constexpr std::string_view glyphs = " .:-=+*#%@";
  double peak = 0.0;
  for (const double v : values) {
    peak = std::max(peak, v);
  }
  std::string out;
  for (const double v : values) {
    const std::size_t level =
        peak <= 0.0 ? 0
                    : std::min(glyphs.size() - 1,
                               static_cast<std::size_t>(
                                   v / peak * static_cast<double>(
                                                  glyphs.size() - 1) +
                                   0.5));
    out.push_back(glyphs[level]);
  }
  return out;
}

double rate_per_s(double delta, double dt_s) {
  return dt_s > 0.0 ? delta / dt_s : 0.0;
}

void render(std::ostream& out, const ProbeState& now,
            const ProbeState* before, const std::deque<double>& qps_history,
            bool clear) {
  if (clear) {
    out << "\x1b[2J\x1b[H";
  }
  const obs::JsonValue& doc = now.doc;
  const obs::JsonValue* config = doc.find("config");
  const obs::JsonValue* stats = doc.find("stats");
  if (config == nullptr || stats == nullptr) {
    out << "dbn top: malformed probe\n";
    return;
  }
  const double uptime_s = doc.number_at("uptime_us") / 1e6;
  out << "dbn top — DN(" << config->number_at("d") << ","
      << config->number_at("k") << ") backend="
      << config->string_at("backend", "?")
      << " queue_capacity=" << config->number_at("queue_capacity")
      << " max_batch=" << config->number_at("max_batch") << " uptime="
      << static_cast<std::uint64_t>(uptime_s) << "s\n";

  double dt_s = 0.0;
  double qps = 0.0;
  double shed_rate = 0.0;
  double deflect_rate = 0.0;
  if (before != nullptr) {
    dt_s = std::chrono::duration<double>(now.taken - before->taken).count();
    const auto delta = [&](const char* field) {
      return stats->number_at(field) -
             before->doc.find("stats")->number_at(field);
    };
    qps = rate_per_s(delta("requests"), dt_s);
    shed_rate = rate_per_s(delta("rejected_overload"), dt_s);
    deflect_rate = rate_per_s(counter_value(*doc.find("metrics"),
                                            schema::metric::kSimDeflections) -
                                  counter_value(*before->doc.find("metrics"),
                                                schema::metric::kSimDeflections),
                              dt_s);
  }
  char line[256];
  std::snprintf(line, sizeof(line),
                "qps %.1f  shed/s %.1f  deflect/s %.1f  [%s]\n", qps,
                shed_rate, deflect_rate, ascii_spark(qps_history).c_str());
  out << line;
  out << "requests " << stats->number_at("requests") << "  ok "
      << stats->number_at("responses_ok") << "  shed "
      << stats->number_at("rejected_overload") << "  bad "
      << stats->number_at("rejected_bad_request") << "  draining "
      << stats->number_at("rejected_draining") << "  proto_err "
      << stats->number_at("protocol_errors") << "\n";

  // Latency over the window when we can difference, lifetime otherwise.
  if (now.latency) {
    HistogramState window = *now.latency;
    const char* scope = "lifetime";
    if (before != nullptr && before->latency) {
      window = histogram_delta(*now.latency, *before->latency);
      scope = "window";
    }
    std::snprintf(line, sizeof(line),
                  "latency (%s) p50 %.0fus  p99 %.0fus  samples %.0f\n",
                  scope, histogram_percentile(window, 0.50),
                  histogram_percentile(window, 0.99), window.count);
    out << line;
  }
  out << "queue " << doc.number_at("queue_depth") << "/"
      << config->number_at("queue_capacity") << "  inflight "
      << doc.number_at("inflight") << "  batches "
      << stats->number_at("batches") << "  slow "
      << stats->number_at("slow_requests") << "\n";

  const obs::JsonValue* conns = doc.find("connections");
  if (conns != nullptr && conns->is_array()) {
    std::snprintf(line, sizeof(line), "connections %zu  fairness %.3f\n",
                  conns->items.size(), doc.number_at("fairness", 1.0));
    out << line;
    for (const obs::JsonValue& conn : conns->items) {
      out << "  conn " << conn.number_at("id") << ": requests "
          << conn.number_at("requests") << "  responses "
          << conn.number_at("responses") << "\n";
    }
  }
  const obs::JsonValue* slow = doc.find("slow");
  if (slow != nullptr && slow->is_array() && !slow->items.empty()) {
    constexpr std::size_t kShown = 8;
    const std::size_t first =
        slow->items.size() > kShown ? slow->items.size() - kShown : 0;
    out << "slow log (" << slow->items.size() - first << " of "
        << slow->items.size() << " captured):\n";
    for (std::size_t i = first; i < slow->items.size(); ++i) {
      const obs::JsonValue& record = slow->items[i];
      std::snprintf(line, sizeof(line),
                    "  id %llu conn %.0f %s total %.0fus queue %.0fus "
                    "route %.0fus batch %.0f\n",
                    static_cast<unsigned long long>(
                        record.number_at("id")),
                    record.number_at("conn"),
                    std::string(record.string_at("type", "?")).c_str(),
                    record.number_at("total_us"),
                    record.number_at("queue_us"),
                    record.number_at("route_us"),
                    record.number_at("batch_size"));
      out << line;
    }
  }
  out.flush();
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string_view> args(argv + 1, argv + argc);
  if (args.empty() || has_flag(args, "--help")) {
    std::cout << "usage: dbn_top (--port=N | --port-file=PATH) "
                 "[--interval=MS] [--samples=N] [--once] "
                 "[--metrics-out=FILE] [--no-clear]\n";
    return args.empty() ? 1 : 0;
  }

  std::uint16_t port = 0;
  if (const auto v = flag_value(args, "--port")) {
    port = static_cast<std::uint16_t>(std::atoi(std::string(*v).c_str()));
  } else if (const auto path = flag_value(args, "--port-file")) {
    const auto resolved = wait_for_port_file(std::string(*path), 10000);
    if (!resolved) {
      std::cerr << "dbn top: no port file at " << *path << "\n";
      return 1;
    }
    port = *resolved;
  }
  if (port == 0) {
    std::cerr << "dbn top: need --port or --port-file\n";
    return 1;
  }

  const bool once = has_flag(args, "--once");
  const int interval_ms = static_cast<int>(std::atoi(
      std::string(flag_value(args, "--interval").value_or("1000")).c_str()));
  std::uint64_t samples = static_cast<std::uint64_t>(std::atoll(
      std::string(flag_value(args, "--samples").value_or("0")).c_str()));
  if (once) {
    samples = 1;
  }
  const std::string metrics_out =
      std::string(flag_value(args, "--metrics-out").value_or(""));
  const bool clear = !once && !has_flag(args, "--no-clear") &&
                     ::isatty(STDOUT_FILENO) != 0;

  const int fd = connect_tcp(port);
  if (fd < 0) {
    std::cerr << "dbn top: cannot connect to 127.0.0.1:" << port << "\n";
    return 1;
  }

  FrameReader reader;
  std::optional<ProbeState> previous;
  std::deque<double> qps_history;
  std::uint64_t id = 1;
  int rc = 0;
  for (std::uint64_t taken = 0; samples == 0 || taken < samples; ++taken) {
    const auto response =
        round_trip(fd, reader, RequestType::Introspect, id++, 5000);
    if (!response || response->status != Status::Ok) {
      std::cerr << "dbn top: probe failed ("
                << (response ? status_name(response->status)
                             : std::string_view("no response"))
                << ")\n";
      rc = 1;
      break;
    }
    auto doc = obs::json_parse(response->body);
    if (!doc || doc->string_at("schema") != schema::kIntrospect) {
      std::cerr << "dbn top: probe body is not " << schema::kIntrospect
                << "\n";
      rc = 1;
      break;
    }
    ProbeState state;
    state.doc = std::move(*doc);
    state.taken = Clock::now();
    if (const obs::JsonValue* metrics = state.doc.find("metrics")) {
      state.latency = find_histogram(*metrics, "serve.latency_us");
    }
    if (previous) {
      const double dt_s =
          std::chrono::duration<double>(state.taken - previous->taken)
              .count();
      const double delta =
          state.doc.find("stats")->number_at("requests") -
          previous->doc.find("stats")->number_at("requests");
      qps_history.push_back(rate_per_s(delta, dt_s));
      while (qps_history.size() > 48) {
        qps_history.pop_front();
      }
    }
    render(std::cout, state, previous ? &*previous : nullptr, qps_history,
           clear);
    if (!metrics_out.empty()) {
      const auto stats_response =
          round_trip(fd, reader, RequestType::Stats, id++, 5000);
      if (stats_response && stats_response->status == Status::Ok) {
        std::ofstream out(metrics_out, std::ios::binary);
        out << stats_response->body;
      } else {
        std::cerr << "dbn top: stats probe failed\n";
        rc = 1;
        break;
      }
    }
    previous = std::move(state);
    if (samples == 0 || taken + 1 < samples) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  }
  ::close(fd);
  return rc;
}
