// dbn — command-line front end to the debruijn-routing library.
//
//   dbn route <d> <k> <X> <Y> [--algorithm=uni|mp|st|sam|bfs] [--wildcards]
//   dbn distance <d> <k> <X> <Y>
//   dbn graph <d> <k> [--directed]
//   dbn export-dot <d> <k> [--directed] [--ranks]
//   dbn stats <d> <k>
//   dbn broadcast <d> <k> <root> [--single-port]
//   dbn simulate <d> <k> [--rate=R] [--duration=T]
//                [--policy=zero|random|lq|greedy|deflect|layer]
//   dbn serve <d> <k> [--stdio | --port=N] [--port-file=PATH] [--backend=...]
//
// Every command also accepts --trace-out=FILE (route spans / simulator
// events as trace/1 NDJSON, or Chrome trace_event JSON when FILE ends in
// ".json"), --metrics-out=FILE (metrics/1 snapshot of the global registry
// after the run), and --metrics-ts-out=FILE/--metrics-interval=MS (a
// metricsts/1 NDJSON timeline sampled in the background — the serve
// command's flight recorder). `dbn serve` additionally takes
// --trace-sample=N (trace 1-in-N requests end to end, deterministic in
// --trace-seed) and --slow-us=T (slow-request log threshold).
//
// Words are digit strings, e.g. "0110" for (0,1,1,0); digits above 9 are
// not supported on the command line (the library itself has no such
// limit). Exit status 0 on success, 1 on usage errors.
#include <atomic>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/average_distance.hpp"
#include "core/bfs_router.hpp"
#include "core/distance.hpp"
#include "core/routers.hpp"
#include "debruijn/bfs.hpp"
#include "debruijn/dot.hpp"
#include "debruijn/kautz_routing.hpp"
#include "debruijn/sequence.hpp"
#include "net/broadcast.hpp"
#include "net/load_stats.hpp"
#include "net/simulator.hpp"
#include "net/traffic.hpp"
#include "obs_flags.hpp"
#include "serve/io.hpp"
#include "serve/server.hpp"

namespace {

using namespace dbn;

void usage(std::ostream& out) {
  out << "usage:\n"
         "  dbn route <d> <k> <X> <Y> [--algorithm=uni|mp|st|sam|bfs] "
         "[--wildcards]\n"
         "  dbn distance <d> <k> <X> <Y>\n"
         "  dbn graph <d> <k> [--directed]\n"
         "  dbn export-dot <d> <k> [--directed] [--ranks]\n"
         "  dbn stats <d> <k>\n"
         "  dbn broadcast <d> <k> <root> [--single-port]\n"
         "  dbn sequence <d> <n> [--method=fkm|euler|greedy]\n"
         "  dbn kautz <d> <k> [<X> <Y>]\n"
         "  dbn simulate <d> <k> [--rate=R] [--duration=T]\n"
         "               [--policy=zero|random|lq|greedy|deflect|layer]\n"
         "  dbn serve <d> <k> [--stdio | --port=N] [--port-file=PATH]\n"
         "            [--backend=uni|bidi|st|table] [--threads=N] "
         "[--queue=N]\n"
         "            [--batch=N] [--cache=N] [--wildcards]\n"
         "            [--trace-sample=N] [--trace-seed=S] [--slow-us=T]\n"
         "all commands accept --trace-out=FILE, --metrics-out=FILE,\n"
         "  --metrics-ts-out=FILE and --metrics-interval=MS\n"
         "words are digit strings, e.g. 0110\n";
}

std::optional<std::string_view> flag_value(
    const std::vector<std::string_view>& args, std::string_view name) {
  const std::string prefix = std::string(name) + "=";
  for (const std::string_view a : args) {
    if (a.starts_with(prefix)) {
      return a.substr(prefix.size());
    }
  }
  return std::nullopt;
}

bool has_flag(const std::vector<std::string_view>& args,
              std::string_view name) {
  for (const std::string_view a : args) {
    if (a == name) {
      return true;
    }
  }
  return false;
}

Word parse_word(std::uint32_t d, std::size_t k, std::string_view text) {
  DBN_REQUIRE(text.size() == k, "word has wrong length for this network");
  std::vector<Digit> digits;
  digits.reserve(text.size());
  for (const char c : text) {
    DBN_REQUIRE(c >= '0' && c <= '9', "word digits must be 0-9");
    digits.push_back(static_cast<Digit>(c - '0'));
  }
  return Word(d, std::move(digits));
}

int cmd_route(std::uint32_t d, std::size_t k,
              const std::vector<std::string_view>& args) {
  DBN_REQUIRE(args.size() >= 2, "route needs <X> and <Y>");
  const Word x = parse_word(d, k, args[0]);
  const Word y = parse_word(d, k, args[1]);
  const std::string algorithm =
      std::string(flag_value(args, "--algorithm").value_or("st"));
  const WildcardMode mode = has_flag(args, "--wildcards")
                                ? WildcardMode::Wildcards
                                : WildcardMode::Concrete;
  RoutingPath path;
  if (algorithm == "uni") {
    path = route_unidirectional(x, y);
  } else if (algorithm == "mp") {
    path = route_bidirectional_mp(x, y, mode);
  } else if (algorithm == "st") {
    path = route_bidirectional_suffix_tree(x, y, mode);
  } else if (algorithm == "sam") {
    path = route_bidirectional_suffix_automaton(x, y, mode);
  } else if (algorithm == "bfs") {
    const DeBruijnGraph g(d, k, Orientation::Undirected);
    path = route_bfs(g, x, y);
  } else {
    std::cerr << "unknown algorithm: " << algorithm << "\n";
    return 1;
  }
  std::cout << "route " << x.to_string() << " -> " << y.to_string() << " ["
            << algorithm << "]\n"
            << "path   " << path.to_string() << "\n"
            << "length " << path.length() << "\n";
  // Show the walk.
  Word at = x;
  std::cout << "walk   " << at.to_string();
  for (const Hop& h : path.hops()) {
    const Digit digit = h.is_wildcard() ? 0 : h.digit;
    at = h.type == ShiftType::Left ? at.left_shift(digit)
                                   : at.right_shift(digit);
    std::cout << " -> " << at.to_string();
  }
  std::cout << (path.has_wildcards() ? "   (wildcards resolved to 0)\n"
                                     : "\n");
  return 0;
}

int cmd_distance(std::uint32_t d, std::size_t k,
                 const std::vector<std::string_view>& args) {
  DBN_REQUIRE(args.size() >= 2, "distance needs <X> and <Y>");
  const Word x = parse_word(d, k, args[0]);
  const Word y = parse_word(d, k, args[1]);
  std::cout << "directed   D(X,Y) = " << directed_distance(x, y) << "\n"
            << "directed   D(Y,X) = " << directed_distance(y, x) << "\n"
            << "undirected D(X,Y) = " << undirected_distance(x, y) << "\n";
  return 0;
}

int cmd_graph(std::uint32_t d, std::size_t k,
              const std::vector<std::string_view>& args) {
  const Orientation o = has_flag(args, "--directed")
                            ? Orientation::Directed
                            : Orientation::Undirected;
  const DeBruijnGraph g(d, k, o);
  DBN_REQUIRE(g.vertex_count() <= 4096, "graph too large to print");
  for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
    std::cout << g.word(v).to_string() << " ->";
    for (const std::uint64_t w : g.neighbors(v)) {
      std::cout << " " << g.word(w).to_string();
    }
    std::cout << "\n";
  }
  return 0;
}

int cmd_export_dot(std::uint32_t d, std::size_t k,
                   const std::vector<std::string_view>& args) {
  const Orientation o = has_flag(args, "--directed")
                            ? Orientation::Directed
                            : Orientation::Undirected;
  const DeBruijnGraph g(d, k, o);
  std::cout << to_dot(g, /*word_labels=*/!has_flag(args, "--ranks"));
  return 0;
}

int cmd_broadcast(std::uint32_t d, std::size_t k,
                  const std::vector<std::string_view>& args) {
  DBN_REQUIRE(!args.empty(), "broadcast needs a <root> word");
  const Word root = parse_word(d, k, args[0]);
  const DeBruijnGraph g(d, k, Orientation::Undirected);
  const net::BroadcastTree tree = net::build_broadcast_tree(g, root.rank());
  const net::PortModel model = has_flag(args, "--single-port")
                                   ? net::PortModel::SinglePort
                                   : net::PortModel::AllPort;
  const net::BroadcastSchedule sched = net::schedule_broadcast(tree, model);
  std::cout << "broadcast from " << root.to_string() << " over DN(" << d
            << "," << k << "): completes in " << sched.completion
            << " rounds (" << sched.messages << " messages, tree height "
            << tree.height << ")\n";
  std::vector<std::uint64_t> per_round(
      static_cast<std::size_t>(sched.completion) + 1, 0);
  for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
    ++per_round[static_cast<std::size_t>(sched.receive_round[v])];
  }
  for (std::size_t r = 0; r < per_round.size(); ++r) {
    std::cout << "  round " << r << ": " << per_round[r] << " site(s)\n";
  }
  return 0;
}

int cmd_sequence(std::uint32_t d, std::size_t n,
                 const std::vector<std::string_view>& args) {
  const std::string method =
      std::string(flag_value(args, "--method").value_or("fkm"));
  std::vector<Digit> seq;
  if (method == "fkm") {
    seq = de_bruijn_sequence(d, n);
  } else if (method == "euler") {
    seq = de_bruijn_sequence_hierholzer(d, n);
  } else if (method == "greedy") {
    seq = de_bruijn_sequence_greedy(d, n);
  } else {
    std::cerr << "unknown method: " << method << " (fkm|euler|greedy)\n";
    return 1;
  }
  std::cout << "B(" << d << "," << n << ") via " << method << " (length "
            << seq.size() << "):\n";
  for (const Digit x : seq) {
    std::cout << x;
  }
  std::cout << "\n";
  return 0;
}

int cmd_kautz(std::uint32_t d, std::size_t k,
              const std::vector<std::string_view>& args) {
  const KautzGraph g(d, k);
  if (args.size() >= 2) {
    const Word x = parse_word(d + 1, k, args[0]);
    const Word y = parse_word(d + 1, k, args[1]);
    const RoutingPath path = kautz_route(g, x, y);
    std::cout << "K(" << d << "," << k << ") route " << x.to_string()
              << " -> " << y.to_string() << ": " << path.to_string()
              << " (distance " << path.length() << ")\n";
    return 0;
  }
  std::cout << "Kautz K(" << d << "," << k << "): " << g.vertex_count()
            << " vertices (vs " << Word::vertex_count(d, k)
            << " for DG(" << d << "," << k << ")), out-degree " << d
            << ", diameter " << k << "\n";
  return 0;
}

int cmd_stats(std::uint32_t d, std::size_t k) {
  const std::uint64_t n = Word::vertex_count(d, k);
  Table table({"quantity", "value"});
  table.add_row({"vertices", std::to_string(n)});
  table.add_row({"diameter", std::to_string(k)});
  table.add_row({"directed avg distance (exact)",
                 Table::num(directed_average_distance_exact(d, k), 4)});
  table.add_row({"directed avg distance (paper eq. 5)",
                 Table::num(directed_average_distance_closed_form(d, k), 4)});
  if (n <= 4096) {
    table.add_row({"undirected avg distance (exact)",
                   Table::num(undirected_average_exact_bfs(d, k), 4)});
  } else {
    Rng rng(1);
    table.add_row({"undirected avg distance (sampled)",
                   Table::num(undirected_average_sampled(d, k, 50000, rng), 4)});
  }
  table.print(std::cout, "");
  return 0;
}

int cmd_simulate(std::uint32_t d, std::size_t k,
                 const std::vector<std::string_view>& args) {
  const double rate =
      std::atof(std::string(flag_value(args, "--rate").value_or("0.1")).c_str());
  const double duration = std::atof(
      std::string(flag_value(args, "--duration").value_or("100")).c_str());
  const std::string policy =
      std::string(flag_value(args, "--policy").value_or("random"));
  net::SimConfig config;
  config.radix = d;
  config.k = k;
  // zero|random|lq pick the wildcard policy of the paper's source-routed
  // scheme; greedy|deflect|layer switch the forwarding mode itself.
  if (policy == "greedy") {
    config.forwarding = net::ForwardingMode::HopByHop;
  } else if (policy == "deflect" || policy == "layer") {
    config.forwarding = net::ForwardingMode::Adaptive;
    config.adaptive_scoring = policy == "layer"
                                  ? net::AdaptiveScoring::LayerTable
                                  : net::AdaptiveScoring::Rescore;
  } else if (policy == "zero" || policy == "random" || policy == "lq") {
    config.wildcard_policy = policy == "zero" ? net::WildcardPolicy::Zero
                             : policy == "lq" ? net::WildcardPolicy::LeastQueue
                                              : net::WildcardPolicy::Random;
  } else {
    std::cerr << "unknown policy: " << policy
              << " (zero|random|lq|greedy|deflect|layer)\n";
    return 1;
  }
  net::Simulator sim(config);
  Rng rng(42);
  for (const net::Injection& inj :
       net::uniform_traffic(d, k, rate, duration, rng)) {
    const Word src = Word::from_rank(d, k, inj.source);
    const Word dst = Word::from_rank(d, k, inj.destination);
    sim.inject(inj.time,
               net::Message(net::ControlCode::Data, src, dst,
                            route_bidirectional_suffix_tree(
                                src, dst, WildcardMode::Wildcards)));
  }
  sim.run();
  net::record_sim_metrics(obs::MetricsRegistry::global(), sim);
  const net::SimStats& s = sim.stats();
  Table table({"metric", "value"});
  table.add_row({"injected", std::to_string(s.injected)});
  table.add_row({"delivered", std::to_string(s.delivered)});
  table.add_row({"mean hops", Table::num(s.mean_hops(), 3)});
  table.add_row({"mean latency", Table::num(s.mean_latency(), 3)});
  table.add_row({"p99 latency", Table::num(s.latency_percentile(99), 3)});
  table.add_row({"max queue", std::to_string(s.max_queue)});
  table.add_row({"link load Gini",
                 Table::num(net::gini_coefficient(sim.link_transmissions()), 3)});
  table.print(std::cout, "DN(" + std::to_string(d) + "," + std::to_string(k) +
                             ") simulation, policy " + policy);
  return 0;
}

// Set by the SIGTERM/SIGINT handler; serve_tcp's accept loop polls it.
std::atomic<bool> g_serve_stop{false};

void serve_stop_handler(int /*signum*/) {
  g_serve_stop.store(true, std::memory_order_release);
}

int cmd_serve(std::uint32_t d, std::size_t k,
              const std::vector<std::string_view>& args) {
  serve::ServeConfig config;
  config.d = d;
  config.k = k;
  const std::string backend =
      std::string(flag_value(args, "--backend").value_or("bidi"));
  if (backend == "uni") {
    config.backend = BatchBackend::Alg1Directed;
  } else if (backend == "bidi") {
    config.backend = BatchBackend::BidiEngine;
  } else if (backend == "st") {
    config.backend = BatchBackend::BidiSuffixTree;
  } else if (backend == "table") {
    config.backend = BatchBackend::CompiledTable;
  } else {
    std::cerr << "unknown backend: " << backend << " (uni|bidi|st|table)\n";
    return 1;
  }
  const auto num_flag = [&args](std::string_view name, std::size_t fallback) {
    const auto v = flag_value(args, name);
    return v ? static_cast<std::size_t>(std::atoll(std::string(*v).c_str()))
             : fallback;
  };
  config.threads = num_flag("--threads", config.threads);
  config.queue_capacity = num_flag("--queue", config.queue_capacity);
  config.max_batch = num_flag("--batch", config.max_batch);
  config.cache_entries = num_flag("--cache", config.cache_entries);
  config.trace_sample = num_flag("--trace-sample", 0);
  config.trace_seed = num_flag("--trace-seed", 0);
  config.slow_us = static_cast<double>(num_flag("--slow-us", 0));
  if (has_flag(args, "--wildcards")) {
    config.wildcard_mode = WildcardMode::Wildcards;
  }
  serve::RouteServer server(config);
  int rc = 0;
  if (has_flag(args, "--stdio")) {
    // stdin EOF is the drain signal in this mode; SIGTERM keeps its
    // default disposition (use the TCP mode for signal-driven drains).
    rc = serve::serve_stdio(server, std::cin, std::cout);
  } else {
    serve::TcpOptions tcp;
    tcp.port = static_cast<std::uint16_t>(num_flag("--port", 0));
    tcp.port_file = std::string(flag_value(args, "--port-file").value_or(""));
    g_serve_stop.store(false);
    std::signal(SIGTERM, serve_stop_handler);
    std::signal(SIGINT, serve_stop_handler);
    std::cerr << "dbn serve: DN(" << d << "," << k << "), backend " << backend
              << ", queue " << config.queue_capacity << ", batch "
              << config.max_batch << "\n";
    rc = serve::serve_tcp(server, tcp, g_serve_stop);
  }
  const serve::ServeStats s = server.stats();
  std::cerr << "dbn serve: drained; " << s.requests << " requests, "
            << s.responses_ok << " ok, " << s.rejected_overload
            << " overloaded, " << s.rejected_bad_request << " bad, "
            << s.rejected_draining << " draining, " << s.protocol_errors
            << " protocol errors, " << s.batches << " batches, "
            << s.slow_requests << " slow\n";
  for (const serve::SlowRecord& slow : server.slow_log().records()) {
    std::cerr << "dbn serve: slow request id=" << slow.id << " conn="
              << slow.conn << " total_us=" << slow.total_us
              << " queue_us=" << slow.queue_us << " route_us="
              << slow.route_us << " batch=" << slow.batch_size << "\n";
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string_view> args(argv + 1, argv + argc);
  if (args.size() < 3) {
    usage(args.empty() ? std::cout : std::cerr);
    return args.empty() ? 0 : 1;
  }
  dbn::tools::ObsWriter obs_writer;
  try {
    const std::string_view command = args[0];
    const auto d = static_cast<std::uint32_t>(
        std::atoi(std::string(args[1]).c_str()));
    const auto k =
        static_cast<std::size_t>(std::atoi(std::string(args[2]).c_str()));
    const std::vector<std::string_view> rest(args.begin() + 3, args.end());
    const std::string interval_text =
        std::string(flag_value(rest, "--metrics-interval").value_or("1000"));
    if (!obs_writer.setup(
            std::string(flag_value(rest, "--trace-out").value_or("")),
            std::string(flag_value(rest, "--metrics-out").value_or("")),
            std::string(flag_value(rest, "--metrics-ts-out").value_or("")),
            std::atof(interval_text.c_str()))) {
      return 1;
    }
    if (command == "route") {
      return cmd_route(d, k, rest);
    }
    if (command == "distance") {
      return cmd_distance(d, k, rest);
    }
    if (command == "graph") {
      return cmd_graph(d, k, rest);
    }
    if (command == "export-dot") {
      return cmd_export_dot(d, k, rest);
    }
    if (command == "broadcast") {
      return cmd_broadcast(d, k, rest);
    }
    if (command == "sequence") {
      return cmd_sequence(d, k, rest);
    }
    if (command == "kautz") {
      return cmd_kautz(d, k, rest);
    }
    if (command == "stats") {
      return cmd_stats(d, k);
    }
    if (command == "simulate") {
      return cmd_simulate(d, k, rest);
    }
    if (command == "serve") {
      return cmd_serve(d, k, rest);
    }
    std::cerr << "unknown command: " << command << "\n";
    usage(std::cerr);
    return 1;
  } catch (const dbn::ContractViolation& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
