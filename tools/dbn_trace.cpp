// dbn_trace — route one pair with tracing on and pretty-print the span tree.
//
//   dbn_trace <d> <k> <X> <Y> [--algorithm=engine|uni|mp|st|sam]
//             [--wildcards] [--trace-out=FILE] [--metrics-out=FILE]
//
// Routes X -> Y with a memory trace sink installed, then renders the
// recorded route span as an annotated tree: the span header (algorithm,
// shape, distance, the (s,t,theta) witness), followed by the hop events
// grouped into the paper's three-block decomposition — for a left-block
// route, L^(s-1) R^(k-theta) L^(k-t). Each hop line shows the shift kind,
// the digit shifted in, and the word reached.
//
// With --trace-out the same events are re-exported to FILE (trace/1
// NDJSON, or Chrome trace_event JSON when FILE ends in ".json");
// --metrics-out snapshots the global metrics registry.
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/contract.hpp"
#include "common/schema.hpp"
#include "core/route_engine.hpp"
#include "core/routers.hpp"
#include "debruijn/word.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace dbn;

void usage(std::ostream& out) {
  out << "usage:\n"
         "  dbn_trace <d> <k> <X> <Y> [--algorithm=engine|uni|mp|st|sam]\n"
         "            [--wildcards] [--trace-out=FILE] [--metrics-out=FILE]\n"
         "routes X -> Y with tracing enabled and prints the span tree;\n"
         "--trace-out writes "
      << dbn::schema::kTrace
      << " NDJSON (Chrome JSON if FILE ends in \".json\")\n";
}

std::optional<std::string_view> flag_value(
    const std::vector<std::string_view>& args, std::string_view name) {
  const std::string prefix = std::string(name) + "=";
  for (const std::string_view a : args) {
    if (a.starts_with(prefix)) {
      return a.substr(prefix.size());
    }
  }
  return std::nullopt;
}

bool has_flag(const std::vector<std::string_view>& args,
              std::string_view name) {
  for (const std::string_view a : args) {
    if (a == name) {
      return true;
    }
  }
  return false;
}

Word parse_word(std::uint32_t d, std::size_t k, std::string_view text) {
  DBN_REQUIRE(text.size() == k, "word has wrong length for this network");
  std::vector<Digit> digits;
  digits.reserve(text.size());
  for (const char c : text) {
    DBN_REQUIRE(c >= '0' && c <= '9', "word digits must be 0-9");
    digits.push_back(static_cast<Digit>(c - '0'));
  }
  return Word(d, std::move(digits));
}

const std::string* find_arg(const std::vector<obs::TraceArg>& args,
                            std::string_view key) {
  for (const obs::TraceArg& a : args) {
    if (a.key == key) {
      return &a.value;
    }
  }
  return nullptr;
}

std::string arg_or(const std::vector<obs::TraceArg>& args,
                   std::string_view key, std::string fallback) {
  const std::string* v = find_arg(args, key);
  return v != nullptr ? *v : fallback;
}

/// Reconstructs the walk from the hop instants so each hop line can show
/// the word reached (wildcard digits resolve to 0, as in `dbn route`).
Word apply_hop(const Word& at, const std::vector<obs::TraceArg>& hop_args) {
  const std::string shift = arg_or(hop_args, "shift", "L");
  const std::string digit_text = arg_or(hop_args, "digit", "0");
  const Digit digit = digit_text == "*"
                          ? Digit{0}
                          : static_cast<Digit>(std::stoul(digit_text));
  return shift == "L" ? at.left_shift(digit) : at.right_shift(digit);
}

/// Pretty-prints one route span: header from the End event's args, hops
/// grouped by their `block` argument.
void print_route_span(std::uint32_t d, std::size_t k, const Word& x,
                      const obs::TraceEvent& end,
                      const std::vector<const obs::TraceEvent*>& hops) {
  std::cout << "span route  " << arg_or(end.args, "x", "?") << " -> "
            << arg_or(end.args, "y", "?") << "  in DG(" << d << "," << k
            << ")  [" << arg_or(end.args, "algo", "?") << "]\n";
  std::cout << "|  shape    " << arg_or(end.args, "shape", "?")
            << "   distance " << arg_or(end.args, "distance", "?") << "\n";
  if (const std::string* witness = find_arg(end.args, "witness")) {
    std::cout << "|  witness  " << *witness << "   (s=" << arg_or(end.args, "s", "?")
              << ", t=" << arg_or(end.args, "t", "?")
              << ", theta=" << arg_or(end.args, "theta", "?") << ")\n";
  }
  std::cout << "|  blocks   " << arg_or(end.args, "blocks", "(empty)") << "\n";

  Word at = x;
  std::string current_block;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    const obs::TraceEvent& hop = *hops[i];
    const std::string block = arg_or(hop.args, "block", "?") + "  " +
                              arg_or(hop.args, "role", "?");
    if (block != current_block) {
      current_block = block;
      std::cout << "+- block " << block << "\n";
    }
    at = apply_hop(at, hop.args);
    std::cout << "|    hop " << static_cast<std::uint64_t>(hop.ts) << "  "
              << arg_or(hop.args, "shift", "?") << " "
              << arg_or(hop.args, "digit", "?") << "  -> " << at.to_string()
              << "\n";
  }
  std::cout << "'- end  reached " << at.to_string() << " in " << hops.size()
            << " hop(s)\n";
}

/// Re-exports the captured events to FILE: Chrome trace_event JSON when the
/// name ends in ".json", trace/1 NDJSON otherwise.
bool export_events(const std::string& path,
                   const std::vector<obs::TraceEvent>& events) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "error: cannot open trace output " << path << "\n";
    return false;
  }
  std::unique_ptr<obs::TraceSink> sink;
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0) {
    sink = std::make_unique<obs::ChromeTraceSink>(out);
  } else {
    sink = std::make_unique<obs::NdjsonTraceSink>(out);
  }
  for (const obs::TraceEvent& event : events) {
    sink->emit(event);
  }
  return true;
}

int run(const std::vector<std::string_view>& args) {
  const auto d =
      static_cast<std::uint32_t>(std::atoi(std::string(args[0]).c_str()));
  const auto k =
      static_cast<std::size_t>(std::atoi(std::string(args[1]).c_str()));
  DBN_REQUIRE(d >= 2, "radix must be at least 2");
  DBN_REQUIRE(k >= 1, "diameter must be at least 1");
  const Word x = parse_word(d, k, args[2]);
  const Word y = parse_word(d, k, args[3]);
  const std::vector<std::string_view> rest(args.begin() + 4, args.end());
  const std::string algorithm =
      std::string(flag_value(rest, "--algorithm").value_or("engine"));
  const WildcardMode mode = has_flag(rest, "--wildcards")
                                ? WildcardMode::Wildcards
                                : WildcardMode::Concrete;

  obs::MemoryTraceSink memory;
  obs::set_trace_sink(&memory);
  RoutingPath path;
  if (algorithm == "engine") {
    BidirectionalRouteEngine engine(k);
    engine.route_into(x, y, mode, path);
  } else if (algorithm == "uni") {
    path = route_unidirectional(x, y);
  } else if (algorithm == "mp") {
    path = route_bidirectional_mp(x, y, mode);
  } else if (algorithm == "st") {
    path = route_bidirectional_suffix_tree(x, y, mode);
  } else if (algorithm == "sam") {
    path = route_bidirectional_suffix_automaton(x, y, mode);
  } else {
    obs::set_trace_sink(nullptr);
    std::cerr << "unknown algorithm: " << algorithm
              << " (engine|uni|mp|st|sam)\n";
    return 1;
  }
  obs::set_trace_sink(nullptr);

  const std::vector<obs::TraceEvent> events = memory.events();

  // Group: for each route span, its End event carries the args and its
  // hop instants carry the block decomposition.
  bool printed = false;
  for (const obs::TraceEvent& event : events) {
    if (event.phase != obs::TracePhase::End || event.name != "route") {
      continue;
    }
    std::vector<const obs::TraceEvent*> hops;
    for (const obs::TraceEvent& child : events) {
      if (child.phase == obs::TracePhase::Instant &&
          child.span == event.span && child.name == "hop") {
        hops.push_back(&child);
      }
    }
    print_route_span(d, k, x, event, hops);
    printed = true;
  }
  if (!printed) {
    std::cout << "no route span recorded (" << events.size() << " events)\n";
  }
  std::cout << "path   " << path.to_string() << "\n"
            << "length " << path.length() << "\n";

  const std::string trace_out =
      std::string(flag_value(rest, "--trace-out").value_or(""));
  if (!trace_out.empty()) {
    if (!export_events(trace_out, events)) {
      return 1;
    }
    std::cout << "trace written to " << trace_out << " (" << events.size()
              << " events)\n";
  }
  const std::string metrics_out =
      std::string(flag_value(rest, "--metrics-out").value_or(""));
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out, std::ios::binary);
    if (!out) {
      std::cerr << "error: cannot open metrics output " << metrics_out << "\n";
      return 1;
    }
    out << obs::MetricsRegistry::global().snapshot().to_json();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string_view> args(argv + 1, argv + argc);
  if (args.size() < 4) {
    usage(args.empty() ? std::cout : std::cerr);
    return args.empty() ? 0 : 1;
  }
  try {
    return run(args);
  } catch (const dbn::ContractViolation& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
