// Shared --trace-out / --metrics-out wiring for the CLI tools (dbn,
// dbn_trace, dbn_bench, dbn_chaos).
//
//   --trace-out=FILE    install a process-global trace sink writing to FILE:
//                       Chrome trace_event JSON when FILE ends in ".json"
//                       (load in Perfetto / chrome://tracing), trace/1
//                       NDJSON otherwise.
//   --metrics-out=FILE  after the run, snapshot the global MetricsRegistry
//                       to FILE as a metrics/1 JSON document.
//
// Plus the time-series recorder (the serving plane's flight recorder, but
// available to every tool):
//
//   --metrics-ts-out=FILE  run a background sampler for the duration of
//                          the process and flush a metricsts/1 NDJSON
//                          timeline (periodic registry deltas) to FILE.
//   --metrics-interval=MS  sampling period in milliseconds (default 1000).
//
// Header-only; each tool owns one ObsWriter for the duration of main().
#pragma once

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "obs/chrome_trace.hpp"
#include "obs/live.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dbn::tools {

class ObsWriter {
 public:
  ObsWriter() = default;
  ObsWriter(const ObsWriter&) = delete;
  ObsWriter& operator=(const ObsWriter&) = delete;
  ~ObsWriter() { finish(); }

  /// Opens the requested outputs and installs the trace sink. Empty
  /// strings mean "not requested". Returns false (with a message on
  /// stderr) if a file cannot be opened.
  bool setup(const std::string& trace_out, const std::string& metrics_out,
             const std::string& metrics_ts_out = "",
             double metrics_interval_ms = 1000.0) {
    metrics_path_ = metrics_out;
    if (!metrics_ts_out.empty()) {
      // Open now so a bad path fails before the run, not after it.
      timeline_file_.open(metrics_ts_out, std::ios::binary);
      if (!timeline_file_) {
        std::cerr << "error: cannot open metrics timeline output "
                  << metrics_ts_out << "\n";
        return false;
      }
      obs::MetricsTimelineOptions options;
      options.interval = std::chrono::microseconds(
          static_cast<long long>(metrics_interval_ms * 1000.0));
      timeline_ = std::make_unique<obs::MetricsTimeline>(options);
      timeline_->start();
    }
    if (!trace_out.empty()) {
      trace_file_.open(trace_out, std::ios::binary);
      if (!trace_file_) {
        std::cerr << "error: cannot open trace output " << trace_out << "\n";
        return false;
      }
      if (trace_out.size() >= 5 &&
          trace_out.compare(trace_out.size() - 5, 5, ".json") == 0) {
        sink_ = std::make_unique<obs::ChromeTraceSink>(trace_file_);
      } else {
        sink_ = std::make_unique<obs::NdjsonTraceSink>(trace_file_);
      }
      obs::set_trace_sink(sink_.get());
    }
    return true;
  }

  /// Uninstalls the sink, flushes the trace file, and writes the metrics
  /// snapshot. Safe to call more than once.
  void finish() {
    if (sink_) {
      obs::set_trace_sink(nullptr);
      sink_.reset();  // ChromeTraceSink writes its document on destruction
      trace_file_.close();
    }
    if (timeline_) {
      timeline_->stop();
      timeline_->sample_now();  // final post-quiesce cut
      timeline_->flush(timeline_file_);
      timeline_.reset();
      timeline_file_.close();
    }
    if (!metrics_path_.empty()) {
      std::ofstream out(metrics_path_, std::ios::binary);
      if (!out) {
        std::cerr << "error: cannot open metrics output " << metrics_path_
                  << "\n";
      } else {
        out << obs::MetricsRegistry::global().snapshot().to_json();
      }
      metrics_path_.clear();
    }
  }

 private:
  std::ofstream trace_file_;
  std::ofstream timeline_file_;
  std::unique_ptr<obs::TraceSink> sink_;
  std::unique_ptr<obs::MetricsTimeline> timeline_;
  std::string metrics_path_;
};

}  // namespace dbn::tools
