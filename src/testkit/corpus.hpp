// Corpus cases: disagreements (and historically interesting pairs) in a
// one-line text format, checked into tests/corpus/ and replayed by both
// test_conformance_corpus.cpp and `dbn_fuzz --replay`.
//
// Format, one case per line (blank lines and '#' comments skipped):
//
//   <family> <d> <k> <X> <Y>
//
// where <family> is directed | undirected | kautz, <d> is the de Bruijn
// radix (Kautz degree for kautz lines), and the words are digit strings
// over 0-9a-z (digit values 0..35). Kautz words are over the d+1-letter
// alphabet. Example: "undirected 2 4 0110 1001".
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "debruijn/word.hpp"
#include "testkit/oracle.hpp"

namespace dbn::testkit {

struct CorpusCase {
  NetworkFamily family = NetworkFamily::DeBruijnUndirected;
  std::uint32_t d = 2;  // de Bruijn radix / Kautz degree
  std::size_t k = 1;
  std::vector<Digit> x;
  std::vector<Digit> y;

  /// Word radix: d, or d+1 for Kautz cases.
  std::uint32_t word_radix() const {
    return family == NetworkFamily::Kautz ? d + 1 : d;
  }
  Word word_x() const { return Word(word_radix(), x); }
  Word word_y() const { return Word(word_radix(), y); }

  /// The one-line serialization, parse()'s inverse.
  std::string to_line() const;

  /// Parses one line; throws ContractViolation on malformed input.
  static CorpusCase parse(std::string_view line);
};

/// Digits of w as a 0-9a-z string; requires radix <= 36.
std::string word_to_digit_string(const Word& w);

/// All cases of one corpus file, in file order. Throws if the file cannot
/// be opened or a non-comment line fails to parse.
std::vector<CorpusCase> load_corpus_file(const std::string& path);

/// The *.case files directly under `dir`, sorted by name. Throws if `dir`
/// is not a directory.
std::vector<std::string> list_corpus_files(const std::string& dir);

}  // namespace dbn::testkit
