#include "testkit/shrinker.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/contract.hpp"
#include "testkit/corpus.hpp"

namespace dbn::testkit {

namespace {

std::vector<Digit> digits_of(const Word& w) {
  std::vector<Digit> out(w.length());
  for (std::size_t i = 0; i < w.length(); ++i) {
    out[i] = w.digit(i);
  }
  return out;
}

struct PairState {
  std::uint32_t radix;
  std::vector<Digit> x;
  std::vector<Digit> y;

  Word word_x() const { return Word(radix, x); }
  Word word_y() const { return Word(radix, y); }
};

bool try_accept(PairState& state, const PairState& candidate,
                const FailPredicate& still_fails, ShrinkResult& result) {
  ++result.candidates_tried;
  if (!still_fails(candidate.word_x(), candidate.word_y())) {
    return false;
  }
  state = candidate;
  ++result.reductions;
  return true;
}

// Pass 1: drop one digit position from both words. Returns true if any
// drop was accepted (and keeps dropping greedily from the same state).
bool shrink_length(PairState& state, const FailPredicate& still_fails,
                   ShrinkResult& result) {
  bool progressed = false;
  bool again = true;
  while (again && state.x.size() > 1) {
    again = false;
    for (std::size_t i = 0; i < state.x.size(); ++i) {
      PairState candidate = state;
      candidate.x.erase(candidate.x.begin() + static_cast<std::ptrdiff_t>(i));
      candidate.y.erase(candidate.y.begin() + static_cast<std::ptrdiff_t>(i));
      if (try_accept(state, candidate, still_fails, result)) {
        progressed = again = true;
        break;
      }
    }
  }
  return progressed;
}

// Pass 2: lower digits — each position to 0, then by one.
bool shrink_digits(PairState& state, const FailPredicate& still_fails,
                   ShrinkResult& result) {
  bool progressed = false;
  for (std::vector<Digit> PairState::* side : {&PairState::x, &PairState::y}) {
    for (std::size_t i = 0; i < (state.*side).size(); ++i) {
      while ((state.*side)[i] > 0) {
        PairState candidate = state;
        (candidate.*side)[i] = 0;
        if (!try_accept(state, candidate, still_fails, result)) {
          candidate = state;
          --(candidate.*side)[i];
          if (!try_accept(state, candidate, still_fails, result)) {
            break;
          }
        }
        progressed = true;
      }
    }
  }
  return progressed;
}

// Pass 3: shrink the alphabet to the digits actually used.
bool shrink_radix(PairState& state, const FailPredicate& still_fails,
                  ShrinkResult& result) {
  Digit max_digit = 0;
  for (const auto* side : {&state.x, &state.y}) {
    for (const Digit v : *side) {
      max_digit = std::max(max_digit, v);
    }
  }
  const std::uint32_t smallest = max_digit + 1;
  bool progressed = false;
  while (state.radix > smallest) {
    PairState candidate = state;
    --candidate.radix;
    if (!try_accept(state, candidate, still_fails, result)) {
      break;
    }
    progressed = true;
  }
  return progressed;
}

}  // namespace

ShrinkResult shrink_pair(Word x, Word y, const FailPredicate& still_fails) {
  DBN_REQUIRE(x.radix() == y.radix() && x.length() == y.length(),
              "shrink_pair needs words of equal radix and length");
  DBN_REQUIRE(still_fails(x, y), "shrink_pair needs a failing pair to start");
  PairState state{x.radix(), digits_of(x), digits_of(y)};
  ShrinkResult result{x, y, 0, 0};
  bool progressed = true;
  while (progressed) {
    progressed = shrink_length(state, still_fails, result);
    progressed = shrink_digits(state, still_fails, result) || progressed;
    progressed = shrink_radix(state, still_fails, result) || progressed;
  }
  result.x = state.word_x();
  result.y = state.word_y();
  return result;
}

std::string regression_snippet(const ShrinkResult& result,
                               std::string_view label) {
  const Word& x = result.x;
  const Word& y = result.y;
  std::string title(label);
  if (!title.empty()) {
    title[0] = static_cast<char>(
        std::toupper(static_cast<unsigned char>(title[0])));
  }
  // Corpus lines carry the Kautz degree, one below the word radix.
  const std::uint32_t corpus_d =
      label == "kautz" ? x.radix() - 1 : x.radix();
  std::ostringstream out;
  out << "// dbn_fuzz reproducer (corpus line: \"" << label << ' ' << corpus_d
      << ' ' << x.length() << ' ' << word_to_digit_string(x) << ' '
      << word_to_digit_string(y) << "\")\n";
  out << "TEST(ConformanceRegression, " << title << "_D" << x.radix() << "_K"
      << x.length() << "_X" << word_to_digit_string(x) << "_Y"
      << word_to_digit_string(y) << ") {\n";
  out << "  const Word x(" << x.radix() << ", {";
  for (std::size_t i = 0; i < x.length(); ++i) {
    out << (i ? ", " : "") << x.digit(i);
  }
  out << "});\n  const Word y(" << y.radix() << ", {";
  for (std::size_t i = 0; i < y.length(); ++i) {
    out << (i ? ", " : "") << y.digit(i);
  }
  out << "});\n";
  if (label == "kautz") {
    out << "  const auto set = testkit::OracleSet::kautz(x.radix() - 1, "
           "x.length());\n";
  } else {
    out << "  const auto set = testkit::OracleSet::debruijn(\n"
           "      x.radix(), x.length(), Orientation::"
        << (label == "directed" ? "Directed" : "Undirected") << ");\n";
  }
  out << "  const auto report = testkit::Conformance(set).check(x, y);\n"
         "  EXPECT_TRUE(report.ok()) << report.to_string();\n"
         "}\n";
  return out.str();
}

}  // namespace dbn::testkit
