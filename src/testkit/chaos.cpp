#include "testkit/chaos.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <limits>
#include <map>
#include <sstream>

#include "common/contract.hpp"
#include "common/schema.hpp"
#include "core/routers.hpp"
#include "net/fault.hpp"
#include "net/load_stats.hpp"
#include "obs/metrics.hpp"

namespace dbn::testkit {

namespace {

constexpr std::string_view kHeader = schema::kChaos;

std::string format_double(double value) {
  std::ostringstream out;
  out << std::setprecision(17) << value;
  return out.str();
}

std::uint64_t pow_u64(std::uint64_t base, std::size_t exp) {
  std::uint64_t result = 1;
  for (std::size_t i = 0; i < exp; ++i) {
    result *= base;
  }
  return result;
}

}  // namespace

std::string_view chaos_policy_name(ChaosPolicy policy) {
  switch (policy) {
    case ChaosPolicy::SourceRouted:
      return "source";
    case ChaosPolicy::Greedy:
      return "greedy";
    case ChaosPolicy::Deflect:
      return "deflect";
    case ChaosPolicy::Layer:
      return "layer";
  }
  return "?";
}

std::optional<ChaosPolicy> chaos_policy_from_name(std::string_view name) {
  if (name == "source") {
    return ChaosPolicy::SourceRouted;
  }
  if (name == "greedy") {
    return ChaosPolicy::Greedy;
  }
  if (name == "deflect") {
    return ChaosPolicy::Deflect;
  }
  if (name == "layer") {
    return ChaosPolicy::Layer;
  }
  return std::nullopt;
}

std::uint64_t ChaosScenario::vertex_count() const {
  return pow_u64(d, k);
}

std::string ChaosScenario::to_text() const {
  std::ostringstream out;
  out << kHeader << "\n";
  out << "net " << d << " " << k << "\n";
  out << "seed " << seed << "\n";
  out << "delay " << format_double(link_delay) << "\n";
  out << "cap " << queue_capacity << "\n";
  if (policy != ChaosPolicy::SourceRouted) {
    // Omitted when source-routed so pre-policy scenario files round-trip
    // byte for byte.
    out << "policy " << chaos_policy_name(policy) << "\n";
  }
  out << "reliable " << format_double(reliable.timeout) << " "
      << reliable.max_attempts << " " << format_double(reliable.backoff) << " "
      << format_double(reliable.jitter) << " "
      << format_double(reliable.max_timeout) << " " << reliable.jitter_seed
      << "\n";
  for (const net::Transfer& t : transfers) {
    out << "transfer " << t.source << " " << t.destination << "\n";
  }
  for (const net::FaultEvent& e : schedule.events()) {
    switch (e.kind) {
      case net::FaultEventKind::SiteCrash:
        out << "site-crash " << format_double(e.time) << " " << e.a << "\n";
        break;
      case net::FaultEventKind::SiteRecover:
        out << "site-recover " << format_double(e.time) << " " << e.a << "\n";
        break;
      case net::FaultEventKind::LinkCrash:
        out << "link-crash " << format_double(e.time) << " " << e.a << " "
            << e.b << "\n";
        break;
      case net::FaultEventKind::LinkRecover:
        out << "link-recover " << format_double(e.time) << " " << e.a << " "
            << e.b << "\n";
        break;
    }
  }
  return out.str();
}

ChaosScenario ChaosScenario::parse(std::string_view text) {
  ChaosScenario s;
  s.transfers.clear();
  bool saw_header = false;
  bool saw_net = false;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (!saw_header) {
      DBN_REQUIRE(tag == kHeader, "chaos scenario must start with '" +
                                      std::string(kHeader) + "'");
      saw_header = true;
      continue;
    }
    const auto need = [&fields, &line](auto&... values) {
      (fields >> ... >> values);
      DBN_REQUIRE(!fields.fail(), "malformed chaos line: " + line);
    };
    if (tag == "net") {
      need(s.d, s.k);
      DBN_REQUIRE(s.d >= 1 && s.k >= 1, "chaos net needs d >= 1 and k >= 1");
      // Ranks are 64-bit, so any d >= 2 network with k > 64 is already
      // unrepresentable; the bound also keeps vertex_count()'s k-step
      // multiply loop trivial for adversarial text (found by fuzzing:
      // "net 2 99999999999" used to stall in pow_u64 before failing).
      DBN_REQUIRE(s.k <= 64, "chaos k is bounded at 64 (64-bit ranks)");
      saw_net = true;
    } else if (tag == "seed") {
      need(s.seed);
    } else if (tag == "delay") {
      need(s.link_delay);
    } else if (tag == "cap") {
      need(s.queue_capacity);
    } else if (tag == "policy") {
      std::string name;
      need(name);
      const std::optional<ChaosPolicy> policy = chaos_policy_from_name(name);
      DBN_REQUIRE(policy.has_value(), "unknown chaos policy: " + name);
      s.policy = *policy;
    } else if (tag == "reliable") {
      need(s.reliable.timeout, s.reliable.max_attempts, s.reliable.backoff,
           s.reliable.jitter, s.reliable.max_timeout, s.reliable.jitter_seed);
    } else if (tag == "transfer") {
      net::Transfer t;
      need(t.source, t.destination);
      s.transfers.push_back(t);
    } else if (tag == "site-crash" || tag == "site-recover") {
      double time = 0.0;
      std::uint64_t rank = 0;
      need(time, rank);
      if (tag == "site-crash") {
        s.schedule.site_crash(time, rank);
      } else {
        s.schedule.site_recover(time, rank);
      }
    } else if (tag == "link-crash" || tag == "link-recover") {
      double time = 0.0;
      std::uint64_t from = 0;
      std::uint64_t to = 0;
      need(time, from, to);
      if (tag == "link-crash") {
        s.schedule.link_crash(time, from, to);
      } else {
        s.schedule.link_recover(time, from, to);
      }
    } else {
      DBN_REQUIRE(false, "unknown chaos line tag: " + tag);
    }
  }
  DBN_REQUIRE(saw_header, "empty chaos scenario (missing '" +
                              std::string(kHeader) + "' header)");
  DBN_REQUIRE(saw_net, "chaos scenario missing the 'net d k' line");
  const std::uint64_t n = s.vertex_count();
  for (const net::Transfer& t : s.transfers) {
    DBN_REQUIRE(t.source < n && t.destination < n,
                "chaos transfer rank outside the network");
  }
  for (const net::FaultEvent& e : s.schedule.events()) {
    DBN_REQUIRE(e.a < n && e.b < n, "chaos fault rank outside the network");
  }
  return s;
}

namespace {

/// The analytic quiescence bound: the last attempt fires no later than the
/// sum of maximal backoff windows, and the drain is bounded by worst-case
/// FIFO serialization of every transmission the run can make.
double clock_budget(const ChaosScenario& s) {
  const net::ReliableConfig& rc = s.reliable;
  double windows = 0.0;
  double w = rc.timeout;
  for (int j = 0; j < rc.max_attempts; ++j) {
    double capped = w;
    if (rc.max_timeout > 0.0) {
      capped = std::min(capped, rc.max_timeout);
    }
    windows += capped * (1.0 + rc.jitter);
    w *= rc.backoff;
  }
  const double n = static_cast<double>(s.vertex_count());
  const double messages =
      static_cast<double>(s.transfers.size()) * rc.max_attempts;
  // Any routed path visits each site at most once => <= n hops; every hop
  // can wait behind every other transmission on a FIFO link. Adaptive
  // walks revisit sites but are TTL-bounded, and the max(4k, 8) floor can
  // exceed n on tiny networks, so the bound is the larger of the two.
  double hops = n;
  if (s.policy == ChaosPolicy::Deflect || s.policy == ChaosPolicy::Layer) {
    hops = std::max(
        hops, static_cast<double>(std::max(4 * static_cast<int>(s.k), 8)));
  }
  const double drain = hops * (messages * hops + 1.0) * s.link_delay;
  return windows + drain + 1.0;
}

void check(std::vector<std::string>& violations, bool ok,
           const std::string& message) {
  if (!ok) {
    violations.push_back(message);
  }
}

}  // namespace

ChaosRunResult run_scenario(const ChaosScenario& scenario) {
  DBN_REQUIRE(scenario.d >= 1 && scenario.k >= 1,
              "chaos scenario needs d >= 1 and k >= 1");
  const std::uint64_t n = scenario.vertex_count();
  DBN_REQUIRE(n <= (1ull << 20), "chaos scenario network too large");
  for (const net::Transfer& t : scenario.transfers) {
    DBN_REQUIRE(t.source < n && t.destination < n,
                "chaos transfer rank outside the network");
  }

  net::SimConfig config;
  config.radix = scenario.d;
  config.k = scenario.k;
  config.orientation = Orientation::Undirected;
  config.link_delay = scenario.link_delay;
  config.link_queue_capacity = scenario.queue_capacity == 0
                                   ? std::numeric_limits<std::size_t>::max()
                                   : scenario.queue_capacity;
  config.wildcard_policy = net::WildcardPolicy::Zero;
  switch (scenario.policy) {
    case ChaosPolicy::SourceRouted:
      config.forwarding = net::ForwardingMode::SourceRouted;
      break;
    case ChaosPolicy::Greedy:
      config.forwarding = net::ForwardingMode::HopByHop;
      break;
    case ChaosPolicy::Deflect:
      config.forwarding = net::ForwardingMode::Adaptive;
      config.adaptive_scoring = net::AdaptiveScoring::Rescore;
      break;
    case ChaosPolicy::Layer:
      config.forwarding = net::ForwardingMode::Adaptive;
      config.adaptive_scoring = net::AdaptiveScoring::LayerTable;
      break;
  }
  config.seed = scenario.seed;
  net::Simulator sim(config);
  sim.set_fault_schedule(scenario.schedule);
  const DeBruijnGraph& graph = sim.graph();

  ChaosRunResult result;
  result.clock_budget = clock_budget(scenario);

  // Attempt 0 is the oblivious shortest path; retries consult the fault
  // state known at send time (route_avoiding), falling back to the
  // oblivious path when the survivors are partitioned.
  const net::AttemptRouter router = [&](const Word& x, const Word& y,
                                        int attempt) {
    if (attempt > 0) {
      const auto path = net::route_avoiding(graph, sim.failed_sites(),
                                            sim.failed_links(), x, y);
      if (path.has_value()) {
        return *path;
      }
    }
    return route_bidirectional_mp(x, y);
  };

  net::ReliableConfig rc = scenario.reliable;
  rc.record_attempts = true;
  rc.on_delivery = [&](const net::Message& message, double) {
    check(result.violations, !sim.is_failed(message.destination.rank()),
          "delivered to a dead site: destination " +
              std::to_string(message.destination.rank()));
  };
  result.report = net::run_reliable(sim, scenario.transfers, router, rc);
  result.stats = sim.stats();
  result.final_clock = sim.now();

  // Fold the run into the global registry so dbn_chaos --metrics-out
  // (and any embedding tool) gets sim.* plus transfer-level series;
  // counters accumulate across the scenarios of a fuzz/replay batch.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  net::record_sim_metrics(registry, sim);
  registry.counter("reliable.transfers").inc(result.report.transfers);
  registry.counter("reliable.completed").inc(result.report.completed);
  registry.counter("reliable.abandoned").inc(result.report.abandoned);
  registry.counter("reliable.retransmissions")
      .inc(result.report.retransmissions);
  registry.counter("reliable.duplicate_deliveries")
      .inc(result.report.duplicate_deliveries);

  const net::ReliableReport& report = result.report;
  const net::SimStats& stats = result.stats;
  check(result.violations,
        report.completed + report.abandoned == report.transfers,
        "accounting: completed + abandoned != transfers");
  check(result.violations, report.transfers == scenario.transfers.size(),
        "accounting: report.transfers != |transfers|");
  check(result.violations,
        report.retransmissions <=
            report.transfers *
                static_cast<std::uint64_t>(rc.max_attempts - 1),
        "retry budget: retransmissions > transfers * (max_attempts - 1)");
  check(result.violations, result.final_clock <= result.clock_budget,
        "termination: final clock " + format_double(result.final_clock) +
            " exceeds budget " + format_double(result.clock_budget));
  check(result.violations,
        stats.injected == stats.delivered + stats.dropped_fault +
                              stats.dropped_link + stats.dropped_overflow +
                              stats.misdelivered + stats.dropped_ttl,
        "conservation: injected != sum of outcomes");
  check(result.violations, stats.misdelivered == 0,
        "conservation: misdelivered message (no policy may misdeliver)");
  check(result.violations,
        scenario.policy == ChaosPolicy::Deflect ||
            scenario.policy == ChaosPolicy::Layer || stats.dropped_ttl == 0,
        "policy: TTL drops under a non-adaptive forwarding policy");
  check(result.violations,
        scenario.queue_capacity != 0 || stats.dropped_overflow == 0,
        "capacity: overflow drops despite unlimited link queues");
  check(result.violations, report.traces.size() == scenario.transfers.size(),
        "traces: one trace per transfer");
  for (std::size_t id = 0; id < report.traces.size(); ++id) {
    const net::TransferTrace& trace = report.traces[id];
    const std::string where = "trace " + std::to_string(id) + ": ";
    check(result.violations,
          !trace.attempts.empty() &&
              trace.attempts.size() <=
                  static_cast<std::size_t>(rc.max_attempts),
          where + "attempt count outside [1, max_attempts]");
    int delivered_attempts = 0;
    for (std::size_t i = 0; i < trace.attempts.size(); ++i) {
      const net::AttemptRecord& a = trace.attempts[i];
      check(result.violations, a.attempt == static_cast<int>(i),
            where + "attempt indices must be consecutive");
      check(result.violations, a.window > 0.0,
            where + "non-positive retransmission window");
      if (i > 0) {
        check(result.violations,
              a.sent_at > trace.attempts[i - 1].sent_at,
              where + "attempt send times must strictly increase");
      }
      check(result.violations,
            (a.cause == net::AttemptCause::Initial) == (i == 0),
            where + "attempt cause must be Initial exactly for attempt 0");
      if (i == 0) {
        check(result.violations, a.backoff_delay == 0.0,
              where + "first attempt cannot have waited on a backoff");
      } else {
        // The realized backoff is exactly the previous window: the driver
        // retransmits the moment the armed deadline expires.
        const double expected = a.sent_at - trace.attempts[i - 1].sent_at;
        const double tolerance =
            1e-9 * std::max(1.0, std::abs(a.backoff_delay));
        check(result.violations,
              std::abs(a.backoff_delay - expected) <= tolerance &&
                  std::abs(a.backoff_delay - trace.attempts[i - 1].window) <=
                      tolerance,
              where + "backoff delay disagrees with the previous window");
      }
      delivered_attempts += a.outcome == net::AttemptOutcome::Delivered;
      if (a.outcome != net::AttemptOutcome::Pending) {
        check(result.violations, a.resolved_at >= a.sent_at,
              where + "attempt resolved before it was sent");
      }
    }
    check(result.violations, delivered_attempts == (trace.completed ? 1 : 0),
          where + "exactly the completed transfers have a Delivered attempt");
    if (trace.completed) {
      check(result.violations,
            trace.delivered_attempt >= 0 &&
                trace.delivered_attempt <
                    static_cast<int>(trace.attempts.size()) &&
                trace.attempts[static_cast<std::size_t>(
                                   trace.delivered_attempt)]
                        .outcome == net::AttemptOutcome::Delivered,
            where + "delivered_attempt must name the Delivered record");
    } else {
      check(result.violations, trace.delivered_attempt == -1,
            where + "incomplete transfers cannot name a delivered attempt");
    }
  }
  std::uint64_t completed_traces = 0;
  for (const net::TransferTrace& trace : report.traces) {
    completed_traces += trace.completed;
  }
  check(result.violations, completed_traces == report.completed,
        "traces: completed flags disagree with the report counter");
  return result;
}

std::string run_summary(const ChaosRunResult& result) {
  std::ostringstream out;
  const net::ReliableReport& r = result.report;
  const net::SimStats& s = result.stats;
  out << "completed=" << r.completed << " abandoned=" << r.abandoned
      << " retx=" << r.retransmissions << " dups=" << r.duplicate_deliveries
      << " completion=" << format_double(r.completion_time)
      << " clock=" << format_double(result.final_clock)
      << " injected=" << s.injected << " delivered=" << s.delivered
      << " dfault=" << s.dropped_fault << " dlink=" << s.dropped_link
      << " dover=" << s.dropped_overflow << " dttl=" << s.dropped_ttl
      << " defl=" << s.adaptive_deflections << " hops=" << s.total_hops
      << " faults=" << s.fault_events_applied
      << " violations=" << result.violations.size();
  return out.str();
}

ChaosRunResult run_deterministically(const ChaosScenario& scenario) {
  ChaosRunResult first = run_scenario(scenario);
  const ChaosRunResult second = run_scenario(scenario);
  if (run_summary(first) != run_summary(second)) {
    first.violations.push_back("non-deterministic replay: \"" +
                               run_summary(first) + "\" vs \"" +
                               run_summary(second) + "\"");
  }
  return first;
}

ChaosScenario random_scenario(Rng& rng) {
  struct Point {
    std::uint32_t d;
    std::size_t k;
  };
  // Includes the degenerate d = 1 (single site) and k = 1 corners.
  static constexpr Point kPoints[] = {
      {1, 1}, {1, 3}, {2, 1}, {2, 2}, {2, 3}, {2, 4},
      {2, 5}, {3, 1}, {3, 2}, {3, 3}, {4, 2}, {5, 1},
  };
  const Point point = kPoints[rng.below(std::size(kPoints))];

  ChaosScenario s;
  s.d = point.d;
  s.k = point.k;
  s.seed = rng();
  s.link_delay = std::vector<double>{0.5, 1.0, 2.0}[rng.below(3)];
  s.queue_capacity = rng.chance(0.4) ? 1 + rng.below(4) : 0;
  // Source-routed keeps the majority share (it exercises the paper's
  // forwarding machinery plus misdelivery accounting); the remainder
  // splits across greedy hop-by-hop and both adaptive scorings so the
  // fuzzer owns the deflection space too.
  switch (rng.below(8)) {
    case 0:
    case 1:
    case 2:
    case 3:
      s.policy = ChaosPolicy::SourceRouted;
      break;
    case 4:
      s.policy = ChaosPolicy::Greedy;
      break;
    case 5:
    case 6:
      s.policy = ChaosPolicy::Deflect;
      break;
    default:
      s.policy = ChaosPolicy::Layer;
      break;
  }
  s.reliable.timeout = static_cast<double>(4 + rng.below(61));
  s.reliable.max_attempts = 1 + static_cast<int>(rng.below(6));
  s.reliable.backoff = std::vector<double>{1.0, 1.5, 2.0}[rng.below(3)];
  s.reliable.jitter = std::vector<double>{0.0, 0.1, 0.3}[rng.below(3)];
  s.reliable.max_timeout =
      rng.chance(0.3) ? s.reliable.timeout * 8.0 : 0.0;
  s.reliable.jitter_seed = rng();

  const std::uint64_t n = s.vertex_count();
  const std::size_t transfer_count = 1 + rng.below(10);
  for (std::size_t i = 0; i < transfer_count; ++i) {
    s.transfers.push_back(net::Transfer{rng.below(n), rng.below(n)});
  }

  // Faults land inside the retry horizon so crashes, recoveries and flaps
  // interleave with retransmissions rather than after quiescence.
  const double horizon =
      s.reliable.timeout * static_cast<double>(s.reliable.max_attempts);
  const std::size_t event_count = rng.below(11);
  for (std::size_t i = 0; i < event_count; ++i) {
    const double t =
        std::floor(rng.uniform01() * horizon * 4.0) / 4.0;  // quarter ticks
    const std::uint64_t a = rng.below(n);
    switch (rng.below(6)) {
      case 0:
        s.schedule.site_crash(t, a);
        break;
      case 1:
        s.schedule.site_recover(t, a);
        break;
      case 2:
        s.schedule.link_crash(t, a, rng.below(n));
        break;
      case 3:
        s.schedule.link_recover(t, a, rng.below(n));
        break;
      case 4:
        s.schedule.site_flap(a, t, 1.0 + static_cast<double>(rng.below(16)),
                             1.0 + static_cast<double>(rng.below(16)),
                             1 + static_cast<int>(rng.below(3)));
        break;
      default:
        s.schedule.link_flap(a, rng.below(n), t,
                             1.0 + static_cast<double>(rng.below(16)),
                             1.0 + static_cast<double>(rng.below(16)),
                             1 + static_cast<int>(rng.below(3)));
        break;
    }
  }
  return s;
}

namespace {

net::FaultSchedule schedule_without(const std::vector<net::FaultEvent>& events,
                                    std::size_t drop_begin,
                                    std::size_t drop_end) {
  net::FaultSchedule schedule;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i < drop_begin || i >= drop_end) {
      schedule.add(events[i]);
    }
  }
  return schedule;
}

std::uint64_t remap_rank(std::uint64_t rank, std::uint64_t n) {
  return n == 0 ? 0 : rank % n;
}

/// Candidate simplifications in a fixed order; the shrinker takes the
/// first one that still fails and restarts.
std::vector<ChaosScenario> shrink_candidates(const ChaosScenario& s) {
  std::vector<ChaosScenario> out;
  // 1. Drop transfers: halves first (front/back), then each single one.
  const std::size_t t = s.transfers.size();
  const auto drop_transfers = [&](std::size_t begin, std::size_t end) {
    ChaosScenario c = s;
    c.transfers.erase(c.transfers.begin() + static_cast<std::ptrdiff_t>(begin),
                      c.transfers.begin() + static_cast<std::ptrdiff_t>(end));
    out.push_back(std::move(c));
  };
  if (t >= 2) {
    drop_transfers(t / 2, t);
    drop_transfers(0, t / 2);
  }
  for (std::size_t i = 0; i < t; ++i) {
    drop_transfers(i, i + 1);
  }
  // 2. Drop fault events: halves, then singles.
  const std::vector<net::FaultEvent>& events = s.schedule.events();
  const std::size_t e = events.size();
  const auto drop_events = [&](std::size_t begin, std::size_t end) {
    ChaosScenario c = s;
    c.schedule = schedule_without(events, begin, end);
    out.push_back(std::move(c));
  };
  if (e >= 2) {
    drop_events(e / 2, e);
    drop_events(0, e / 2);
  }
  for (std::size_t i = 0; i < e; ++i) {
    drop_events(i, i + 1);
  }
  // 3. Lower the attempt budget.
  if (s.reliable.max_attempts > 1) {
    ChaosScenario c = s;
    c.reliable.max_attempts -= 1;
    out.push_back(std::move(c));
  }
  // 4. Simplify timing: kill jitter, backoff, the cap, the queue limit.
  if (s.reliable.jitter != 0.0) {
    ChaosScenario c = s;
    c.reliable.jitter = 0.0;
    out.push_back(std::move(c));
  }
  if (s.reliable.backoff != 1.0) {
    ChaosScenario c = s;
    c.reliable.backoff = 1.0;
    out.push_back(std::move(c));
  }
  if (s.reliable.max_timeout != 0.0) {
    ChaosScenario c = s;
    c.reliable.max_timeout = 0.0;
    out.push_back(std::move(c));
  }
  if (s.queue_capacity != 0) {
    ChaosScenario c = s;
    c.queue_capacity = 0;
    out.push_back(std::move(c));
  }
  if (s.link_delay != 1.0) {
    ChaosScenario c = s;
    c.link_delay = 1.0;
    out.push_back(std::move(c));
  }
  if (s.seed != 1) {
    ChaosScenario c = s;
    c.seed = 1;
    out.push_back(std::move(c));
  }
  if (s.policy != ChaosPolicy::SourceRouted) {
    ChaosScenario c = s;
    c.policy = ChaosPolicy::SourceRouted;
    out.push_back(std::move(c));
  }
  // 5. Shrink the network; ranks are remapped modulo the new size.
  const auto resize = [&](std::uint32_t d, std::size_t k) {
    ChaosScenario c = s;
    c.d = d;
    c.k = k;
    const std::uint64_t n = c.vertex_count();
    for (net::Transfer& tr : c.transfers) {
      tr.source = remap_rank(tr.source, n);
      tr.destination = remap_rank(tr.destination, n);
    }
    net::FaultSchedule remapped;
    for (net::FaultEvent ev : c.schedule.events()) {
      ev.a = remap_rank(ev.a, n);
      ev.b = remap_rank(ev.b, n);
      remapped.add(ev);
    }
    c.schedule = std::move(remapped);
    out.push_back(std::move(c));
  };
  if (s.k > 1) {
    resize(s.d, s.k - 1);
  }
  if (s.d > 1) {
    resize(s.d - 1, s.k);
  }
  return out;
}

}  // namespace

ChaosShrinkResult shrink_scenario(ChaosScenario scenario,
                                  const ChaosFailPredicate& still_fails) {
  DBN_REQUIRE(still_fails(scenario),
              "shrink_scenario requires a failing scenario on entry");
  ChaosShrinkResult result;
  bool progress = true;
  while (progress) {
    progress = false;
    for (ChaosScenario& candidate : shrink_candidates(scenario)) {
      ++result.candidates_tried;
      if (still_fails(candidate)) {
        scenario = std::move(candidate);
        ++result.reductions;
        progress = true;
        break;  // restart from the simplified scenario
      }
    }
  }
  result.scenario = std::move(scenario);
  return result;
}

ChaosFuzzReport run_chaos_fuzz(const ChaosFuzzOptions& options) {
  const auto started = std::chrono::steady_clock::now();
  const auto elapsed = [&started]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         started)
        .count();
  };
  ChaosFuzzReport report;
  std::map<std::string, std::uint64_t> coverage;
  const Rng root(options.seed);
  const ChaosFailPredicate fails = [](const ChaosScenario& s) {
    return !run_deterministically(s).ok();
  };
  for (std::uint64_t iter = 0; iter < options.iterations; ++iter) {
    if (options.time_budget_seconds > 0.0 &&
        elapsed() > options.time_budget_seconds) {
      break;
    }
    // Per-iteration substream: iteration i always sees the same scenario,
    // no matter how earlier iterations consumed randomness.
    Rng rng = root.fork(iter);
    ChaosScenario scenario = random_scenario(rng);
    if (options.policy.has_value()) {
      scenario.policy = *options.policy;
    }
    ++report.iterations_run;
    ++coverage["d=" + std::to_string(scenario.d) +
               ",k=" + std::to_string(scenario.k)];
    const ChaosRunResult run = run_deterministically(scenario);
    if (run.ok()) {
      continue;
    }
    ChaosFailure failure;
    failure.original = scenario;
    failure.shrunk = scenario;
    if (options.shrink) {
      if (options.log != nullptr) {
        *options.log << "dbn_chaos: violation at iteration " << iter
                     << ", shrinking...\n";
      }
      failure.shrunk = shrink_scenario(scenario, fails).scenario;
    }
    std::ostringstream details;
    for (const std::string& v : run_deterministically(failure.shrunk).violations) {
      details << v << "\n";
    }
    failure.details = details.str();
    report.failures.push_back(std::move(failure));
    if (options.log != nullptr) {
      *options.log << "dbn_chaos: invariant violation (#"
                   << report.failures.size() << "):\n"
                   << report.failures.back().details;
    }
    if (report.failures.size() >= options.max_failures) {
      break;
    }
  }
  report.point_coverage.assign(coverage.begin(), coverage.end());
  report.elapsed_seconds = elapsed();
  return report;
}

ChaosScenario load_chaos_file(const std::string& path) {
  std::ifstream file(path);
  DBN_REQUIRE(file.good(), "cannot open chaos file: " + path);
  std::ostringstream text;
  text << file.rdbuf();
  return ChaosScenario::parse(text.str());
}

std::vector<std::string> list_chaos_files(const std::string& dir) {
  namespace fs = std::filesystem;
  DBN_REQUIRE(fs::is_directory(dir), "not a directory: " + dir);
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".chaos") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<std::string> replay_chaos_files(
    const std::vector<std::string>& files, std::ostream* log,
    std::optional<ChaosPolicy> policy_override) {
  std::vector<std::string> failures;
  for (const std::string& file : files) {
    ChaosScenario scenario = load_chaos_file(file);
    if (policy_override.has_value()) {
      scenario.policy = *policy_override;
    }
    const ChaosRunResult result = run_deterministically(scenario);
    if (log != nullptr) {
      *log << file << ": " << run_summary(result) << "\n";
    }
    for (const std::string& violation : result.violations) {
      failures.push_back(file + ": " + violation);
    }
  }
  return failures;
}

}  // namespace dbn::testkit
