#include "testkit/fuzzer.hpp"

#include <chrono>
#include <map>
#include <memory>
#include <sstream>

#include "common/contract.hpp"
#include "testkit/shrinker.hpp"
#include "testkit/word_families.hpp"

namespace dbn::testkit {

namespace {

// One (network, d, k) point of the fuzz schedule.
struct FuzzPoint {
  NetworkFamily family;
  std::uint32_t d;
  std::size_t k;
};

// The schedule mixes the exhaustively BFS-checkable region, degenerate
// parameters (d=1, k=1), the large-k formula-only region (agreement
// between the O(k), O(k^2) and greedy engines, no BFS) and the Kautz
// sibling family. Larger-radix points keep digits within the corpus
// alphabet (<= 36).
std::vector<FuzzPoint> fuzz_schedule() {
  std::vector<FuzzPoint> points;
  for (const auto orientation :
       {NetworkFamily::DeBruijnDirected, NetworkFamily::DeBruijnUndirected}) {
    // Degenerate corners.
    points.push_back({orientation, 1, 1});
    points.push_back({orientation, 1, 4});
    points.push_back({orientation, 2, 1});
    points.push_back({orientation, 11, 1});
    // BFS-checkable interior.
    points.push_back({orientation, 2, 2});
    points.push_back({orientation, 2, 4});
    points.push_back({orientation, 2, 6});
    points.push_back({orientation, 2, 8});
    points.push_back({orientation, 3, 3});
    points.push_back({orientation, 3, 5});
    points.push_back({orientation, 4, 4});
    points.push_back({orientation, 5, 3});
    points.push_back({orientation, 7, 2});
    points.push_back({orientation, 11, 3});
    // Formula-only region (d^k too big for BFS): the linear kernels,
    // quadratic scan and greedy walks must still agree with each other.
    points.push_back({orientation, 2, 16});
    points.push_back({orientation, 2, 33});
    points.push_back({orientation, 3, 12});
    points.push_back({orientation, 10, 7});
  }
  points.push_back({NetworkFamily::Kautz, 1, 3});
  points.push_back({NetworkFamily::Kautz, 2, 2});
  points.push_back({NetworkFamily::Kautz, 2, 4});
  points.push_back({NetworkFamily::Kautz, 3, 3});
  points.push_back({NetworkFamily::Kautz, 4, 3});
  return points;
}

class SetCache {
 public:
  explicit SetCache(const OracleOptions& options) : options_(options) {}

  const OracleSet& get(NetworkFamily family, std::uint32_t d, std::size_t k) {
    const std::tuple<NetworkFamily, std::uint32_t, std::size_t> key{family, d,
                                                                    k};
    auto it = sets_.find(key);
    if (it == sets_.end()) {
      std::unique_ptr<OracleSet> set;
      if (family == NetworkFamily::Kautz) {
        set = std::make_unique<OracleSet>(OracleSet::kautz(d, k, options_));
      } else {
        set = std::make_unique<OracleSet>(OracleSet::debruijn(
            d, k,
            family == NetworkFamily::DeBruijnDirected
                ? Orientation::Directed
                : Orientation::Undirected,
            options_));
      }
      it = sets_.emplace(key, std::move(set)).first;
    }
    return *it->second;
  }

 private:
  OracleOptions options_;
  std::map<std::tuple<NetworkFamily, std::uint32_t, std::size_t>,
           std::unique_ptr<OracleSet>>
      sets_;
};

CorpusCase make_case(NetworkFamily family, std::uint32_t d, const Word& x,
                     const Word& y) {
  CorpusCase c;
  c.family = family;
  c.d = d;
  c.k = x.length();
  for (std::size_t i = 0; i < x.length(); ++i) {
    c.x.push_back(x.digit(i));
  }
  for (std::size_t i = 0; i < y.length(); ++i) {
    c.y.push_back(y.digit(i));
  }
  return c;
}

// The shrinker's predicate: "this pair, at its current length/radix, still
// makes some oracle of the same network family disagree". Pairs that leave
// the predicate's domain (radix shrunk below what the family supports,
// Kautz adjacency broken by an edit) simply do not fail.
FailPredicate conformance_predicate(SetCache& cache, NetworkFamily family) {
  return [&cache, family](const Word& x, const Word& y) {
    const std::uint32_t word_radix = x.radix();
    if (family == NetworkFamily::Kautz && word_radix < 2) {
      return false;
    }
    const std::uint32_t d =
        family == NetworkFamily::Kautz ? word_radix - 1 : word_radix;
    const OracleSet& set = cache.get(family, d, x.length());
    if (!set.is_vertex(x) || !set.is_vertex(y)) {
      return false;
    }
    return !Conformance(set).check(x, y).ok();
  };
}

Word kautz_word_near(const OracleSet& set, Rng& rng, const Word& x,
                     PairFamily pair_family) {
  // Kautz pairs: the equal diagonal, or an independent vertex. Structured
  // de Bruijn pair families do not preserve the adjacent-digits-differ
  // invariant, so the Kautz schedule leans on uniform + equal coverage.
  if (pair_family == PairFamily::Equal) {
    return x;
  }
  return set.random_vertex(rng);
}

}  // namespace

FuzzReport run_fuzz(const FuzzOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&start]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  FuzzReport report;
  SetCache cache(options.oracle_options);
  const std::vector<FuzzPoint> schedule = fuzz_schedule();
  std::map<std::string, std::uint64_t> coverage;
  Rng rng(options.seed);

  for (std::uint64_t iter = 0; iter < options.iterations; ++iter) {
    if (options.time_budget_seconds > 0 &&
        elapsed() > options.time_budget_seconds) {
      if (options.log != nullptr) {
        *options.log << "dbn_fuzz: time budget reached after " << iter
                     << " iterations\n";
      }
      break;
    }
    const FuzzPoint& point = schedule[rng.below(schedule.size())];
    const OracleSet& set = cache.get(point.family, point.d, point.k);

    const WordFamily word_family =
        kAllWordFamilies[rng.below(kAllWordFamilies.size())];
    const PairFamily pair_family =
        kAllPairFamilies[rng.below(kAllPairFamilies.size())];
    Word x = Word::zero(set.radix(), point.k);
    Word y = x;
    if (point.family == NetworkFamily::Kautz) {
      x = set.random_vertex(rng);
      y = kautz_word_near(set, rng, x, pair_family);
    } else {
      std::tie(x, y) =
          sample_pair(rng, point.d, point.k, word_family, pair_family);
    }

    const PairReport pair_report = Conformance(set).check(x, y);
    ++report.iterations_run;
    {
      std::ostringstream key;
      key << family_name(point.family) << " d=" << point.d
          << " k=" << point.k;
      ++coverage[key.str()];
    }
    if (pair_report.ok()) {
      continue;
    }

    FuzzFailure failure;
    failure.original = make_case(point.family, point.d, x, y);
    if (options.shrink) {
      const ShrinkResult shrunk =
          shrink_pair(x, y, conformance_predicate(cache, point.family));
      const std::uint32_t shrunk_d = point.family == NetworkFamily::Kautz
                                         ? shrunk.x.radix() - 1
                                         : shrunk.x.radix();
      failure.shrunk =
          make_case(point.family, shrunk_d, shrunk.x, shrunk.y);
      failure.snippet =
          regression_snippet(shrunk, family_name(point.family));
      failure.report =
          Conformance(cache.get(point.family, shrunk_d, shrunk.x.length()))
              .check(shrunk.x, shrunk.y)
              .to_string();
    } else {
      failure.shrunk = failure.original;
      failure.report = pair_report.to_string();
    }
    if (options.log != nullptr) {
      *options.log << "dbn_fuzz: disagreement at iteration " << iter << " ("
                   << family_name(word_family) << "/"
                   << family_name(pair_family) << " pair)\n"
                   << "  found:  " << failure.original.to_line() << "\n"
                   << "  shrunk: " << failure.shrunk.to_line() << "\n"
                   << failure.report << "\n";
    }
    report.failures.push_back(std::move(failure));
    if (report.failures.size() >= options.max_failures) {
      if (options.log != nullptr) {
        *options.log << "dbn_fuzz: failure budget reached, stopping\n";
      }
      break;
    }
  }

  report.point_coverage.assign(coverage.begin(), coverage.end());
  report.elapsed_seconds = elapsed();
  return report;
}

PairReport replay_case(const CorpusCase& c, const OracleOptions& options) {
  SetCache cache(options);
  const OracleSet& set = cache.get(c.family, c.d, c.k);
  return Conformance(set).check(c.word_x(), c.word_y());
}

std::vector<std::string> replay_corpus_files(
    const std::vector<std::string>& files, const OracleOptions& options,
    std::ostream* log) {
  SetCache cache(options);
  std::vector<std::string> failures;
  for (const std::string& file : files) {
    const std::vector<CorpusCase> cases = load_corpus_file(file);
    std::size_t failing = 0;
    for (const CorpusCase& c : cases) {
      const OracleSet& set = cache.get(c.family, c.d, c.k);
      const PairReport report = Conformance(set).check(c.word_x(), c.word_y());
      if (!report.ok()) {
        ++failing;
        failures.push_back(file + ": " + c.to_line() + "\n" +
                           report.to_string());
      }
    }
    if (log != nullptr) {
      *log << file << ": " << cases.size() << " cases, " << failing
           << " failing\n";
    }
  }
  return failures;
}

}  // namespace dbn::testkit
