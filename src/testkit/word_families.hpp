// Adversarial word-family generators for the conformance fuzzer.
//
// Uniform random pairs almost never exercise the interesting regions of
// Property 1 / Theorem 2: over a non-trivial alphabet, two random words
// share essentially no structure, so every matching function is ~0 and the
// distance is ~k. The families here concentrate probability mass on the
// boundary words the proofs sweat over — periodic words (many borders,
// failure-function-heavy), Lyndon words (no proper border at all),
// all-equal and alternating words (degenerate failure functions), and
// planted-structure *pairs* (shared overlap, shared interior block,
// rotations, reversals) that force the l/r minimizers of Theorem 2 away
// from the trivial corner.
#pragma once

#include <array>
#include <string_view>
#include <utility>

#include "common/rng.hpp"
#include "debruijn/word.hpp"

namespace dbn::testkit {

/// Structure of a single sampled word.
enum class WordFamily {
  Uniform,      // i.i.d. digits
  AllEqual,     // (c, c, ..., c)
  Alternating,  // (a, b, a, b, ...) with a != b when d >= 2
  Periodic,     // random block of length p <= k/2, repeated and truncated
  Lyndon,       // lexicographically least rotation of a primitive word
  SelfOverlap,  // short seed repeated with one corrupted digit: border-rich
  FewDistinct,  // digits drawn from a 2-symbol subset of a large alphabet
};

inline constexpr std::array<WordFamily, 7> kAllWordFamilies = {
    WordFamily::Uniform,    WordFamily::AllEqual, WordFamily::Alternating,
    WordFamily::Periodic,   WordFamily::Lyndon,   WordFamily::SelfOverlap,
    WordFamily::FewDistinct,
};

std::string_view family_name(WordFamily family);

/// Relation between the two words of a pair.
enum class PairFamily {
  Independent,    // Y sampled from the same family, independently
  Equal,          // Y == X (the distance-0 diagonal)
  Rotation,       // Y is a rotation of X (distance <= min over shifts)
  PlantedSuffix,  // Y begins with a random-length suffix of X (Property 1)
  PlantedCore,    // a shared block at random offsets in X and Y (Theorem 2)
  Reversal,       // Y is the reversal of X (stresses the r-side reduction)
};

inline constexpr std::array<PairFamily, 6> kAllPairFamilies = {
    PairFamily::Independent,   PairFamily::Equal,
    PairFamily::Rotation,      PairFamily::PlantedSuffix,
    PairFamily::PlantedCore,   PairFamily::Reversal,
};

std::string_view family_name(PairFamily family);

/// One word of length k over [0, d) with the family's structure.
Word sample_word(Rng& rng, std::uint32_t d, std::size_t k, WordFamily family);

/// A pair for DG(d,k): X from `word_family`, Y related to X per
/// `pair_family`.
std::pair<Word, Word> sample_pair(Rng& rng, std::uint32_t d, std::size_t k,
                                  WordFamily word_family,
                                  PairFamily pair_family);

}  // namespace dbn::testkit
