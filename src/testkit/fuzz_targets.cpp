#include "testkit/fuzz_targets.hpp"

#include <algorithm>
#include <cstdint>
#include <exception>
#include <optional>
#include <sstream>

#include "common/contract.hpp"
#include "obs/json.hpp"
#include "serve/protocol.hpp"
#include "testkit/chaos.hpp"

namespace dbn::testkit {

namespace {

void violation(std::vector<std::string>& out, const std::string& what) {
  out.push_back(what);
}

std::string hex_preview(std::string_view bytes, std::size_t limit = 48) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  const std::size_t n = bytes.size() < limit ? bytes.size() : limit;
  for (std::size_t i = 0; i < n; ++i) {
    const auto b = static_cast<unsigned char>(bytes[i]);
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
  }
  if (bytes.size() > limit) {
    out += "...";
  }
  return out;
}

// --- serve/1 frames ---------------------------------------------------------

void put_u16le(std::uint16_t v, std::string& out) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32le(std::uint32_t v, std::string& out) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void put_u64le(std::uint64_t v, std::string& out) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

std::uint32_t read_u32le(std::string_view bytes) {
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

// Independent reference model of the serve/1 framing rules (spec comment
// in serve/protocol.hpp): complete frames in order, poisoning on a zero
// or oversized length prefix, no consumption past the poison point.
struct FramingModel {
  std::vector<std::string> frames;
  bool poisoned = false;
  std::size_t pending = 0;
};

FramingModel model_framing(std::string_view data) {
  FramingModel model;
  std::size_t pos = 0;
  while (!model.poisoned && data.size() - pos >= 4) {
    const std::uint32_t length = read_u32le(data.substr(pos, 4));
    if (length == 0 || length > serve::kMaxPayload) {
      model.poisoned = true;
      break;
    }
    if (data.size() - pos < 4 + static_cast<std::size_t>(length)) {
      break;
    }
    model.frames.emplace_back(data.substr(pos + 4, length));
    pos += 4 + static_cast<std::size_t>(length);
  }
  model.pending = data.size() - pos;
  return model;
}

// Runs a FrameReader over `data` delivered in `pieces` roughly equal
// fragments and collects its observable behavior.
FramingModel run_reader(std::string_view data, std::size_t pieces) {
  FramingModel got;
  serve::FrameReader reader;
  const std::size_t step = pieces == 0 ? data.size() : data.size() / pieces;
  std::size_t fed = 0;
  std::string payload;
  while (fed < data.size() || fed == 0) {
    const std::size_t take =
        step == 0 ? data.size() : std::min(step, data.size() - fed);
    reader.feed(data.substr(fed, take));
    fed += take;
    const bool last = fed >= data.size();
    bool more = true;
    while (more) {
      switch (reader.next(payload)) {
        case serve::FrameReader::Result::Frame:
          got.frames.push_back(payload);
          break;
        case serve::FrameReader::Result::NeedMore:
        case serve::FrameReader::Result::Error:
          more = false;
          break;
      }
    }
    if (data.empty() || (last && fed >= data.size())) {
      break;
    }
  }
  got.poisoned = reader.poisoned();
  got.pending = reader.pending_bytes();
  return got;
}

void check_framing_against_model(std::vector<std::string>& violations,
                                 std::string_view data,
                                 const FramingModel& model,
                                 const FramingModel& got,
                                 const std::string& label) {
  if (got.poisoned != model.poisoned) {
    violation(violations, label + ": reader poisoned=" +
                              (got.poisoned ? "true" : "false") +
                              " but the framing model says " +
                              (model.poisoned ? "true" : "false") +
                              " for input " + hex_preview(data));
  }
  if (got.frames != model.frames) {
    violation(violations,
              label + ": reader produced " +
                  std::to_string(got.frames.size()) + " frame(s), model " +
                  std::to_string(model.frames.size()) + " for input " +
                  hex_preview(data));
  }
  if (got.pending != model.pending) {
    violation(violations, label + ": pending_bytes=" +
                              std::to_string(got.pending) + ", model says " +
                              std::to_string(model.pending) + " for input " +
                              hex_preview(data));
  }
}

// Re-encodes a decoded request exactly as the wire spec lays it out; a
// clean decode must reproduce the payload byte for byte (the decoder
// neither drops nor invents information).
std::string reencode_request(const serve::Request& request) {
  std::string out;
  out.push_back(static_cast<char>(request.type));
  put_u64le(request.id, out);
  if (request.type == serve::RequestType::Route ||
      request.type == serve::RequestType::Distance) {
    put_u16le(static_cast<std::uint16_t>(request.x.size()), out);
    for (const std::uint8_t digit : request.x) {
      out.push_back(static_cast<char>(digit));
    }
    for (const std::uint8_t digit : request.y) {
      out.push_back(static_cast<char>(digit));
    }
  }
  return out;
}

std::string reencode_response(const serve::Response& response) {
  std::string out;
  out.push_back(static_cast<char>(response.status));
  out.push_back(static_cast<char>(response.type));
  put_u64le(response.id, out);
  if (response.status != serve::Status::Ok) {
    out.append(response.body);
    return out;
  }
  switch (response.type) {
    case serve::RequestType::Route:
      put_u16le(static_cast<std::uint16_t>(response.hops.size()), out);
      for (const Hop& hop : response.hops) {
        out.push_back(static_cast<char>(hop.type));
        out.push_back(hop.is_wildcard()
                          ? static_cast<char>(serve::kWireWildcard)
                          : static_cast<char>(hop.digit));
      }
      break;
    case serve::RequestType::Distance:
      put_u32le(response.distance, out);
      break;
    case serve::RequestType::Ping:
      break;
    case serve::RequestType::Stats:
    case serve::RequestType::Introspect:
      out.append(response.body);
      break;
  }
  return out;
}

void check_payload_decoding(std::vector<std::string>& violations,
                            const std::string& payload) {
  const serve::DecodedRequest request = serve::decode_request(payload);
  if (request.error == serve::DecodeError::None) {
    const std::string reencoded = reencode_request(request.request);
    if (reencoded != payload) {
      violation(violations,
                "request decode/re-encode mismatch for payload " +
                    hex_preview(payload) + " -> " + hex_preview(reencoded));
    }
    if (request.request.x.size() != request.request.y.size()) {
      violation(violations, "decoded request with mismatched word lengths");
    }
  }
  const serve::DecodedResponse response = serve::decode_response(payload);
  if (response.error == serve::DecodeError::None) {
    const std::string reencoded = reencode_response(response.response);
    if (reencoded != payload) {
      violation(violations,
                "response decode/re-encode mismatch for payload " +
                    hex_preview(payload) + " -> " + hex_preview(reencoded));
    }
  }
}

// --- json ------------------------------------------------------------------

constexpr std::size_t kJsonDepthCap = 64;

std::size_t json_depth(const obs::JsonValue& value) {
  std::size_t deepest = 0;
  for (const obs::JsonValue& item : value.items) {
    deepest = std::max(deepest, json_depth(item));
  }
  for (const auto& [key, member] : value.members) {
    deepest = std::max(deepest, json_depth(member));
  }
  return deepest + 1;
}

void write_canonical(const obs::JsonValue& value, std::ostream& out) {
  using Kind = obs::JsonValue::Kind;
  switch (value.kind) {
    case Kind::Null:
      out << "null";
      break;
    case Kind::Bool:
      out << (value.boolean ? "true" : "false");
      break;
    case Kind::Number:
      out << obs::json_number(value.number);
      break;
    case Kind::String:
      out << '"' << obs::json_escape(value.string) << '"';
      break;
    case Kind::Array: {
      out << '[';
      bool first = true;
      for (const obs::JsonValue& item : value.items) {
        if (!first) {
          out << ',';
        }
        first = false;
        write_canonical(item, out);
      }
      out << ']';
      break;
    }
    case Kind::Object: {
      out << '{';
      bool first = true;
      for (const auto& [key, member] : value.members) {
        if (!first) {
          out << ',';
        }
        first = false;
        out << '"' << obs::json_escape(key) << "\":";
        write_canonical(member, out);
      }
      out << '}';
      break;
    }
  }
}

std::string canonical_json(const obs::JsonValue& value) {
  std::ostringstream out;
  write_canonical(value, out);
  return out.str();
}

// --- chaos -----------------------------------------------------------------

std::string text_preview(std::string_view text, std::size_t limit = 80) {
  std::string out;
  const std::size_t n = text.size() < limit ? text.size() : limit;
  for (std::size_t i = 0; i < n; ++i) {
    const char c = text[i];
    out.push_back((c >= 0x20 && c < 0x7F) ? c : '.');
  }
  if (text.size() > limit) {
    out += "...";
  }
  return out;
}

}  // namespace

std::vector<std::string> check_serve_frame_bytes(std::string_view data) {
  std::vector<std::string> violations;
  const FramingModel model = model_framing(data);
  // Fragmentation independence: the same byte stream delivered whole, in
  // two pieces, and in three pieces must yield identical frames and the
  // identical poison decision.
  check_framing_against_model(violations, data, model, run_reader(data, 1),
                              "whole feed");
  check_framing_against_model(violations, data, model, run_reader(data, 2),
                              "2-fragment feed");
  check_framing_against_model(violations, data, model, run_reader(data, 3),
                              "3-fragment feed");
  for (const std::string& payload : model.frames) {
    check_payload_decoding(violations, payload);
  }
  return violations;
}

std::vector<std::string> check_json_parse_bytes(std::string_view data) {
  std::vector<std::string> violations;
  // Input-independent probes, cheap enough to assert every iteration so
  // the replayed corpora pin them too: numbers with a leading zero and
  // nesting beyond the cap must be rejected; nesting at the cap must not.
  if (obs::json_parse("01").has_value()) {
    violation(violations, "json_parse accepted a leading-zero number");
  }
  if (obs::json_parse("-01.5").has_value()) {
    violation(violations,
              "json_parse accepted a negative leading-zero number");
  }
  {
    const std::string over(kJsonDepthCap + 1, '[');
    const std::string close(kJsonDepthCap + 1, ']');
    if (obs::json_parse(over + close).has_value()) {
      violation(violations, "json_parse accepted nesting beyond the cap");
    }
    const std::string at(kJsonDepthCap, '[');
    const std::string at_close(kJsonDepthCap, ']');
    if (!obs::json_parse(at + at_close).has_value()) {
      violation(violations, "json_parse rejected nesting at the cap");
    }
  }
  const std::optional<obs::JsonValue> parsed = obs::json_parse(data);
  if (!parsed.has_value()) {
    return violations;  // rejection is always an acceptable outcome
  }
  if (json_depth(*parsed) > kJsonDepthCap) {
    violation(violations,
              "json_parse accepted a value deeper than the documented cap");
  }
  // parse-accepts implies canonical fixpoint: serializing the value and
  // re-parsing must succeed and reproduce the same serialization.
  const std::string first = canonical_json(*parsed);
  const std::optional<obs::JsonValue> reparsed = obs::json_parse(first);
  if (!reparsed.has_value()) {
    violation(violations, "canonical serialization failed to re-parse: " +
                              text_preview(first));
    return violations;
  }
  const std::string second = canonical_json(*reparsed);
  if (second != first) {
    violation(violations, "canonical JSON is not a fixpoint: " +
                              text_preview(first) + " -> " +
                              text_preview(second));
  }
  return violations;
}

std::vector<std::string> check_chaos_scenario_bytes(std::string_view data) {
  std::vector<std::string> violations;
  ChaosScenario scenario;
  try {
    scenario = ChaosScenario::parse(data);
  } catch (const ContractViolation&) {
    return violations;  // rejection is the contract for malformed input
  } catch (const std::exception& e) {
    violation(violations,
              std::string("chaos parse threw a non-contract exception (") +
                  e.what() + ") for input " + text_preview(data));
    return violations;
  }
  // parse -> to_text -> parse is a fixpoint: the serialization is
  // normalized, so one round trip must reach it.
  const std::string text = scenario.to_text();
  ChaosScenario reparsed;
  try {
    reparsed = ChaosScenario::parse(text);
  } catch (const std::exception& e) {
    violation(violations,
              std::string("to_text produced unparseable output (") +
                  e.what() + "): " + text_preview(text));
    return violations;
  }
  const std::string round_tripped = reparsed.to_text();
  if (round_tripped != text) {
    violation(violations, "chaos to_text is not a parse fixpoint: " +
                              text_preview(text) + " -> " +
                              text_preview(round_tripped));
  }
  return violations;
}

}  // namespace dbn::testkit
