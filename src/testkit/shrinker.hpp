// Greedy pair shrinker: minimizes a disagreeing (X, Y, d, k) to a smallest
// reproducer and renders it as a checked-in regression artifact.
//
// Given any predicate that still holds on the original pair ("some oracle
// disagrees"), the shrinker repeatedly applies the cheapest simplification
// that preserves the predicate, to a fixpoint:
//   1. drop a digit position from both words (k -> k-1);
//   2. lower individual digits (to 0, then by one);
//   3. shrink the alphabet to the digits actually used.
// The result is deterministic (transformations are tried in a fixed order)
// so the same disagreement always shrinks to the same reproducer.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>

#include "debruijn/word.hpp"

namespace dbn::testkit {

/// Returns true while the pair still exhibits the failure being minimized.
/// Must be prepared for any k >= 1 and any radix in [1, original d].
using FailPredicate = std::function<bool(const Word& x, const Word& y)>;

struct ShrinkResult {
  Word x;
  Word y;
  /// Number of accepted simplification steps.
  int reductions = 0;
  /// Number of candidate pairs evaluated.
  int candidates_tried = 0;
};

/// Greedily minimizes (x, y) under `still_fails`; requires
/// still_fails(x, y) on entry. Both words keep equal length and radix
/// throughout.
ShrinkResult shrink_pair(Word x, Word y, const FailPredicate& still_fails);

/// Renders a shrunk reproducer as a self-contained gtest snippet suitable
/// for pasting into tests/ (and a corpus line in a comment), e.g. for
/// `label` == "undirected":
///
///   // dbn_fuzz reproducer (corpus line: "undirected 2 2 01 01")
///   TEST(ConformanceRegression, Undirected_D2_K2_X01_Y01) { ... }
std::string regression_snippet(const ShrinkResult& result,
                               std::string_view label);

}  // namespace dbn::testkit
