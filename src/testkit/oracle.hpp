// The differential-testing oracle layer: every routing implementation in
// the library behind one interface, grouped into per-network OracleSets.
//
// The paper's correctness story (Property 1, Theorem 2, Algorithms 1-4) is
// that several very different computations — failure-function scans, suffix
// trees, suffix automata, greedy hop-by-hop forwarding, compiled tables and
// exhaustive BFS — must produce *identical* distances and equally short,
// legal paths. An OracleSet packages all implementations that answer for
// one network (DG(d,k) directed, DG(d,k) undirected, or K(d,k)) so the
// conformance driver (conformance.hpp) can cross-check them pairwise and
// against the BFS ground truth.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "core/path.hpp"
#include "debruijn/graph.hpp"
#include "debruijn/kautz.hpp"
#include "debruijn/word.hpp"

namespace dbn::testkit {

/// One routing implementation under test. Oracles make two independent
/// claims — a distance and (optionally) a witnessing path — that the
/// conformance driver checks against each other and against the rest of
/// the set.
class RouteOracle {
 public:
  virtual ~RouteOracle() = default;

  virtual std::string_view name() const = 0;

  /// The oracle's distance claim for x -> y.
  virtual int distance(const Word& x, const Word& y) = 0;

  /// The oracle's path claim, or nullopt for distance-only oracles.
  virtual std::optional<RoutingPath> route(const Word& x, const Word& y) {
    (void)x;
    (void)y;
    return std::nullopt;
  }

  /// True for the Theorem 2 routers whose paths must decompose into one of
  /// the paper's three-block shapes (checked by shape_matches_theorem2).
  virtual bool emits_three_block() const { return false; }
};

/// Knobs for which oracles join a set. The enumerating oracles (BFS,
/// next-hop tables) are gated on the vertex count so the same factory
/// works for formula-only sweeps at large k.
struct OracleOptions {
  /// BFS reference + BFS router included when d^k <= this. 0 disables.
  std::uint64_t max_bfs_vertices = 1u << 12;
  /// Compiled RoutingTable included when d^k <= this (O(N^2) build). 0
  /// disables.
  std::uint64_t max_table_vertices = 1u << 10;
  /// Greedy hop-by-hop walks (O(d k) per hop) — cheap, on by default.
  bool include_greedy = true;
  /// Distance-only layer-table oracle (core/layer_table.hpp) included when
  /// d^k <= this (one dense N-byte table per queried destination). 0
  /// disables.
  std::uint64_t max_layer_vertices = 1u << 12;
  /// BatchRouteEngine oracles (single-query batches through the parallel
  /// engine, pool + cache included), so dbn_fuzz exercises the batch path.
  bool include_batch = true;
  /// Worker threads for the batch oracles (>= 2 keeps the pool honest).
  std::size_t batch_threads = 2;
};

/// The network a set routes over; fixes the legal-move rule.
enum class NetworkFamily { DeBruijnDirected, DeBruijnUndirected, Kautz };

std::string_view family_name(NetworkFamily family);

/// All oracles answering for one network, plus the move-legality rule and
/// (when small enough) the exhaustive BFS reference.
class OracleSet {
 public:
  /// The de Bruijn sets. Directed: Algorithm 1, greedy forwarding, BFS
  /// router, routing table. Undirected: Algorithms 2/3, two Algorithm 4
  /// engines, the allocation-free route engine under both scalar
  /// fallbacks (each taking the packed lane whenever (d, k) fits), greedy
  /// forwarding, BFS router, routing table.
  static OracleSet debruijn(std::uint32_t d, std::size_t k,
                            Orientation orientation,
                            const OracleOptions& options = {});

  /// The Kautz set: the Algorithm 1 analog, its distance formula, and BFS.
  static OracleSet kautz(std::uint32_t d, std::size_t k,
                         const OracleOptions& options = {});

  NetworkFamily family() const { return family_; }
  /// Word radix: d for de Bruijn, d+1 for Kautz.
  std::uint32_t radix() const { return radix_; }
  std::size_t k() const { return k_; }
  std::uint64_t vertex_count() const { return n_; }

  const std::vector<std::unique_ptr<RouteOracle>>& oracles() const {
    return oracles_;
  }

  /// Appends a caller-supplied oracle (testkit extension point; also how
  /// the kit's own tests inject deliberately wrong implementations).
  void add_oracle(std::unique_ptr<RouteOracle> oracle);

  /// True when the set carries the exhaustive BFS ground truth.
  bool has_bfs_reference() const { return has_bfs_reference_; }

  /// BFS ground-truth distance; requires has_bfs_reference().
  int reference_distance(const Word& x, const Word& y) const;

  /// True iff applying `hop` at `at` is a legal single move of this
  /// network (directed: type-L only; Kautz: type-L with digit != last).
  /// Wildcard hops are legal iff some digit choice is.
  bool legal_hop(const Word& at, const Hop& hop) const;

  /// Applies `hop` (wildcards resolved to the smallest legal digit).
  Word apply_hop(const Word& at, const Hop& hop) const;

  /// True iff w is a vertex of this network (right radix/length; Kautz:
  /// adjacent digits differ).
  bool is_vertex(const Word& w) const;

  /// Uniformly random vertex.
  Word random_vertex(Rng& rng) const;

 private:
  OracleSet(NetworkFamily family, std::uint32_t d, std::size_t k);

  NetworkFamily family_;
  std::uint32_t d_;      // de Bruijn radix / Kautz degree
  std::uint32_t radix_;  // word radix
  std::size_t k_;
  std::uint64_t n_ = 0;
  bool has_bfs_reference_ = false;
  std::unique_ptr<DeBruijnGraph> graph_;   // de Bruijn sets
  std::unique_ptr<KautzGraph> kautz_;      // Kautz set
  std::vector<std::unique_ptr<RouteOracle>> oracles_;
};

}  // namespace dbn::testkit
