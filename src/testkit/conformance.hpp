// The conformance driver: checks one (X, Y) pair against every oracle of a
// set and reports all disagreements.
//
// Per pair it verifies
//   1. distance agreement — every oracle's distance claim matches the
//      reference (BFS when the set carries it, the first oracle otherwise);
//   2. path validity — every hop of every claimed path is a legal move of
//      the network (directed: type-L only; Kautz: appended digit differs
//      from the current last digit) and the walk ends at Y;
//   3. length coherence — each path's length equals its oracle's distance
//      claim;
//   4. Theorem 2 shape — paths of the bi-directional formula routers must
//      decompose into one of the paper's three-block forms
//      L^{s-1} R^{k-θ} L^{k-t} (witnessed by l_{s,t} >= θ) or
//      R^{k-s} L^{k-θ} R^{t-1} (witnessed by r_{s,t} >= θ), or be the
//      trivial all-left path of length k inserting y_1..y_k.
#pragma once

#include <string>
#include <vector>

#include "core/path.hpp"
#include "debruijn/word.hpp"
#include "testkit/oracle.hpp"

namespace dbn::testkit {

enum class FailureKind {
  DistanceDisagreement,  // oracle distance != reference distance
  WrongEndpoint,         // path does not end at Y
  LengthMismatch,        // path length != oracle's own distance claim
  IllegalHop,            // a hop is not a legal move of the network
  ShapeViolation,        // no Theorem 2 three-block decomposition exists
};

const char* failure_kind_name(FailureKind kind);

/// One oracle's defect on one pair.
struct Failure {
  std::string oracle;
  FailureKind kind;
  std::string detail;
};

/// Everything the driver learned about one pair.
struct PairReport {
  Word x;
  Word y;
  int reference_distance = -1;
  std::vector<Failure> failures;

  bool ok() const { return failures.empty(); }
  /// Multi-line human-readable summary (empty-ish when ok()).
  std::string to_string() const;
};

/// Run-length view of a path's shift types: `pattern` holds one entry per
/// maximal run. A Theorem 2 path has at most three runs.
struct ShiftRuns {
  std::vector<std::pair<ShiftType, std::size_t>> runs;
};
ShiftRuns shift_runs(const RoutingPath& path);

/// True iff `path` is a valid Theorem 2 witness from x to y: the trivial
/// all-left path of length k, or a three-block decomposition whose claimed
/// overlap block of X actually equals the corresponding block of Y. Pure
/// structural check — does not require the path to be shortest.
bool shape_matches_theorem2(const Word& x, const Word& y,
                            const RoutingPath& path);

/// Cross-checks pairs against one OracleSet.
class Conformance {
 public:
  explicit Conformance(const OracleSet& set) : set_(&set) {}

  /// Full check of one pair; both words must be vertices of the network.
  PairReport check(const Word& x, const Word& y) const;

 private:
  const OracleSet* set_;
};

}  // namespace dbn::testkit
