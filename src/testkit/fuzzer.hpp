// The conformance fuzzer: a seeded, budgeted loop that samples (network,
// d, k) points and adversarial word pairs, runs every pair through the
// Conformance driver, and shrinks any disagreement to a minimal checked-in
// reproducer. tools/dbn_fuzz is a thin CLI over run_fuzz().
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "testkit/conformance.hpp"
#include "testkit/corpus.hpp"
#include "testkit/oracle.hpp"

namespace dbn::testkit {

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::uint64_t iterations = 10000;
  /// Stop early after this many seconds; 0 means no time budget.
  double time_budget_seconds = 0.0;
  /// Shrink disagreements before reporting (recommended; off for replay
  /// loops that want the raw pair).
  bool shrink = true;
  /// Stop after this many distinct disagreements.
  std::size_t max_failures = 8;
  /// Progress / failure log; nullptr for silent operation.
  std::ostream* log = nullptr;
  OracleOptions oracle_options;
};

/// One disagreement, as found and as minimized.
struct FuzzFailure {
  CorpusCase original;
  CorpusCase shrunk;
  /// Conformance report of the shrunk pair.
  std::string report;
  /// Paste-ready regression test (shrinker.hpp).
  std::string snippet;
};

struct FuzzReport {
  std::uint64_t iterations_run = 0;
  /// Iterations per (family, d, k) point actually exercised.
  std::vector<std::pair<std::string, std::uint64_t>> point_coverage;
  std::vector<FuzzFailure> failures;
  double elapsed_seconds = 0.0;

  bool ok() const { return failures.empty(); }
};

/// The deterministic fuzz loop: same options -> same pairs -> same report.
FuzzReport run_fuzz(const FuzzOptions& options);

/// Replays one corpus case through a fresh OracleSet of its network.
PairReport replay_case(const CorpusCase& c, const OracleOptions& options = {});

/// Replays every case of every file; returns the failing reports rendered
/// as "<file>:<line-ish>: <report>" strings (empty when all pass).
std::vector<std::string> replay_corpus_files(
    const std::vector<std::string>& files, const OracleOptions& options = {},
    std::ostream* log = nullptr);

}  // namespace dbn::testkit
