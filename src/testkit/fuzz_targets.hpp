// Invariant batteries behind the libFuzzer harnesses (fuzz/*.cpp) for the
// three byte-level parsers a remote peer can reach:
//
//   serve_frame    serve/1 framing + request/response decoding. The rule
//                  under test: framing errors (bad length prefix, zero or
//                  oversized) are connection-fatal, but nothing below
//                  framing may crash — and any payload that decodes
//                  re-encodes to the exact input bytes.
//   json_parse     obs::json_parse. parse-accepts implies the value is
//                  well-formed (depth within the cap) and serializes to a
//                  canonical fixpoint; leading-zero numbers and over-deep
//                  nesting are rejected.
//   chaos_scenario the chaos/1 text format. Rejection is exactly
//                  ContractViolation (never another exception type, never
//                  a crash), and parse -> to_text -> parse is a fixpoint.
//
// Each checker runs one input through its battery and returns
// human-readable violation descriptions (empty = clean). The harness
// aborts on any violation (so the fuzzer minimizes a reproducer); the
// deterministic replays (tests/test_wire_corpus.cpp, the fuzz corpus
// ctest entries) EXPECT the same emptiness, so a promoted reproducer is
// pinned by the ordinary test suite forever after.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dbn::testkit {

std::vector<std::string> check_serve_frame_bytes(std::string_view data);
std::vector<std::string> check_json_parse_bytes(std::string_view data);
std::vector<std::string> check_chaos_scenario_bytes(std::string_view data);

}  // namespace dbn::testkit
