#include "testkit/conformance.hpp"

#include <sstream>

#include "common/contract.hpp"

namespace dbn::testkit {

namespace {

// True iff x[xs .. xs+len) == y[ys .. ys+len) (0-based, bounds-checked).
bool blocks_equal(const Word& x, const Word& y, std::size_t xs, std::size_t ys,
                  std::size_t len) {
  if (xs + len > x.length() || ys + len > y.length()) {
    return false;
  }
  for (std::size_t i = 0; i < len; ++i) {
    if (x.digit(xs + i) != y.digit(ys + i)) {
      return false;
    }
  }
  return true;
}

// Checks the l-form L^a R^b L^c: s = a+1, θ = k-b, t = k-c, witnessed by
// x_s..x_{s+θ-1} == y_{t-θ+1}..y_t (1-based; definition (8)).
bool l_form_witnessed(const Word& x, const Word& y, std::size_t a,
                      std::size_t b, std::size_t c) {
  const std::size_t k = x.length();
  if (b > k || c > k || a + 1 > k) {
    return false;
  }
  const std::size_t s = a + 1;
  const std::size_t theta = k - b;
  const std::size_t t = k - c;
  if (t < 1 || t > k) {
    return false;
  }
  // Definition (8): θ <= min(t, k - s + 1).
  if (theta > t || theta > k - s + 1) {
    return false;
  }
  return blocks_equal(x, y, s - 1, t - theta, theta);
}

// Checks the r-form R^a L^b R^c: s = k-a, θ = k-b, t = c+1, witnessed by
// x_{s-θ+1}..x_s == y_t..y_{t+θ-1} (definition (9)).
bool r_form_witnessed(const Word& x, const Word& y, std::size_t a,
                      std::size_t b, std::size_t c) {
  const std::size_t k = x.length();
  if (a >= k || b > k || c + 1 > k) {
    return false;
  }
  const std::size_t s = k - a;
  const std::size_t theta = k - b;
  const std::size_t t = c + 1;
  // Definition (9): θ <= min(s, k - t + 1).
  if (theta > s || theta > k - t + 1) {
    return false;
  }
  return blocks_equal(x, y, s - theta, t - 1, theta);
}

// The trivial path of Algorithm 2 line 6: k left shifts inserting y_1..y_k.
bool is_trivial_path(const Word& y, const RoutingPath& path) {
  if (path.length() != y.length()) {
    return false;
  }
  for (std::size_t i = 0; i < path.length(); ++i) {
    const Hop& h = path.hop(i);
    if (h.type != ShiftType::Left ||
        (!h.is_wildcard() && h.digit != y.digit(i))) {
      return false;
    }
  }
  return true;
}

}  // namespace

const char* failure_kind_name(FailureKind kind) {
  switch (kind) {
    case FailureKind::DistanceDisagreement:
      return "distance-disagreement";
    case FailureKind::WrongEndpoint:
      return "wrong-endpoint";
    case FailureKind::LengthMismatch:
      return "length-mismatch";
    case FailureKind::IllegalHop:
      return "illegal-hop";
    case FailureKind::ShapeViolation:
      return "shape-violation";
  }
  return "unknown";
}

std::string PairReport::to_string() const {
  std::ostringstream out;
  out << "pair X=" << x.to_string() << " Y=" << y.to_string()
      << " reference D=" << reference_distance;
  if (failures.empty()) {
    out << " — all oracles agree";
    return out.str();
  }
  for (const Failure& f : failures) {
    out << "\n  [" << f.oracle << "] " << failure_kind_name(f.kind) << ": "
        << f.detail;
  }
  return out.str();
}

ShiftRuns shift_runs(const RoutingPath& path) {
  ShiftRuns out;
  for (const Hop& h : path.hops()) {
    if (out.runs.empty() || out.runs.back().first != h.type) {
      out.runs.push_back({h.type, 1});
    } else {
      ++out.runs.back().second;
    }
  }
  return out;
}

bool shape_matches_theorem2(const Word& x, const Word& y,
                            const RoutingPath& path) {
  if (path.empty()) {
    return x == y;
  }
  if (is_trivial_path(y, path)) {
    return true;
  }
  const ShiftRuns rle = shift_runs(path);
  if (rle.runs.size() > 3) {
    return false;
  }
  const std::size_t len = path.length();
  // Enumerate every (a, b, c) split whose type sequence equals the path's.
  // Runs of the middle type pin b exactly; when the path has no middle-type
  // run (single-run paths), the two outer blocks merge and every split of
  // the run between a and c must be tried.
  const auto first_type = rle.runs.front().first;
  if (rle.runs.size() == 1) {
    // Pure run of one type: try all splits (i, 0, len - i) in both forms.
    for (std::size_t i = 0; i <= len; ++i) {
      if (first_type == ShiftType::Left && l_form_witnessed(x, y, i, 0, len - i)) {
        return true;
      }
      if (first_type == ShiftType::Right && r_form_witnessed(x, y, i, 0, len - i)) {
        return true;
      }
    }
    // A pure run is also the degenerate middle block of the opposite form
    // (a = c = 0), e.g. a pure-L path is R^0 L^b R^0.
    if (first_type == ShiftType::Left && r_form_witnessed(x, y, 0, len, 0)) {
      return true;
    }
    if (first_type == ShiftType::Right && l_form_witnessed(x, y, 0, len, 0)) {
      return true;
    }
    return false;
  }
  if (rle.runs.size() == 2) {
    const std::size_t p = rle.runs[0].second;
    const std::size_t q = rle.runs[1].second;
    if (first_type == ShiftType::Left) {
      // L^p R^q: l-form (p, q, 0) or r-form (0, p, q).
      return l_form_witnessed(x, y, p, q, 0) || r_form_witnessed(x, y, 0, p, q);
    }
    // R^p L^q: r-form (p, q, 0) or l-form (0, p, q).
    return r_form_witnessed(x, y, p, q, 0) || l_form_witnessed(x, y, 0, p, q);
  }
  const std::size_t a = rle.runs[0].second;
  const std::size_t b = rle.runs[1].second;
  const std::size_t c = rle.runs[2].second;
  return first_type == ShiftType::Left ? l_form_witnessed(x, y, a, b, c)
                                       : r_form_witnessed(x, y, a, b, c);
}

PairReport Conformance::check(const Word& x, const Word& y) const {
  DBN_REQUIRE(set_->is_vertex(x) && set_->is_vertex(y),
              "conformance pair must be vertices of the network");
  PairReport report{x, y, -1, {}};
  const auto& oracles = set_->oracles();
  DBN_ASSERT(!oracles.empty(), "oracle set is empty");

  // Reference distance: BFS ground truth when available, else the first
  // oracle's claim (the remaining oracles are then checked for mutual
  // agreement with it).
  std::string reference_name = "bfs-reference";
  if (set_->has_bfs_reference()) {
    report.reference_distance = set_->reference_distance(x, y);
  } else {
    report.reference_distance = oracles.front()->distance(x, y);
    reference_name = std::string(oracles.front()->name());
  }

  for (const auto& oracle : oracles) {
    const int claimed = oracle->distance(x, y);
    if (claimed != report.reference_distance) {
      std::ostringstream detail;
      detail << "claims D=" << claimed << ", " << reference_name
             << " says D=" << report.reference_distance;
      report.failures.push_back({std::string(oracle->name()),
                                 FailureKind::DistanceDisagreement,
                                 detail.str()});
    }

    const std::optional<RoutingPath> path = oracle->route(x, y);
    if (!path.has_value()) {
      continue;
    }
    if (static_cast<int>(path->length()) != claimed) {
      std::ostringstream detail;
      detail << "path " << path->to_string() << " has length "
             << path->length() << " but the oracle claims D=" << claimed;
      report.failures.push_back({std::string(oracle->name()),
                                 FailureKind::LengthMismatch, detail.str()});
    }
    // Walk the path, validating each hop against the network's move rule.
    Word at = x;
    bool walk_ok = true;
    for (std::size_t i = 0; i < path->length(); ++i) {
      const Hop& hop = path->hop(i);
      if (!set_->legal_hop(at, hop)) {
        std::ostringstream detail;
        detail << "hop " << i << " of " << path->to_string()
               << " is not a legal move at " << at.to_string();
        report.failures.push_back({std::string(oracle->name()),
                                   FailureKind::IllegalHop, detail.str()});
        walk_ok = false;
        break;
      }
      at = set_->apply_hop(at, hop);
    }
    if (walk_ok && !(at == y)) {
      std::ostringstream detail;
      detail << "path " << path->to_string() << " ends at " << at.to_string()
             << ", not Y";
      report.failures.push_back({std::string(oracle->name()),
                                 FailureKind::WrongEndpoint, detail.str()});
    }
    if (walk_ok && oracle->emits_three_block() &&
        !shape_matches_theorem2(x, y, *path)) {
      std::ostringstream detail;
      detail << "path " << path->to_string()
             << " has no Theorem 2 three-block decomposition";
      report.failures.push_back({std::string(oracle->name()),
                                 FailureKind::ShapeViolation, detail.str()});
    }
  }
  return report;
}

}  // namespace dbn::testkit
