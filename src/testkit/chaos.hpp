// The chaos engine: randomized failure-scenario testing for the network
// stack (src/net/), in the mold of the differential conformance kit.
//
// A ChaosScenario bundles everything a failure run needs — network shape,
// a batch of transfers, the reliable-transfer configuration, and a
// FaultSchedule of timed site/link crashes, recoveries and flaps. The
// runner executes the scenario to quiescence on the discrete-event
// simulator (deterministically: same scenario -> same run) and checks the
// robustness invariants that must hold for ANY scenario:
//
//   accounting     completed + abandoned == transfers
//   retry budget   retransmissions <= transfers * (max_attempts - 1)
//   traces         every transfer has 1..max_attempts attempts, sent at
//                  strictly increasing times, with positive windows
//   liveness       no delivery lands on a site that is dead at that instant
//   termination    the simulated clock stays within an analytic budget
//                  (backoff windows + a drain bound)
//   conservation   the simulator accounts for every injected message
//   determinism    two runs of one scenario produce identical summaries
//
// run_chaos_fuzz() samples random scenarios, checks them, greedily shrinks
// any violation, and hands back replayable reproducers; tools/dbn_chaos is
// the CLI, and tests/corpus/chaos/*.chaos hold the regression scenarios.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "net/reliable.hpp"
#include "net/simulator.hpp"

namespace dbn::testkit {

/// How the simulated network forwards a scenario's messages. SourceRouted
/// is the paper's scheme (and the historical chaos default); Greedy is
/// fault-oblivious hop-by-hop; Deflect and Layer are the adaptive
/// deflection policy of net/adaptive.hpp, scored by per-neighbor
/// re-computation and by the O(1) layer table respectively — identical
/// decisions, so any behavioral divergence between them is a bug the
/// determinism invariant catches.
enum class ChaosPolicy : std::uint8_t { SourceRouted, Greedy, Deflect, Layer };

/// Serialized name ("source", "greedy", "deflect", "layer").
std::string_view chaos_policy_name(ChaosPolicy policy);

/// Inverse of chaos_policy_name; nullopt for unknown names.
std::optional<ChaosPolicy> chaos_policy_from_name(std::string_view name);

/// A self-contained failure scenario. Serialized as the line-based
/// ".chaos" text format (see to_text / parse and docs/fault_injection.md).
struct ChaosScenario {
  std::uint32_t d = 2;
  std::size_t k = 3;
  std::uint64_t seed = 1;          // simulator seed
  double link_delay = 1.0;
  std::size_t queue_capacity = 0;  // 0 = unlimited
  ChaosPolicy policy = ChaosPolicy::SourceRouted;
  net::ReliableConfig reliable;    // callbacks/record_attempts not serialized
  std::vector<net::Transfer> transfers;
  net::FaultSchedule schedule;

  std::uint64_t vertex_count() const;

  /// The ".chaos" text serialization, parse()'s inverse.
  std::string to_text() const;

  /// Parses the text format ('#' comments and blank lines skipped; the
  /// first payload line must be the "chaos/1" header). Throws
  /// ContractViolation on malformed input.
  static ChaosScenario parse(std::string_view text);
};

/// Outcome of one scenario run.
struct ChaosRunResult {
  net::ReliableReport report;
  net::SimStats stats;
  double final_clock = 0.0;
  double clock_budget = 0.0;  // the termination bound that was enforced
  /// Human-readable invariant violations; empty on a clean run.
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
};

/// Runs `scenario` to quiescence and checks every invariant above except
/// determinism (which needs two runs; see run_deterministically).
ChaosRunResult run_scenario(const ChaosScenario& scenario);

/// One-line digest of everything observable about a run; two runs of the
/// same scenario must produce equal summaries.
std::string run_summary(const ChaosRunResult& result);

/// Runs the scenario twice; any invariant violation of either run plus a
/// "non-deterministic replay" violation when the summaries differ.
ChaosRunResult run_deterministically(const ChaosScenario& scenario);

/// Samples a random scenario: a (d, k) point from a small grid (including
/// the degenerate d = 1 and k = 1 corners), random traffic, and a random
/// schedule mixing crashes, recoveries and flapping.
ChaosScenario random_scenario(Rng& rng);

/// Returns true while the scenario still violates an invariant.
using ChaosFailPredicate = std::function<bool(const ChaosScenario&)>;

struct ChaosShrinkResult {
  ChaosScenario scenario;
  int reductions = 0;
  int candidates_tried = 0;
};

/// Greedily minimizes `scenario` under `still_fails` (dropping transfers
/// and fault events, lowering the attempt budget, simplifying timing, then
/// shrinking k and d) to a fixpoint. Deterministic: a given violating
/// scenario always shrinks to the same reproducer. Requires
/// still_fails(scenario) on entry.
ChaosShrinkResult shrink_scenario(ChaosScenario scenario,
                                  const ChaosFailPredicate& still_fails);

struct ChaosFuzzOptions {
  std::uint64_t seed = 1;
  std::uint64_t iterations = 1000;
  /// Stop early after this many seconds; 0 means no time budget.
  double time_budget_seconds = 0.0;
  bool shrink = true;
  std::size_t max_failures = 8;
  std::ostream* log = nullptr;  // progress / failure log; nullptr = silent
  /// Pin every sampled scenario to one forwarding policy (dbn_chaos
  /// --policy); nullopt lets random_scenario mix them.
  std::optional<ChaosPolicy> policy;
};

struct ChaosFailure {
  ChaosScenario original;
  ChaosScenario shrunk;
  /// Violations of the shrunk scenario, one per line.
  std::string details;
};

struct ChaosFuzzReport {
  std::uint64_t iterations_run = 0;
  std::vector<std::pair<std::string, std::uint64_t>> point_coverage;
  std::vector<ChaosFailure> failures;
  double elapsed_seconds = 0.0;

  bool ok() const { return failures.empty(); }
};

/// The deterministic scenario-fuzz loop: same options -> same scenarios ->
/// same report. Every scenario is run twice (determinism is an invariant).
ChaosFuzzReport run_chaos_fuzz(const ChaosFuzzOptions& options);

/// Loads one scenario from a .chaos file. Throws if the file cannot be
/// opened or fails to parse.
ChaosScenario load_chaos_file(const std::string& path);

/// The *.chaos files directly under `dir`, sorted by name. Throws if `dir`
/// is not a directory.
std::vector<std::string> list_chaos_files(const std::string& dir);

/// Replays every file; returns "<file>: <violation>" strings (empty when
/// all scenarios hold every invariant, determinism included). A policy
/// override replaces each file's forwarding policy before the run.
std::vector<std::string> replay_chaos_files(
    const std::vector<std::string>& files, std::ostream* log = nullptr,
    std::optional<ChaosPolicy> policy_override = std::nullopt);

}  // namespace dbn::testkit
