#include "testkit/word_families.hpp"

#include <algorithm>

#include "common/contract.hpp"
#include "strings/lyndon.hpp"

namespace dbn::testkit {

namespace {

std::vector<Digit> uniform_digits(Rng& rng, std::uint32_t d, std::size_t k) {
  std::vector<Digit> digits(k);
  for (auto& x : digits) {
    x = static_cast<Digit>(rng.below(d));
  }
  return digits;
}

std::vector<Digit> periodic_digits(Rng& rng, std::uint32_t d, std::size_t k) {
  const std::size_t period = 1 + rng.below(std::max<std::size_t>(1, k / 2));
  const std::vector<Digit> block = uniform_digits(rng, d, period);
  std::vector<Digit> digits(k);
  for (std::size_t i = 0; i < k; ++i) {
    digits[i] = block[i % period];
  }
  return digits;
}

std::vector<Digit> rotated(std::vector<Digit> digits, std::size_t by) {
  std::rotate(digits.begin(),
              digits.begin() + static_cast<std::ptrdiff_t>(by % digits.size()),
              digits.end());
  return digits;
}

}  // namespace

std::string_view family_name(WordFamily family) {
  switch (family) {
    case WordFamily::Uniform:
      return "uniform";
    case WordFamily::AllEqual:
      return "all-equal";
    case WordFamily::Alternating:
      return "alternating";
    case WordFamily::Periodic:
      return "periodic";
    case WordFamily::Lyndon:
      return "lyndon";
    case WordFamily::SelfOverlap:
      return "self-overlap";
    case WordFamily::FewDistinct:
      return "few-distinct";
  }
  DBN_ASSERT(false, "unknown word family");
  return "";
}

std::string_view family_name(PairFamily family) {
  switch (family) {
    case PairFamily::Independent:
      return "independent";
    case PairFamily::Equal:
      return "equal";
    case PairFamily::Rotation:
      return "rotation";
    case PairFamily::PlantedSuffix:
      return "planted-suffix";
    case PairFamily::PlantedCore:
      return "planted-core";
    case PairFamily::Reversal:
      return "reversal";
  }
  DBN_ASSERT(false, "unknown pair family");
  return "";
}

Word sample_word(Rng& rng, std::uint32_t d, std::size_t k, WordFamily family) {
  DBN_REQUIRE(d >= 1 && k >= 1, "sample_word requires d >= 1, k >= 1");
  switch (family) {
    case WordFamily::Uniform:
      return Word(d, uniform_digits(rng, d, k));
    case WordFamily::AllEqual:
      return Word(d, std::vector<Digit>(k, static_cast<Digit>(rng.below(d))));
    case WordFamily::Alternating: {
      const Digit a = static_cast<Digit>(rng.below(d));
      const Digit b = d >= 2 ? static_cast<Digit>((a + 1 + rng.below(d - 1)) % d)
                             : a;
      std::vector<Digit> digits(k);
      for (std::size_t i = 0; i < k; ++i) {
        digits[i] = i % 2 == 0 ? a : b;
      }
      return Word(d, std::move(digits));
    }
    case WordFamily::Periodic:
      return Word(d, periodic_digits(rng, d, k));
    case WordFamily::Lyndon: {
      // The least rotation of a primitive word is Lyndon; retry a few times
      // for primitivity (overwhelmingly likely unless d^k is tiny), then
      // settle for the least rotation — still a canonical boundary word.
      for (int attempt = 0; attempt < 4; ++attempt) {
        std::vector<Digit> digits = uniform_digits(rng, d, k);
        digits = rotated(digits, strings::least_rotation(digits));
        if (strings::is_primitive(digits) || attempt == 3) {
          return Word(d, std::move(digits));
        }
      }
      DBN_ASSERT(false, "unreachable");
      return Word::zero(d, k);
    }
    case WordFamily::SelfOverlap: {
      // A short seed tiled across the word, then one interior digit
      // corrupted: rich border structure with a late failure-function
      // mismatch, the access pattern Algorithm 3 is most sensitive to.
      std::vector<Digit> digits = periodic_digits(rng, d, k);
      if (k >= 3 && d >= 2) {
        const std::size_t pos = 1 + rng.below(k - 2);
        digits[pos] =
            static_cast<Digit>((digits[pos] + 1 + rng.below(d - 1)) % d);
      }
      return Word(d, std::move(digits));
    }
    case WordFamily::FewDistinct: {
      const Digit a = static_cast<Digit>(rng.below(d));
      const Digit b = static_cast<Digit>(rng.below(d));
      std::vector<Digit> digits(k);
      for (auto& x : digits) {
        x = rng.chance(0.5) ? a : b;
      }
      return Word(d, std::move(digits));
    }
  }
  DBN_ASSERT(false, "unknown word family");
  return Word::zero(d, k);
}

std::pair<Word, Word> sample_pair(Rng& rng, std::uint32_t d, std::size_t k,
                                  WordFamily word_family,
                                  PairFamily pair_family) {
  const Word x = sample_word(rng, d, k, word_family);
  switch (pair_family) {
    case PairFamily::Independent:
      return {x, sample_word(rng, d, k, word_family)};
    case PairFamily::Equal:
      return {x, x};
    case PairFamily::Rotation: {
      std::vector<Digit> digits(k);
      for (std::size_t i = 0; i < k; ++i) {
        digits[i] = x.digit(i);
      }
      return {x, Word(d, rotated(std::move(digits), 1 + rng.below(k)))};
    }
    case PairFamily::PlantedSuffix: {
      // Y = (length-l suffix of X) + fresh digits: overlap exactly >= l,
      // the Property 1 and Algorithm 1 hot path.
      const std::size_t l = rng.below(k + 1);
      std::vector<Digit> digits(k);
      for (std::size_t i = 0; i < l; ++i) {
        digits[i] = x.digit(k - l + i);
      }
      for (std::size_t i = l; i < k; ++i) {
        digits[i] = static_cast<Digit>(rng.below(d));
      }
      return {x, Word(d, std::move(digits))};
    }
    case PairFamily::PlantedCore: {
      // A shared interior block at independent offsets: drives the
      // non-trivial minimizers of the Theorem 2 double minimum.
      const std::size_t len = 1 + rng.below(k);
      const std::size_t xo = rng.below(k - len + 1);
      const std::size_t yo = rng.below(k - len + 1);
      std::vector<Digit> xd(k), yd(k);
      for (std::size_t i = 0; i < k; ++i) {
        xd[i] = x.digit(i);
        yd[i] = static_cast<Digit>(rng.below(d));
      }
      for (std::size_t i = 0; i < len; ++i) {
        yd[yo + i] = xd[xo + i];
      }
      return {Word(d, std::move(xd)), Word(d, std::move(yd))};
    }
    case PairFamily::Reversal:
      return {x, x.reversed()};
  }
  DBN_ASSERT(false, "unknown pair family");
  return {x, x};
}

}  // namespace dbn::testkit
