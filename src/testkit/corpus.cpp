#include "testkit/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/contract.hpp"

namespace dbn::testkit {

namespace {

char digit_to_char(Digit d) {
  DBN_REQUIRE(d < 36, "corpus digit strings support digit values 0..35");
  return d < 10 ? static_cast<char>('0' + d) : static_cast<char>('a' + d - 10);
}

Digit char_to_digit(char c) {
  if (c >= '0' && c <= '9') {
    return static_cast<Digit>(c - '0');
  }
  if (c >= 'a' && c <= 'z') {
    return static_cast<Digit>(c - 'a' + 10);
  }
  DBN_REQUIRE(false, std::string("bad corpus digit character '") + c + "'");
  return 0;
}

std::vector<Digit> parse_digits(std::string_view text) {
  std::vector<Digit> out;
  out.reserve(text.size());
  for (const char c : text) {
    out.push_back(char_to_digit(c));
  }
  return out;
}

NetworkFamily parse_family(std::string_view text) {
  if (text == "directed") {
    return NetworkFamily::DeBruijnDirected;
  }
  if (text == "undirected") {
    return NetworkFamily::DeBruijnUndirected;
  }
  if (text == "kautz") {
    return NetworkFamily::Kautz;
  }
  DBN_REQUIRE(false, "corpus family must be directed|undirected|kautz, got \"" +
                         std::string(text) + "\"");
  return NetworkFamily::DeBruijnUndirected;
}

}  // namespace

std::string word_to_digit_string(const Word& w) {
  std::string out;
  out.reserve(w.length());
  for (std::size_t i = 0; i < w.length(); ++i) {
    out.push_back(digit_to_char(w.digit(i)));
  }
  return out;
}

std::string CorpusCase::to_line() const {
  std::ostringstream out;
  out << family_name(family) << ' ' << d << ' ' << k << ' '
      << word_to_digit_string(word_x()) << ' '
      << word_to_digit_string(word_y());
  return out.str();
}

CorpusCase CorpusCase::parse(std::string_view line) {
  std::istringstream in{std::string(line)};
  std::string family, x_text, y_text;
  std::uint32_t d = 0;
  std::size_t k = 0;
  in >> family >> d >> k >> x_text >> y_text;
  DBN_REQUIRE(!in.fail(), "corpus line needs \"<family> <d> <k> <X> <Y>\": " +
                              std::string(line));
  std::string rest;
  in >> rest;
  DBN_REQUIRE(rest.empty(), "trailing tokens on corpus line: " +
                                std::string(line));
  CorpusCase c;
  c.family = parse_family(family);
  c.d = d;
  c.k = k;
  c.x = parse_digits(x_text);
  c.y = parse_digits(y_text);
  DBN_REQUIRE(c.x.size() == k && c.y.size() == k,
              "corpus words must have length k: " + std::string(line));
  // Word's constructor validates digit ranges (and Kautz adjacency is
  // validated by the replaying OracleSet).
  (void)c.word_x();
  (void)c.word_y();
  return c;
}

std::vector<CorpusCase> load_corpus_file(const std::string& path) {
  std::ifstream in(path);
  DBN_REQUIRE(in.good(), "cannot open corpus file " + path);
  std::vector<CorpusCase> cases;
  std::string line;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    cases.push_back(CorpusCase::parse(line));
  }
  return cases;
}

std::vector<std::string> list_corpus_files(const std::string& dir) {
  namespace fs = std::filesystem;
  DBN_REQUIRE(fs::is_directory(dir), "not a corpus directory: " + dir);
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".case") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace dbn::testkit
