#include "testkit/oracle.hpp"

#include <deque>
#include <utility>

#include "common/contract.hpp"
#include "core/batch_route_engine.hpp"
#include "core/bfs_router.hpp"
#include "core/distance.hpp"
#include "core/hop_by_hop.hpp"
#include "core/layer_table.hpp"
#include "core/route_engine.hpp"
#include "core/routers.hpp"
#include "core/routing_table.hpp"
#include "debruijn/bfs.hpp"
#include "debruijn/kautz_routing.hpp"

namespace dbn::testkit {

namespace {

// Converts a vertex sequence (each step one legal shift) to a routing
// path, classifying every edge against the graph.
RoutingPath walk_to_path(const DeBruijnGraph& graph,
                         const std::vector<Word>& walk) {
  RoutingPath path;
  for (std::size_t i = 0; i + 1 < walk.size(); ++i) {
    path.push(classify_edge(graph, walk[i].rank(), walk[i + 1].rank()));
  }
  return path;
}

// --- de Bruijn oracles ----------------------------------------------------

class Alg1Oracle final : public RouteOracle {
 public:
  std::string_view name() const override { return "alg1-uni"; }
  int distance(const Word& x, const Word& y) override {
    return directed_distance(x, y);  // Property 1, independent of the path
  }
  std::optional<RoutingPath> route(const Word& x, const Word& y) override {
    return route_unidirectional(x, y);
  }
};

class Alg2MpOracle final : public RouteOracle {
 public:
  std::string_view name() const override { return "alg2-mp"; }
  int distance(const Word& x, const Word& y) override {
    return undirected_distance_quadratic(x, y);  // Theorem 2, O(k^2) scan
  }
  std::optional<RoutingPath> route(const Word& x, const Word& y) override {
    return route_bidirectional_mp(x, y);
  }
  bool emits_three_block() const override { return true; }
};

class Alg4SuffixTreeOracle final : public RouteOracle {
 public:
  std::string_view name() const override { return "alg4-st"; }
  int distance(const Word& x, const Word& y) override {
    return static_cast<int>(route_bidirectional_suffix_tree(x, y).length());
  }
  std::optional<RoutingPath> route(const Word& x, const Word& y) override {
    return route_bidirectional_suffix_tree(x, y);
  }
  bool emits_three_block() const override { return true; }
};

class Alg4SuffixAutomatonOracle final : public RouteOracle {
 public:
  std::string_view name() const override { return "alg4-sam"; }
  int distance(const Word& x, const Word& y) override {
    return undirected_distance(x, y);  // the linear suffix-automaton kernel
  }
  std::optional<RoutingPath> route(const Word& x, const Word& y) override {
    return route_bidirectional_suffix_automaton(x, y);
  }
  bool emits_three_block() const override { return true; }
};

// The allocation-free engine: packed offset-sweep kernels whenever (d, k)
// fits a lane, the configured scalar kernel otherwise — so registering
// both fallbacks makes the conformance driver and dbn_fuzz cross-check
// the packed path against every other implementation in the set.
class RouteEngineOracle final : public RouteOracle {
 public:
  RouteEngineOracle(std::size_t k, SideKernelFallback fallback)
      : name_(fallback == SideKernelFallback::MpScan ? "route-engine"
                                                     : "route-engine-st"),
        engine_(k, fallback) {}
  std::string_view name() const override { return name_; }
  int distance(const Word& x, const Word& y) override {
    return engine_.distance(x, y);
  }
  std::optional<RoutingPath> route(const Word& x, const Word& y) override {
    RoutingPath path;
    engine_.route_into(x, y, WildcardMode::Concrete, path);
    return path;
  }
  bool emits_three_block() const override { return true; }

 private:
  std::string_view name_;
  BidirectionalRouteEngine engine_;
};

// The parallel batch engine fed one-query batches: every conformance pair
// also crosses the thread pool, the per-worker scratch arenas and the
// sharded memo cache (deliberately tiny so slots are recycled).
class BatchEngineOracle final : public RouteOracle {
 public:
  BatchEngineOracle(std::uint32_t d, std::size_t k, BatchBackend backend,
                    std::size_t threads)
      : name_(backend == BatchBackend::Alg1Directed     ? "batch-alg1"
              : backend == BatchBackend::BidiSuffixTree ? "batch-bidi-st"
                                                        : "batch-engine"),
        engine_(d, k,
                BatchRouteOptions{.backend = backend,
                                  .threads = threads,
                                  .chunk = 1,
                                  .cache_entries = 64,
                                  .cache_shards = 4}) {}
  std::string_view name() const override { return name_; }
  int distance(const Word& x, const Word& y) override {
    return engine_.distance_batch({RouteQuery{x, y}})[0];
  }
  std::optional<RoutingPath> route(const Word& x, const Word& y) override {
    return engine_.route_one(x, y);
  }
  bool emits_three_block() const override {
    return engine_.backend() == BatchBackend::BidiEngine ||
           engine_.backend() == BatchBackend::BidiSuffixTree;
  }

 private:
  std::string_view name_;
  BatchRouteEngine engine_;
};

class GreedyOracle final : public RouteOracle {
 public:
  explicit GreedyOracle(const DeBruijnGraph& graph) : graph_(graph) {}
  std::string_view name() const override {
    return graph_.orientation() == Orientation::Directed ? "greedy-uni"
                                                         : "greedy-bi";
  }
  int distance(const Word& x, const Word& y) override {
    return static_cast<int>(greedy_walk(x, y, graph_.orientation()).size()) -
           1;
  }
  std::optional<RoutingPath> route(const Word& x, const Word& y) override {
    return walk_to_path(graph_, greedy_walk(x, y, graph_.orientation()));
  }

 private:
  const DeBruijnGraph& graph_;
};

class BfsRouterOracle final : public RouteOracle {
 public:
  explicit BfsRouterOracle(const DeBruijnGraph& graph) : graph_(graph) {}
  std::string_view name() const override { return "bfs-router"; }
  int distance(const Word& x, const Word& y) override {
    return bfs_distances(graph_, x.rank())[y.rank()];
  }
  std::optional<RoutingPath> route(const Word& x, const Word& y) override {
    return route_bfs(graph_, x, y);
  }

 private:
  const DeBruijnGraph& graph_;
};

class RoutingTableOracle final : public RouteOracle {
 public:
  explicit RoutingTableOracle(const DeBruijnGraph& graph)
      : graph_(graph), table_(graph) {}
  std::string_view name() const override { return "routing-table"; }
  int distance(const Word& x, const Word& y) override {
    return table_.walk_length(x.rank(), y.rank());
  }
  std::optional<RoutingPath> route(const Word& x, const Word& y) override {
    RoutingPath path;
    std::uint64_t at = x.rank();
    const std::uint64_t dst = y.rank();
    const std::size_t bound = 2 * graph_.k() + 2;  // > diameter: loop guard
    while (at != dst) {
      DBN_ASSERT(path.length() <= bound, "table walk failed to converge");
      const Hop hop = table_.next_hop(at, dst);
      path.push(hop);
      at = hop.type == ShiftType::Left
               ? graph_.left_shift_rank(at, hop.digit)
               : graph_.right_shift_rank(at, hop.digit);
    }
    return path;
  }

 private:
  const DeBruijnGraph& graph_;
  RoutingTable table_;
};

// Distance-only oracle over the dense per-destination layer tables
// (core/layer_table.hpp): the adaptive router's O(1) progress signal gets
// the same pairwise differential pressure as every routing algorithm —
// one wrong table byte shows up as a distance mismatch here, not just as
// a subtly worse deflection choice under saturation.
class LayerTableOracle final : public RouteOracle {
 public:
  explicit LayerTableOracle(const DeBruijnGraph& graph)
      : name_(graph.orientation() == Orientation::Directed
                  ? "layer-table-uni"
                  : "layer-table-bi"),
        table_(graph) {}
  explicit LayerTableOracle(const KautzGraph& graph)
      : name_("kautz-layer-table"), table_(graph), kautz_(&graph) {}
  std::string_view name() const override { return name_; }
  int distance(const Word& x, const Word& y) override {
    return table_.view(y)->distance(kautz_ != nullptr ? kautz_->rank(x)
                                                      : x.rank());
  }

 private:
  std::string_view name_;
  LayerTable table_;
  const KautzGraph* kautz_ = nullptr;  // non-null iff the Kautz family
};

// --- Kautz oracles --------------------------------------------------------

std::vector<int> kautz_bfs_distances(const KautzGraph& graph,
                                     std::uint64_t source) {
  std::vector<int> dist(graph.vertex_count(), -1);
  std::deque<std::uint64_t> frontier;
  dist[source] = 0;
  frontier.push_back(source);
  while (!frontier.empty()) {
    const std::uint64_t v = frontier.front();
    frontier.pop_front();
    for (const std::uint64_t w : graph.out_neighbors(v)) {
      if (dist[w] == -1) {
        dist[w] = dist[v] + 1;
        frontier.push_back(w);
      }
    }
  }
  return dist;
}

class KautzRouteOracle final : public RouteOracle {
 public:
  explicit KautzRouteOracle(const KautzGraph& graph) : graph_(graph) {}
  std::string_view name() const override { return "kautz-alg1"; }
  int distance(const Word& x, const Word& y) override {
    return kautz_directed_distance(graph_, x, y);  // the Property 1 analog
  }
  std::optional<RoutingPath> route(const Word& x, const Word& y) override {
    return kautz_route(graph_, x, y);
  }

 private:
  const KautzGraph& graph_;
};

class KautzBfsOracle final : public RouteOracle {
 public:
  explicit KautzBfsOracle(const KautzGraph& graph) : graph_(graph) {}
  std::string_view name() const override { return "kautz-bfs"; }
  int distance(const Word& x, const Word& y) override {
    return kautz_bfs_distances(graph_, graph_.rank(x))[graph_.rank(y)];
  }

 private:
  const KautzGraph& graph_;
};

}  // namespace

std::string_view family_name(NetworkFamily family) {
  switch (family) {
    case NetworkFamily::DeBruijnDirected:
      return "directed";
    case NetworkFamily::DeBruijnUndirected:
      return "undirected";
    case NetworkFamily::Kautz:
      return "kautz";
  }
  DBN_ASSERT(false, "unknown network family");
  return "";
}

OracleSet::OracleSet(NetworkFamily family, std::uint32_t d, std::size_t k)
    : family_(family),
      d_(d),
      radix_(family == NetworkFamily::Kautz ? d + 1 : d),
      k_(k) {}

OracleSet OracleSet::debruijn(std::uint32_t d, std::size_t k,
                              Orientation orientation,
                              const OracleOptions& options) {
  OracleSet set(orientation == Orientation::Directed
                    ? NetworkFamily::DeBruijnDirected
                    : NetworkFamily::DeBruijnUndirected,
                d, k);
  set.n_ = Word::vertex_count(d, k);
  set.graph_ = std::make_unique<DeBruijnGraph>(d, k, orientation);
  if (orientation == Orientation::Directed) {
    set.oracles_.push_back(std::make_unique<Alg1Oracle>());
    if (options.include_batch) {
      set.oracles_.push_back(std::make_unique<BatchEngineOracle>(
          d, k, BatchBackend::Alg1Directed, options.batch_threads));
    }
  } else {
    set.oracles_.push_back(std::make_unique<Alg2MpOracle>());
    set.oracles_.push_back(std::make_unique<Alg4SuffixTreeOracle>());
    set.oracles_.push_back(std::make_unique<Alg4SuffixAutomatonOracle>());
    set.oracles_.push_back(
        std::make_unique<RouteEngineOracle>(k, SideKernelFallback::MpScan));
    set.oracles_.push_back(
        std::make_unique<RouteEngineOracle>(k, SideKernelFallback::SuffixTree));
    if (options.include_batch) {
      set.oracles_.push_back(std::make_unique<BatchEngineOracle>(
          d, k, BatchBackend::BidiEngine, options.batch_threads));
      set.oracles_.push_back(std::make_unique<BatchEngineOracle>(
          d, k, BatchBackend::BidiSuffixTree, options.batch_threads));
    }
  }
  if (options.include_greedy) {
    set.oracles_.push_back(std::make_unique<GreedyOracle>(*set.graph_));
  }
  if (options.max_bfs_vertices > 0 && set.n_ <= options.max_bfs_vertices) {
    set.oracles_.push_back(std::make_unique<BfsRouterOracle>(*set.graph_));
    set.has_bfs_reference_ = true;
  }
  if (options.max_table_vertices > 0 && set.n_ <= options.max_table_vertices) {
    set.oracles_.push_back(std::make_unique<RoutingTableOracle>(*set.graph_));
  }
  if (options.max_layer_vertices > 0 && set.n_ <= options.max_layer_vertices) {
    set.oracles_.push_back(std::make_unique<LayerTableOracle>(*set.graph_));
  }
  return set;
}

OracleSet OracleSet::kautz(std::uint32_t d, std::size_t k,
                           const OracleOptions& options) {
  OracleSet set(NetworkFamily::Kautz, d, k);
  set.kautz_ = std::make_unique<KautzGraph>(d, k);
  set.n_ = set.kautz_->vertex_count();
  set.oracles_.push_back(std::make_unique<KautzRouteOracle>(*set.kautz_));
  if (options.max_bfs_vertices > 0 && set.n_ <= options.max_bfs_vertices) {
    set.oracles_.push_back(std::make_unique<KautzBfsOracle>(*set.kautz_));
    set.has_bfs_reference_ = true;
  }
  if (options.max_layer_vertices > 0 && set.n_ <= options.max_layer_vertices) {
    set.oracles_.push_back(std::make_unique<LayerTableOracle>(*set.kautz_));
  }
  return set;
}

void OracleSet::add_oracle(std::unique_ptr<RouteOracle> oracle) {
  DBN_REQUIRE(oracle != nullptr, "add_oracle requires an oracle");
  oracles_.push_back(std::move(oracle));
}

int OracleSet::reference_distance(const Word& x, const Word& y) const {
  DBN_REQUIRE(has_bfs_reference_, "set has no BFS reference at this size");
  if (family_ == NetworkFamily::Kautz) {
    return kautz_bfs_distances(*kautz_, kautz_->rank(x))[kautz_->rank(y)];
  }
  return bfs_distances(*graph_, x.rank())[y.rank()];
}

bool OracleSet::legal_hop(const Word& at, const Hop& hop) const {
  if (!hop.is_wildcard() && hop.digit >= radix_) {
    return false;
  }
  switch (family_) {
    case NetworkFamily::DeBruijnDirected:
      return hop.type == ShiftType::Left;
    case NetworkFamily::DeBruijnUndirected:
      return true;
    case NetworkFamily::Kautz:
      // Left shifts only, and the appended digit must differ from the
      // current last digit (K(d,k) adjacency). A wildcard is legal: d >= 1
      // alternatives always exist.
      return hop.type == ShiftType::Left &&
             (hop.is_wildcard() || hop.digit != at.digit(at.length() - 1));
  }
  DBN_ASSERT(false, "unknown network family");
  return false;
}

Word OracleSet::apply_hop(const Word& at, const Hop& hop) const {
  Digit digit = hop.digit;
  if (hop.is_wildcard()) {
    digit = 0;
    if (family_ == NetworkFamily::Kautz &&
        at.digit(at.length() - 1) == digit) {
      digit = 1;
    }
  }
  return hop.type == ShiftType::Left ? at.left_shift(digit)
                                     : at.right_shift(digit);
}

bool OracleSet::is_vertex(const Word& w) const {
  if (w.radix() != radix_ || w.length() != k_) {
    return false;
  }
  if (family_ == NetworkFamily::Kautz) {
    for (std::size_t i = 1; i < w.length(); ++i) {
      if (w.digit(i) == w.digit(i - 1)) {
        return false;
      }
    }
  }
  return true;
}

Word OracleSet::random_vertex(Rng& rng) const {
  if (family_ == NetworkFamily::Kautz) {
    return kautz_->word(rng.below(n_));
  }
  return Word::from_rank(radix_, k_, rng.below(n_));
}

}  // namespace dbn::testkit
