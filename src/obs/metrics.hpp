// MetricsRegistry — named counters, gauges and fixed-bucket histograms for
// every layer of the stack (schema "metrics/1").
//
// Design constraints, in order:
//   1. The batch engine's workers increment counters from a parallel_for;
//      they must never contend. Counter/histogram cells therefore live in
//      lock-free thread-local shards (one per thread per registry) that a
//      snapshot() merges. An increment is a relaxed atomic fetch_add on a
//      cell the owning thread already created — no lock, no CAS loop, no
//      false sharing with other threads' cells.
//   2. Handles (Counter, Gauge, Histogram) are trivially copyable and
//      cheap to stash in hot objects; a default-constructed handle is
//      inert (operations are no-ops), which is how disabled-by-default
//      instrumentation stays one branch.
//   3. Snapshots are deterministic: entries sorted by name, doubles
//      rendered with a fixed format, so two identical runs export
//      byte-identical JSON.
//
// Gauges are registry-global (last set() wins) — merging per-thread
// "current values" has no meaning. Histogram buckets are upper-inclusive:
// bucket i counts values v with bounds[i-1] < v <= bounds[i]; one implicit
// overflow bucket counts v > bounds.back().
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mutex.hpp"

namespace dbn::obs {

class MetricsRegistry;

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

const char* metric_kind_name(MetricKind kind);

/// Monotone event count. Default-constructed handles are inert.
///
/// Handles carry the shard cell coordinates directly (not a metric id), so
/// the hot path never indexes the registry's metric table — registration by
/// other threads can therefore never race an increment.
class Counter {
 public:
  Counter() = default;
  // DBN_NO_THREAD_SAFETY_ANALYSIS: the intentional lock-free hot path —
  // inc() touches only the calling thread's own shard, whose cells never
  // relocate and are only ever grown by that same thread (ensure_cells
  // takes the shard lock to order growth against snapshot traversal).
  void inc(std::uint64_t n = 1) DBN_NO_THREAD_SAFETY_ANALYSIS;
  explicit operator bool() const { return registry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* registry, std::uint32_t u64_offset)
      : registry_(registry), u64_offset_(u64_offset) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t u64_offset_ = 0;
};

/// Point-in-time value (thread count, queue depth). Not sharded: set()/add()
/// hit one registry-global atomic whose address is stable for the registry's
/// lifetime.
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t value);
  void add(std::int64_t delta);
  explicit operator bool() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::atomic<std::int64_t>* cell) : cell_(cell) {}
  std::atomic<std::int64_t>* cell_ = nullptr;
};

/// Fixed-bucket distribution (bounds chosen at registration).
class Histogram {
 public:
  Histogram() = default;
  // DBN_NO_THREAD_SAFETY_ANALYSIS: same owner-thread shard-cell pattern
  // as Counter::inc (see that comment).
  void observe(double value) DBN_NO_THREAD_SAFETY_ANALYSIS;
  explicit operator bool() const { return registry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* registry, const void* info)
      : registry_(registry), info_(info) {}
  MetricsRegistry* registry_ = nullptr;
  const void* info_ = nullptr;  // MetricsRegistry::MetricInfo (stable address)
};

/// Streaming count/sum/sum-of-squares accumulator; the one place mean,
/// variance and coefficient of variation are computed (net/load_stats and
/// the snapshot table both lean on it).
struct Summary {
  std::uint64_t count = 0;
  double sum = 0.0;
  double sum_squares = 0.0;

  void observe(double value) {
    ++count;
    sum += value;
    sum_squares += value * value;
  }
  double mean() const;
  /// Population variance (0 for empty input).
  double variance() const;
  /// stddev / mean; 0 for empty or zero-mean input.
  double coefficient_of_variation() const;
};

/// One metric's merged state at snapshot time.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  std::uint64_t count = 0;          // counter value / histogram sample count
  double sum = 0.0;                 // histogram only
  std::int64_t value = 0;           // gauge only
  std::vector<double> bounds;       // histogram only
  std::vector<std::uint64_t> buckets;  // histogram only: bounds.size() + 1

  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
};

/// Renders one entry as its "metrics/1" JSON object (no trailing newline).
/// Shared by MetricsSnapshot::to_json and the metricsts/1 timeline writer
/// so both formats stay byte-compatible per entry.
void append_metric_json(const MetricSnapshot& entry, std::ostream& out);

/// All metrics of one registry, merged across threads, sorted by name.
struct MetricsSnapshot {
  std::vector<MetricSnapshot> entries;

  const MetricSnapshot* find(std::string_view name) const;
  /// The "metrics/1" JSON document (deterministic byte-for-byte).
  std::string to_json() const;
  /// Aligned-text rendering via common/table.
  void print(std::ostream& out, const std::string& caption = "") const;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry the built-in instrumentation records into.
  static MetricsRegistry& global();

  /// Registers (or looks up) a metric. Re-registration with the same name
  /// must use the same kind (and, for histograms, the same bounds).
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  /// `bounds` must be non-empty and strictly increasing.
  Histogram histogram(std::string_view name, std::vector<double> bounds);

  /// Merges every thread's shard into one deterministic snapshot. Safe to
  /// call concurrently with increments (relaxed reads).
  MetricsSnapshot snapshot() const;

  /// Zeroes every cell and gauge; registrations survive.
  void reset();

  std::size_t metric_count() const;

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct MetricInfo {
    std::string name;
    MetricKind kind = MetricKind::Counter;
    std::uint32_t u64_offset = 0;  // first u64 cell in each shard
    std::uint32_t u64_cells = 0;
    std::uint32_t f64_offset = 0;  // first f64 cell in each shard
    std::uint32_t f64_cells = 0;
    std::uint32_t gauge_index = 0;
    std::vector<double> bounds;
  };

  // Per-thread cell storage. Deques never relocate elements, so the owner
  // can fetch_add without holding `mutex`; `mutex` only guards growth
  // (owner) against traversal (snapshot/reset).
  struct Shard {
    Mutex mutex;
    std::deque<std::atomic<std::uint64_t>> u64 DBN_GUARDED_BY(mutex);
    std::deque<std::atomic<double>> f64 DBN_GUARDED_BY(mutex);
  };

  Shard& local_shard();
  void ensure_cells(Shard& shard) const;
  const MetricInfo& register_metric(std::string_view name, MetricKind kind,
                                    std::vector<double> bounds);

  const std::uint64_t registry_id_;
  mutable Mutex mutex_;
  // Deques: element addresses are stable across registration, so handles may
  // keep pointers into them without holding mutex_.
  std::deque<MetricInfo> metrics_ DBN_GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::uint32_t> by_name_
      DBN_GUARDED_BY(mutex_);
  std::vector<std::shared_ptr<Shard>> shards_ DBN_GUARDED_BY(mutex_);
  std::deque<std::atomic<std::int64_t>> gauges_ DBN_GUARDED_BY(mutex_);
  std::atomic<std::uint32_t> u64_total_{0};
  std::atomic<std::uint32_t> f64_total_{0};
};

}  // namespace dbn::obs
