// Tiny JSON-emission helpers shared by the metrics/trace exporters. The
// exporters write JSON by hand (no third-party dependency) and need two
// things done consistently: string escaping and *deterministic* double
// formatting, so that two identical runs export byte-identical documents.
#pragma once

#include <string>
#include <string_view>

namespace dbn::obs {

/// Escapes `text` for inclusion inside a JSON string literal (quotes not
/// added). Control characters become \u00XX.
std::string json_escape(std::string_view text);

/// Shortest decimal rendering that round-trips `value` (tries %.15g, falls
/// back to %.17g), with "inf"/"nan" never produced: non-finite values are
/// rendered as 0 (our schemas carry only finite numbers). Deterministic.
std::string json_number(double value);

}  // namespace dbn::obs
