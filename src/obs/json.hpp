// Tiny JSON helpers shared by the metrics/trace exporters and the live
// probes. The exporters write JSON by hand (no third-party dependency) and
// need two things done consistently: string escaping and *deterministic*
// double formatting, so that two identical runs export byte-identical
// documents. The probe clients (dbn_top, dbn_loadgen) read those same
// documents back, so a minimal parser lives here too.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dbn::obs {

/// Escapes `text` for inclusion inside a JSON string literal (quotes not
/// added). Control characters become \u00XX.
std::string json_escape(std::string_view text);

/// Shortest decimal rendering that round-trips `value` (tries %.15g, falls
/// back to %.17g), with "inf"/"nan" never produced: non-finite values are
/// rendered as 0 (our schemas carry only finite numbers). Deterministic.
std::string json_number(double value);

/// A parsed JSON value. Numbers ride as double (every counter this repo
/// emits fits 2^53 exactly); objects keep member order. Built for reading
/// this repo's own emissions (metrics/1, introspect/1), not as a general
/// validator — it accepts that subset plus ordinary standard JSON.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;                            // Kind::Array
  std::vector<std::pair<std::string, JsonValue>> members;  // Kind::Object

  bool is_object() const { return kind == Kind::Object; }
  bool is_array() const { return kind == Kind::Array; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Member coercions for probe readers: fallback when the member is
  /// missing or has the wrong kind.
  double number_at(std::string_view key, double fallback = 0.0) const;
  std::string_view string_at(std::string_view key,
                             std::string_view fallback = {}) const;
};

/// Parses one JSON document (the whole input, trailing whitespace allowed).
/// Returns nullopt on any syntax error or on nesting deeper than 64 levels.
std::optional<JsonValue> json_parse(std::string_view text);

}  // namespace dbn::obs
