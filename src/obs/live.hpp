// MetricsTimeline — periodic registry sampling into a bounded ring buffer
// (schema "metricsts/1").
//
// A terminal metrics/1 snapshot tells you *that* the queue shed requests;
// it cannot tell you *when*. The timeline closes that gap: a background
// thread samples MetricsRegistry::snapshot() every `interval` and retains
// the last `capacity` samples, each encoded as a delta — only the entries
// whose merged state changed since the previously retained sample ride in
// a sample line (the first sample carries everything). Entries keep their
// *cumulative* values, so offline tooling can check counter monotonicity
// across samples without replaying deltas (scripts/check_metrics.py).
//
// flush() writes the NDJSON timeline:
//   {"schema":"metricsts/1","interval_us":U,"samples":K,"dropped":D}
//   {"seq":S,"ts_us":T,"metrics":[<metrics/1 entry objects>]}
//   ...
// `seq` is the global sample index (monotone even after ring eviction);
// `dropped` counts evicted samples so a truncated timeline is visible.
//
// sample_now() is public and thread-safe so tests (and drain paths that
// want one final post-quiesce sample) can drive the timeline without the
// thread. snapshot() itself is safe against concurrent increments, so the
// sampler never blocks the instrumented hot paths.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <thread>

#include "common/mutex.hpp"
#include "obs/metrics.hpp"

namespace dbn::obs {

struct MetricsTimelineOptions {
  /// Registry to sample; defaults to the process-wide one.
  MetricsRegistry* registry = nullptr;
  /// Sampling period for the background thread.
  std::chrono::microseconds interval = std::chrono::seconds(1);
  /// Ring capacity in samples; older samples are dropped (and counted).
  std::size_t capacity = 4096;
};

class MetricsTimeline {
 public:
  explicit MetricsTimeline(MetricsTimelineOptions options = {});
  ~MetricsTimeline();

  MetricsTimeline(const MetricsTimeline&) = delete;
  MetricsTimeline& operator=(const MetricsTimeline&) = delete;

  /// Starts the background sampler (idempotent).
  void start();
  /// Stops the background sampler and joins it (idempotent). Retained
  /// samples survive; call sample_now() after for a final cut.
  void stop();

  /// Takes one sample immediately. Returns the number of entries that
  /// changed (and were therefore recorded); an unchanged registry still
  /// appends an empty sample so the timeline's clock keeps ticking.
  std::size_t sample_now();

  std::size_t sample_count() const;
  std::uint64_t dropped() const;

  /// Writes the metricsts/1 NDJSON document.
  void flush(std::ostream& out) const;

 private:
  struct Sample {
    std::uint64_t seq = 0;
    double ts_us = 0.0;
    std::vector<MetricSnapshot> entries;  // changed entries, cumulative values
  };

  void sampler_main();

  MetricsTimelineOptions options_;
  MetricsRegistry* registry_;

  mutable Mutex mutex_;
  std::deque<Sample> ring_ DBN_GUARDED_BY(mutex_);
  MetricsSnapshot previous_ DBN_GUARDED_BY(mutex_);
  bool have_previous_ DBN_GUARDED_BY(mutex_) = false;
  std::uint64_t next_seq_ DBN_GUARDED_BY(mutex_) = 0;
  std::uint64_t dropped_ DBN_GUARDED_BY(mutex_) = 0;

  Mutex wake_mutex_;
  CondVar wake_;
  bool stop_requested_ DBN_GUARDED_BY(wake_mutex_) = false;
  bool running_ DBN_GUARDED_BY(wake_mutex_) = false;
  // start() writes the handle before any other thread can observe it and
  // stop() joins it while no lock is held; the running_ protocol (above)
  // is what orders the two, so the handle itself needs no guard.
  std::thread sampler_;
};

}  // namespace dbn::obs
