#include "obs/trace.hpp"

#include <chrono>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/schema.hpp"
#include "obs/json.hpp"

namespace dbn::obs {

namespace detail {
std::atomic<TraceSink*> g_trace_sink{nullptr};
thread_local int t_trace_suppress = 0;
}  // namespace detail

namespace {

// memory_order_relaxed on both id counters: span ids and lane ids only
// need process-wide uniqueness, never ordering — nothing is published
// through them (NdjsonTraceSink renumbers spans in first-seen order for
// deterministic output precisely because allocation order is unordered).
std::atomic<std::uint64_t> g_next_span_id{1};
std::atomic<std::uint64_t> g_next_thread_lane{0};

struct ThreadLane {
  std::uint64_t lane = 0;
  bool overridden = false;
  bool assigned = false;
};

ThreadLane& thread_lane() {
  thread_local ThreadLane lane;
  return lane;
}

}  // namespace

const char* trace_phase_name(TracePhase phase) {
  switch (phase) {
    case TracePhase::Begin:
      return "B";
    case TracePhase::End:
      return "E";
    case TracePhase::Instant:
      return "i";
  }
  return "?";
}

const char* trace_clock_name(TraceClock clock) {
  switch (clock) {
    case TraceClock::Wall:
      return "wall";
    case TraceClock::Sim:
      return "sim";
    case TraceClock::Logical:
      return "logical";
  }
  return "?";
}

TraceArg targ(std::string_view key, std::string_view value) {
  return TraceArg{std::string(key), std::string(value), false};
}

TraceArg targ(std::string_view key, const char* value) {
  return TraceArg{std::string(key), std::string(value), false};
}

TraceArg targ(std::string_view key, std::int64_t value) {
  return TraceArg{std::string(key), std::to_string(value), true};
}

TraceArg targ(std::string_view key, std::uint64_t value) {
  return TraceArg{std::string(key), std::to_string(value), true};
}

TraceArg targ(std::string_view key, int value) {
  return targ(key, static_cast<std::int64_t>(value));
}

TraceArg targ(std::string_view key, double value) {
  return TraceArg{std::string(key), json_number(value), true};
}

void set_trace_sink(TraceSink* sink) {
  // memory_order_release, paired with the acquire load in trace_sink(): a
  // thread that observes the new pointer also observes every write the
  // installing thread made while constructing the sink. Removal (nullptr)
  // needs no ordering of its own, but a release store is required anyway so
  // the *installer's* earlier writes are not reordered past a later
  // re-install.
  detail::g_trace_sink.store(sink, std::memory_order_release);
}

void emit(TraceEvent event) {
  if (TraceSink* sink = trace_sink()) {
    sink->emit(event);
  }
}

void instant(std::string_view name, std::string_view category,
             TraceClock clock, double ts, std::vector<TraceArg> args,
             std::uint64_t span) {
  TraceSink* sink = trace_sink();
  if (sink == nullptr) {
    return;
  }
  TraceEvent event;
  event.name = std::string(name);
  event.category = std::string(category);
  event.phase = TracePhase::Instant;
  event.clock = clock;
  event.ts = ts;
  event.lane = current_lane();
  event.span = span;
  event.args = std::move(args);
  sink->emit(event);
}

std::uint64_t current_lane() {
  ThreadLane& lane = thread_lane();
  if (!lane.overridden && !lane.assigned) {
    lane.lane = g_next_thread_lane.fetch_add(1, std::memory_order_relaxed);
    lane.assigned = true;
  }
  return lane.lane;
}

LaneScope::LaneScope(std::uint64_t lane) {
  ThreadLane& tls = thread_lane();
  previous_ = tls.lane;
  had_previous_ = tls.overridden || tls.assigned;
  tls.lane = lane;
  tls.overridden = true;
}

LaneScope::~LaneScope() {
  ThreadLane& tls = thread_lane();
  tls.lane = previous_;
  tls.overridden = had_previous_;
}

Span::Span(Span&& other) noexcept
    : id_(std::exchange(other.id_, 0)),
      name_(std::move(other.name_)),
      category_(std::move(other.category_)),
      clock_(other.clock_),
      lane_(other.lane_),
      args_(std::move(other.args_)) {}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    if (id_ != 0) {
      end(0.0);
    }
    id_ = std::exchange(other.id_, 0);
    name_ = std::move(other.name_);
    category_ = std::move(other.category_);
    clock_ = other.clock_;
    lane_ = other.lane_;
    args_ = std::move(other.args_);
  }
  return *this;
}

Span::~Span() {
  if (id_ != 0) {
    end(0.0);
  }
}

Span Span::begin(std::string_view name, std::string_view category,
                 TraceClock clock, double ts) {
  Span span;
  TraceSink* sink = trace_sink();
  if (sink == nullptr) {
    return span;
  }
  span.id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  span.name_ = std::string(name);
  span.category_ = std::string(category);
  span.clock_ = clock;
  span.lane_ = current_lane();

  TraceEvent event;
  event.name = span.name_;
  event.category = span.category_;
  event.phase = TracePhase::Begin;
  event.clock = clock;
  event.ts = ts;
  event.lane = span.lane_;
  event.span = span.id_;
  sink->emit(event);
  return span;
}

Span& Span::arg(TraceArg a) {
  if (id_ != 0) {
    args_.push_back(std::move(a));
  }
  return *this;
}

void Span::instant(std::string_view name, double ts,
                   std::vector<TraceArg> args) {
  if (id_ == 0) {
    return;
  }
  TraceSink* sink = trace_sink();
  if (sink == nullptr) {
    return;
  }
  TraceEvent event;
  event.name = std::string(name);
  event.category = category_;
  event.phase = TracePhase::Instant;
  event.clock = clock_;
  event.ts = ts;
  event.lane = lane_;
  event.span = id_;
  event.args = std::move(args);
  sink->emit(event);
}

void Span::end(double ts) {
  if (id_ == 0) {
    return;
  }
  const std::uint64_t id = std::exchange(id_, 0);
  TraceSink* sink = trace_sink();
  if (sink == nullptr) {
    return;  // sink removed mid-span: drop the End rather than crash
  }
  TraceEvent event;
  event.name = std::move(name_);
  event.category = std::move(category_);
  event.phase = TracePhase::End;
  event.clock = clock_;
  event.ts = ts;
  event.lane = lane_;
  event.span = id;
  event.args = std::move(args_);
  sink->emit(event);
}

double wall_ts_micros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point origin = Clock::now();
  return std::chrono::duration<double, std::micro>(Clock::now() - origin)
      .count();
}

void MemoryTraceSink::emit(const TraceEvent& event) {
  const MutexLock lock(mutex_);
  events_.push_back(event);
}

std::vector<TraceEvent> MemoryTraceSink::events() const {
  const MutexLock lock(mutex_);
  return events_;
}

void MemoryTraceSink::clear() {
  const MutexLock lock(mutex_);
  events_.clear();
}

std::string ndjson_header() {
  return "{\"schema\":\"" + std::string(schema::kTrace) + "\"}";
}

std::string to_ndjson(const TraceEvent& event) {
  std::ostringstream out;
  out << "{\"name\":\"" << json_escape(event.name) << "\",\"cat\":\""
      << json_escape(event.category) << "\",\"ph\":\""
      << trace_phase_name(event.phase) << "\",\"clock\":\""
      << trace_clock_name(event.clock) << "\",\"ts\":" << json_number(event.ts)
      << ",\"lane\":" << event.lane;
  if (event.span != 0) {
    out << ",\"span\":" << event.span;
  }
  if (!event.args.empty()) {
    out << ",\"args\":{";
    for (std::size_t i = 0; i < event.args.size(); ++i) {
      const TraceArg& arg = event.args[i];
      if (i != 0) {
        out << ",";
      }
      out << "\"" << json_escape(arg.key) << "\":";
      if (arg.numeric) {
        out << arg.value;
      } else {
        out << "\"" << json_escape(arg.value) << "\"";
      }
    }
    out << "}";
  }
  out << "}";
  return out.str();
}

NdjsonTraceSink::NdjsonTraceSink(std::ostream& out) : out_(out) {
  out_ << ndjson_header() << "\n";
}

void NdjsonTraceSink::emit(const TraceEvent& event) {
  const MutexLock lock(mutex_);
  TraceEvent renumbered = event;
  if (event.span != 0) {
    const auto [it, inserted] =
        span_ids_.emplace(event.span, span_ids_.size() + 1);
    (void)inserted;
    renumbered.span = it->second;
  }
  out_ << to_ndjson(renumbered) << "\n";
}

}  // namespace dbn::obs
