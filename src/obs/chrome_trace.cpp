#include "obs/chrome_trace.hpp"

#include <ostream>

#include "obs/json.hpp"

namespace dbn::obs {

namespace {

int clock_pid(TraceClock clock) {
  switch (clock) {
    case TraceClock::Wall:
      return 1;
    case TraceClock::Sim:
      return 2;
    case TraceClock::Logical:
      return 3;
  }
  return 0;
}

void write_event(std::ostream& out, const TraceEvent& event) {
  out << "{\"name\":\"" << json_escape(event.name) << "\",\"cat\":\""
      << json_escape(event.category) << "\",\"ph\":\""
      << trace_phase_name(event.phase) << "\",\"ts\":"
      << json_number(event.ts) << ",\"pid\":" << clock_pid(event.clock)
      << ",\"tid\":" << event.lane;
  if (event.phase == TracePhase::Instant) {
    out << ",\"s\":\"t\"";  // thread-scoped instant marker
  }
  out << ",\"args\":{";
  bool first = true;
  if (event.span != 0) {
    out << "\"span\":" << event.span;
    first = false;
  }
  for (const TraceArg& arg : event.args) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\"" << json_escape(arg.key) << "\":";
    if (arg.numeric) {
      out << arg.value;
    } else {
      out << "\"" << json_escape(arg.value) << "\"";
    }
  }
  out << "}}";
}

void write_process_name(std::ostream& out, int pid, const char* name) {
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
      << ",\"args\":{\"name\":\"" << name << "\"}}";
}

}  // namespace

void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  write_process_name(out, 1, "wall clock");
  out << ",";
  write_process_name(out, 2, "simulator clock");
  out << ",";
  write_process_name(out, 3, "logical clock");
  for (const TraceEvent& event : events) {
    out << ",";
    write_event(out, event);
  }
  out << "]}\n";
}

ChromeTraceSink::ChromeTraceSink(std::ostream& out) : out_(out) {}

ChromeTraceSink::~ChromeTraceSink() { flush(); }

void ChromeTraceSink::emit(const TraceEvent& event) { buffer_.emit(event); }

void ChromeTraceSink::flush() {
  if (flushed_) {
    return;
  }
  flushed_ = true;
  write_chrome_trace(out_, buffer_.events());
}

}  // namespace dbn::obs
