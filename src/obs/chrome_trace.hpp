// Chrome trace_event exporter: serializes TraceEvents as the JSON array
// format understood by chrome://tracing and Perfetto (ui.perfetto.dev).
//
// Mapping: each clock domain becomes its own "process" (wall=1, sim=2,
// logical=3) so Perfetto never interleaves incomparable time axes; lanes
// become threads within that process (ThreadPool worker lanes, simulator
// site ranks). Span Begin/End map to ph "B"/"E", instants to ph "i" with
// thread scope. Chrome timestamps are microseconds; sim/logical ticks are
// exported 1:1 as if they were microseconds.
#pragma once

#include <iosfwd>
#include <vector>

#include "obs/trace.hpp"

namespace dbn::obs {

/// Writes the whole trace as one JSON document (displayTimeUnit ms).
void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events);

/// A TraceSink that buffers events and writes the Chrome JSON document when
/// flushed (or destroyed). The caller keeps ownership of `out`, which must
/// outlive the sink.
class ChromeTraceSink : public TraceSink {
 public:
  explicit ChromeTraceSink(std::ostream& out);
  ~ChromeTraceSink() override;

  void emit(const TraceEvent& event) override;
  void flush();

 private:
  std::ostream& out_;
  MemoryTraceSink buffer_;
  bool flushed_ = false;
};

}  // namespace dbn::obs
