#include "obs/live.hpp"

#include <ostream>
#include <utility>

#include "common/schema.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace dbn::obs {

namespace {

// Entries are only re-recorded when their merged state moved. Histogram
// bucket vectors need no inspection: any observation bumps `count`.
bool entry_changed(const MetricSnapshot& now, const MetricSnapshot& before) {
  return now.kind != before.kind || now.count != before.count ||
         now.sum != before.sum || now.value != before.value;
}

}  // namespace

MetricsTimeline::MetricsTimeline(MetricsTimelineOptions options)
    : options_(options),
      registry_(options.registry != nullptr ? options.registry
                                            : &MetricsRegistry::global()) {}

MetricsTimeline::~MetricsTimeline() { stop(); }

void MetricsTimeline::start() {
  {
    const MutexLock lock(wake_mutex_);
    if (running_) {
      return;
    }
    stop_requested_ = false;
    running_ = true;
  }
  sampler_ = std::thread([this] { sampler_main(); });
}

void MetricsTimeline::stop() {
  {
    const MutexLock lock(wake_mutex_);
    if (!running_) {
      return;
    }
    stop_requested_ = true;
  }
  wake_.notify_all();
  sampler_.join();
  const MutexLock lock(wake_mutex_);
  running_ = false;
}

void MetricsTimeline::sampler_main() {
  RelockableLock lock(wake_mutex_);
  while (!stop_requested_) {
    lock.unlock();
    sample_now();
    lock.lock();
    // Explicit re-check plus an un-predicated timed wait (the analysis
    // can see this function's guarded reads; a predicate lambda would
    // need its own annotation). stop() flips stop_requested_ under
    // wake_mutex_, so it cannot slip between the check and the wait; a
    // spurious wakeup just takes the next sample early, which is
    // harmless.
    if (stop_requested_) {
      break;
    }
    wake_.wait_for(lock, options_.interval);
  }
}

std::size_t MetricsTimeline::sample_now() {
  MetricsSnapshot snapshot = registry_->snapshot();
  const double ts = wall_ts_micros();

  const MutexLock lock(mutex_);
  Sample sample;
  sample.seq = next_seq_++;
  sample.ts_us = ts;
  for (const MetricSnapshot& entry : snapshot.entries) {
    const MetricSnapshot* before =
        have_previous_ ? previous_.find(entry.name) : nullptr;
    if (before == nullptr || entry_changed(entry, *before)) {
      sample.entries.push_back(entry);
    }
  }
  const std::size_t changed = sample.entries.size();
  ring_.push_back(std::move(sample));
  while (ring_.size() > options_.capacity) {
    ring_.pop_front();
    ++dropped_;
  }
  previous_ = std::move(snapshot);
  have_previous_ = true;
  return changed;
}

std::size_t MetricsTimeline::sample_count() const {
  const MutexLock lock(mutex_);
  return ring_.size();
}

std::uint64_t MetricsTimeline::dropped() const {
  const MutexLock lock(mutex_);
  return dropped_;
}

void MetricsTimeline::flush(std::ostream& out) const {
  const MutexLock lock(mutex_);
  out << "{\"schema\":\"" << schema::kMetricsTs
      << "\",\"interval_us\":" << options_.interval.count()
      << ",\"samples\":" << ring_.size() << ",\"dropped\":" << dropped_
      << "}\n";
  for (const Sample& sample : ring_) {
    out << "{\"seq\":" << sample.seq
        << ",\"ts_us\":" << json_number(sample.ts_us) << ",\"metrics\":[";
    bool first = true;
    for (const MetricSnapshot& entry : sample.entries) {
      if (!first) {
        out << ",";
      }
      first = false;
      append_metric_json(entry, out);
    }
    out << "]}\n";
  }
}

}  // namespace dbn::obs
