#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dbn::obs {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) {
    return "0";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.15g", value);
  if (std::strtod(buf, nullptr) != value) {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  return buf;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::Object) {
    return nullptr;
  }
  for (const auto& [name, value] : members) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

double JsonValue::number_at(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::Number ? v->number : fallback;
}

std::string_view JsonValue::string_at(std::string_view key,
                                      std::string_view fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::String ? std::string_view(v->string)
                                                 : fallback;
}

namespace {

// Recursive-descent parser. `pos` always points at the next unread byte;
// every helper leaves it just past what it consumed or returns false with
// the document rejected wholesale (no partial results escape json_parse).
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out) {
    if (!parse_value(out, 0)) {
      return false;
    }
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  static constexpr std::size_t kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return false;
    }
    pos_ += literal.size();
    return true;
  }

  bool parse_value(JsonValue& out, std::size_t depth) {
    if (depth > kMaxDepth) {
      return false;
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"':
        out.kind = JsonValue::Kind::String;
        return parse_string(out.string);
      case 't':
        out.kind = JsonValue::Kind::Bool;
        out.boolean = true;
        return consume_literal("true");
      case 'f':
        out.kind = JsonValue::Kind::Bool;
        out.boolean = false;
        return consume_literal("false");
      case 'n':
        out.kind = JsonValue::Kind::Null;
        return consume_literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, std::size_t depth) {
    // Container depth is capped at entry, not just via the child values:
    // otherwise 65 nested *empty* containers parse fine while 65 around a
    // scalar are rejected (the scalar trips the parse_value guard, an
    // empty container never recurses). Found by the json_parse fuzz
    // battery's depth probes.
    if (depth >= kMaxDepth) {
      return false;
    }
    out.kind = JsonValue::Kind::Object;
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) {
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) {
        return false;
      }
      skip_ws();
      if (!consume(':')) {
        return false;
      }
      JsonValue value;
      if (!parse_value(value, depth + 1)) {
        return false;
      }
      out.members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume(',')) {
        continue;
      }
      return consume('}');
    }
  }

  bool parse_array(JsonValue& out, std::size_t depth) {
    if (depth >= kMaxDepth) {  // see parse_object: empty containers too
      return false;
    }
    out.kind = JsonValue::Kind::Array;
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) {
      return true;
    }
    while (true) {
      JsonValue value;
      if (!parse_value(value, depth + 1)) {
        return false;
      }
      out.items.push_back(std::move(value));
      skip_ws();
      if (consume(',')) {
        continue;
      }
      return consume(']');
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) {
      return false;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        return false;
      }
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
        case '\\':
        case '/':
          out.push_back(escape);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return false;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // Our emitters only \u-escape controls; decode the BMP point as
          // UTF-8 and leave surrogate pairs to the validator we are not.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    // JSON forbids leading zeros ("01"); strtod below would accept them.
    if (pos_ + 1 < text_.size() && text_[pos_] == '0' &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      return false;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      return false;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return false;
    }
    out.kind = JsonValue::Kind::Number;
    out.number = value;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text) {
  JsonValue out;
  if (!JsonParser(text).parse(out)) {
    return std::nullopt;
  }
  return out;
}

}  // namespace dbn::obs
