#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dbn::obs {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) {
    return "0";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.15g", value);
  if (std::strtod(buf, nullptr) != value) {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  return buf;
}

}  // namespace dbn::obs
