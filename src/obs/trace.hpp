// TraceSink / Span — structured event tracing for every engine in the repo
// (schema "trace/1").
//
// Model: a flat stream of TraceEvents. A *span* is a Begin/End event pair
// sharing a process-unique span id (route queries, batch chunks, reliable
// transfers); *instant* events mark single points (a hop, a drop, a fault)
// and may reference the enclosing span. Every event carries:
//
//   - a clock domain. Routing is a combinatorial computation with no
//     meaningful wall time, the simulator has its own virtual clock, and the
//     batch engine's workers do run in real time — mixing those on one axis
//     would be nonsense, so events declare which clock their `ts` is on:
//       Logical  hop index within a route (deterministic across runs)
//       Sim      simulator virtual time
//       Wall     microseconds since process start (batch worker lanes)
//   - a lane: the horizontal track the event belongs to (thread-pool worker
//     index, simulator site rank, or a per-thread default).
//
// Tracing is disabled by default. The entire hot-path cost when disabled is
// tracing_enabled(): one relaxed atomic load and a branch — no allocation,
// no virtual call (verified by BM_UntracedRoute and the no-sink test).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mutex.hpp"

namespace dbn::obs {

enum class TracePhase : std::uint8_t { Begin, End, Instant };
enum class TraceClock : std::uint8_t { Wall, Sim, Logical };

const char* trace_phase_name(TracePhase phase);   // "B", "E", "i"
const char* trace_clock_name(TraceClock clock);   // "wall", "sim", "logical"

/// One key/value argument. Values are pre-rendered to strings; `numeric`
/// controls whether exporters quote them.
struct TraceArg {
  std::string key;
  std::string value;
  bool numeric = false;
};

TraceArg targ(std::string_view key, std::string_view value);
TraceArg targ(std::string_view key, const char* value);
TraceArg targ(std::string_view key, std::int64_t value);
TraceArg targ(std::string_view key, std::uint64_t value);
TraceArg targ(std::string_view key, int value);
TraceArg targ(std::string_view key, double value);

struct TraceEvent {
  std::string name;
  std::string category;
  TracePhase phase = TracePhase::Instant;
  TraceClock clock = TraceClock::Logical;
  double ts = 0.0;
  std::uint64_t lane = 0;
  std::uint64_t span = 0;  // owning span id; 0 = none
  std::vector<TraceArg> args;
};

/// Receives every event. Implementations must be thread-safe: the batch
/// engine emits from all pool workers concurrently.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const TraceEvent& event) = 0;
};

namespace detail {
extern std::atomic<TraceSink*> g_trace_sink;
extern thread_local int t_trace_suppress;
}  // namespace detail

/// Installs (or, with nullptr, removes) the process-global sink. The caller
/// keeps ownership and must keep the sink alive until after it is removed.
void set_trace_sink(TraceSink* sink);

inline bool tracing_enabled() {
  // memory_order_relaxed: this is a pure hint — the result is only ever
  // used to skip instrumentation work, never to dereference the sink. Any
  // code that actually emits re-reads the pointer through trace_sink()'s
  // acquire load, so a stale answer here costs at most one skipped (or
  // wasted) event around an enable/disable flip, by design.
  return detail::g_trace_sink.load(std::memory_order_relaxed) != nullptr &&
         detail::t_trace_suppress == 0;
}

/// RAII: silences tracing_enabled() on this thread while alive (nestable).
/// The serving path uses this around bulk routing so installing a sink for
/// sampled per-request spans does not also light up the per-hop route
/// tracer on every query in every batch — that detail level stays a CLI
/// debugging feature. Thread-scoped: a guard on a dispatcher thread says
/// nothing about pool workers; whoever runs the loop holds the guard.
class TraceSuppressScope {
 public:
  TraceSuppressScope() { ++detail::t_trace_suppress; }
  ~TraceSuppressScope() { --detail::t_trace_suppress; }
  TraceSuppressScope(const TraceSuppressScope&) = delete;
  TraceSuppressScope& operator=(const TraceSuppressScope&) = delete;
};

inline TraceSink* trace_sink() {
  // memory_order_acquire, paired with the release store in
  // set_trace_sink(): observing the pointer implies observing the fully
  // constructed sink behind it.
  return detail::g_trace_sink.load(std::memory_order_acquire);
}

/// Emits through the global sink; no-op when tracing is disabled.
void emit(TraceEvent event);

/// Convenience: an instant event on the current lane.
void instant(std::string_view name, std::string_view category,
             TraceClock clock, double ts, std::vector<TraceArg> args = {},
             std::uint64_t span = 0);

/// The lane events on this thread default to. Threads get small sequential
/// ids on first use; LaneScope overrides (the batch engine sets the pool
/// worker index, the simulator sets site ranks).
std::uint64_t current_lane();

class LaneScope {
 public:
  explicit LaneScope(std::uint64_t lane);
  ~LaneScope();
  LaneScope(const LaneScope&) = delete;
  LaneScope& operator=(const LaneScope&) = delete;

 private:
  std::uint64_t previous_;
  bool had_previous_;
};

/// RAII Begin/End pair. begin() returns an inert span when tracing is
/// disabled (operations no-op). Args attached via arg() are carried on the
/// *End* event, so a span can accumulate results while it runs.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  static Span begin(std::string_view name, std::string_view category,
                    TraceClock clock = TraceClock::Logical, double ts = 0.0);

  explicit operator bool() const { return id_ != 0; }
  std::uint64_t id() const { return id_; }

  Span& arg(TraceArg a);

  /// Child instant event inside this span.
  void instant(std::string_view name, double ts,
               std::vector<TraceArg> args = {});

  void end(double ts);

 private:
  std::uint64_t id_ = 0;
  std::string name_;
  std::string category_;
  TraceClock clock_ = TraceClock::Logical;
  std::uint64_t lane_ = 0;
  std::vector<TraceArg> args_;
};

/// Microseconds since the first call in this process (Wall clock origin).
double wall_ts_micros();

/// Collects events in memory (test + dbn_trace pretty-printer backend).
class MemoryTraceSink : public TraceSink {
 public:
  void emit(const TraceEvent& event) override;
  std::vector<TraceEvent> events() const;
  void clear();

 private:
  mutable Mutex mutex_;
  std::vector<TraceEvent> events_ DBN_GUARDED_BY(mutex_);
};

/// Streams newline-delimited JSON (schema "trace/1": one header line, then
/// one object per event). Span ids are renumbered in first-seen order so two
/// identical runs produce byte-identical output even though the process-wide
/// id counter differs.
class NdjsonTraceSink : public TraceSink {
 public:
  explicit NdjsonTraceSink(std::ostream& out);
  void emit(const TraceEvent& event) override;

 private:
  // The stream is bound at construction (single-threaded) and written
  // only inside emit()'s critical section; a reference member cannot be
  // reseated, so mutex_ guards the map and serializes the writes.
  std::ostream& out_;
  Mutex mutex_;
  std::unordered_map<std::uint64_t, std::uint64_t> span_ids_
      DBN_GUARDED_BY(mutex_);
};

/// Renders one event as a trace/1 NDJSON line (no trailing newline).
std::string to_ndjson(const TraceEvent& event);

/// The trace/1 NDJSON header line (no trailing newline).
std::string ndjson_header();

}  // namespace dbn::obs
