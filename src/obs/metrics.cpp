#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "common/contract.hpp"
#include "common/schema.hpp"
#include "common/table.hpp"
#include "obs/json.hpp"

namespace dbn::obs {

namespace {

std::atomic<std::uint64_t> g_next_registry_id{1};

/// Portable atomic fetch-add for doubles (std::atomic<double>::fetch_add is
/// C++20 but spotty in older standard libraries).
void atomic_add(std::atomic<double>& cell, double delta) {
  double current = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(current, current + delta,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::Counter:
      return "counter";
    case MetricKind::Gauge:
      return "gauge";
    case MetricKind::Histogram:
      return "histogram";
  }
  return "unknown";
}

double Summary::mean() const {
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double Summary::variance() const {
  if (count == 0) {
    return 0.0;
  }
  const double m = mean();
  const double v = sum_squares / static_cast<double>(count) - m * m;
  return v > 0.0 ? v : 0.0;  // clamp the usual catastrophic-cancellation dust
}

double Summary::coefficient_of_variation() const {
  const double m = mean();
  if (count == 0 || m == 0.0) {
    return 0.0;
  }
  return std::sqrt(variance()) / m;
}

// --- handles ---------------------------------------------------------------

void Counter::inc(std::uint64_t n) {
  if (registry_ == nullptr) {
    return;
  }
  MetricsRegistry::Shard& shard = registry_->local_shard();
  // Reading our own shard's size without the shard mutex is safe: only the
  // owning thread ever grows its shard (ensure_cells), so the size cannot
  // change under us.
  if (shard.u64.size() <= u64_offset_) {
    registry_->ensure_cells(shard);
  }
  // memory_order_relaxed: counter cells carry independent tallies, not
  // publication. snapshot() reads them relaxed too and merges; exactness
  // after the incrementing threads are joined is what test_obs and the
  // concurrency stress suite verify.
  shard.u64[u64_offset_].fetch_add(n, std::memory_order_relaxed);
}

void Gauge::set(std::int64_t value) {
  if (cell_ != nullptr) {
    cell_->store(value, std::memory_order_relaxed);
  }
}

void Gauge::add(std::int64_t delta) {
  if (cell_ != nullptr) {
    cell_->fetch_add(delta, std::memory_order_relaxed);
  }
}

void Histogram::observe(double value) {
  if (registry_ == nullptr) {
    return;
  }
  const auto& info = *static_cast<const MetricsRegistry::MetricInfo*>(info_);
  MetricsRegistry::Shard& shard = registry_->local_shard();
  if (shard.u64.size() < info.u64_offset + info.u64_cells ||
      shard.f64.size() < info.f64_offset + info.f64_cells) {
    registry_->ensure_cells(shard);
  }
  // Upper-inclusive buckets: bucket i counts bounds[i-1] < v <= bounds[i];
  // the last cell is the implicit overflow bucket (v > bounds.back()).
  const auto it =
      std::lower_bound(info.bounds.begin(), info.bounds.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - info.bounds.begin());
  shard.u64[info.u64_offset + bucket].fetch_add(1, std::memory_order_relaxed);
  atomic_add(shard.f64[info.f64_offset], value);
}

// --- registry ---------------------------------------------------------------

MetricsRegistry::MetricsRegistry()
    : registry_id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {
}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

const MetricsRegistry::MetricInfo& MetricsRegistry::register_metric(
    std::string_view name, MetricKind kind, std::vector<double> bounds) {
  DBN_REQUIRE(!name.empty(), "metric names must be non-empty");
  const MutexLock lock(mutex_);
  const auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    const MetricInfo& existing = metrics_[it->second];
    DBN_REQUIRE(existing.kind == kind,
                "metric re-registered with a different kind");
    DBN_REQUIRE(kind != MetricKind::Histogram || existing.bounds == bounds,
                "histogram re-registered with different bounds");
    return existing;
  }
  MetricInfo info;
  info.name = std::string(name);
  info.kind = kind;
  info.bounds = std::move(bounds);
  info.u64_offset = u64_total_.load(std::memory_order_relaxed);
  info.f64_offset = f64_total_.load(std::memory_order_relaxed);
  switch (kind) {
    case MetricKind::Counter:
      info.u64_cells = 1;
      break;
    case MetricKind::Gauge:
      info.gauge_index = static_cast<std::uint32_t>(gauges_.size());
      gauges_.emplace_back(0);
      break;
    case MetricKind::Histogram:
      info.u64_cells = static_cast<std::uint32_t>(info.bounds.size()) + 1;
      info.f64_cells = 1;
      break;
  }
  // memory_order_release, paired with the acquire loads in ensure_cells():
  // a handle is published to other threads by the caller's own
  // synchronization, but the cell *totals* travel through these atomics —
  // the release/acquire pair guarantees ensure_cells sizes a shard for
  // every metric registered before the handle it is servicing was created,
  // so the handle's offset is always within the freshly grown shard.
  u64_total_.store(info.u64_offset + info.u64_cells,
                   std::memory_order_release);
  f64_total_.store(info.f64_offset + info.f64_cells,
                   std::memory_order_release);
  metrics_.push_back(std::move(info));
  const std::uint32_t id = static_cast<std::uint32_t>(metrics_.size()) - 1;
  by_name_.emplace(metrics_.back().name, id);
  return metrics_.back();
}

Counter MetricsRegistry::counter(std::string_view name) {
  const MetricInfo& info = register_metric(name, MetricKind::Counter, {});
  return Counter(this, info.u64_offset);
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  const MetricInfo& info = register_metric(name, MetricKind::Gauge, {});
  // Registration-time only: the returned handle keeps the cell's stable
  // address and never touches gauges_ again, so re-taking the lock for
  // the index costs nothing on any hot path.
  const MutexLock lock(mutex_);
  return Gauge(&gauges_[info.gauge_index]);
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::vector<double> bounds) {
  DBN_REQUIRE(!bounds.empty(), "histograms need at least one bucket bound");
  DBN_REQUIRE(std::is_sorted(bounds.begin(), bounds.end()) &&
                  std::adjacent_find(bounds.begin(), bounds.end()) ==
                      bounds.end(),
              "histogram bounds must be strictly increasing");
  const MetricInfo& info =
      register_metric(name, MetricKind::Histogram, std::move(bounds));
  return Histogram(this, &info);
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  struct ThreadShards {
    std::uint64_t cached_id = 0;
    Shard* cached = nullptr;
    // Shards are shared with the registry so a shard outlives whichever of
    // thread / registry dies first. Keyed by the registry's unique id, never
    // its address, so a registry reallocated at the same address cannot pick
    // up a stale shard.
    std::unordered_map<std::uint64_t, std::shared_ptr<Shard>> by_registry;
  };
  thread_local ThreadShards tls;
  if (tls.cached_id == registry_id_ && tls.cached != nullptr) {
    return *tls.cached;
  }
  auto it = tls.by_registry.find(registry_id_);
  if (it == tls.by_registry.end()) {
    auto shard = std::make_shared<Shard>();
    {
      const MutexLock lock(mutex_);
      shards_.push_back(shard);
    }
    it = tls.by_registry.emplace(registry_id_, std::move(shard)).first;
  }
  tls.cached_id = registry_id_;
  tls.cached = it->second.get();
  return *tls.cached;
}

void MetricsRegistry::ensure_cells(Shard& shard) const {
  // Only the owning thread grows its shard; the lock orders growth against a
  // concurrent snapshot()/reset() traversal. Deque growth never relocates
  // existing cells, so lock-free fetch_adds on them stay valid throughout.
  const MutexLock lock(shard.mutex);
  const std::size_t u64_target = u64_total_.load(std::memory_order_acquire);
  while (shard.u64.size() < u64_target) {
    shard.u64.emplace_back(0);
  }
  const std::size_t f64_target = f64_total_.load(std::memory_order_acquire);
  while (shard.f64.size() < f64_target) {
    shard.f64.emplace_back(0.0);
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const MutexLock lock(mutex_);
  std::vector<std::uint64_t> u64(u64_total_.load(std::memory_order_relaxed),
                                 0);
  std::vector<double> f64(f64_total_.load(std::memory_order_relaxed), 0.0);
  for (const auto& shard : shards_) {
    const MutexLock shard_lock(shard->mutex);
    // memory_order_relaxed cell reads: a snapshot taken while other threads
    // increment is a valid cut (each cell individually atomic), not a
    // linearizable cross-cell one — callers that need exact totals join
    // their threads first. The shard mutex only orders growth, not counts.
    const std::size_t nu = std::min(shard->u64.size(), u64.size());
    for (std::size_t i = 0; i < nu; ++i) {
      u64[i] += shard->u64[i].load(std::memory_order_relaxed);
    }
    const std::size_t nf = std::min(shard->f64.size(), f64.size());
    for (std::size_t i = 0; i < nf; ++i) {
      f64[i] += shard->f64[i].load(std::memory_order_relaxed);
    }
  }

  MetricsSnapshot out;
  out.entries.reserve(metrics_.size());
  for (const MetricInfo& info : metrics_) {
    MetricSnapshot entry;
    entry.name = info.name;
    entry.kind = info.kind;
    switch (info.kind) {
      case MetricKind::Counter:
        entry.count = u64[info.u64_offset];
        break;
      case MetricKind::Gauge:
        entry.value =
            gauges_[info.gauge_index].load(std::memory_order_relaxed);
        break;
      case MetricKind::Histogram: {
        entry.bounds = info.bounds;
        entry.buckets.assign(u64.begin() + info.u64_offset,
                             u64.begin() + info.u64_offset + info.u64_cells);
        for (std::uint64_t b : entry.buckets) {
          entry.count += b;
        }
        entry.sum = f64[info.f64_offset];
        break;
      }
    }
    out.entries.push_back(std::move(entry));
  }
  std::sort(out.entries.begin(), out.entries.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

void MetricsRegistry::reset() {
  const MutexLock lock(mutex_);
  for (const auto& shard : shards_) {
    const MutexLock shard_lock(shard->mutex);
    for (auto& cell : shard->u64) {
      cell.store(0, std::memory_order_relaxed);
    }
    for (auto& cell : shard->f64) {
      cell.store(0.0, std::memory_order_relaxed);
    }
  }
  for (auto& gauge : gauges_) {
    gauge.store(0, std::memory_order_relaxed);
  }
}

std::size_t MetricsRegistry::metric_count() const {
  const MutexLock lock(mutex_);
  return metrics_.size();
}

// --- snapshot export ---------------------------------------------------------

const MetricSnapshot* MetricsSnapshot::find(std::string_view name) const {
  for (const MetricSnapshot& entry : entries) {
    if (entry.name == name) {
      return &entry;
    }
  }
  return nullptr;
}

void append_metric_json(const MetricSnapshot& entry, std::ostream& out) {
  out << "{\"name\":\"" << json_escape(entry.name) << "\",\"kind\":\""
      << metric_kind_name(entry.kind) << "\"";
  switch (entry.kind) {
    case MetricKind::Counter:
      out << ",\"count\":" << entry.count;
      break;
    case MetricKind::Gauge:
      out << ",\"value\":" << entry.value;
      break;
    case MetricKind::Histogram: {
      out << ",\"count\":" << entry.count << ",\"sum\":"
          << json_number(entry.sum) << ",\"bounds\":[";
      for (std::size_t i = 0; i < entry.bounds.size(); ++i) {
        if (i != 0) {
          out << ",";
        }
        out << json_number(entry.bounds[i]);
      }
      out << "],\"buckets\":[";
      for (std::size_t i = 0; i < entry.buckets.size(); ++i) {
        if (i != 0) {
          out << ",";
        }
        out << entry.buckets[i];
      }
      out << "]";
      break;
    }
  }
  out << "}";
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream out;
  out << "{\"schema\":\"" << schema::kMetrics << "\",\"metrics\":[";
  bool first = true;
  for (const MetricSnapshot& entry : entries) {
    if (!first) {
      out << ",";
    }
    first = false;
    append_metric_json(entry, out);
  }
  out << "]}\n";
  return out.str();
}

void MetricsSnapshot::print(std::ostream& out,
                            const std::string& caption) const {
  Table table({"metric", "kind", "value", "detail"});
  for (const MetricSnapshot& entry : entries) {
    std::string value;
    std::string detail;
    switch (entry.kind) {
      case MetricKind::Counter:
        value = std::to_string(entry.count);
        break;
      case MetricKind::Gauge:
        value = std::to_string(entry.value);
        break;
      case MetricKind::Histogram: {
        value = std::to_string(entry.count);
        std::ostringstream d;
        d << "mean=" << Table::num(entry.mean(), 3) << " buckets=[";
        for (std::size_t i = 0; i < entry.buckets.size(); ++i) {
          if (i != 0) {
            d << " ";
          }
          d << entry.buckets[i];
        }
        d << "]";
        detail = d.str();
        break;
      }
    }
    table.add_row({entry.name, metric_kind_name(entry.kind), std::move(value),
                   std::move(detail)});
  }
  table.print(out, caption);
}

}  // namespace dbn::obs
