// Brute-force string oracles.
//
// These are the "conceptually simpler pattern matching algorithms" the
// paper's Section 4 mentions as viable for small diameters. They double as
// test oracles for the linear-time implementations and as the O(k^3)
// baseline in the complexity benchmarks.
#pragma once

#include <cstddef>
#include <vector>

#include "strings/matching.hpp"
#include "strings/symbol.hpp"

namespace dbn::strings::naive {

/// Border array by direct comparison. O(n^3).
std::vector<int> border_array(SymbolView pattern);

/// Longest suffix of x that is a prefix of y, by direct comparison. O(n^2).
int suffix_prefix_overlap(SymbolView x, SymbolView y);

/// l_{i0+1, j0+1}(x, y) by direct comparison over all lengths. O(k) per call.
int matching_l(SymbolView x, SymbolView y, std::size_t i0, std::size_t j0);

/// r_{i0+1, j0+1}(x, y) by direct comparison over all lengths. O(k) per call.
int matching_r(SymbolView x, SymbolView y, std::size_t i0, std::size_t j0);

/// min over i, j of (2k-1 + i - j - l_{i,j}) by full enumeration. O(k^3).
OverlapMin min_l_cost(SymbolView x, SymbolView y);

/// All occurrences of pattern in text by direct comparison. O(n*m).
std::vector<std::size_t> find_all(SymbolView text, SymbolView pattern);

/// Length of the longest common substring of a and b. O(n^2 m) — oracle for
/// the suffix-tree common-substring machinery.
int longest_common_substring(SymbolView a, SymbolView b);

}  // namespace dbn::strings::naive
