// Suffix automaton of a word — the third independent engine for the
// Theorem 2 side-minimum (after the Algorithm 3 failure-function scan and
// the Algorithm 4 suffix tree), used for cross-validation and in the
// matching-kernel ablation benchmark.
//
// The automaton recognizes exactly the substrings of its text; walking a
// second word through it yields, for every end position j, the longest
// suffix of that prefix occurring in the text (the matching statistics),
// and suffix-link bookkeeping turns those into the exact minimum of
// 2k-1 + i - j - l_{i,j} in O(k) total (derivation in the .cpp).
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "strings/matching.hpp"
#include "strings/symbol.hpp"

namespace dbn::strings {

/// Suffix automaton (Blumer et al. / online construction). O(n log sigma)
/// build, at most 2n-1 states.
class SuffixAutomaton {
 public:
  explicit SuffixAutomaton(SymbolView text);

  int state_count() const { return static_cast<int>(states_.size()); }

  /// True iff pattern is a substring of the text.
  bool contains(SymbolView pattern) const;

  /// For every prefix t[0..j] of t, the length of its longest suffix that
  /// occurs in the text (matching statistics). O(|t| log sigma).
  std::vector<int> matching_statistics(SymbolView t) const;

  /// Length of the longest common substring of the text and t.
  int longest_common_substring(SymbolView t) const;

  /// Number of distinct non-empty substrings of the text (a classic
  /// automaton corollary; doubles as a structural self-check).
  std::uint64_t distinct_substring_count() const;

 private:
  friend OverlapMin min_l_cost_suffix_automaton(SymbolView x, SymbolView y);

  struct State {
    int len = 0;               // longest string in this endpos class
    int link = -1;             // suffix link
    int min_end = 0;           // smallest end position (1-based length into
                               // the text) of any occurrence
    std::map<Symbol, int> next;
  };

  void extend(Symbol c);
  void finalize_min_end();

  std::vector<State> states_;
  int last_ = 0;
};

/// Same contract as min_l_cost / min_l_cost_suffix_tree: the minimum of
/// 2k-1 + i - j - l_{i,j}(x,y) with a witness, via the suffix automaton of
/// x walked over y. O(k log sigma) time, O(k) space.
OverlapMin min_l_cost_suffix_automaton(SymbolView x, SymbolView y);

}  // namespace dbn::strings
