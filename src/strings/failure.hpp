// Morris–Pratt failure functions and the overlap primitive behind the
// paper's Algorithm 1 (Property 1 reduces the directed-graph distance to
// the longest suffix of X that is a prefix of Y).
#pragma once

#include <cstddef>
#include <vector>

#include "strings/symbol.hpp"

namespace dbn::strings {

/// Morris–Pratt failure function (border array).
///
/// border[i] is the length of the longest proper border of the prefix
/// p[0..i] (both a proper prefix and a proper suffix of it). border has the
/// same length as `pattern`. O(n) time and space.
std::vector<int> border_array(SymbolView pattern);

/// Length of the longest suffix of `x` that is also a prefix of `y`
/// (the quantity `l` of the paper's equation (2), there with x = y = k).
///
/// Runs the MP automaton of `y` over `x` and reports the match length at
/// the end of `x`, never letting it reach |y| by taking the border first
/// (a full match of y inside x is not a suffix-prefix overlap unless it
/// ends exactly at the end of x, which the final value captures).
/// O(|x| + |y|) time, O(|y|) space.
int suffix_prefix_overlap(SymbolView x, SymbolView y);

/// All start positions (0-based) at which `pattern` occurs in `text`,
/// via Knuth–Morris–Pratt. An empty pattern occurs at every position
/// 0..|text|. O(|text| + |pattern|) time.
std::vector<std::size_t> kmp_find_all(SymbolView text, SymbolView pattern);

}  // namespace dbn::strings
