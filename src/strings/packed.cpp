#include "strings/packed.hpp"

#include <algorithm>
#include <bit>

#include "common/contract.hpp"

namespace dbn::strings {

namespace {

constexpr __uint128_t splat(std::uint64_t half) {
  return (static_cast<__uint128_t>(half) << 64) | half;
}

// Per-cell low-bit masks: one set bit at the bottom of every 2-bit (resp.
// 4-bit) cell of the lane.
constexpr __uint128_t kLsb2 = splat(0x5555555555555555ull);
constexpr __uint128_t kLsb4 = splat(0x1111111111111111ull);

constexpr std::uint32_t kLaneBits = 128;

// The kernels below are templated on the lane type: a 128-bit lane covers
// every packable word, but when the word fits 64 bits (e.g. the whole of
// DG(2, k <= 32)) every shift/XOR/mask in the sweep is a single-register
// op instead of a carried pair, which roughly halves the kernel cost on
// the words the routing benchmarks actually use. Dispatch is one
// comparison per call (width * size <= 64).

template <typename Lane>
constexpr Lane lane_splat(std::uint64_t half) {
  if constexpr (sizeof(Lane) == 8) {
    return half;
  } else {
    return (static_cast<Lane>(half) << 64) | half;
  }
}

// The low `bits` bits set (bits <= bit width of Lane).
template <typename Lane>
Lane low_mask_t(std::uint32_t bits) {
  if (bits >= sizeof(Lane) * 8) {
    return ~static_cast<Lane>(0);
  }
  return (static_cast<Lane>(1) << bits) - 1;
}

__uint128_t low_mask(std::uint32_t bits) {
  return low_mask_t<__uint128_t>(bits);
}

template <typename Lane>
int lane_ctz(Lane v) {
  if constexpr (sizeof(Lane) == 8) {
    return std::countr_zero(v);
  } else {
    const auto lo = static_cast<std::uint64_t>(v);
    if (lo != 0) {
      return std::countr_zero(lo);
    }
    return 64 + std::countr_zero(static_cast<std::uint64_t>(v >> 64));
  }
}

int countr_zero128(__uint128_t v) { return lane_ctz(v); }

// Per-cell equality mask: bit i*width is set iff cell i of a equals cell i
// of b, for the first `cells` cells; everything above is cleared.
template <typename Lane>
Lane eq_mask_t(const Lane a, const Lane b, std::uint32_t width,
               std::uint32_t cells) {
  Lane t = a ^ b;
  // OR-fold each cell's difference bits onto the cell's low bit, then
  // invert: a zero cell (equal digits) becomes a set low bit.
  if (width == 2) {
    t |= t >> 1;
    return ~t & lane_splat<Lane>(0x5555555555555555ull) &
           low_mask_t<Lane>(2 * cells);
  }
  t |= t >> 2;
  t |= t >> 1;
  return ~t & lane_splat<Lane>(0x1111111111111111ull) &
         low_mask_t<Lane>(4 * cells);
}

__uint128_t eq_mask(const __uint128_t a, const __uint128_t b,
                    std::uint32_t width, std::uint32_t cells) {
  return eq_mask_t(a, b, width, cells);
}

// Longest run of consecutive set cells in an equality mask, plus the index
// of the first cell of one longest run. The fold m &= m >> width leaves,
// after t rounds, exactly the cells that start a run of length > t; the
// last non-empty mask therefore marks the starts of the longest runs.
struct Run {
  int length = 0;
  int start = 0;
};

template <typename Lane>
Run longest_run_t(Lane m, std::uint32_t width) {
  Run run;
  while (m != 0) {
    run.start = lane_ctz(m) / static_cast<int>(width);
    ++run.length;
    m &= m >> width;
  }
  return run;
}

Run longest_run(__uint128_t m, std::uint32_t width) {
  return longest_run_t(m, width);
}

// Number of leading (lowest-index) consecutive set cells of an equality
// mask covering `cells` cells.
int leading_matches(__uint128_t mask, std::uint32_t width,
                    std::uint32_t cells) {
  const __uint128_t lsb = (width == 2) ? kLsb2 : kLsb4;
  const __uint128_t holes = ~mask & lsb & low_mask(width * cells);
  if (holes == 0) {
    return static_cast<int>(cells);
  }
  return countr_zero128(holes) / static_cast<int>(width);
}

// The l-side offset sweep (see min_l_cost_packed's header comment for the
// derivation). `bound` is an external incumbent: offsets whose cost lower
// bound reaches min(best, bound) are skipped, so the result is the exact
// minimum whenever that minimum is below `bound`.
template <typename Lane>
OverlapMin side_sweep(const Lane xbits, const Lane ybits, const int k,
                      const std::uint32_t width, const int bound) {
  // θ = 0 baseline: cost 2k-1+i-j is minimal at (i, j) = (1, k), value k.
  OverlapMin best{k, 1, k, 0};
  // c >= 0: y shifted down by c cells, window k-c; a run starting at mask
  // cell p is the block x[p..p+θ-1] == y[p+c..p+c+θ-1], i.e. the witness
  // (s, t, θ) = (p+1, p+c+θ, θ) of cost 2k - c - 2θ. Runs are bounded by
  // the window, so cost(c) >= 2k - c - 2(k-c) = c: once c reaches the
  // incumbent the rest of the sweep cannot improve it.
  for (int c = 0; c < k && c < best.cost && c < bound; ++c) {
    const Lane mask =
        eq_mask_t(xbits, static_cast<Lane>(
                             ybits >> (static_cast<std::uint32_t>(c) * width)),
                  width, static_cast<std::uint32_t>(k - c));
    const Run run = longest_run_t(mask, width);
    if (run.length == 0) {
      continue;
    }
    const int cost = 2 * k - c - 2 * run.length;
    if (cost < best.cost) {
      best = OverlapMin{cost, run.start + 1, run.start + c + run.length,
                        run.length};
    }
  }
  // c < 0 (shift x down by a = -c): mask cell p is the block
  // x[p+a..p+a+θ-1] == y[p..p+θ-1], witness (p+a+1, p+θ, θ) of cost
  // 2k + a - 2θ >= 2k + a - 2(k-a) = 3a.
  for (int a = 1; a < k && 3 * a < best.cost && 3 * a < bound; ++a) {
    const Lane mask =
        eq_mask_t(static_cast<Lane>(
                      xbits >> (static_cast<std::uint32_t>(a) * width)),
                  ybits, width, static_cast<std::uint32_t>(k - a));
    const Run run = longest_run_t(mask, width);
    if (run.length == 0) {
      continue;
    }
    const int cost = 2 * k + a - 2 * run.length;
    if (cost < best.cost) {
      best = OverlapMin{cost, run.start + a + 1, run.start + run.length,
                        run.length};
    }
  }
  return best;
}

std::uint64_t byteswap64(std::uint64_t v) { return __builtin_bswap64(v); }

void check_pair(const PackedBuf& x, const PackedBuf& y) {
  DBN_REQUIRE(x.width == y.width && (x.width == 2 || x.width == 4),
              "packed kernels need two buffers of one common width");
}

}  // namespace

std::uint32_t PackedBuf::get(std::size_t i) const {
  DBN_REQUIRE(i < size, "PackedBuf::get out of range");
  return static_cast<std::uint32_t>(bits >> (i * width)) &
         ((1u << width) - 1);
}

void PackedBuf::set(std::size_t i, std::uint32_t v) {
  DBN_REQUIRE(i < size, "PackedBuf::set out of range");
  DBN_REQUIRE(v < (1u << width), "PackedBuf::set digit exceeds the width");
  const std::uint32_t shift = static_cast<std::uint32_t>(i) * width;
  bits &= ~(static_cast<__uint128_t>((1u << width) - 1) << shift);
  bits |= static_cast<__uint128_t>(v) << shift;
}

std::uint32_t packed_width(std::uint64_t alphabet) {
  if (alphabet <= 4) {
    return 2;
  }
  if (alphabet <= 16) {
    return 4;
  }
  return 0;
}

bool packable(std::uint64_t alphabet, std::size_t size) {
  const std::uint32_t width = packed_width(alphabet);
  return width != 0 && width * size <= kLaneBits;
}

PackedBuf pack_word(SymbolView word, std::uint64_t alphabet) {
  DBN_REQUIRE(packable(alphabet, word.size()),
              "pack_word requires a packable (alphabet, length)");
  PackedBuf out;
  out.width = packed_width(alphabet);
  out.size = static_cast<std::uint32_t>(word.size());
  if (out.width * out.size <= 64) {
    // Accumulate in one register when the word fits 64 bits — the hot
    // shape for the routing benchmarks (all of DG(d <= 4, k <= 32)).
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < word.size(); ++i) {
      DBN_REQUIRE(word[i] < alphabet, "pack_word digit exceeds the alphabet");
      acc |= static_cast<std::uint64_t>(word[i]) << (i * out.width);
    }
    out.bits = acc;
    return out;
  }
  for (std::size_t i = 0; i < word.size(); ++i) {
    DBN_REQUIRE(word[i] < alphabet, "pack_word digit exceeds the alphabet");
    out.bits |= static_cast<__uint128_t>(word[i]) << (i * out.width);
  }
  return out;
}

PackedBuf pack_reversed(SymbolView word, std::uint64_t alphabet) {
  DBN_REQUIRE(packable(alphabet, word.size()),
              "pack_reversed requires a packable (alphabet, length)");
  PackedBuf out;
  out.width = packed_width(alphabet);
  out.size = static_cast<std::uint32_t>(word.size());
  for (std::size_t i = 0; i < word.size(); ++i) {
    const Symbol digit = word[word.size() - 1 - i];
    DBN_REQUIRE(digit < alphabet, "pack_reversed digit exceeds the alphabet");
    out.bits |= static_cast<__uint128_t>(digit) << (i * out.width);
  }
  return out;
}

PackedBuf reverse_cells(const PackedBuf& p) {
  DBN_REQUIRE(p.width == 2 || p.width == 4,
              "reverse_cells needs a packed buffer");
  // Butterfly reversal: swap the lane halves, then bytes within halves,
  // then nibbles within bytes, then (at width 2) digit pairs within
  // nibbles. That reverses all lane cells, leaving the word's cells in the
  // high end of the lane; the final shift re-aligns cell 0 to the bottom.
  const auto hi = static_cast<std::uint64_t>(p.bits >> 64);
  const auto lo = static_cast<std::uint64_t>(p.bits);
  std::uint64_t a = byteswap64(lo);
  std::uint64_t b = byteswap64(hi);
  a = ((a & 0xF0F0F0F0F0F0F0F0ull) >> 4) | ((a & 0x0F0F0F0F0F0F0F0Full) << 4);
  b = ((b & 0xF0F0F0F0F0F0F0F0ull) >> 4) | ((b & 0x0F0F0F0F0F0F0F0Full) << 4);
  if (p.width == 2) {
    a = ((a & 0xCCCCCCCCCCCCCCCCull) >> 2) |
        ((a & 0x3333333333333333ull) << 2);
    b = ((b & 0xCCCCCCCCCCCCCCCCull) >> 2) |
        ((b & 0x3333333333333333ull) << 2);
  }
  const __uint128_t reversed = (static_cast<__uint128_t>(a) << 64) | b;
  PackedBuf out;
  out.width = p.width;
  out.size = p.size;
  out.bits = p.size == 0 ? 0 : reversed >> (kLaneBits - p.size * p.width);
  return out;
}

bool try_pack(SymbolView word, std::uint32_t width, PackedBuf& out) {
  if ((width != 2 && width != 4) || width * word.size() > kLaneBits) {
    return false;
  }
  out = PackedBuf{};
  out.width = width;
  out.size = static_cast<std::uint32_t>(word.size());
  for (std::size_t i = 0; i < word.size(); ++i) {
    if (word[i] >= (1u << width)) {
      return false;
    }
    out.bits |= static_cast<__uint128_t>(word[i]) << (i * width);
  }
  return true;
}

bool try_pack_pair(SymbolView x, SymbolView y, PackedBuf& px, PackedBuf& py) {
  Symbol top = 0;
  for (const Symbol c : x) {
    top = std::max(top, c);
  }
  for (const Symbol c : y) {
    top = std::max(top, c);
  }
  if (top >= 16) {
    return false;
  }
  const std::uint32_t width = packed_width(static_cast<std::uint64_t>(top) + 1);
  return try_pack(x, width, px) && try_pack(y, width, py);
}

std::vector<Symbol> unpack(const PackedBuf& p) {
  std::vector<Symbol> out(p.size);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = p.get(i);
  }
  return out;
}

int suffix_prefix_overlap_packed(const PackedBuf& x, const PackedBuf& y) {
  check_pair(x, y);
  const std::uint32_t width = x.width;
  // Longest s first: the suffix of x of length s is the whole lane shifted
  // down (the invariant keeps the bits above cell size-1 zero), and the
  // prefix of y of length s is a low mask.
  for (std::uint32_t s = std::min(x.size, y.size); s >= 1; --s) {
    if ((x.bits >> ((x.size - s) * width)) ==
        (y.bits & low_mask(s * width))) {
      return static_cast<int>(s);
    }
  }
  return 0;
}

OverlapMin min_l_cost_packed(const PackedBuf& x, const PackedBuf& y) {
  return min_l_cost_packed_bounded(x, y, kNoSweepBound);
}

OverlapMin min_l_cost_packed_bounded(const PackedBuf& x, const PackedBuf& y,
                                     int bound) {
  check_pair(x, y);
  DBN_REQUIRE(x.size >= 1 && x.size == y.size,
              "min_l_cost_packed requires two non-empty words of equal "
              "length");
  const int k = static_cast<int>(x.size);
  const std::uint32_t width = x.width;
  const OverlapMin best =
      x.size * width <= 64
          ? side_sweep(static_cast<std::uint64_t>(x.bits),
                       static_cast<std::uint64_t>(y.bits), k, width, bound)
          : side_sweep(x.bits, y.bits, k, width, bound);
  DBN_ASSERT(best.cost <= k, "l-side minimum must not exceed the diameter");
  // Same witness contract as the scalar kernels (range, cost identity).
  DBN_ENSURE(best.s >= 1 && best.s <= k && best.t >= 1 && best.t <= k &&
                 best.theta >= 0 && best.theta <= best.t &&
                 best.theta <= k - best.s + 1,
             "packed l-side witness (s, t, theta) out of range");
  DBN_ENSURE(best.cost == 2 * k - 1 + best.s - best.t - best.theta,
             "packed l-side witness does not reproduce its cost");
  DBN_AUDIT(
      [&] {
        for (int m = 0; m < best.theta; ++m) {
          if (x.get(static_cast<std::size_t>(best.s - 1 + m)) !=
              y.get(static_cast<std::size_t>(best.t - best.theta + m))) {
            return false;
          }
        }
        return true;
      }(),
      "packed l-side witness block does not match");
  return best;
}

int longest_common_substring_packed(const PackedBuf& a, const PackedBuf& b) {
  check_pair(a, b);
  const std::uint32_t width = a.width;
  int best = 0;
  // Every common substring occurrence lives at one alignment offset; the
  // window length bounds the best run, so each sweep stops as soon as the
  // remaining windows are no longer than the incumbent.
  for (std::uint32_t c = 0; c < b.size; ++c) {
    const std::uint32_t window = std::min(a.size, b.size - c);
    if (static_cast<int>(window) <= best) {
      break;
    }
    const __uint128_t mask =
        eq_mask(a.bits, b.bits >> (c * width), width, window);
    best = std::max(best, longest_run(mask, width).length);
  }
  for (std::uint32_t c = 1; c < a.size; ++c) {
    const std::uint32_t window = std::min(a.size - c, b.size);
    if (static_cast<int>(window) <= best) {
      break;
    }
    const __uint128_t mask =
        eq_mask(a.bits >> (c * width), b.bits, width, window);
    best = std::max(best, longest_run(mask, width).length);
  }
  return best;
}

void border_array_packed(const PackedBuf& p, std::vector<int>& out) {
  const std::size_t n = p.size;
  out.assign(n, 0);
  if (n <= 1) {
    return;
  }
  DBN_REQUIRE(p.width == 2 || p.width == 4,
              "border_array_packed needs a packed buffer");
  // lead[c] = number of leading cells where p matches p shifted by c. The
  // prefix p[0..i] has a border of length s = i+1-c exactly when
  // lead[c] >= s, so border[i] is i+1-c for the smallest feasible c.
  // n <= 64 cells bounds the quadratic fill at a few thousand word ops.
  std::vector<int> lead(n, 0);
  for (std::uint32_t c = 1; c < n; ++c) {
    const __uint128_t mask =
        eq_mask(p.bits, p.bits >> (c * p.width), p.width,
                static_cast<std::uint32_t>(n) - c);
    lead[c] = leading_matches(mask, p.width,
                              static_cast<std::uint32_t>(n) - c);
  }
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t c = 1; c <= i; ++c) {
      if (lead[c] >= static_cast<int>(i + 1 - c)) {
        out[i] = static_cast<int>(i + 1 - c);
        break;
      }
    }
  }
}

void find_all_packed(const PackedBuf& text, const PackedBuf& pattern,
                     std::vector<std::size_t>& out) {
  out.clear();
  if (pattern.size == 0) {
    for (std::size_t i = 0; i <= text.size; ++i) {
      out.push_back(i);
    }
    return;
  }
  if (pattern.size > text.size) {
    return;
  }
  check_pair(text, pattern);
  const __uint128_t want = pattern.bits;
  const __uint128_t window = low_mask(pattern.size * pattern.width);
  for (std::uint32_t start = 0; start <= text.size - pattern.size; ++start) {
    if (((text.bits >> (start * text.width)) & window) == want) {
      out.push_back(start);
    }
  }
}

}  // namespace dbn::strings
