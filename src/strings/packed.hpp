// Bit-packed word buffers and the word-parallel (SWAR) matching kernels
// behind the routing hot paths.
//
// Layout: a PackedBuf stores up to 128 bits of digits in one unsigned
// 128-bit lane. Digit cell i occupies bits [i*width, (i+1)*width), with
// cell 0 (the paper's x_1) in the least significant bits. The cell width
// is 2 bits for alphabets up to 4 and 4 bits for alphabets up to 16, so a
// word packs iff width * length <= 128 — which covers every de Bruijn
// vertex with d <= 4, k <= 64 and d <= 16, k <= 32. Larger alphabets or
// longer words fall back to the scalar Morris–Pratt kernels (the callers
// in failure.cpp / route_engine.cpp dispatch on try_pack).
//
// The kernels all reduce to one primitive: a per-cell equality mask
// between two buffers at a digit offset, computed branch-free by XOR,
// OR-folding each cell onto its low bit and masking. A run of equal cells
// is then measured by the classic mask-and-shift fold
//     while (m) { m &= m >> width; ++len; }
// which takes max-run iterations of O(1) 128-bit ops instead of a
// per-symbol automaton walk. Every kernel here has a scalar reference in
// strings/naive.hpp or strings/matching.hpp; the packed-vs-scalar
// differential battery (tests/test_packed_kernels.cpp, test_kernel_fuzz)
// pins the equivalence.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "strings/matching.hpp"
#include "strings/symbol.hpp"

namespace dbn::strings {

/// One packed word: digits in a single 128-bit lane, low cells first.
/// Invariant: every bit above cell size-1 is zero, and every cell value is
/// below 2^width (callers pack through pack_word / try_pack, which enforce
/// both).
struct PackedBuf {
  __uint128_t bits = 0;      // cell i at [i*width, (i+1)*width)
  std::uint32_t width = 0;   // bits per digit cell: 2 or 4
  std::uint32_t size = 0;    // number of digit cells

  /// Digit in cell i (i < size).
  std::uint32_t get(std::size_t i) const;
  /// Overwrites cell i (i < size, v < 2^width).
  void set(std::size_t i, std::uint32_t v);

  friend bool operator==(const PackedBuf& a, const PackedBuf& b) = default;
};

/// Cell width needed for digits in [0, alphabet): 2, 4, or 0 when the
/// alphabet does not pack (> 16).
std::uint32_t packed_width(std::uint64_t alphabet);

/// Whether a word of `size` digits over [0, alphabet) fits one lane.
bool packable(std::uint64_t alphabet, std::size_t size);

/// Packs `word` (digits < alphabet) at the width packed_width(alphabet).
/// Requires packable(alphabet, word.size()).
PackedBuf pack_word(SymbolView word, std::uint64_t alphabet);

/// Packs the reversal of `word` — the r-side reduction runs the l-side
/// kernel on reversed words, and packing backwards is free.
PackedBuf pack_reversed(SymbolView word, std::uint64_t alphabet);

/// The lane with its digit cells in reverse order — equal to packing the
/// reversed word, but computed from the already-packed lane in O(log)
/// swap/shift steps instead of another O(k) digit loop. This is how the
/// route engine derives its r-side lanes from the forward packs.
PackedBuf reverse_cells(const PackedBuf& p);

/// Packs `word` at an explicit cell width; false when width is 0, a digit
/// does not fit, or the word overflows the lane. Never throws: this is the
/// dispatch predicate for symbol views with no known alphabet.
bool try_pack(SymbolView word, std::uint32_t width, PackedBuf& out);

/// Packs two words at one common width (per-cell comparisons require equal
/// widths); false when either word fails to pack.
bool try_pack_pair(SymbolView x, SymbolView y, PackedBuf& px, PackedBuf& py);

/// Digits of `p` back into a vector (differential-test plumbing).
std::vector<Symbol> unpack(const PackedBuf& p);

/// Longest suffix of x that is a prefix of y — packed counterpart of
/// suffix_prefix_overlap (Property 1 / Algorithm 1). Requires equal
/// widths. O(min(|x|, |y|)) single-lane compares, no allocation.
int suffix_prefix_overlap_packed(const PackedBuf& x, const PackedBuf& y);

/// The l-side Theorem 2 minimum — packed counterpart of min_l_cost.
///
/// Works on the offset reformulation of the minimand: a cell run
/// x[p..p+θ-1] == y[p+c..p+c+θ-1] (0-based, offset c = start(y) - start(x))
/// is exactly a witness l_{i,j} >= θ at (i, j) = (p+1, p+c+θ) with cost
///     2k - 1 + i - j - θ  =  2k - c - 2θ,
/// so  D1 = min(k, min_c (2k - c - 2·maxrun(c)))
/// with the θ = 0 baseline k attained at (i, j) = (1, k). The sweep visits
/// offsets in increasing |c| and prunes with the exact lower bounds
/// cost(c) >= c (c >= 0, run <= k - c) and cost(c) >= 3|c| (c < 0).
/// Same result contract as strings::min_l_cost: a minimal cost plus a
/// valid (s, t, theta) witness. Requires equal widths and sizes, size >= 1.
OverlapMin min_l_cost_packed(const PackedBuf& x, const PackedBuf& y);

/// No external incumbent: min_l_cost_packed_bounded degenerates to the
/// full sweep (every real cost is below this).
inline constexpr int kNoSweepBound = 1 << 30;

/// The same sweep pruned against an external incumbent `bound` (e.g. the
/// other side's minimum): offsets that provably cannot yield a cost below
/// min(bound, incumbent) are skipped. The returned witness is always
/// valid and its cost is the exact side minimum whenever that minimum is
/// below `bound`; otherwise the cost is merely some upper bound >= the
/// true minimum (and >= `bound`), which is all a caller taking
/// min(bound, result) needs.
OverlapMin min_l_cost_packed_bounded(const PackedBuf& x, const PackedBuf& y,
                                     int bound);

/// Longest common substring length — packed counterpart of
/// naive::longest_common_substring / the suffix-tree search: the best run
/// over all offsets. Requires equal widths.
int longest_common_substring_packed(const PackedBuf& a, const PackedBuf& b);

/// Border array — packed counterpart of border_array. For each shift c the
/// lane fold yields the number of leading cells where p matches p shifted
/// by c; border[i] is then i+1-c for the smallest feasible c. Writes into
/// `out` (resized) so callers can reuse storage.
void border_array_packed(const PackedBuf& p, std::vector<int>& out);

/// All occurrences of pattern in text — packed counterpart of
/// kmp_find_all / naive::find_all. One masked compare per start position.
/// Requires equal widths. Appends nothing on no match; `out` is cleared.
void find_all_packed(const PackedBuf& text, const PackedBuf& pattern,
                     std::vector<std::size_t>& out);

}  // namespace dbn::strings
