#include "strings/zfunction.hpp"

#include <algorithm>
#include <limits>

#include "common/contract.hpp"

namespace dbn::strings {

std::vector<int> z_function(SymbolView s) {
  const int n = static_cast<int>(s.size());
  std::vector<int> z(s.size(), 0);
  if (n == 0) {
    return z;
  }
  z[0] = n;
  int l = 0, r = 0;  // rightmost known match window [l, r)
  for (int i = 1; i < n; ++i) {
    if (i < r) {
      z[static_cast<std::size_t>(i)] =
          std::min(r - i, z[static_cast<std::size_t>(i - l)]);
    }
    int& zi = z[static_cast<std::size_t>(i)];
    while (i + zi < n && s[static_cast<std::size_t>(zi)] ==
                             s[static_cast<std::size_t>(i + zi)]) {
      ++zi;
    }
    if (i + zi > r) {
      l = i;
      r = i + zi;
    }
  }
  return z;
}

std::vector<int> matching_row_l_z(SymbolView x, SymbolView y, std::size_t i0) {
  DBN_REQUIRE(i0 < x.size(), "matching_row_l_z: row index out of range");
  const SymbolView pattern = x.subspan(i0);
  // Build pattern · sep · y with a separator above both alphabets.
  Symbol max_symbol = 0;
  for (const Symbol c : pattern) {
    max_symbol = std::max(max_symbol, c);
  }
  for (const Symbol c : y) {
    max_symbol = std::max(max_symbol, c);
  }
  DBN_REQUIRE(max_symbol < std::numeric_limits<Symbol>::max(),
              "symbols too large to insert a separator");
  std::vector<Symbol> joined;
  joined.reserve(pattern.size() + 1 + y.size());
  joined.insert(joined.end(), pattern.begin(), pattern.end());
  joined.push_back(max_symbol + 1);
  joined.insert(joined.end(), y.begin(), y.end());
  const std::vector<int> z = z_function(joined);

  // e[p] = how far the pattern matches starting at y position p (0-based);
  // the separator caps it below |pattern| automatically, but cap anyway.
  const std::size_t offset = pattern.size() + 1;
  const int cap = static_cast<int>(pattern.size());
  // l_{i,j} = j0 - best[j0] + 1 where best[j0] is the smallest start p
  // whose match interval [p, p + e[p]) covers j0. Fill best[] left to
  // right: processing starts in increasing order assigns each j0 its
  // smallest covering start.
  std::vector<int> row(y.size(), 0);
  std::size_t next_unfilled = 0;
  for (std::size_t p = 0; p < y.size(); ++p) {
    const int e = std::min(cap, z[offset + p]);
    if (e <= 0) {
      continue;
    }
    const std::size_t end = std::min(y.size(), p + static_cast<std::size_t>(e));
    for (std::size_t j = std::max(next_unfilled, p); j < end; ++j) {
      row[j] = static_cast<int>(j - p) + 1;
    }
    next_unfilled = std::max(next_unfilled, end);
  }
  return row;
}

OverlapMin min_l_cost_z(SymbolView x, SymbolView y) {
  DBN_REQUIRE(!x.empty() && x.size() == y.size(),
              "min_l_cost_z requires two non-empty words of equal length");
  const int k = static_cast<int>(x.size());
  OverlapMin best;
  best.cost = 2 * k;
  for (int i = 1; i <= k; ++i) {
    const std::vector<int> row =
        matching_row_l_z(x, y, static_cast<std::size_t>(i - 1));
    for (int j = 1; j <= k; ++j) {
      const int lij = row[static_cast<std::size_t>(j - 1)];
      const int cost = 2 * k - 1 + i - j - lij;
      if (cost < best.cost) {
        best = OverlapMin{cost, i, j, lij};
      }
    }
  }
  DBN_ASSERT(best.cost <= k, "l-side minimum must not exceed the diameter");
  return best;
}

}  // namespace dbn::strings
