#include "strings/lyndon.hpp"

#include "common/contract.hpp"
#include "strings/failure.hpp"

namespace dbn::strings {

std::vector<std::pair<std::size_t, std::size_t>> lyndon_factorization(
    SymbolView s) {
  std::vector<std::pair<std::size_t, std::size_t>> factors;
  std::size_t i = 0;
  while (i < s.size()) {
    // Duval: grow the candidate (i..j) comparing against position k.
    std::size_t j = i + 1;
    std::size_t k = i;
    while (j < s.size() && s[k] <= s[j]) {
      k = (s[k] < s[j]) ? i : k + 1;
      ++j;
    }
    // Emit the Lyndon word of length j-k as many times as it repeats.
    const std::size_t len = j - k;
    while (i <= k) {
      factors.emplace_back(i, len);
      i += len;
    }
  }
  return factors;
}

bool is_lyndon(SymbolView s) {
  if (s.empty()) {
    return false;
  }
  const auto factors = lyndon_factorization(s);
  return factors.size() == 1 && factors[0].second == s.size();
}

std::size_t least_rotation(SymbolView s) {
  DBN_REQUIRE(!s.empty(), "least_rotation requires a non-empty word");
  // Booth's algorithm over the doubled word, O(n) with the failure-style
  // candidate elimination.
  const std::size_t n = s.size();
  const auto at = [&](std::size_t i) { return s[i % n]; };
  std::size_t i = 0, j = 1;
  std::size_t offset = 0;
  while (i < n && j < n && offset < n) {
    const Symbol a = at(i + offset);
    const Symbol b = at(j + offset);
    if (a == b) {
      ++offset;
      continue;
    }
    if (a > b) {
      i = std::max(i + offset + 1, j);
      j = i + 1;
    } else {
      j = j + offset + 1;
      if (j <= i) {
        j = i + 1;
      }
    }
    offset = 0;
  }
  return std::min(i, j);
}

std::uint64_t necklace_count(std::uint32_t radix, std::size_t n) {
  DBN_REQUIRE(radix >= 2 && n >= 1, "necklace_count requires d >= 2, n >= 1");
  const auto phi = [](std::uint64_t m) {
    std::uint64_t result = m;
    for (std::uint64_t p = 2; p * p <= m; ++p) {
      if (m % p == 0) {
        while (m % p == 0) {
          m /= p;
        }
        result -= result / p;
      }
    }
    if (m > 1) {
      result -= result / m;
    }
    return result;
  };
  std::uint64_t total = 0;
  for (std::uint64_t e = 1; e <= n; ++e) {
    if (n % e != 0) {
      continue;
    }
    std::uint64_t power = 1;
    for (std::uint64_t i = 0; i < e; ++i) {
      DBN_REQUIRE(power <= UINT64_MAX / radix, "necklace count overflows");
      power *= radix;
    }
    total += phi(static_cast<std::uint64_t>(n) / e) * power;
  }
  return total / n;
}

bool is_primitive(SymbolView s) {
  if (s.empty()) {
    return false;
  }
  // s is a proper power iff its smallest period (n - border) divides n
  // with quotient > 1.
  const std::vector<int> border = border_array(s);
  const std::size_t period =
      s.size() - static_cast<std::size_t>(border.back());
  return period == s.size() || s.size() % period != 0;
}

}  // namespace dbn::strings
