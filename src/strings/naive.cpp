#include "strings/naive.hpp"

#include <algorithm>

#include "common/contract.hpp"

namespace dbn::strings::naive {

namespace {

bool equal_ranges(SymbolView a, std::size_t ai, SymbolView b, std::size_t bi,
                  std::size_t len) {
  for (std::size_t m = 0; m < len; ++m) {
    if (a[ai + m] != b[bi + m]) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<int> border_array(SymbolView pattern) {
  const std::size_t n = pattern.size();
  std::vector<int> border(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t len = i; len >= 1; --len) {
      // border of prefix pattern[0..i]: proper prefix == proper suffix
      if (equal_ranges(pattern, 0, pattern, i + 1 - len, len)) {
        border[i] = static_cast<int>(len);
        break;
      }
    }
  }
  return border;
}

int suffix_prefix_overlap(SymbolView x, SymbolView y) {
  const std::size_t max_len = std::min(x.size(), y.size());
  for (std::size_t len = max_len; len >= 1; --len) {
    if (equal_ranges(x, x.size() - len, y, 0, len)) {
      return static_cast<int>(len);
    }
  }
  return 0;
}

int matching_l(SymbolView x, SymbolView y, std::size_t i0, std::size_t j0) {
  DBN_REQUIRE(i0 < x.size() && j0 < y.size(), "matching_l: index out of range");
  // l_{i,j}: x[i0 .. i0+s-1] == y[j0-s+1 .. j0], s <= j0+1, s <= |x|-i0.
  const std::size_t max_len = std::min(j0 + 1, x.size() - i0);
  for (std::size_t s = max_len; s >= 1; --s) {
    if (equal_ranges(x, i0, y, j0 + 1 - s, s)) {
      return static_cast<int>(s);
    }
  }
  return 0;
}

int matching_r(SymbolView x, SymbolView y, std::size_t i0, std::size_t j0) {
  DBN_REQUIRE(i0 < x.size() && j0 < y.size(), "matching_r: index out of range");
  // r_{i,j}: x[i0-s+1 .. i0] == y[j0 .. j0+s-1], s <= i0+1, s <= |y|-j0.
  const std::size_t max_len = std::min(i0 + 1, y.size() - j0);
  for (std::size_t s = max_len; s >= 1; --s) {
    if (equal_ranges(x, i0 + 1 - s, y, j0, s)) {
      return static_cast<int>(s);
    }
  }
  return 0;
}

OverlapMin min_l_cost(SymbolView x, SymbolView y) {
  DBN_REQUIRE(!x.empty() && x.size() == y.size(),
              "min_l_cost requires two non-empty words of equal length");
  const int k = static_cast<int>(x.size());
  OverlapMin best;
  best.cost = 2 * k;
  for (int i = 1; i <= k; ++i) {
    for (int j = 1; j <= k; ++j) {
      const int lij = matching_l(x, y, static_cast<std::size_t>(i - 1),
                                 static_cast<std::size_t>(j - 1));
      const int cost = 2 * k - 1 + i - j - lij;
      if (cost < best.cost) {
        best = OverlapMin{cost, i, j, lij};
      }
    }
  }
  return best;
}

std::vector<std::size_t> find_all(SymbolView text, SymbolView pattern) {
  std::vector<std::size_t> hits;
  if (pattern.empty()) {
    for (std::size_t i = 0; i <= text.size(); ++i) {
      hits.push_back(i);
    }
    return hits;
  }
  if (pattern.size() > text.size()) {
    return hits;
  }
  for (std::size_t i = 0; i + pattern.size() <= text.size(); ++i) {
    if (equal_ranges(text, i, pattern, 0, pattern.size())) {
      hits.push_back(i);
    }
  }
  return hits;
}

int longest_common_substring(SymbolView a, SymbolView b) {
  int best = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      std::size_t s = 0;
      while (i + s < a.size() && j + s < b.size() && a[i + s] == b[j + s]) {
        ++s;
      }
      best = std::max(best, static_cast<int>(s));
    }
  }
  return best;
}

}  // namespace dbn::strings::naive
