#include "strings/failure.hpp"

#include <algorithm>

#include "common/contract.hpp"
#include "strings/packed.hpp"

namespace dbn::strings {

std::vector<int> border_array(SymbolView pattern) {
  const std::size_t n = pattern.size();
  std::vector<int> border(n, 0);
  int q = 0;  // length of the border being extended
  for (std::size_t i = 1; i < n; ++i) {
    while (q > 0 && pattern[static_cast<std::size_t>(q)] != pattern[i]) {
      q = border[static_cast<std::size_t>(q) - 1];
    }
    if (pattern[static_cast<std::size_t>(q)] == pattern[i]) {
      ++q;
    }
    border[i] = q;
  }
  // Failure-function bounds: border[i] is the length of a *proper* border
  // of pattern[0..i], so 0 <= border[i] <= i, and successive entries grow
  // by at most one (each step extends a border by a single symbol).
  DBN_AUDIT(
      [&] {
        for (std::size_t i = 0; i < n; ++i) {
          if (border[i] < 0 || border[i] > static_cast<int>(i)) {
            return false;
          }
          if (i > 0 && border[i] > border[i - 1] + 1) {
            return false;
          }
        }
        return true;
      }(),
      "border array violates the proper-border bounds");
  return border;
}

int suffix_prefix_overlap(SymbolView x, SymbolView y) {
  if (x.empty() || y.empty()) {
    return 0;
  }
  // Word-parallel fast path: when both words fit one packed lane the
  // overlap is a handful of shift-and-compare lane ops and, unlike the
  // Morris–Pratt automaton below, needs no failure-function allocation.
  // Differentially pinned against the scalar path by test_packed_kernels.
  PackedBuf px;
  PackedBuf py;
  if (try_pack_pair(x, y, px, py)) {
    const int overlap = suffix_prefix_overlap_packed(px, py);
    DBN_ENSURE(
        overlap >= 0 &&
            overlap <= static_cast<int>(std::min(x.size(), y.size())),
        "suffix/prefix overlap must fit in both words");
    return overlap;
  }
  const std::vector<int> border = border_array(y);
  int q = 0;  // invariant: longest prefix of y that is a suffix of the
              // processed part of x
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (q == static_cast<int>(y.size())) {
      q = border[static_cast<std::size_t>(q) - 1];
    }
    while (q > 0 && y[static_cast<std::size_t>(q)] != x[i]) {
      q = border[static_cast<std::size_t>(q) - 1];
    }
    if (y[static_cast<std::size_t>(q)] == x[i]) {
      ++q;
    }
  }
  DBN_ENSURE(q >= 0 && q <= static_cast<int>(std::min(x.size(), y.size())),
             "suffix/prefix overlap must fit in both words");
  return q;
}

std::vector<std::size_t> kmp_find_all(SymbolView text, SymbolView pattern) {
  std::vector<std::size_t> hits;
  if (pattern.empty()) {
    hits.resize(text.size() + 1);
    for (std::size_t i = 0; i <= text.size(); ++i) {
      hits[i] = i;
    }
    return hits;
  }
  PackedBuf ptext;
  PackedBuf ppattern;
  if (try_pack_pair(text, pattern, ptext, ppattern)) {
    find_all_packed(ptext, ppattern, hits);
    return hits;
  }
  const std::vector<int> border = border_array(pattern);
  int q = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (q == static_cast<int>(pattern.size())) {
      q = border[static_cast<std::size_t>(q) - 1];
    }
    while (q > 0 && pattern[static_cast<std::size_t>(q)] != text[i]) {
      q = border[static_cast<std::size_t>(q) - 1];
    }
    if (pattern[static_cast<std::size_t>(q)] == text[i]) {
      ++q;
    }
    if (q == static_cast<int>(pattern.size())) {
      hits.push_back(i + 1 - pattern.size());
    }
  }
  return hits;
}

}  // namespace dbn::strings
