#include "strings/failure.hpp"

#include <algorithm>

#include "common/contract.hpp"

namespace dbn::strings {

std::vector<int> border_array(SymbolView pattern) {
  const std::size_t n = pattern.size();
  std::vector<int> border(n, 0);
  int q = 0;  // length of the border being extended
  for (std::size_t i = 1; i < n; ++i) {
    while (q > 0 && pattern[static_cast<std::size_t>(q)] != pattern[i]) {
      q = border[static_cast<std::size_t>(q) - 1];
    }
    if (pattern[static_cast<std::size_t>(q)] == pattern[i]) {
      ++q;
    }
    border[i] = q;
  }
  // Failure-function bounds: border[i] is the length of a *proper* border
  // of pattern[0..i], so 0 <= border[i] <= i, and successive entries grow
  // by at most one (each step extends a border by a single symbol).
  DBN_AUDIT(
      [&] {
        for (std::size_t i = 0; i < n; ++i) {
          if (border[i] < 0 || border[i] > static_cast<int>(i)) {
            return false;
          }
          if (i > 0 && border[i] > border[i - 1] + 1) {
            return false;
          }
        }
        return true;
      }(),
      "border array violates the proper-border bounds");
  return border;
}

int suffix_prefix_overlap(SymbolView x, SymbolView y) {
  if (x.empty() || y.empty()) {
    return 0;
  }
  const std::vector<int> border = border_array(y);
  int q = 0;  // invariant: longest prefix of y that is a suffix of the
              // processed part of x
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (q == static_cast<int>(y.size())) {
      q = border[static_cast<std::size_t>(q) - 1];
    }
    while (q > 0 && y[static_cast<std::size_t>(q)] != x[i]) {
      q = border[static_cast<std::size_t>(q) - 1];
    }
    if (y[static_cast<std::size_t>(q)] == x[i]) {
      ++q;
    }
  }
  DBN_ENSURE(q >= 0 && q <= static_cast<int>(std::min(x.size(), y.size())),
             "suffix/prefix overlap must fit in both words");
  return q;
}

std::vector<std::size_t> kmp_find_all(SymbolView text, SymbolView pattern) {
  std::vector<std::size_t> hits;
  if (pattern.empty()) {
    hits.resize(text.size() + 1);
    for (std::size_t i = 0; i <= text.size(); ++i) {
      hits[i] = i;
    }
    return hits;
  }
  const std::vector<int> border = border_array(pattern);
  int q = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (q == static_cast<int>(pattern.size())) {
      q = border[static_cast<std::size_t>(q) - 1];
    }
    while (q > 0 && pattern[static_cast<std::size_t>(q)] != text[i]) {
      q = border[static_cast<std::size_t>(q) - 1];
    }
    if (pattern[static_cast<std::size_t>(q)] == text[i]) {
      ++q;
    }
    if (q == static_cast<int>(pattern.size())) {
      hits.push_back(i + 1 - pattern.size());
    }
  }
  return hits;
}

}  // namespace dbn::strings
