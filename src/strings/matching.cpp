#include "strings/matching.hpp"

#include <algorithm>

#include "common/contract.hpp"
#include "strings/failure.hpp"

namespace dbn::strings {

std::vector<int> matching_row_l(SymbolView x, SymbolView y, std::size_t i0) {
  DBN_REQUIRE(i0 < x.size(), "matching_row_l: row index out of range");
  // Algorithm 3: the pattern is the suffix of x starting at i0; lines 1-8
  // of the paper compute its failure function (c_{i,.}), lines 9-14 run the
  // resulting MP automaton over y, capping at the pattern length.
  const SymbolView pattern = x.subspan(i0);
  const std::vector<int> border = border_array(pattern);
  const int pattern_len = static_cast<int>(pattern.size());

  std::vector<int> row(y.size(), 0);
  int q = 0;
  for (std::size_t j = 0; j < y.size(); ++j) {
    if (q == pattern_len) {  // paper line 10: h = c_{i,k}
      q = border[static_cast<std::size_t>(q) - 1];
    }
    while (q > 0 && pattern[static_cast<std::size_t>(q)] != y[j]) {
      q = border[static_cast<std::size_t>(q) - 1];
    }
    if (pattern[static_cast<std::size_t>(q)] == y[j]) {
      ++q;
    }
    row[j] = q;
  }
  return row;
}

std::vector<std::vector<int>> matching_table_l(SymbolView x, SymbolView y) {
  std::vector<std::vector<int>> table;
  table.reserve(x.size());
  for (std::size_t i0 = 0; i0 < x.size(); ++i0) {
    table.push_back(matching_row_l(x, y, i0));
  }
  return table;
}

std::vector<std::vector<int>> matching_table_r(SymbolView x, SymbolView y) {
  const std::vector<Symbol> xr = reversed(x);
  const std::vector<Symbol> yr = reversed(y);
  const std::vector<std::vector<int>> lrev = matching_table_l(xr, yr);
  // r_{i,j}(x,y) = l_{|x|+1-i, |y|+1-j}(reverse(x), reverse(y)): reversing
  // both words turns "block of X ending at i" into "block of reverse(X)
  // starting at |x|+1-i" and flips the Y anchor the same way.
  std::vector<std::vector<int>> table(x.size(), std::vector<int>(y.size(), 0));
  for (std::size_t i0 = 0; i0 < x.size(); ++i0) {
    for (std::size_t j0 = 0; j0 < y.size(); ++j0) {
      table[i0][j0] = lrev[x.size() - 1 - i0][y.size() - 1 - j0];
    }
  }
  return table;
}

OverlapMin min_l_cost(SymbolView x, SymbolView y) {
  DBN_REQUIRE(!x.empty() && x.size() == y.size(),
              "min_l_cost requires two non-empty words of equal length");
  const int k = static_cast<int>(x.size());
  OverlapMin best;
  best.cost = 2 * k;  // larger than any reachable value (min <= k, see below)
  for (int i = 1; i <= k; ++i) {
    const std::vector<int> row =
        matching_row_l(x, y, static_cast<std::size_t>(i - 1));
    for (int j = 1; j <= k; ++j) {
      const int lij = row[static_cast<std::size_t>(j - 1)];
      const int cost = 2 * k - 1 + i - j - lij;
      if (cost < best.cost) {
        best = OverlapMin{cost, i, j, lij};
      }
    }
  }
  // The term (i=1, j=k) is bounded by 2k-1+1-k-0 = k, so the minimum never
  // exceeds k (the trivial all-left-shift path of Section 2).
  DBN_ASSERT(best.cost <= k, "l-side minimum must not exceed the diameter");
  return best;
}

}  // namespace dbn::strings
