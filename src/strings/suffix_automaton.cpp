#include "strings/suffix_automaton.hpp"

#include <algorithm>
#include <limits>

#include "common/contract.hpp"

namespace dbn::strings {

namespace {
constexpr int kNoEnd = std::numeric_limits<int>::max() / 2;
}

SuffixAutomaton::SuffixAutomaton(SymbolView text) {
  states_.reserve(2 * text.size() + 2);
  states_.push_back(State{0, -1, kNoEnd, {}});
  for (const Symbol c : text) {
    extend(c);
  }
  finalize_min_end();
}

void SuffixAutomaton::extend(Symbol c) {
  const int cur = static_cast<int>(states_.size());
  const int cur_len = states_[static_cast<std::size_t>(last_)].len + 1;
  // A fresh state's class first occurs ending at the current position.
  states_.push_back(State{cur_len, -1, cur_len, {}});
  int p = last_;
  while (p != -1 &&
         !states_[static_cast<std::size_t>(p)].next.contains(c)) {
    states_[static_cast<std::size_t>(p)].next[c] = cur;
    p = states_[static_cast<std::size_t>(p)].link;
  }
  if (p == -1) {
    states_[static_cast<std::size_t>(cur)].link = 0;
  } else {
    const int q = states_[static_cast<std::size_t>(p)].next[c];
    if (states_[static_cast<std::size_t>(p)].len + 1 ==
        states_[static_cast<std::size_t>(q)].len) {
      states_[static_cast<std::size_t>(cur)].link = q;
    } else {
      const int clone = static_cast<int>(states_.size());
      State cloned = states_[static_cast<std::size_t>(q)];
      cloned.len = states_[static_cast<std::size_t>(p)].len + 1;
      cloned.min_end = kNoEnd;  // fixed by finalize_min_end propagation
      states_.push_back(std::move(cloned));
      while (p != -1 && states_[static_cast<std::size_t>(p)].next[c] == q) {
        states_[static_cast<std::size_t>(p)].next[c] = clone;
        p = states_[static_cast<std::size_t>(p)].link;
      }
      states_[static_cast<std::size_t>(q)].link = clone;
      states_[static_cast<std::size_t>(cur)].link = clone;
    }
  }
  last_ = cur;
}

void SuffixAutomaton::finalize_min_end() {
  // endpos(link(u)) is a superset of endpos(u): propagate minima up the
  // suffix-link tree in decreasing order of len (counting sort by len).
  const int n = state_count();
  int max_len = 0;
  for (const State& s : states_) {
    max_len = std::max(max_len, s.len);
  }
  std::vector<int> count(static_cast<std::size_t>(max_len) + 2, 0);
  for (const State& s : states_) {
    ++count[static_cast<std::size_t>(s.len) + 1];
  }
  for (std::size_t i = 1; i < count.size(); ++i) {
    count[i] += count[i - 1];
  }
  std::vector<int> by_len(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    by_len[static_cast<std::size_t>(
        count[static_cast<std::size_t>(states_[static_cast<std::size_t>(v)].len)]++)] = v;
  }
  for (int idx = n; idx-- > 1;) {
    const int v = by_len[static_cast<std::size_t>(idx)];
    const int link = states_[static_cast<std::size_t>(v)].link;
    if (link >= 0) {
      states_[static_cast<std::size_t>(link)].min_end =
          std::min(states_[static_cast<std::size_t>(link)].min_end,
                   states_[static_cast<std::size_t>(v)].min_end);
    }
  }
}

bool SuffixAutomaton::contains(SymbolView pattern) const {
  int v = 0;
  for (const Symbol c : pattern) {
    const auto it = states_[static_cast<std::size_t>(v)].next.find(c);
    if (it == states_[static_cast<std::size_t>(v)].next.end()) {
      return false;
    }
    v = it->second;
  }
  return true;
}

std::vector<int> SuffixAutomaton::matching_statistics(SymbolView t) const {
  std::vector<int> ms(t.size(), 0);
  int v = 0;
  int l = 0;
  for (std::size_t j = 0; j < t.size(); ++j) {
    const Symbol c = t[j];
    while (v != 0 &&
           !states_[static_cast<std::size_t>(v)].next.contains(c)) {
      v = states_[static_cast<std::size_t>(v)].link;
      l = states_[static_cast<std::size_t>(v)].len;
    }
    const auto it = states_[static_cast<std::size_t>(v)].next.find(c);
    if (it != states_[static_cast<std::size_t>(v)].next.end()) {
      v = it->second;
      ++l;
    } else {
      l = 0;  // stuck at the root
    }
    ms[j] = l;
  }
  return ms;
}

int SuffixAutomaton::longest_common_substring(SymbolView t) const {
  int best = 0;
  for (const int m : matching_statistics(t)) {
    best = std::max(best, m);
  }
  return best;
}

std::uint64_t SuffixAutomaton::distinct_substring_count() const {
  std::uint64_t total = 0;
  for (int v = 1; v < state_count(); ++v) {
    const State& s = states_[static_cast<std::size_t>(v)];
    total += static_cast<std::uint64_t>(
        s.len - states_[static_cast<std::size_t>(s.link)].len);
  }
  return total;
}

OverlapMin min_l_cost_suffix_automaton(SymbolView x, SymbolView y) {
  DBN_REQUIRE(!x.empty() && x.size() == y.size(),
              "min_l_cost_suffix_automaton requires two non-empty words of "
              "equal length");
  const int k = static_cast<int>(x.size());
  const SuffixAutomaton sam(x);
  const auto& states = sam.states_;
  const int n = sam.state_count();

  // Over occurrences (X start p, Y end j, length s) the cost rewrites to
  // 2k + minEnd(class) - j - 2s; within a class s is maximal (len), and
  // along the suffix-link chain the per-class optimum
  //     h(v) = minEnd(v) - 2*len(v)
  // propagates as g(v) = min(h(v), g(link(v))). During the walk over y the
  // top class is capped at the current match length l instead of len(v).
  std::vector<int> g(static_cast<std::size_t>(n), kNoEnd);
  std::vector<int> g_arg(static_cast<std::size_t>(n), -1);
  // Process in increasing len order so g(link) is ready; state 0 is root.
  {
    int max_len = 0;
    for (const auto& s : states) {
      max_len = std::max(max_len, s.len);
    }
    std::vector<int> count(static_cast<std::size_t>(max_len) + 2, 0);
    for (const auto& s : states) {
      ++count[static_cast<std::size_t>(s.len) + 1];
    }
    for (std::size_t i = 1; i < count.size(); ++i) {
      count[i] += count[i - 1];
    }
    std::vector<int> by_len(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      by_len[static_cast<std::size_t>(
          count[static_cast<std::size_t>(states[static_cast<std::size_t>(v)].len)]++)] =
          v;
    }
    for (int idx = 1; idx < n; ++idx) {
      const int v = by_len[static_cast<std::size_t>(idx)];
      const auto& s = states[static_cast<std::size_t>(v)];
      const int h = s.min_end - 2 * s.len;
      g[static_cast<std::size_t>(v)] = h;
      g_arg[static_cast<std::size_t>(v)] = v;
      if (s.link > 0 && g[static_cast<std::size_t>(s.link)] < h) {
        g[static_cast<std::size_t>(v)] = g[static_cast<std::size_t>(s.link)];
        g_arg[static_cast<std::size_t>(v)] = g_arg[static_cast<std::size_t>(s.link)];
      }
    }
  }

  OverlapMin best{k, 1, k, 0};  // theta = 0 baseline at (i,j) = (1,k)
  int v = 0;
  int l = 0;
  for (int j = 1; j <= k; ++j) {
    const Symbol c = y[static_cast<std::size_t>(j - 1)];
    while (v != 0 && !states[static_cast<std::size_t>(v)].next.contains(c)) {
      v = states[static_cast<std::size_t>(v)].link;
      l = states[static_cast<std::size_t>(v)].len;
    }
    const auto it = states[static_cast<std::size_t>(v)].next.find(c);
    if (it != states[static_cast<std::size_t>(v)].next.end()) {
      v = it->second;
      ++l;
    } else {
      l = 0;
      continue;
    }
    // Top class capped at l.
    const int top_cost = 2 * k + states[static_cast<std::size_t>(v)].min_end -
                         j - 2 * l;
    if (top_cost < best.cost) {
      best.cost = top_cost;
      best.t = j;
      best.theta = l;
      best.s = states[static_cast<std::size_t>(v)].min_end - l + 1;
    }
    const int link = states[static_cast<std::size_t>(v)].link;
    if (link > 0 && g[static_cast<std::size_t>(link)] < kNoEnd) {
      const int chain_cost = 2 * k + g[static_cast<std::size_t>(link)] - j;
      if (chain_cost < best.cost) {
        const auto& w =
            states[static_cast<std::size_t>(g_arg[static_cast<std::size_t>(link)])];
        best.cost = chain_cost;
        best.t = j;
        best.theta = w.len;
        best.s = w.min_end - w.len + 1;
      }
    }
  }
  DBN_ASSERT(best.cost <= k, "l-side minimum must not exceed the diameter");
  return best;
}

}  // namespace dbn::strings
