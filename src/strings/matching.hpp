// The paper's matching functions (definitions (8) and (9)) and Algorithm 3,
// the generalized Morris–Pratt scan that computes one row of them in O(k).
//
// Index conventions: the paper is 1-based; this module is 0-based and
// documents the mapping at each function. For 1-based i, j in [1, k]:
//
//   l_{i,j}(X,Y) = max{ s : s <= j, s <= k-i+1,
//                       x_i ... x_{i+s-1} = y_{j-s+1} ... y_j }
//   r_{i,j}(X,Y) = max{ s : s <= i, s <= k-j+1,
//                       x_{i-s+1} ... x_i = y_j ... y_{j+s-1} }
//
// i.e. l is "block of X starting at i == block of Y ending at j" and r is
// "block of X ending at i == block of Y starting at j", both read forward.
#pragma once

#include <cstddef>
#include <vector>

#include "strings/symbol.hpp"

namespace dbn::strings {

/// One row of the l matching function, computed by Algorithm 3.
///
/// Returns a vector `row` of size |y| with row[j0] = l_{i0+1, j0+1}(x, y):
/// the length of the longest prefix of x[i0..] that is a suffix of
/// y[0..j0]. O(|x| + |y|) time and space.
std::vector<int> matching_row_l(SymbolView x, SymbolView y, std::size_t i0);

/// Full l table: table[i0][j0] = l_{i0+1, j0+1}(x, y).
/// O(|x| * |y|) time via |x| runs of Algorithm 3.
std::vector<std::vector<int>> matching_table_l(SymbolView x, SymbolView y);

/// Full r table: table[i0][j0] = r_{i0+1, j0+1}(x, y), via the reduction
/// r_{i,j}(X,Y) = l_{k+1-i, k+1-j}(reverse(X), reverse(Y)) with k = |x| = |y|
/// generalized to unequal lengths.
std::vector<std::vector<int>> matching_table_r(SymbolView x, SymbolView y);

/// Result of minimizing the l-side cost term of Theorem 2.
struct OverlapMin {
  /// min over 1-based i, j of (2k - 1 + i - j - l_{i,j}); this is the
  /// candidate distance D1 of the paper's Algorithm 2.
  int cost = 0;
  /// 1-based minimizing pair (the paper's s1, t1) and theta = l_{s1,t1}.
  int s = 0;
  int t = 0;
  int theta = 0;
};

/// The paper's Algorithm 2, lines 3/4 in the O(k)-space form of section 3.2:
/// scans rows of the l matching function and keeps the minimizer.
/// Requires |x| == |y| == k >= 1. O(k^2) time, O(k) space.
///
/// The r-side minimum (D2, with s2/t2/theta2) is obtained by calling this
/// on the reversed words; see core/path_builder.hpp for the mapping.
OverlapMin min_l_cost(SymbolView x, SymbolView y);

}  // namespace dbn::strings
