#include "strings/suffix_tree.hpp"

#include <algorithm>
#include <sstream>

#include "common/contract.hpp"

namespace dbn::strings {

namespace {
// Sentinel edge end for leaves while Ukkonen's build is in flight; replaced
// by text size in finalize().
constexpr std::size_t kOpenEnd = static_cast<std::size_t>(-1);
}  // namespace

SuffixTree::SuffixTree(std::vector<Symbol> text) : text_(std::move(text)) {
  validate_text();
  build_ukkonen();
  finalize();
}

void SuffixTree::validate_text() const {
  DBN_REQUIRE(!text_.empty(), "SuffixTree requires a non-empty text");
  const Symbol endmarker = text_.back();
  for (std::size_t i = 0; i + 1 < text_.size(); ++i) {
    DBN_REQUIRE(text_[i] != endmarker,
                "SuffixTree requires the last symbol to be a unique endmarker");
  }
}

int SuffixTree::new_node(std::size_t start, std::size_t end) {
  nodes_.push_back(Node{start, end, /*parent=*/-1, /*link=*/0, /*depth=*/0, {}});
  return static_cast<int>(nodes_.size()) - 1;
}

std::size_t SuffixTree::edge_length(int v, std::size_t pos) const {
  const Node& node = nodes_[static_cast<std::size_t>(v)];
  return (node.end == kOpenEnd ? pos + 1 : node.end) - node.start;
}

void SuffixTree::build_ukkonen() {
  nodes_.reserve(2 * text_.size());
  new_node(0, 0);  // root
  for (std::size_t pos = 0; pos < text_.size(); ++pos) {
    extend(pos);
  }
  DBN_ASSERT(remaining_ == 0,
             "all suffixes must be inserted once the endmarker is processed");
}

void SuffixTree::extend(std::size_t pos) {
  int last_new_node = -1;
  ++remaining_;
  while (remaining_ > 0) {
    if (active_length_ == 0) {
      active_edge_ = pos;
    }
    auto it = nodes_[static_cast<std::size_t>(active_node_)].children.find(
        text_[active_edge_]);
    if (it == nodes_[static_cast<std::size_t>(active_node_)].children.end()) {
      // Rule 2a: no edge starts with this symbol — grow a leaf here.
      const int leaf = new_node(pos, kOpenEnd);
      nodes_[static_cast<std::size_t>(active_node_)].children[text_[active_edge_]] =
          leaf;
      if (last_new_node != -1) {
        nodes_[static_cast<std::size_t>(last_new_node)].link = active_node_;
        last_new_node = -1;
      }
    } else {
      const int next = it->second;
      const std::size_t len = edge_length(next, pos);
      if (active_length_ >= len) {
        // Walk down (canonicalize) and retry from the deeper node.
        active_edge_ += len;
        active_length_ -= len;
        active_node_ = next;
        continue;
      }
      if (text_[nodes_[static_cast<std::size_t>(next)].start + active_length_] ==
          text_[pos]) {
        // Rule 3: already present — this phase ends.
        if (last_new_node != -1 && active_node_ != 0) {
          nodes_[static_cast<std::size_t>(last_new_node)].link = active_node_;
          last_new_node = -1;
        }
        ++active_length_;
        break;
      }
      // Rule 2b: split the edge and grow a leaf from the split node.
      const std::size_t split_start = nodes_[static_cast<std::size_t>(next)].start;
      const int split = new_node(split_start, split_start + active_length_);
      nodes_[static_cast<std::size_t>(active_node_)].children[text_[active_edge_]] =
          split;
      const int leaf = new_node(pos, kOpenEnd);
      nodes_[static_cast<std::size_t>(split)].children[text_[pos]] = leaf;
      nodes_[static_cast<std::size_t>(next)].start += active_length_;
      nodes_[static_cast<std::size_t>(split)]
          .children[text_[nodes_[static_cast<std::size_t>(next)].start]] = next;
      if (last_new_node != -1) {
        nodes_[static_cast<std::size_t>(last_new_node)].link = split;
      }
      last_new_node = split;
    }
    --remaining_;
    if (active_node_ == 0 && active_length_ > 0) {
      --active_length_;
      active_edge_ = pos - remaining_ + 1;
    } else if (active_node_ != 0) {
      active_node_ = nodes_[static_cast<std::size_t>(active_node_)].link;
    }
  }
}

void SuffixTree::finalize() {
  // Close leaf edges, then compute parents and string depths iteratively.
  for (Node& node : nodes_) {
    if (node.end == kOpenEnd) {
      node.end = text_.size();
    }
  }
  std::vector<int> stack = {0};
  nodes_[0].parent = -1;
  nodes_[0].depth = 0;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (const auto& [symbol, child] : nodes_[static_cast<std::size_t>(v)].children) {
      (void)symbol;
      Node& c = nodes_[static_cast<std::size_t>(child)];
      c.parent = v;
      c.depth = nodes_[static_cast<std::size_t>(v)].depth +
                static_cast<int>(c.end - c.start);
      stack.push_back(child);
    }
  }
}

SuffixTree SuffixTree::build_naive(std::vector<Symbol> text) {
  SuffixTree tree;
  tree.text_ = std::move(text);
  tree.validate_text();
  tree.new_node(0, 0);  // root
  const std::size_t n = tree.text_.size();
  for (std::size_t suffix = 0; suffix < n; ++suffix) {
    // Walk/match the suffix from the root, splitting on first mismatch.
    int v = 0;
    std::size_t i = suffix;
    while (true) {
      DBN_ASSERT(i < n, "endmarker uniqueness guarantees leaf termination");
      auto it = tree.nodes_[static_cast<std::size_t>(v)].children.find(
          tree.text_[i]);
      if (it == tree.nodes_[static_cast<std::size_t>(v)].children.end()) {
        const int leaf = tree.new_node(i, n);
        tree.nodes_[static_cast<std::size_t>(v)].children[tree.text_[i]] = leaf;
        break;
      }
      const int next = it->second;
      const std::size_t start = tree.nodes_[static_cast<std::size_t>(next)].start;
      const std::size_t end = tree.nodes_[static_cast<std::size_t>(next)].end;
      std::size_t matched = 0;
      while (start + matched < end && tree.text_[start + matched] == tree.text_[i + matched]) {
        ++matched;
      }
      if (start + matched == end) {
        v = next;
        i += matched;
        continue;
      }
      // Split edge after `matched` symbols.
      const int split = tree.new_node(start, start + matched);
      tree.nodes_[static_cast<std::size_t>(v)].children[tree.text_[start]] = split;
      tree.nodes_[static_cast<std::size_t>(next)].start = start + matched;
      tree.nodes_[static_cast<std::size_t>(split)]
          .children[tree.text_[start + matched]] = next;
      const int leaf = tree.new_node(i + matched, n);
      tree.nodes_[static_cast<std::size_t>(split)]
          .children[tree.text_[i + matched]] = leaf;
      break;
    }
  }
  tree.finalize();
  return tree;
}

const std::map<Symbol, int>& SuffixTree::children(int v) const {
  return nodes_[static_cast<std::size_t>(v)].children;
}

int SuffixTree::parent(int v) const {
  return nodes_[static_cast<std::size_t>(v)].parent;
}

bool SuffixTree::is_leaf(int v) const {
  return nodes_[static_cast<std::size_t>(v)].children.empty();
}

std::size_t SuffixTree::edge_begin(int v) const {
  return nodes_[static_cast<std::size_t>(v)].start;
}

std::size_t SuffixTree::edge_end(int v) const {
  return nodes_[static_cast<std::size_t>(v)].end;
}

int SuffixTree::string_depth(int v) const {
  return nodes_[static_cast<std::size_t>(v)].depth;
}

std::size_t SuffixTree::suffix_start(int leaf) const {
  DBN_REQUIRE(is_leaf(leaf), "suffix_start is defined for leaves only");
  return text_.size() - static_cast<std::size_t>(string_depth(leaf));
}

bool SuffixTree::contains(SymbolView pattern) const {
  int v = 0;
  std::size_t i = 0;
  while (i < pattern.size()) {
    auto it = nodes_[static_cast<std::size_t>(v)].children.find(pattern[i]);
    if (it == nodes_[static_cast<std::size_t>(v)].children.end()) {
      return false;
    }
    const int next = it->second;
    const std::size_t start = nodes_[static_cast<std::size_t>(next)].start;
    const std::size_t end = nodes_[static_cast<std::size_t>(next)].end;
    for (std::size_t e = start; e < end && i < pattern.size(); ++e, ++i) {
      if (text_[e] != pattern[i]) {
        return false;
      }
    }
    v = next;
  }
  return true;
}

std::vector<std::size_t> SuffixTree::suffix_array() const {
  std::vector<std::size_t> order;
  order.reserve(text_.size());
  // Iterative DFS in symbol order; push children in reverse so the smallest
  // symbol is processed first.
  std::vector<int> stack = {0};
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    if (is_leaf(v) && v != 0) {
      order.push_back(suffix_start(v));
      continue;
    }
    const auto& kids = nodes_[static_cast<std::size_t>(v)].children;
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(it->second);
    }
  }
  return order;
}

std::string SuffixTree::signature() const {
  // Pre-order serialization with edge-label contents; children are visited
  // in symbol order, so isomorphic trees produce identical strings.
  std::ostringstream os;
  std::vector<std::pair<int, bool>> stack = {{0, false}};
  while (!stack.empty()) {
    auto [v, closing] = stack.back();
    stack.pop_back();
    if (closing) {
      os << ")";
      continue;
    }
    os << "(";
    for (std::size_t e = edge_begin(v); e < edge_end(v); ++e) {
      os << text_[e] << ",";
    }
    stack.emplace_back(v, true);
    const auto& kids = nodes_[static_cast<std::size_t>(v)].children;
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.emplace_back(it->second, false);
    }
  }
  return os.str();
}

}  // namespace dbn::strings
