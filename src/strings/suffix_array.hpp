// Suffix arrays with LCP and range-minimum support — the array-form twin
// of the suffix tree (LCP intervals are exactly the tree's internal
// nodes), giving a fourth independent engine for the Theorem 2 minimum and
// a general-purpose index the library exposes publicly.
#pragma once

#include <cstddef>
#include <vector>

#include "strings/matching.hpp"
#include "strings/symbol.hpp"

namespace dbn::strings {

/// Suffix array of s: the start positions of all suffixes in increasing
/// lexicographic order. Radix-doubling construction, O(n log n).
std::vector<int> suffix_array(SymbolView s);

/// Kasai's LCP array: lcp[i] = LCP(s[sa[i-1]..], s[sa[i]..]) for i >= 1,
/// lcp[0] = 0. O(n).
std::vector<int> lcp_array(SymbolView s, const std::vector<int>& sa);

/// O(n log n) space / O(1) query sparse-table minimum over an int array.
class RmqSparseTable {
 public:
  explicit RmqSparseTable(std::vector<int> values);

  /// min(values[l..r]) inclusive; requires l <= r < size.
  int min_in(std::size_t l, std::size_t r) const;

  std::size_t size() const { return levels_.empty() ? 0 : levels_[0].size(); }

 private:
  std::vector<std::vector<int>> levels_;
};

/// Constant-time LCP between arbitrary suffixes of a fixed text.
class LcpOracle {
 public:
  explicit LcpOracle(std::vector<Symbol> text);

  /// LCP of the suffixes starting at i and j. O(1).
  int lcp(std::size_t i, std::size_t j) const;

  const std::vector<int>& sa() const { return sa_; }
  const std::vector<int>& lcp_values() const { return lcp_; }

 private:
  std::vector<Symbol> text_;
  std::vector<int> sa_;
  std::vector<int> rank_;
  std::vector<int> lcp_;
  RmqSparseTable rmq_;
};

/// Same contract as min_l_cost / min_l_cost_suffix_tree /
/// min_l_cost_suffix_automaton: the Theorem 2 l-side minimum with witness,
/// via bottom-up enumeration of the LCP intervals of x·sep1·y·sep2 (the
/// suffix-tree nodes, in array form). O(k log k) time from the SA build.
OverlapMin min_l_cost_suffix_array(SymbolView x, SymbolView y);

}  // namespace dbn::strings
