#include "strings/suffix_array.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/contract.hpp"

namespace dbn::strings {

std::vector<int> suffix_array(SymbolView s) {
  const int n = static_cast<int>(s.size());
  std::vector<int> sa(s.size());
  std::iota(sa.begin(), sa.end(), 0);
  if (n <= 1) {
    return sa;
  }
  // rank[i] = equivalence class of the length-2^h substring at i.
  std::vector<std::int64_t> rank(s.begin(), s.end());
  std::vector<std::int64_t> key(s.size());
  for (int h = 1;; h *= 2) {
    // Sort by (rank[i], rank[i+h]) pairs; -1 past the end.
    const auto pair_key = [&](int i) {
      const std::int64_t second =
          i + h < n ? rank[static_cast<std::size_t>(i + h)] : -1;
      return std::make_pair(rank[static_cast<std::size_t>(i)], second);
    };
    std::sort(sa.begin(), sa.end(),
              [&](int a, int b) { return pair_key(a) < pair_key(b); });
    key[static_cast<std::size_t>(sa[0])] = 0;
    for (std::size_t i = 1; i < sa.size(); ++i) {
      key[static_cast<std::size_t>(sa[i])] =
          key[static_cast<std::size_t>(sa[i - 1])] +
          (pair_key(sa[i - 1]) != pair_key(sa[i]) ? 1 : 0);
    }
    rank = key;
    if (rank[static_cast<std::size_t>(sa.back())] == n - 1) {
      break;  // all suffixes distinguished
    }
  }
  return sa;
}

std::vector<int> lcp_array(SymbolView s, const std::vector<int>& sa) {
  const std::size_t n = s.size();
  DBN_REQUIRE(sa.size() == n, "lcp_array: suffix array size mismatch");
  std::vector<int> rank(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    rank[static_cast<std::size_t>(sa[i])] = static_cast<int>(i);
  }
  std::vector<int> lcp(n, 0);
  int h = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (rank[i] == 0) {
      h = 0;
      continue;
    }
    const std::size_t j =
        static_cast<std::size_t>(sa[static_cast<std::size_t>(rank[i] - 1)]);
    while (i + static_cast<std::size_t>(h) < n &&
           j + static_cast<std::size_t>(h) < n &&
           s[i + static_cast<std::size_t>(h)] ==
               s[j + static_cast<std::size_t>(h)]) {
      ++h;
    }
    lcp[static_cast<std::size_t>(rank[i])] = h;
    if (h > 0) {
      --h;
    }
  }
  return lcp;
}

RmqSparseTable::RmqSparseTable(std::vector<int> values) {
  if (values.empty()) {
    return;
  }
  levels_.push_back(std::move(values));
  for (std::size_t span = 2; span <= levels_[0].size(); span *= 2) {
    const std::vector<int>& prev = levels_.back();
    std::vector<int> next(levels_[0].size() - span + 1);
    for (std::size_t i = 0; i < next.size(); ++i) {
      next[i] = std::min(prev[i], prev[i + span / 2]);
    }
    levels_.push_back(std::move(next));
  }
}

int RmqSparseTable::min_in(std::size_t l, std::size_t r) const {
  DBN_REQUIRE(l <= r && r < size(), "min_in: bad range");
  const std::size_t len = r - l + 1;
  std::size_t level = 0;
  while ((std::size_t{2} << level) <= len) {
    ++level;
  }
  const std::size_t span = std::size_t{1} << level;
  return std::min(levels_[level][l], levels_[level][r + 1 - span]);
}

LcpOracle::LcpOracle(std::vector<Symbol> text)
    : text_(std::move(text)),
      sa_(suffix_array(text_)),
      rank_(text_.size(), 0),
      lcp_(lcp_array(text_, sa_)),
      rmq_(lcp_) {
  DBN_REQUIRE(!text_.empty(), "LcpOracle requires a non-empty text");
  for (std::size_t i = 0; i < sa_.size(); ++i) {
    rank_[static_cast<std::size_t>(sa_[i])] = static_cast<int>(i);
  }
}

int LcpOracle::lcp(std::size_t i, std::size_t j) const {
  DBN_REQUIRE(i < text_.size() && j < text_.size(),
              "LcpOracle::lcp: position out of range");
  if (i == j) {
    return static_cast<int>(text_.size() - i);
  }
  auto [lo, hi] = std::minmax(rank_[i], rank_[j]);
  return rmq_.min_in(static_cast<std::size_t>(lo) + 1,
                     static_cast<std::size_t>(hi));
}

namespace {

constexpr std::int64_t kNoP = std::numeric_limits<std::int64_t>::max();

/// Aggregates of one LCP interval (= suffix-tree node) during the
/// bottom-up sweep.
struct Interval {
  int depth = 0;
  std::int64_t min_p = kNoP;  // min start in x
  std::int64_t max_q = -1;    // max start in y
};

void merge_into(Interval& target, const Interval& from) {
  target.min_p = std::min(target.min_p, from.min_p);
  target.max_q = std::max(target.max_q, from.max_q);
}

}  // namespace

OverlapMin min_l_cost_suffix_array(SymbolView x, SymbolView y) {
  DBN_REQUIRE(!x.empty() && x.size() == y.size(),
              "min_l_cost_suffix_array requires two non-empty words of equal "
              "length");
  const int k = static_cast<int>(x.size());
  // Joined text x·sep1·y·sep2 exactly as the suffix-tree kernel builds it.
  Symbol max_symbol = 0;
  for (const Symbol c : x) {
    max_symbol = std::max(max_symbol, c);
  }
  for (const Symbol c : y) {
    max_symbol = std::max(max_symbol, c);
  }
  DBN_REQUIRE(max_symbol < std::numeric_limits<Symbol>::max() - 1,
              "symbols too large to append sentinels");
  std::vector<Symbol> text;
  text.reserve(2 * x.size() + 2);
  text.insert(text.end(), x.begin(), x.end());
  text.push_back(max_symbol + 1);
  text.insert(text.end(), y.begin(), y.end());
  text.push_back(max_symbol + 2);

  const std::vector<int> sa = suffix_array(text);
  const std::vector<int> lcp = lcp_array(text, sa);
  const std::size_t y_offset = x.size() + 1;

  OverlapMin best{k, 1, k, 0};  // theta = 0 baseline
  const auto consider = [&](const Interval& node) {
    if (node.depth <= 0 || node.min_p == kNoP || node.max_q < 0) {
      return;
    }
    const int cost = static_cast<int>(2 * k + node.min_p - node.max_q -
                                      2 * node.depth);
    if (cost < best.cost) {
      best.cost = cost;
      best.s = static_cast<int>(node.min_p) + 1;
      best.t = static_cast<int>(node.max_q) + node.depth;
      best.theta = node.depth;
    }
  };

  const auto leaf_interval = [&](std::size_t sa_index) {
    // A leaf behaves as an interval of its full suffix length — strictly
    // deeper than any LCP next to it (the final sentinel is unique, so no
    // suffix is a prefix of another) — which makes the close-loop below
    // assign it to the right internal intervals automatically.
    Interval leaf{static_cast<int>(text.size() -
                                   static_cast<std::size_t>(sa[sa_index])),
                  kNoP, -1};
    const std::size_t start = static_cast<std::size_t>(sa[sa_index]);
    if (start < x.size()) {
      leaf.min_p = static_cast<std::int64_t>(start);
    } else if (start >= y_offset && start < y_offset + y.size()) {
      leaf.max_q = static_cast<std::int64_t>(start - y_offset);
    }
    return leaf;
  };

  // Bottom-up LCP-interval enumeration (the stack algorithm that builds a
  // suffix tree from SA+LCP): intervals close when the LCP drops, at which
  // point their aggregates cover exactly their subtree's leaves. Leaf
  // "intervals" are one-sided, so consider() skips them.
  std::vector<Interval> stack;
  stack.push_back(Interval{0, kNoP, -1});  // root sentinel
  stack.push_back(leaf_interval(0));
  for (std::size_t i = 1; i < sa.size(); ++i) {
    const int h = lcp[i];
    Interval carry{h, kNoP, -1};
    while (stack.back().depth > h) {
      const Interval closed = stack.back();
      stack.pop_back();
      DBN_ASSERT(!stack.empty(), "depth-0 sentinel never pops here");
      consider(closed);
      // The closed interval's aggregates flow to its parent: the next
      // stack entry if that also closes this round, else the fresh
      // interval at depth h.
      if (stack.back().depth > h) {
        merge_into(stack.back(), closed);
      } else {
        merge_into(carry, closed);
      }
    }
    if (stack.back().depth == h) {
      merge_into(stack.back(), carry);
    } else {
      stack.push_back(carry);
    }
    stack.push_back(leaf_interval(i));
  }
  while (!stack.empty()) {
    const Interval closed = stack.back();
    stack.pop_back();
    consider(closed);
    if (!stack.empty()) {
      merge_into(stack.back(), closed);
    }
  }
  DBN_ASSERT(best.cost <= k, "l-side minimum must not exceed the diameter");
  return best;
}

}  // namespace dbn::strings
