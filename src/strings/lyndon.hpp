// Lyndon words and necklaces — the combinatorics underneath the FKM
// de Bruijn sequence (sequence.hpp) and the cyclic structure of DG(d,k)
// (each necklace is an orbit of the left-rotation automorphism-like map).
#pragma once

#include <cstdint>
#include <vector>

#include "strings/symbol.hpp"

namespace dbn::strings {

/// Duval's algorithm: factorizes s into its unique non-increasing sequence
/// of Lyndon words, returned as (start, length) pairs. O(n).
std::vector<std::pair<std::size_t, std::size_t>> lyndon_factorization(
    SymbolView s);

/// True iff s is a Lyndon word: non-empty and strictly smaller than every
/// proper suffix (equivalently: primitive and lexicographically least
/// among its rotations). O(n) via the factorization.
bool is_lyndon(SymbolView s);

/// Booth's algorithm: the rotation index r (0-based) such that rotating s
/// left by r gives the lexicographically least rotation. O(n).
std::size_t least_rotation(SymbolView s);

/// Number of d-ary necklaces of length n (distinct cyclic words):
/// (1/n) * sum over divisors e of n of phi(n/e) * d^e. This counts the
/// left-rotation orbits of the vertices of DG(d,n).
std::uint64_t necklace_count(std::uint32_t radix, std::size_t n);

/// True iff s is primitive (not a proper power of a shorter word). O(n).
bool is_primitive(SymbolView s);

}  // namespace dbn::strings
