// Compact suffix tree ("compact prefix tree of all suffixes" in the paper's
// Weiner terminology), the substrate of Algorithm 4.
//
// Substitution note (see DESIGN.md §4): the paper uses Weiner's 1973
// right-to-left construction; we build the identical structure with
// Ukkonen's online algorithm, which is linear in the text length for a
// fixed alphabet. A naive O(n^2) builder is provided as a test oracle; the
// two constructions are compared node-for-node via a canonical signature.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "strings/symbol.hpp"

namespace dbn::strings {

/// Compact suffix tree over an integer-symbol text.
///
/// Requirements: the text is non-empty and its last symbol occurs nowhere
/// else (an endmarker, the paper's ⊥). This guarantees one leaf per suffix.
/// For a generalized tree over two words, pass X · sep1 · Y · sep2 with two
/// distinct out-of-alphabet separators; cross-word matches then stop at
/// sep1 exactly as the paper's ⊥ stops them.
///
/// Node ids are dense ints, root() == 0. Children are keyed by the first
/// symbol of the edge label, in symbol order (deterministic traversal).
class SuffixTree {
 public:
  /// Builds with Ukkonen's algorithm. O(n log sigma) time, O(n) space.
  explicit SuffixTree(std::vector<Symbol> text);

  /// Builds the same structure by inserting suffixes one at a time
  /// (O(n^2)); test oracle and baseline for the construction benchmark.
  static SuffixTree build_naive(std::vector<Symbol> text);

  int root() const { return 0; }
  int node_count() const { return static_cast<int>(nodes_.size()); }

  const std::map<Symbol, int>& children(int v) const;
  int parent(int v) const;
  bool is_leaf(int v) const;

  /// The edge label into v is text[edge_begin(v) .. edge_end(v)).
  std::size_t edge_begin(int v) const;
  std::size_t edge_end(int v) const;

  /// Number of symbols on the root-to-v path (the paper's D(v)).
  int string_depth(int v) const;

  /// For a leaf, the 0-based start position of the suffix it represents.
  std::size_t suffix_start(int leaf) const;

  /// True iff pattern occurs in the text (endmarker included).
  bool contains(SymbolView pattern) const;

  /// Suffix start positions in lexicographic order of the suffixes
  /// (a suffix array); derived by ordered DFS. O(n).
  std::vector<std::size_t> suffix_array() const;

  /// Canonical structural serialization: equal signatures <=> identical
  /// trees (labels compared by content). Used to compare constructions.
  std::string signature() const;

  const std::vector<Symbol>& text() const { return text_; }

 private:
  struct Node {
    std::size_t start = 0;  // edge label begin (into text_)
    std::size_t end = 0;    // edge label end, exclusive
    int parent = -1;
    int link = 0;                     // suffix link (build-time only)
    int depth = 0;                    // string depth at node
    std::map<Symbol, int> children;  // ordered => deterministic traversal
  };

  SuffixTree() = default;  // used by build_naive

  void validate_text() const;
  int new_node(std::size_t start, std::size_t end);
  void build_ukkonen();
  void extend(std::size_t pos);
  std::size_t edge_length(int v, std::size_t pos) const;
  void finalize();

  std::vector<Symbol> text_;
  std::vector<Node> nodes_;

  // Ukkonen build state.
  int active_node_ = 0;
  std::size_t active_edge_ = 0;
  std::size_t active_length_ = 0;
  std::size_t remaining_ = 0;
};

}  // namespace dbn::strings
