// Symbol type shared by the string-matching substrate.
//
// De Bruijn words use digits in [0, d); the suffix-tree code additionally
// needs out-of-alphabet sentinels, so the substrate works over a wide
// integer symbol instead of char.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dbn::strings {

using Symbol = std::uint32_t;
using SymbolView = std::span<const Symbol>;

/// Converts an ASCII string to a symbol sequence (test/demo convenience).
inline std::vector<Symbol> to_symbols(const char* text) {
  std::vector<Symbol> out;
  for (const char* p = text; *p != '\0'; ++p) {
    out.push_back(static_cast<Symbol>(static_cast<unsigned char>(*p)));
  }
  return out;
}

/// Returns the reversal of a symbol sequence.
inline std::vector<Symbol> reversed(SymbolView s) {
  return {s.rbegin(), s.rend()};
}

}  // namespace dbn::strings
