// Z-function kernel: an independent implementation of the Algorithm 3
// matching-function row, used to cross-validate the Morris–Pratt scan and
// as a contender in the matching-kernel ablation benchmark.
//
// z[i] is the length of the longest common prefix of s and s[i..]; the
// matching row follows from the Z-array of pattern · sep · text by an
// interval-cover sweep (see matching_row_l_z).
#pragma once

#include <cstddef>
#include <vector>

#include "strings/matching.hpp"
#include "strings/symbol.hpp"

namespace dbn::strings {

/// The Z-array of s. By convention z[0] = |s|. O(|s|).
std::vector<int> z_function(SymbolView s);

/// Same contract as matching_row_l (one row of the paper's l function),
/// computed via the Z-array instead of the failure-function automaton:
/// row[j0] = l_{i0+1, j0+1}(x, y). O(|x| + |y|).
std::vector<int> matching_row_l_z(SymbolView x, SymbolView y, std::size_t i0);

/// Same contract as min_l_cost (the Theorem 2 l-side minimum), using
/// Z-based rows. O(k^2) time, O(k) space.
OverlapMin min_l_cost_z(SymbolView x, SymbolView y);

}  // namespace dbn::strings
