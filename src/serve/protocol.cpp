#include "serve/protocol.hpp"

#include <cstring>

#include "common/contract.hpp"

namespace dbn::serve {

namespace {

// All multi-byte wire integers are little-endian, written explicitly so
// the format does not depend on host byte order.
void put_u16(std::uint16_t v, std::string& out) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::uint32_t v, std::string& out) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void put_u64(std::uint64_t v, std::string& out) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

std::uint16_t get_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

// Finishes a frame started by begin_frame: patches the u32 length prefix
// now that the payload size is known.
std::size_t begin_frame(std::string& out) {
  const std::size_t at = out.size();
  put_u32(0, out);
  return at;
}

void end_frame(std::string& out, std::size_t at) {
  const std::size_t payload = out.size() - at - 4;
  DBN_ASSERT(payload <= kMaxPayload, "encoder produced an oversized frame");
  for (int i = 0; i < 4; ++i) {
    out[at + static_cast<std::size_t>(i)] =
        static_cast<char>((payload >> (8 * i)) & 0xFF);
  }
}

void put_word_pair(const Word& x, const Word& y, std::string& out) {
  DBN_REQUIRE(x.radix() == y.radix() && x.length() == y.length(),
              "wire words must share radix and length");
  DBN_REQUIRE(x.radix() <= kMaxWireRadix,
              "wire digits are one byte; radix must be <= 255");
  DBN_REQUIRE(x.length() <= 0xFFFF, "wire k is 16-bit");
  put_u16(static_cast<std::uint16_t>(x.length()), out);
  for (std::size_t i = 0; i < x.length(); ++i) {
    out.push_back(static_cast<char>(x.digit(i)));
  }
  for (std::size_t i = 0; i < y.length(); ++i) {
    out.push_back(static_cast<char>(y.digit(i)));
  }
}

void encode_pair_request(RequestType type, std::uint64_t id, const Word& x,
                         const Word& y, std::string& out) {
  const std::size_t frame = begin_frame(out);
  out.push_back(static_cast<char>(type));
  put_u64(id, out);
  put_word_pair(x, y, out);
  end_frame(out, frame);
}

bool known_request_type(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(RequestType::Route) &&
         type <= static_cast<std::uint8_t>(RequestType::Introspect);
}

}  // namespace

std::string_view status_name(Status status) {
  switch (status) {
    case Status::Ok:
      return "ok";
    case Status::BadRequest:
      return "bad-request";
    case Status::Overloaded:
      return "overloaded";
    case Status::Draining:
      return "draining";
    case Status::InternalError:
      return "internal-error";
  }
  return "unknown";
}

std::string_view decode_error_name(DecodeError error) {
  switch (error) {
    case DecodeError::None:
      return "none";
    case DecodeError::TruncatedHeader:
      return "truncated-header";
    case DecodeError::UnknownType:
      return "unknown-type";
    case DecodeError::TruncatedBody:
      return "truncated-body";
    case DecodeError::TrailingBytes:
      return "trailing-bytes";
  }
  return "unknown";
}

void encode_route_request(std::uint64_t id, const Word& x, const Word& y,
                          std::string& out) {
  encode_pair_request(RequestType::Route, id, x, y, out);
}

void encode_distance_request(std::uint64_t id, const Word& x, const Word& y,
                             std::string& out) {
  encode_pair_request(RequestType::Distance, id, x, y, out);
}

void encode_control_request(RequestType type, std::uint64_t id,
                            std::string& out) {
  DBN_REQUIRE(type == RequestType::Ping || type == RequestType::Stats ||
                  type == RequestType::Introspect,
              "control requests are Ping, Stats, or Introspect");
  const std::size_t frame = begin_frame(out);
  out.push_back(static_cast<char>(type));
  put_u64(id, out);
  end_frame(out, frame);
}

void encode_route_response(std::uint64_t id, const RoutingPath& path,
                           std::string& out) {
  DBN_REQUIRE(path.length() <= 0xFFFF, "wire hop count is 16-bit");
  const std::size_t frame = begin_frame(out);
  out.push_back(static_cast<char>(Status::Ok));
  out.push_back(static_cast<char>(RequestType::Route));
  put_u64(id, out);
  put_u16(static_cast<std::uint16_t>(path.length()), out);
  for (const Hop& hop : path.hops()) {
    out.push_back(static_cast<char>(hop.type));
    out.push_back(hop.is_wildcard()
                      ? static_cast<char>(kWireWildcard)
                      : static_cast<char>(hop.digit));
  }
  end_frame(out, frame);
}

void encode_distance_response(std::uint64_t id, std::uint32_t distance,
                              std::string& out) {
  const std::size_t frame = begin_frame(out);
  out.push_back(static_cast<char>(Status::Ok));
  out.push_back(static_cast<char>(RequestType::Distance));
  put_u64(id, out);
  put_u32(distance, out);
  end_frame(out, frame);
}

void encode_ok_response(RequestType type, std::uint64_t id,
                        std::string_view body, std::string& out) {
  DBN_REQUIRE(body.size() + 10 <= kMaxPayload, "response body too large");
  const std::size_t frame = begin_frame(out);
  out.push_back(static_cast<char>(Status::Ok));
  out.push_back(static_cast<char>(type));
  put_u64(id, out);
  out.append(body);
  end_frame(out, frame);
}

void encode_error_response(RequestType type, Status status, std::uint64_t id,
                           std::string_view message, std::string& out) {
  DBN_REQUIRE(status != Status::Ok, "error responses need an error status");
  const std::size_t frame = begin_frame(out);
  out.push_back(static_cast<char>(status));
  out.push_back(static_cast<char>(type));
  put_u64(id, out);
  out.append(message.substr(0, 256));
  end_frame(out, frame);
}

DecodedRequest decode_request(std::string_view payload) {
  DecodedRequest result;
  const auto* p = reinterpret_cast<const unsigned char*>(payload.data());
  if (payload.size() < 9) {
    result.error = DecodeError::TruncatedHeader;
    return result;
  }
  const std::uint8_t raw_type = p[0];
  result.request.id = get_u64(p + 1);
  if (!known_request_type(raw_type)) {
    result.error = DecodeError::UnknownType;
    return result;
  }
  result.request.type = static_cast<RequestType>(raw_type);
  std::string_view body = payload.substr(9);
  switch (result.request.type) {
    case RequestType::Ping:
    case RequestType::Stats:
    case RequestType::Introspect:
      if (!body.empty()) {
        result.error = DecodeError::TrailingBytes;
      }
      return result;
    case RequestType::Route:
    case RequestType::Distance: {
      if (body.size() < 2) {
        result.error = DecodeError::TruncatedBody;
        return result;
      }
      const auto* b = reinterpret_cast<const unsigned char*>(body.data());
      const std::size_t k = get_u16(b);
      if (body.size() < 2 + 2 * k) {
        result.error = DecodeError::TruncatedBody;
        return result;
      }
      if (body.size() > 2 + 2 * k) {
        result.error = DecodeError::TrailingBytes;
        return result;
      }
      result.request.x.assign(b + 2, b + 2 + k);
      result.request.y.assign(b + 2 + k, b + 2 + 2 * k);
      return result;
    }
  }
  result.error = DecodeError::UnknownType;
  return result;
}

DecodedResponse decode_response(std::string_view payload) {
  DecodedResponse result;
  const auto* p = reinterpret_cast<const unsigned char*>(payload.data());
  if (payload.size() < 10) {
    result.error = DecodeError::TruncatedHeader;
    return result;
  }
  const std::uint8_t raw_status = p[0];
  const std::uint8_t raw_type = p[1];
  if (raw_status > static_cast<std::uint8_t>(Status::InternalError) ||
      !known_request_type(raw_type)) {
    result.error = DecodeError::UnknownType;
    return result;
  }
  result.response.status = static_cast<Status>(raw_status);
  result.response.type = static_cast<RequestType>(raw_type);
  result.response.id = get_u64(p + 2);
  std::string_view body = payload.substr(10);
  if (result.response.status != Status::Ok) {
    result.response.body.assign(body);
    return result;
  }
  switch (result.response.type) {
    case RequestType::Route: {
      if (body.size() < 2) {
        result.error = DecodeError::TruncatedBody;
        return result;
      }
      const auto* b = reinterpret_cast<const unsigned char*>(body.data());
      const std::size_t hops = get_u16(b);
      if (body.size() != 2 + 2 * hops) {
        result.error = body.size() < 2 + 2 * hops ? DecodeError::TruncatedBody
                                                  : DecodeError::TrailingBytes;
        return result;
      }
      result.response.hops.reserve(hops);
      for (std::size_t i = 0; i < hops; ++i) {
        const std::uint8_t shift = b[2 + 2 * i];
        const std::uint8_t digit = b[3 + 2 * i];
        if (shift > 1) {
          result.error = DecodeError::UnknownType;
          return result;
        }
        result.response.hops.push_back(
            Hop{static_cast<ShiftType>(shift),
                digit == kWireWildcard ? kWildcard : Digit{digit}});
      }
      return result;
    }
    case RequestType::Distance:
      if (body.size() != 4) {
        result.error = body.size() < 4 ? DecodeError::TruncatedBody
                                       : DecodeError::TrailingBytes;
        return result;
      }
      result.response.distance =
          get_u32(reinterpret_cast<const unsigned char*>(body.data()));
      return result;
    case RequestType::Ping:
      if (!body.empty()) {
        result.error = DecodeError::TrailingBytes;
      }
      return result;
    case RequestType::Stats:
    case RequestType::Introspect:
      result.response.body.assign(body);
      return result;
  }
  result.error = DecodeError::UnknownType;
  return result;
}

FrameReader::Result FrameReader::next(std::string& payload) {
  if (poisoned_) {
    return Result::Error;
  }
  if (buffer_.size() < 4) {
    return Result::NeedMore;
  }
  const std::size_t length =
      get_u32(reinterpret_cast<const unsigned char*>(buffer_.data()));
  // length == 0 is a framing error, not an empty request: every valid
  // payload starts with a 9-byte request header, so a zero-length frame
  // can only come from a desynchronized or malicious peer — treat it like
  // an oversized frame and poison the stream (no resync is possible).
  if (length == 0 || length > kMaxPayload) {
    poisoned_ = true;
    return Result::Error;
  }
  if (buffer_.size() < 4 + length) {
    return Result::NeedMore;
  }
  payload.assign(buffer_, 4, length);
  buffer_.erase(0, 4 + length);
  return Result::Frame;
}

std::optional<Word> word_from_wire(std::uint32_t d,
                                   const std::vector<std::uint8_t>& digits) {
  std::vector<Digit> out;
  out.reserve(digits.size());
  for (const std::uint8_t digit : digits) {
    if (digit >= d) {
      return std::nullopt;
    }
    out.push_back(digit);
  }
  return Word(d, std::move(out));
}

}  // namespace dbn::serve
