// Transports for RouteServer: a stdin/stdout pipe loop (used by
// tools/dbn_loadgen --spawn and by the in-memory tests, which drive it
// with string streams) and a localhost TCP listener (the CI serve-smoke
// job's mode, drained by SIGTERM via the `stop` flag).
//
// Both transports implement the same lifecycle: feed bytes to the server
// until the input ends (EOF / stop flag), then begin_drain(), wait for
// every admitted request to be answered, flush, and return. Exit status
// is 0 only when every connection ended frame-aligned (no truncated or
// poisoned streams).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "serve/server.hpp"

namespace dbn::serve {

/// Serves one connection over `in`/`out` until EOF, then drains. Returns
/// 0 on a clean, frame-aligned shutdown; 1 when the peer truncated or
/// poisoned the stream.
int serve_stdio(RouteServer& server, std::istream& in, std::ostream& out);

struct TcpOptions {
  /// Port to bind on 127.0.0.1 (0 = ephemeral).
  std::uint16_t port = 0;
  /// When non-empty, the bound port is written here ("<port>\n") via a
  /// rename so a watcher never reads a half-written file.
  std::string port_file;
};

/// Listens and serves until `stop` becomes true (the CLI's SIGTERM/SIGINT
/// watcher sets it), then drains every connection and returns 0 on clean
/// shutdown. `bound_port`, when non-null, receives the actual port before
/// the first accept.
int serve_tcp(RouteServer& server, const TcpOptions& options,
              const std::atomic<bool>& stop,
              std::uint16_t* bound_port = nullptr);

}  // namespace dbn::serve
