#include "serve/introspect.hpp"

#include <sstream>

#include "common/schema.hpp"
#include "net/load_stats.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"

namespace dbn::serve {

namespace {

// splitmix64 finalizer: the sampling decision is a stateless hash, so it
// is identical on every thread and every run with the same seed.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::string_view request_type_name(RequestType type) {
  switch (type) {
    case RequestType::Route:
      return "route";
    case RequestType::Distance:
      return "distance";
    case RequestType::Ping:
      return "ping";
    case RequestType::Stats:
      return "stats";
    case RequestType::Introspect:
      return "introspect";
  }
  return "unknown";
}

}  // namespace

bool TraceSampler::sampled(std::uint64_t id) const {
  if (every_ == 0) {
    return false;
  }
  if (every_ == 1) {
    return true;
  }
  return mix64(seed_ ^ mix64(id)) % every_ == 0;
}

bool SlowLog::note(const SlowRecord& record) {
  if (threshold_us_ <= 0.0 || record.total_us < threshold_us_) {
    return false;
  }
  const MutexLock lock(mutex_);
  ++total_;
  ring_.push_back(record);
  while (ring_.size() > capacity_) {
    ring_.pop_front();
  }
  return true;
}

std::uint64_t SlowLog::total() const {
  const MutexLock lock(mutex_);
  return total_;
}

std::vector<SlowRecord> SlowLog::records() const {
  const MutexLock lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::string introspect_json(const RouteServer& server) {
  using obs::json_number;
  const ServeConfig& config = server.config();
  const IntrospectSnapshot snap = server.introspect();

  std::ostringstream out;
  out << "{\"schema\":\"" << schema::kIntrospect << "\"";
  out << ",\"config\":{\"d\":" << config.d << ",\"k\":" << config.k
      << ",\"backend\":\"" << batch_backend_name(config.backend)
      << "\",\"threads\":" << config.threads
      << ",\"queue_capacity\":" << config.queue_capacity
      << ",\"max_batch\":" << config.max_batch
      << ",\"cache_entries\":" << config.cache_entries << ",\"wildcards\":"
      << (config.wildcard_mode == WildcardMode::Wildcards ? "true" : "false")
      << ",\"trace_sample\":" << config.trace_sample
      << ",\"trace_seed\":" << config.trace_seed
      << ",\"slow_us\":" << json_number(config.slow_us) << "}";
  out << ",\"uptime_us\":" << json_number(snap.uptime_us);
  const ServeStats& stats = snap.stats;
  out << ",\"stats\":{\"requests\":" << stats.requests
      << ",\"responses_ok\":" << stats.responses_ok
      << ",\"rejected_overload\":" << stats.rejected_overload
      << ",\"rejected_bad_request\":" << stats.rejected_bad_request
      << ",\"rejected_undecodable\":" << stats.rejected_undecodable
      << ",\"rejected_draining\":" << stats.rejected_draining
      << ",\"protocol_errors\":" << stats.protocol_errors
      << ",\"batches\":" << stats.batches
      << ",\"slow_requests\":" << stats.slow_requests << "}";
  out << ",\"queue_depth\":" << snap.queue_depth
      << ",\"inflight\":" << snap.inflight;

  std::vector<std::uint64_t> shares;
  shares.reserve(snap.connections.size());
  out << ",\"connections\":[";
  for (std::size_t i = 0; i < snap.connections.size(); ++i) {
    const ConnectionInfo& conn = snap.connections[i];
    shares.push_back(conn.requests);
    if (i != 0) {
      out << ",";
    }
    out << "{\"id\":" << conn.id << ",\"requests\":" << conn.requests
        << ",\"responses\":" << conn.responses << "}";
  }
  out << "],\"fairness\":" << json_number(net::jain_fairness_index(shares));

  out << ",\"slow\":[";
  for (std::size_t i = 0; i < snap.slow.size(); ++i) {
    const SlowRecord& slow = snap.slow[i];
    if (i != 0) {
      out << ",";
    }
    out << "{\"id\":" << slow.id << ",\"conn\":" << slow.conn
        << ",\"type\":\"" << request_type_name(slow.type)
        << "\",\"total_us\":" << json_number(slow.total_us)
        << ",\"queue_us\":" << json_number(slow.queue_us)
        << ",\"route_us\":" << json_number(slow.route_us)
        << ",\"batch_size\":" << slow.batch_size << "}";
  }
  out << "]";

  // Embedded verbatim, so a probe client can hand this member to anything
  // that already reads metrics/1 documents (to_json ends in \n; strip it).
  std::string metrics = obs::MetricsRegistry::global().snapshot().to_json();
  while (!metrics.empty() && metrics.back() == '\n') {
    metrics.pop_back();
  }
  out << ",\"metrics\":" << metrics << "}\n";
  return out.str();
}

}  // namespace dbn::serve
