// RouteServer — the long-running serving core behind `dbn serve`.
//
// The server owns one BatchRouteEngine (the PR-2 machinery: chunked
// ThreadPool, per-worker BidirectionalRouteEngine arenas, sharded memo
// cache) and turns it from a batch API into a daemon:
//
//   reader threads ──feed()──> bounded request queue ──> dispatcher thread
//                                                           │ micro-batches
//                                                           ▼
//                                                   BatchRouteEngine
//                                                           │ responses
//                                                           ▼
//                                              per-connection sinks
//
// Transport is someone else's job: a Connection is created per client with
// a ResponseSink callback, raw bytes are pushed in with feed(), and
// complete response frames come back out through the sink (from the reader
// thread for rejects/control requests, from the dispatcher thread for
// routed work — the sink is serialized per connection).
//
// Backpressure is explicit and bounded: the request queue holds at most
// `queue_capacity` entries; when it is full, feed() answers Overloaded
// immediately instead of queueing — memory use is bounded no matter how
// fast clients push. Graceful drain (SIGTERM, stdin EOF): begin_drain()
// stops admission (new work answers Draining), the dispatcher finishes
// everything already queued, then wait_drained() returns. Every admitted
// request is answered exactly once.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "core/batch_route_engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/introspect.hpp"
#include "serve/protocol.hpp"

namespace dbn::serve {

struct ServeConfig {
  std::uint32_t d = 2;
  std::size_t k = 10;
  BatchBackend backend = BatchBackend::BidiEngine;
  /// Worker threads of the routing engine (0 = hardware concurrency).
  std::size_t threads = 1;
  /// Bounded request-queue capacity; a full queue answers Overloaded.
  std::size_t queue_capacity = 1024;
  /// Largest micro-batch the dispatcher hands the engine at once.
  std::size_t max_batch = 256;
  /// Hot-route cache entries (the engine's sharded memo cache; 0 = off).
  std::size_t cache_entries = 0;
  WildcardMode wildcard_mode = WildcardMode::Concrete;
  /// Trace 1-in-N requests end to end (admit->dispatch->route->respond
  /// spans on the global TraceSink); 0 = off, 1 = every request. The
  /// choice is a deterministic hash of (trace_seed, wire id).
  std::uint64_t trace_sample = 0;
  std::uint64_t trace_seed = 0;
  /// Capture requests slower than this (admit->respond, microseconds) in
  /// the slow-request log; 0 = off. Boundary inclusive.
  double slow_us = 0.0;
  /// Slow-log ring capacity (older records evicted, capture count kept).
  std::size_t slow_log_capacity = 64;
};

/// Admission/answer counters. Every cut returned by stats()/introspect()
/// is exact: all transitions commit under the server's queue lock, so
///
///   requests == responses_ok + rejected_overload + rejected_draining
///             + (rejected_bad_request - rejected_undecodable)
///             + queue_depth + inflight
///
/// holds at the instant of any snapshot (queue_depth/inflight via
/// introspect(); both are zero after wait_drained()). rejected_undecodable
/// answers sit outside `requests` because an undecodable frame never
/// yields a countable request — only a BadRequest answer.
struct ServeStats {
  std::uint64_t requests = 0;          // decoded requests of any type
  std::uint64_t responses_ok = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_bad_request = 0;
  std::uint64_t rejected_undecodable = 0;  // subset of rejected_bad_request
  std::uint64_t rejected_draining = 0;
  std::uint64_t protocol_errors = 0;   // connection-fatal framing errors
  std::uint64_t batches = 0;           // dispatcher micro-batches
  std::uint64_t slow_requests = 0;     // latency >= ServeConfig::slow_us
};

class RouteServer;

/// One client of the server. feed() must be called from a single thread
/// per connection (the transport's reader); the sink may fire from that
/// thread or the dispatcher thread, never concurrently with itself.
class Connection : public std::enable_shared_from_this<Connection> {
 public:
  /// Receives one or more complete, encoded response frames.
  using ResponseSink = std::function<void(std::string_view frames)>;

  /// Parses `bytes` (any fragmentation) and admits complete requests.
  /// Returns false once the connection hit a fatal framing error — the
  /// transport should close it (no resync is possible).
  bool feed(std::string_view bytes);

  /// Detaches the sink: responses for still-queued requests are computed
  /// (drain accounting stays exact) but discarded. Call when the peer hangs
  /// up with requests in flight.
  void close();

  /// True at EOF time iff the peer never truncated a frame mid-stream.
  bool clean() const;

  /// Small sequential id, unique within this server (probe/trace key).
  std::uint64_t id() const { return id_; }
  /// Per-connection counters (relaxed; the quota substrate the probe
  /// reports): decoded requests admitted from this peer, and response
  /// frames sent back to it.
  std::uint64_t request_count() const {
    return requests_.load(std::memory_order_relaxed);
  }
  std::uint64_t response_count() const {
    return responses_.load(std::memory_order_relaxed);
  }

 private:
  friend class RouteServer;
  Connection(RouteServer* server, std::uint64_t id, ResponseSink sink)
      : server_(server), id_(id), sink_(std::move(sink)) {}

  void send(std::string_view frames);

  RouteServer* server_;
  const std::uint64_t id_;
  FrameReader reader_;
  bool failed_ = false;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> responses_{0};
  Mutex write_mutex_;  // serializes reader-thread and dispatcher sends
  ResponseSink sink_ DBN_GUARDED_BY(write_mutex_);  // close() nulls it
  bool closed_ DBN_GUARDED_BY(write_mutex_) = false;  // close-once metrics
};

/// One exact cut of the server's accounting, every field read under the
/// same lock acquisition, so the ServeStats identity holds field-for-field
/// at the instant of the snapshot. The probe (introspect_json) serializes
/// this; the reconcile tests assert the identity directly.
struct IntrospectSnapshot {
  ServeStats stats;
  std::size_t queue_depth = 0;
  std::size_t inflight = 0;  // popped by the dispatcher, not yet answered
  double uptime_us = 0.0;
  std::vector<ConnectionInfo> connections;
  std::vector<SlowRecord> slow;
};

class RouteServer {
 public:
  explicit RouteServer(const ServeConfig& config);
  ~RouteServer();  // begin_drain() + wait_drained()

  RouteServer(const RouteServer&) = delete;
  RouteServer& operator=(const RouteServer&) = delete;

  /// Registers a client. The Connection stays valid until the server is
  /// destroyed (shared_ptr keeps queued requests' back-references alive).
  std::shared_ptr<Connection> connect(Connection::ResponseSink sink);

  /// Stops admission: subsequent Route/Distance requests answer Draining;
  /// the dispatcher finishes the queue. Idempotent, callable from a signal
  /// watcher thread.
  void begin_drain();

  /// Blocks until the queue is empty and the dispatcher has exited.
  /// Implies begin_drain().
  void wait_drained();

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  ServeStats stats() const;
  std::size_t queue_depth() const;
  /// The exact accounting cut the introspect probe serves: stats, queue
  /// depth, inflight count, uptime, per-connection counters, slow log —
  /// the counter fields under one lock acquisition. Never blocks on the
  /// dispatcher beyond that lock.
  IntrospectSnapshot introspect() const;
  const ServeConfig& config() const { return config_; }
  const SlowLog& slow_log() const { return slow_log_; }
  const TraceSampler& sampler() const { return sampler_; }

 private:
  friend class Connection;

  struct Pending {
    std::shared_ptr<Connection> conn;
    Request request;
    std::chrono::steady_clock::time_point enqueued;
    obs::Span span;  // live only for sampled requests under tracing
  };

  // Dispatcher-thread scratch, reused across micro-batches so the warmed
  // steady state allocates only inside response frame encoding.
  struct BatchScratch {
    std::vector<RouteQuery> route_queries;
    std::vector<std::size_t> route_slots;
    std::vector<RouteQuery> distance_queries;
    std::vector<std::size_t> distance_slots;
    std::vector<int> slot_of;
    std::vector<RoutingPath> paths;
    std::vector<int> distances;
  };

  /// One decoded request from a connection's reader thread. Responds
  /// inline (control/reject) or enqueues (route/distance).
  void admit(const std::shared_ptr<Connection>& conn, Request request);
  /// Encodes and sends one error frame (no counting: every counter commits
  /// at its decision site under mutex_, keeping snapshots exact).
  void respond_error(const std::shared_ptr<Connection>& conn,
                     RequestType type, std::uint64_t id, Status status,
                     std::string_view message);
  /// The undecodable-frame path out of Connection::feed (counts the
  /// BadRequest answer without counting a request).
  void reject_undecodable(const std::shared_ptr<Connection>& conn,
                          std::uint64_t id, std::string_view message);
  /// First close() of a connection: folds its lifetime request count into
  /// the serve.conn.* metrics.
  void note_connection_closed(const Connection& conn);
  void dispatcher_main();
  void process_batch(std::vector<Pending>& batch, BatchScratch& scratch);
  void note_protocol_error();

  ServeConfig config_;
  BatchRouteEngine engine_;
  TraceSampler sampler_;
  SlowLog slow_log_;
  const std::chrono::steady_clock::time_point started_;

  mutable Mutex mutex_;
  CondVar queue_cv_;
  std::deque<Pending> queue_ DBN_GUARDED_BY(mutex_);
  std::atomic<bool> draining_{false};
  std::once_flag join_once_;

  // Exact accounting, guarded by mutex_ (compiler-checked): every
  // transition (admit, reject, batch pop, batch answer) commits its
  // counter movement and its queue/inflight movement under the same lock
  // hold, so any locked reader sees the ServeStats identity balance.
  ServeStats stats_ DBN_GUARDED_BY(mutex_);
  std::size_t inflight_ DBN_GUARDED_BY(mutex_) = 0;

  // Connection registry for the probe (weak: connections are owned by
  // their transports and by queued requests).
  mutable Mutex conns_mutex_;
  std::vector<std::weak_ptr<Connection>> conns_ DBN_GUARDED_BY(conns_mutex_);
  std::uint64_t next_conn_id_ DBN_GUARDED_BY(conns_mutex_) = 1;

  obs::Counter metrics_requests_;
  obs::Counter metrics_ok_;
  obs::Counter metrics_overload_;
  obs::Counter metrics_bad_request_;
  obs::Counter metrics_draining_;
  obs::Counter metrics_protocol_errors_;
  obs::Counter metrics_batches_;
  obs::Counter metrics_connections_;
  obs::Counter metrics_slow_;
  obs::Histogram metrics_batch_size_;
  obs::Histogram metrics_latency_us_;
  obs::Histogram metrics_conn_requests_;
  obs::Gauge metrics_queue_depth_;
  obs::Gauge metrics_conn_active_;

  std::thread dispatcher_;  // last member: joins before the rest dies
};

}  // namespace dbn::serve
