#include "serve/io.hpp"

#include "common/mutex.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <istream>
#include <memory>
#include <ostream>
#include <thread>
#include <vector>

namespace dbn::serve {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;
constexpr int kPollMillis = 200;

}  // namespace

int serve_stdio(RouteServer& server, std::istream& in, std::ostream& out) {
  // The sink fires from this (reader) thread and the dispatcher thread;
  // the stream itself needs the serialization the Connection's per-send
  // mutex already provides, but the flush must stay inside the same
  // critical section, so wrap both here anyway.
  Mutex out_mutex;  // dbn-lint: allow(mutex-needs-annotation) function-local; it guards the captured ostream, not class state the analysis could see
  const std::shared_ptr<Connection> conn =
      server.connect([&out, &out_mutex](std::string_view frames) {
        const MutexLock lock(out_mutex);
        out.write(frames.data(),
                  static_cast<std::streamsize>(frames.size()));
        // Closed-loop clients wait on each response: flush per send.
        out.flush();
      });
  std::vector<char> buffer(kReadChunk);
  bool sound = true;
  for (;;) {
    // Block for one byte, then take whatever else the stream already
    // buffered — std::istream::read would stall waiting to fill the
    // whole chunk on an interactive pipe.
    const int first = in.rdbuf()->sbumpc();
    if (first == std::char_traits<char>::eof()) {
      break;
    }
    buffer[0] = static_cast<char>(first);
    const std::streamsize more = in.rdbuf()->in_avail();
    std::streamsize got = 1;
    if (more > 0) {
      const std::streamsize want = std::min(
          more, static_cast<std::streamsize>(buffer.size() - 1));
      got += in.rdbuf()->sgetn(buffer.data() + 1, want);
    }
    if (!conn->feed(std::string_view(buffer.data(),
                                     static_cast<std::size_t>(got)))) {
      sound = false;
      break;
    }
  }
  server.begin_drain();
  server.wait_drained();
  {
    const MutexLock lock(out_mutex);
    out.flush();
  }
  const bool clean = sound && conn->clean();
  conn->close();
  return clean ? 0 : 1;
}

namespace {

// One accepted TCP connection: its fd, reader thread, and server handle.
struct TcpClient {
  int fd = -1;
  std::shared_ptr<Connection> conn;
  std::thread reader;
  // Written only by the reader thread, read by the acceptor strictly
  // after reader.join() — the join is the happens-before edge, so no
  // mutex (and no annotation) is needed.
  bool clean = true;
};

void tcp_reader_main(TcpClient& client) {
  std::vector<char> buffer(kReadChunk);
  for (;;) {
    pollfd pfd{client.fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready < 0 && errno != EINTR) {
      break;
    }
    if (ready <= 0) {
      continue;  // timeout (or EINTR): shutdown() unblocks us via POLLHUP
    }
    const ssize_t n = ::recv(client.fd, buffer.data(), buffer.size(), 0);
    if (n == 0) {
      break;  // orderly peer close (or our own shutdown at drain time)
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      client.clean = false;
      break;
    }
    if (!client.conn->feed(
            std::string_view(buffer.data(), static_cast<std::size_t>(n)))) {
      client.clean = false;
      ::shutdown(client.fd, SHUT_RDWR);
      break;
    }
  }
  if (!client.conn->clean()) {
    client.clean = false;
  }
}

bool write_port_file(const std::string& path, std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::fprintf(f, "%u\n", static_cast<unsigned>(port));
  std::fclose(f);
  // rename() is atomic: a watcher polling for the file never sees a
  // half-written port.
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

int serve_tcp(RouteServer& server, const TcpOptions& options,
              const std::atomic<bool>& stop, std::uint16_t* bound_port) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return 1;
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 64) != 0) {
    ::close(listen_fd);
    return 1;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    ::close(listen_fd);
    return 1;
  }
  const std::uint16_t port = ntohs(addr.sin_port);
  if (bound_port != nullptr) {
    *bound_port = port;
  }
  if (!options.port_file.empty() &&
      !write_port_file(options.port_file, port)) {
    ::close(listen_fd);
    return 1;
  }
  std::vector<std::unique_ptr<TcpClient>> clients;
  while (!stop.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready < 0 && errno != EINTR) {
      break;
    }
    if (ready <= 0) {
      continue;
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    auto client = std::make_unique<TcpClient>();
    client->fd = fd;
    client->conn = server.connect([fd](std::string_view frames) {
      // MSG_NOSIGNAL: a peer that hung up must not SIGPIPE the daemon;
      // the write error is simply dropped (the reader will see the close).
      std::size_t sent = 0;
      while (sent < frames.size()) {
        const ssize_t n = ::send(fd, frames.data() + sent,
                                 frames.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
          if (n < 0 && errno == EINTR) {
            continue;
          }
          return;
        }
        sent += static_cast<std::size_t>(n);
      }
    });
    TcpClient& ref = *client;
    client->reader = std::thread([&ref] { tcp_reader_main(ref); });
    clients.push_back(std::move(client));
  }
  // Graceful drain: stop admission, answer everything already queued,
  // then close the sockets (SHUT_RDWR unblocks readers still in recv).
  ::close(listen_fd);
  server.begin_drain();
  server.wait_drained();
  bool clean = true;
  for (const auto& client : clients) {
    ::shutdown(client->fd, SHUT_RDWR);
  }
  for (const auto& client : clients) {
    client->reader.join();
    client->conn->close();
    ::close(client->fd);
    clean = clean && client->clean;
  }
  return clean ? 0 : 1;
}

}  // namespace dbn::serve
