// The `dbn serve` wire protocol (schema "serve/1", spec in
// docs/serving.md): length-prefixed binary frames over any ordered byte
// stream (a TCP connection or a stdin/stdout pipe pair).
//
//   frame    := u32-LE payload_length | payload
//   request  := u8 type | u64-LE id | body
//   response := u8 status | u8 type | u64-LE id | body
//
// Request bodies:
//   Route / Distance          u16-LE k | k bytes X digits | k bytes Y digits
//   Ping / Stats / Introspect empty
//
// Response bodies (status == Ok):
//   Route      u16-LE hop_count | hop_count x (u8 shift, u8 digit)
//              shift: 0 = left, 1 = right; digit 0xFF encodes the paper's
//              "*" wildcard (any forwarding site may pick the digit)
//   Distance   u32-LE distance
//   Ping       empty
//   Stats      UTF-8 metrics/1 JSON snapshot
//   Introspect UTF-8 introspect/1 JSON document (config + exact accounting
//              + embedded metrics snapshot; see docs/serving.md)
// Response bodies (status != Ok): UTF-8 error message.
//
// Introspect is a compatible extension of serve/1: servers predating it
// answer BadRequest(unknown-type) on the request's own id, which probes
// (dbn_top, dbn_loadgen) treat as "no probe support", not as a failure.
//
// Digits ride in one byte each, which is why the server requires d <= 255
// (0xFF stays free for the wildcard). The frame length prefix is bounded
// by kMaxPayload; a peer declaring more is lying or corrupt, and since a
// length-prefixed stream cannot resynchronize after a bad prefix, framing
// errors are connection-fatal by design.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/path.hpp"
#include "debruijn/word.hpp"

namespace dbn::serve {

/// Hard ceiling on one frame's payload. Requests are tens of bytes; the
/// one large frame is a Stats response carrying a metrics snapshot.
inline constexpr std::size_t kMaxPayload = 1u << 20;

/// Wire encoding of the wildcard digit (Digit itself is 32-bit).
inline constexpr std::uint8_t kWireWildcard = 0xFF;

/// Largest radix the wire format can carry (one byte per digit, 0xFF
/// reserved for the wildcard).
inline constexpr std::uint32_t kMaxWireRadix = 255;

enum class RequestType : std::uint8_t {
  Route = 1,     // full routing path for (X, Y)
  Distance = 2,  // undirected/directed distance per the server's backend
  Ping = 3,        // liveness; echoes the id
  Stats = 4,       // metrics/1 snapshot of the server's registry
  Introspect = 5,  // introspect/1 probe: config + exact accounting
};

enum class Status : std::uint8_t {
  Ok = 0,
  BadRequest = 1,   // malformed body, wrong k, digit out of range, bad type
  Overloaded = 2,   // bounded request queue is full — retry later
  Draining = 3,     // server is shutting down; no new work accepted
  InternalError = 4,
};

std::string_view status_name(Status status);

/// A decoded request. For Route/Distance, `x`/`y` hold the raw wire digits
/// (validated against (d, k) by the server, which knows the network).
struct Request {
  RequestType type = RequestType::Ping;
  std::uint64_t id = 0;
  std::vector<std::uint8_t> x;
  std::vector<std::uint8_t> y;
};

/// A decoded response, body already interpreted per type/status.
struct Response {
  Status status = Status::Ok;
  RequestType type = RequestType::Ping;
  std::uint64_t id = 0;
  std::vector<Hop> hops;      // Route + Ok
  std::uint32_t distance = 0; // Distance + Ok
  std::string body;           // Stats JSON, or the error message
};

// --- encoding (appends one complete frame to `out`) ---

void encode_route_request(std::uint64_t id, const Word& x, const Word& y,
                          std::string& out);
void encode_distance_request(std::uint64_t id, const Word& x, const Word& y,
                             std::string& out);
void encode_control_request(RequestType type, std::uint64_t id,
                            std::string& out);

void encode_route_response(std::uint64_t id, const RoutingPath& path,
                           std::string& out);
void encode_distance_response(std::uint64_t id, std::uint32_t distance,
                              std::string& out);
void encode_ok_response(RequestType type, std::uint64_t id,
                        std::string_view body, std::string& out);
void encode_error_response(RequestType type, Status status, std::uint64_t id,
                           std::string_view message, std::string& out);

// --- decoding (one frame payload -> structure) ---

/// Why a payload failed to decode. Header errors (the payload is too short
/// to even carry type + id) leave no id to respond to; body errors do.
enum class DecodeError {
  None,
  TruncatedHeader,   // shorter than the fixed request/response header
  UnknownType,
  TruncatedBody,     // body shorter than its own length fields promise
  TrailingBytes,     // body longer than the type's encoding
};

std::string_view decode_error_name(DecodeError error);

struct DecodedRequest {
  DecodeError error = DecodeError::None;
  Request request;  // id is populated whenever the header parsed
};

struct DecodedResponse {
  DecodeError error = DecodeError::None;
  Response response;
};

DecodedRequest decode_request(std::string_view payload);
DecodedResponse decode_response(std::string_view payload);

// --- framing ---

/// Incremental frame extractor over an ordered byte stream. Feed bytes in
/// any fragmentation; next() yields complete payloads in order. A declared
/// length of zero (no valid payload is empty — the request header alone is
/// 9 bytes) or above kMaxPayload poisons the reader permanently (the
/// stream cannot be resynchronized).
class FrameReader {
 public:
  enum class Result { NeedMore, Frame, Error };

  void feed(std::string_view bytes) { buffer_.append(bytes); }

  /// Extracts the next complete payload into `payload`.
  Result next(std::string& payload);

  bool poisoned() const { return poisoned_; }
  /// Bytes buffered but not yet consumed (a non-empty value at EOF means
  /// the peer truncated a frame mid-stream).
  std::size_t pending_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
  bool poisoned_ = false;
};

/// Converts wire digits into a Word of radix d, or nullopt when any digit
/// is out of range (wire validation, not a contract: the bytes came from
/// the network).
std::optional<Word> word_from_wire(std::uint32_t d,
                                   const std::vector<std::uint8_t>& digits);

}  // namespace dbn::serve
