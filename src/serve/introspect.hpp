// Serving observability primitives: the deterministic request sampler, the
// slow-request log, and the introspect/1 probe document builder.
//
// These are the pieces the live plane stands on:
//
//   TraceSampler    picks 1-in-N wire request ids for full span tracing.
//                   The decision is a pure hash of (seed, id) — no state,
//                   no RNG stream — so two runs with the same seed sample
//                   the same ids, and a request keeps (or loses) its spans
//                   no matter which thread handles it.
//   SlowLog         bounded ring of requests whose admit->respond latency
//                   crossed a threshold, with the per-stage breakdown the
//                   span chain would have carried (queue/route split), so
//                   outliers are diagnosable even when they were not in
//                   the trace sample.
//   introspect_json renders the introspect/1 document a live probe
//                   (RequestType::Introspect) answers with: server config,
//                   the *exact* request accounting (taken under the queue
//                   lock, so admitted == answered + queued + inflight at
//                   the instant of the probe), per-connection counters
//                   with a Jain fairness index, the slow log, and an
//                   embedded metrics/1 snapshot. Built entirely on the
//                   reader thread — the dispatcher never sees a probe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "serve/protocol.hpp"

namespace dbn::serve {

class RouteServer;

/// Deterministic 1-in-N sampler over wire request ids. every == 0 disables
/// (nothing sampled); every == 1 samples everything.
class TraceSampler {
 public:
  TraceSampler() = default;
  TraceSampler(std::uint64_t every, std::uint64_t seed)
      : every_(every), seed_(seed) {}

  bool sampled(std::uint64_t id) const;
  std::uint64_t every() const { return every_; }
  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t every_ = 0;
  std::uint64_t seed_ = 0;
};

/// One slow request, stage breakdown in microseconds: total is
/// admit->respond, queue_us the wait before the dispatcher popped it,
/// route_us the engine's share of its micro-batch.
struct SlowRecord {
  std::uint64_t id = 0;
  std::uint64_t conn = 0;
  RequestType type = RequestType::Route;
  double total_us = 0.0;
  double queue_us = 0.0;
  double route_us = 0.0;
  std::size_t batch_size = 0;
};

/// Bounded ring of slow requests. note() keeps a record iff the threshold
/// is enabled (> 0) and total_us >= threshold (boundary inclusive: a
/// request exactly at --slow-us is an outlier by definition). total()
/// counts every capture, including records later evicted by the ring.
class SlowLog {
 public:
  SlowLog(double threshold_us, std::size_t capacity)
      : threshold_us_(threshold_us), capacity_(capacity) {}

  bool note(const SlowRecord& record);

  double threshold_us() const { return threshold_us_; }
  std::uint64_t total() const;
  std::vector<SlowRecord> records() const;

 private:
  const double threshold_us_;
  const std::size_t capacity_;
  mutable Mutex mutex_;
  std::deque<SlowRecord> ring_ DBN_GUARDED_BY(mutex_);
  std::uint64_t total_ DBN_GUARDED_BY(mutex_) = 0;
};

/// Per-connection counters as the probe reports them.
struct ConnectionInfo {
  std::uint64_t id = 0;
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
};

/// The introspect/1 JSON document (embeds a fresh global metrics/1
/// snapshot). Safe to call from any thread; never touches the dispatcher.
/// The exact accounting cut it carries is RouteServer::introspect()
/// (IntrospectSnapshot, declared with the server).
std::string introspect_json(const RouteServer& server);

}  // namespace dbn::serve
