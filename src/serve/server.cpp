#include "serve/server.hpp"

#include <algorithm>
#include <utility>

#include "common/contract.hpp"
#include "common/schema.hpp"
#include "obs/trace.hpp"

namespace dbn::serve {

namespace {

// Upper-inclusive microsecond buckets for the serving latency histogram:
// p50/p99 are read off these offline (scripts/check_metrics.py, the CI
// serve-smoke job) and live (dbn_top differences successive probes).
std::vector<double> latency_bounds_us() {
  return {10,    20,    50,     100,    200,    500,    1000,   2000,
          5000,  10000, 20000,  50000,  100000, 200000, 500000, 1000000};
}

std::vector<double> batch_size_bounds() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
}

// Per-connection lifetime request counts (observed once, at close).
std::vector<double> conn_request_bounds() {
  return {1,    10,    100,    1000,    10000,    100000,
          1000000, 10000000, 100000000};
}

double elapsed_us(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

bool Connection::feed(std::string_view bytes) {
  if (failed_) {
    return false;
  }
  reader_.feed(bytes);
  std::string payload;
  for (;;) {
    switch (reader_.next(payload)) {
      case FrameReader::Result::NeedMore:
        return true;
      case FrameReader::Result::Error:
        failed_ = true;
        server_->note_protocol_error();
        return false;
      case FrameReader::Result::Frame:
        break;
    }
    const DecodedRequest decoded = decode_request(payload);
    const std::shared_ptr<Connection> self = shared_from_this();
    if (decoded.error != DecodeError::None) {
      // Frame-aligned but undecodable: the stream itself is still sound,
      // so answer BadRequest and keep the connection. The id is only
      // trustworthy when the header parsed.
      const std::uint64_t id =
          decoded.error == DecodeError::TruncatedHeader ? 0
                                                        : decoded.request.id;
      server_->reject_undecodable(self, id, decode_error_name(decoded.error));
      continue;
    }
    server_->admit(self, decoded.request);
  }
}

void Connection::close() {
  const MutexLock lock(write_mutex_);
  sink_ = nullptr;
  if (!closed_) {
    closed_ = true;
    server_->note_connection_closed(*this);
  }
}

bool Connection::clean() const {
  return !failed_ && reader_.pending_bytes() == 0;
}

void Connection::send(std::string_view frames) {
  responses_.fetch_add(1, std::memory_order_relaxed);
  const MutexLock lock(write_mutex_);
  if (sink_) {
    sink_(frames);
  }
}

RouteServer::RouteServer(const ServeConfig& config)
    : config_(config),
      engine_(config.d, config.k,
              BatchRouteOptions{.backend = config.backend,
                                .threads = config.threads,
                                .chunk = 64,
                                .cache_entries = config.cache_entries,
                                .wildcard_mode = config.wildcard_mode,
                                // Serving traces at request granularity
                                // (sampled spans); the per-hop route tracer
                                // would fire for every query in every batch
                                // the moment a sink is installed.
                                .trace_routes = false}),
      sampler_(config.trace_sample, config.trace_seed),
      slow_log_(config.slow_us, config.slow_log_capacity),
      started_(std::chrono::steady_clock::now()) {
  DBN_REQUIRE(config_.d >= 1 && config_.d <= kMaxWireRadix,
              "serve wire digits are one byte; d must be in [1, 255]");
  DBN_REQUIRE(config_.k >= 1 && config_.k <= 0xFFFF,
              "serve wire k is 16-bit");
  DBN_REQUIRE(config_.queue_capacity >= 1, "queue capacity must be >= 1");
  DBN_REQUIRE(config_.max_batch >= 1, "max batch must be >= 1");
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  metrics_requests_ = registry.counter("serve.requests");
  metrics_ok_ = registry.counter("serve.responses_ok");
  metrics_overload_ = registry.counter("serve.rejected_overload");
  metrics_bad_request_ = registry.counter("serve.rejected_bad_request");
  metrics_draining_ = registry.counter("serve.rejected_draining");
  metrics_protocol_errors_ = registry.counter("serve.protocol_errors");
  metrics_batches_ = registry.counter("serve.batches");
  metrics_connections_ = registry.counter("serve.connections");
  metrics_slow_ = registry.counter(schema::metric::kServeSlowRequests);
  metrics_batch_size_ =
      registry.histogram("serve.batch_size", batch_size_bounds());
  metrics_latency_us_ =
      registry.histogram("serve.latency_us", latency_bounds_us());
  metrics_conn_requests_ = registry.histogram(
      schema::metric::kServeConnRequests, conn_request_bounds());
  metrics_queue_depth_ = registry.gauge("serve.queue_depth");
  metrics_conn_active_ = registry.gauge(schema::metric::kServeConnActive);
  dispatcher_ = std::thread([this] { dispatcher_main(); });
}

RouteServer::~RouteServer() { wait_drained(); }

std::shared_ptr<Connection> RouteServer::connect(
    Connection::ResponseSink sink) {
  std::uint64_t id = 0;
  {
    const MutexLock lock(conns_mutex_);
    id = next_conn_id_++;
  }
  // make_shared needs a public constructor; Connection's is private so
  // every connection goes through this registration point.
  std::shared_ptr<Connection> conn(
      new Connection(this, id, std::move(sink)));  // dbn-lint: allow(raw-new) private ctor, immediately owned
  {
    const MutexLock lock(conns_mutex_);
    conns_.push_back(conn);
  }
  metrics_connections_.inc();
  metrics_conn_active_.add(1);
  return conn;
}

void RouteServer::note_connection_closed(const Connection& conn) {
  metrics_conn_active_.add(-1);
  metrics_conn_requests_.observe(static_cast<double>(conn.request_count()));
}

void RouteServer::begin_drain() {
  {
    const MutexLock lock(mutex_);
    draining_.store(true, std::memory_order_release);
  }
  queue_cv_.notify_all();
}

void RouteServer::wait_drained() {
  begin_drain();
  std::call_once(join_once_, [this] { dispatcher_.join(); });
}

ServeStats RouteServer::stats() const {
  const MutexLock lock(mutex_);
  return stats_;
}

std::size_t RouteServer::queue_depth() const {
  const MutexLock lock(mutex_);
  return queue_.size();
}

IntrospectSnapshot RouteServer::introspect() const {
  IntrospectSnapshot snap;
  {
    const MutexLock lock(mutex_);
    snap.stats = stats_;
    snap.queue_depth = queue_.size();
    snap.inflight = inflight_;
  }
  snap.uptime_us = elapsed_us(started_, std::chrono::steady_clock::now());
  {
    const MutexLock lock(conns_mutex_);
    snap.connections.reserve(conns_.size());
    for (const std::weak_ptr<Connection>& weak : conns_) {
      if (const std::shared_ptr<Connection> conn = weak.lock()) {
        snap.connections.push_back(ConnectionInfo{
            conn->id(), conn->request_count(), conn->response_count()});
      }
    }
  }
  snap.slow = slow_log_.records();
  return snap;
}

void RouteServer::note_protocol_error() {
  {
    const MutexLock lock(mutex_);
    ++stats_.protocol_errors;
  }
  metrics_protocol_errors_.inc();
}

void RouteServer::respond_error(const std::shared_ptr<Connection>& conn,
                                RequestType type, std::uint64_t id,
                                Status status, std::string_view message) {
  if (obs::tracing_enabled()) {
    obs::instant("serve_reject", "serve", obs::TraceClock::Wall,
                 obs::wall_ts_micros(),
                 {obs::targ("status", status_name(status)),
                  obs::targ("id", id)});
  }
  std::string frame;
  encode_error_response(type, status, id, message, frame);
  conn->send(frame);
}

void RouteServer::reject_undecodable(const std::shared_ptr<Connection>& conn,
                                     std::uint64_t id,
                                     std::string_view message) {
  {
    const MutexLock lock(mutex_);
    ++stats_.rejected_bad_request;
    ++stats_.rejected_undecodable;
  }
  metrics_bad_request_.inc();
  respond_error(conn, RequestType::Ping, id, Status::BadRequest, message);
}

void RouteServer::admit(const std::shared_ptr<Connection>& conn,
                        Request request) {
  conn->requests_.fetch_add(1, std::memory_order_relaxed);
  metrics_requests_.inc();
  switch (request.type) {
    case RequestType::Ping:
    case RequestType::Stats:
    case RequestType::Introspect: {
      // Control requests answer inline on the reader thread — the probe
      // path stays responsive no matter how deep the routed queue is. The
      // request/response pair is counted in one lock hold *after* the
      // answer is built, so a concurrent probe never sees a half-counted
      // control request (and a probe's own snapshot excludes itself).
      std::string body;
      if (request.type == RequestType::Stats) {
        body = obs::MetricsRegistry::global().snapshot().to_json();
      } else if (request.type == RequestType::Introspect) {
        body = introspect_json(*this);
      }
      std::string frame;
      encode_ok_response(request.type, request.id, body, frame);
      conn->send(frame);
      {
        const MutexLock lock(mutex_);
        ++stats_.requests;
        ++stats_.responses_ok;
      }
      metrics_ok_.inc();
      return;
    }
    case RequestType::Route:
    case RequestType::Distance:
      break;
  }
  obs::Span span;
  if (obs::tracing_enabled() && sampler_.sampled(request.id)) {
    span = obs::Span::begin("serve_request", "serve", obs::TraceClock::Wall,
                            obs::wall_ts_micros());
    span.arg(obs::targ("id", request.id));
    span.arg(obs::targ("conn", conn->id()));
    span.arg(obs::targ("type", request.type == RequestType::Route
                                   ? "route"
                                   : "distance"));
    span.instant("admit", obs::wall_ts_micros());
  }
  // Admission for routed work happens under the queue mutex so the
  // draining check, the push, and the counter movement are one atomic
  // transition — an admitted request is always answered, and any locked
  // reader sees requests == answered + queued + inflight balance.
  enum class Verdict { Accepted, Overloaded, Draining };
  Verdict verdict = Verdict::Accepted;
  const RequestType type = request.type;
  const std::uint64_t id = request.id;
  {
    const MutexLock lock(mutex_);
    ++stats_.requests;
    if (draining_.load(std::memory_order_relaxed)) {
      verdict = Verdict::Draining;
      ++stats_.rejected_draining;
    } else if (queue_.size() >= config_.queue_capacity) {
      verdict = Verdict::Overloaded;
      ++stats_.rejected_overload;
    } else {
      queue_.push_back(Pending{conn, std::move(request),
                               std::chrono::steady_clock::now(),
                               std::move(span)});
      metrics_queue_depth_.set(static_cast<std::int64_t>(queue_.size()));
    }
  }
  switch (verdict) {
    case Verdict::Accepted:
      queue_cv_.notify_one();
      return;
    case Verdict::Overloaded:
      metrics_overload_.inc();
      if (span) {
        span.arg(obs::targ("status", status_name(Status::Overloaded)));
        span.end(obs::wall_ts_micros());
      }
      respond_error(conn, type, id, Status::Overloaded,
                    "request queue full");
      return;
    case Verdict::Draining:
      metrics_draining_.inc();
      if (span) {
        span.arg(obs::targ("status", status_name(Status::Draining)));
        span.end(obs::wall_ts_micros());
      }
      respond_error(conn, type, id, Status::Draining, "server is draining");
      return;
  }
}

void RouteServer::dispatcher_main() {
  std::vector<Pending> batch;
  BatchScratch scratch;
  for (;;) {
    batch.clear();
    {
      RelockableLock lock(mutex_);
      // Explicit wait loop (not the predicate overload): the analysis
      // checks this function's body with mutex_ held, which a predicate
      // lambda would need its own REQUIRES annotation to express.
      while (queue_.empty() && !draining_.load(std::memory_order_relaxed)) {
        queue_cv_.wait(lock);
      }
      if (queue_.empty()) {
        return;  // draining and nothing left: exit
      }
      while (!queue_.empty() && batch.size() < config_.max_batch) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      inflight_ += batch.size();
      metrics_queue_depth_.set(static_cast<std::int64_t>(queue_.size()));
    }
    process_batch(batch, scratch);
  }
}

void RouteServer::process_batch(std::vector<Pending>& batch,
                                BatchScratch& scratch) {
  const bool traced = obs::tracing_enabled();
  const auto dispatched = std::chrono::steady_clock::now();
  obs::Span span;
  if (traced) {
    const double now_us = obs::wall_ts_micros();
    span = obs::Span::begin("serve_batch", "serve", obs::TraceClock::Wall,
                            now_us);
    span.arg(obs::targ("size", static_cast<std::uint64_t>(batch.size())));
    for (Pending& pending : batch) {
      if (pending.span) {
        pending.span.instant("dispatch", now_us);
      }
    }
  }
  // Wire-validate and partition into the engine's two batch shapes. A slot
  // of -1 marks a request answered as BadRequest below.
  scratch.route_queries.clear();
  scratch.route_slots.clear();
  scratch.distance_queries.clear();
  scratch.distance_slots.clear();
  scratch.slot_of.assign(batch.size(), -1);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Request& request = batch[i].request;
    if (request.x.size() != config_.k || request.y.size() != config_.k) {
      continue;
    }
    const std::optional<Word> x = word_from_wire(config_.d, request.x);
    const std::optional<Word> y = word_from_wire(config_.d, request.y);
    if (!x || !y) {
      continue;
    }
    if (request.type == RequestType::Route) {
      scratch.slot_of[i] = static_cast<int>(scratch.route_queries.size());
      scratch.route_queries.push_back(RouteQuery{*x, *y});
      scratch.route_slots.push_back(i);
    } else {
      scratch.slot_of[i] = static_cast<int>(scratch.distance_queries.size());
      scratch.distance_queries.push_back(RouteQuery{*x, *y});
      scratch.distance_slots.push_back(i);
    }
  }
  if (!scratch.route_queries.empty()) {
    engine_.route_batch_into(scratch.route_queries, scratch.paths);
  }
  if (!scratch.distance_queries.empty()) {
    scratch.distances = engine_.distance_batch(scratch.distance_queries);
  }
  const auto routed = std::chrono::steady_clock::now();
  const double route_us = elapsed_us(dispatched, routed);
  if (traced) {
    const double now_us = obs::wall_ts_micros();
    for (Pending& pending : batch) {
      if (pending.span) {
        pending.span.instant("route", now_us);
      }
    }
  }
  // Answer in admission order; per-connection responses therefore arrive
  // in the order the requests were accepted.
  const auto now = std::chrono::steady_clock::now();
  std::uint64_t n_ok = 0;
  std::uint64_t n_bad = 0;
  std::uint64_t n_slow = 0;
  std::string frame;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Pending& pending = batch[i];
    const Request& request = pending.request;
    const bool bad = scratch.slot_of[i] < 0;
    if (bad) {
      ++n_bad;
      respond_error(pending.conn, request.type, request.id,
                    Status::BadRequest, "word does not name a vertex");
    } else {
      frame.clear();
      const auto slot = static_cast<std::size_t>(scratch.slot_of[i]);
      if (request.type == RequestType::Route) {
        encode_route_response(request.id, scratch.paths[slot], frame);
      } else {
        encode_distance_response(
            request.id, static_cast<std::uint32_t>(scratch.distances[slot]),
            frame);
      }
      pending.conn->send(frame);
      ++n_ok;
    }
    const double waited_us = elapsed_us(pending.enqueued, now);
    metrics_latency_us_.observe(waited_us);
    if (slow_log_.note(SlowRecord{request.id, pending.conn->id(),
                                  request.type, waited_us,
                                  elapsed_us(pending.enqueued, dispatched),
                                  route_us, batch.size()})) {
      ++n_slow;
      metrics_slow_.inc();
      if (pending.span) {
        pending.span.instant("slow", obs::wall_ts_micros());
      }
    }
    if (pending.span) {
      const double now_us = obs::wall_ts_micros();
      pending.span.instant("respond", now_us);
      pending.span.arg(obs::targ(
          "status", status_name(bad ? Status::BadRequest : Status::Ok)));
      pending.span.arg(obs::targ("latency_us", waited_us));
      pending.span.arg(
          obs::targ("batch", static_cast<std::uint64_t>(batch.size())));
      pending.span.end(now_us);
    }
  }
  {
    const MutexLock lock(mutex_);
    stats_.responses_ok += n_ok;
    stats_.rejected_bad_request += n_bad;
    stats_.slow_requests += n_slow;
    ++stats_.batches;
    inflight_ -= batch.size();
  }
  metrics_ok_.inc(n_ok);
  metrics_bad_request_.inc(n_bad);
  metrics_batches_.inc();
  metrics_batch_size_.observe(static_cast<double>(batch.size()));
  if (span) {
    span.end(obs::wall_ts_micros());
  }
}

}  // namespace dbn::serve
