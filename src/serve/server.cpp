#include "serve/server.hpp"

#include <algorithm>
#include <utility>

#include "common/contract.hpp"
#include "obs/trace.hpp"

namespace dbn::serve {

namespace {

// Upper-inclusive microsecond buckets for the serving latency histogram:
// p50/p99 are read off these offline (scripts/check_metrics.py, the CI
// serve-smoke job) and by the Stats request.
std::vector<double> latency_bounds_us() {
  return {10,    20,    50,     100,    200,    500,    1000,   2000,
          5000,  10000, 20000,  50000,  100000, 200000, 500000, 1000000};
}

std::vector<double> batch_size_bounds() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
}

}  // namespace

bool Connection::feed(std::string_view bytes) {
  if (failed_) {
    return false;
  }
  reader_.feed(bytes);
  std::string payload;
  for (;;) {
    switch (reader_.next(payload)) {
      case FrameReader::Result::NeedMore:
        return true;
      case FrameReader::Result::Error:
        failed_ = true;
        server_->note_protocol_error();
        return false;
      case FrameReader::Result::Frame:
        break;
    }
    const DecodedRequest decoded = decode_request(payload);
    const std::shared_ptr<Connection> self = shared_from_this();
    if (decoded.error != DecodeError::None) {
      // Frame-aligned but undecodable: the stream itself is still sound,
      // so answer BadRequest and keep the connection. The id is only
      // trustworthy when the header parsed.
      const std::uint64_t id =
          decoded.error == DecodeError::TruncatedHeader ? 0
                                                        : decoded.request.id;
      server_->respond_error(self, RequestType::Ping, id, Status::BadRequest,
                             decode_error_name(decoded.error));
      continue;
    }
    server_->admit(self, decoded.request);
  }
}

void Connection::close() {
  const std::lock_guard<std::mutex> lock(write_mutex_);
  sink_ = nullptr;
}

bool Connection::clean() const {
  return !failed_ && reader_.pending_bytes() == 0;
}

void Connection::send(std::string_view frames) {
  const std::lock_guard<std::mutex> lock(write_mutex_);
  if (sink_) {
    sink_(frames);
  }
}

RouteServer::RouteServer(const ServeConfig& config)
    : config_(config),
      engine_(config.d, config.k,
              BatchRouteOptions{.backend = config.backend,
                                .threads = config.threads,
                                .chunk = 64,
                                .cache_entries = config.cache_entries,
                                .wildcard_mode = config.wildcard_mode}) {
  DBN_REQUIRE(config_.d >= 1 && config_.d <= kMaxWireRadix,
              "serve wire digits are one byte; d must be in [1, 255]");
  DBN_REQUIRE(config_.k >= 1 && config_.k <= 0xFFFF,
              "serve wire k is 16-bit");
  DBN_REQUIRE(config_.queue_capacity >= 1, "queue capacity must be >= 1");
  DBN_REQUIRE(config_.max_batch >= 1, "max batch must be >= 1");
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  metrics_requests_ = registry.counter("serve.requests");
  metrics_ok_ = registry.counter("serve.responses_ok");
  metrics_overload_ = registry.counter("serve.rejected_overload");
  metrics_bad_request_ = registry.counter("serve.rejected_bad_request");
  metrics_draining_ = registry.counter("serve.rejected_draining");
  metrics_protocol_errors_ = registry.counter("serve.protocol_errors");
  metrics_batches_ = registry.counter("serve.batches");
  metrics_connections_ = registry.counter("serve.connections");
  metrics_batch_size_ =
      registry.histogram("serve.batch_size", batch_size_bounds());
  metrics_latency_us_ =
      registry.histogram("serve.latency_us", latency_bounds_us());
  metrics_queue_depth_ = registry.gauge("serve.queue_depth");
  dispatcher_ = std::thread([this] { dispatcher_main(); });
}

RouteServer::~RouteServer() { wait_drained(); }

std::shared_ptr<Connection> RouteServer::connect(
    Connection::ResponseSink sink) {
  // make_shared needs a public constructor; Connection's is private so
  // every connection goes through this registration point.
  std::shared_ptr<Connection> conn(
      new Connection(this, std::move(sink)));  // dbn-lint: allow(raw-new) private ctor, immediately owned
  metrics_connections_.inc();
  return conn;
}

void RouteServer::begin_drain() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    draining_.store(true, std::memory_order_release);
  }
  queue_cv_.notify_all();
}

void RouteServer::wait_drained() {
  begin_drain();
  std::call_once(join_once_, [this] { dispatcher_.join(); });
}

ServeStats RouteServer::stats() const {
  ServeStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.responses_ok = responses_ok_.load(std::memory_order_relaxed);
  s.rejected_overload = rejected_overload_.load(std::memory_order_relaxed);
  s.rejected_bad_request =
      rejected_bad_request_.load(std::memory_order_relaxed);
  s.rejected_draining = rejected_draining_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  return s;
}

std::size_t RouteServer::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void RouteServer::note_protocol_error() {
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  metrics_protocol_errors_.inc();
}

void RouteServer::respond_error(const std::shared_ptr<Connection>& conn,
                                RequestType type, std::uint64_t id,
                                Status status, std::string_view message) {
  switch (status) {
    case Status::Overloaded:
      rejected_overload_.fetch_add(1, std::memory_order_relaxed);
      metrics_overload_.inc();
      break;
    case Status::Draining:
      rejected_draining_.fetch_add(1, std::memory_order_relaxed);
      metrics_draining_.inc();
      break;
    default:
      rejected_bad_request_.fetch_add(1, std::memory_order_relaxed);
      metrics_bad_request_.inc();
      break;
  }
  if (obs::tracing_enabled()) {
    obs::instant("serve_reject", "serve", obs::TraceClock::Wall,
                 obs::wall_ts_micros(),
                 {obs::targ("status", status_name(status)),
                  obs::targ("id", id)});
  }
  std::string frame;
  encode_error_response(type, status, id, message, frame);
  conn->send(frame);
}

void RouteServer::admit(const std::shared_ptr<Connection>& conn,
                        Request request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  metrics_requests_.inc();
  switch (request.type) {
    case RequestType::Ping: {
      std::string frame;
      encode_ok_response(RequestType::Ping, request.id, "", frame);
      conn->send(frame);
      responses_ok_.fetch_add(1, std::memory_order_relaxed);
      metrics_ok_.inc();
      return;
    }
    case RequestType::Stats: {
      std::string frame;
      encode_ok_response(RequestType::Stats, request.id,
                         obs::MetricsRegistry::global().snapshot().to_json(),
                         frame);
      conn->send(frame);
      responses_ok_.fetch_add(1, std::memory_order_relaxed);
      metrics_ok_.inc();
      return;
    }
    case RequestType::Route:
    case RequestType::Distance:
      break;
  }
  // Admission for routed work happens under the queue mutex so the
  // draining check and the push are atomic with respect to the
  // dispatcher's exit condition — an admitted request is always answered.
  enum class Verdict { Accepted, Overloaded, Draining };
  Verdict verdict = Verdict::Accepted;
  const RequestType type = request.type;
  const std::uint64_t id = request.id;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (draining_.load(std::memory_order_relaxed)) {
      verdict = Verdict::Draining;
    } else if (queue_.size() >= config_.queue_capacity) {
      verdict = Verdict::Overloaded;
    } else {
      queue_.push_back(Pending{conn, std::move(request),
                               std::chrono::steady_clock::now()});
      metrics_queue_depth_.set(static_cast<std::int64_t>(queue_.size()));
    }
  }
  switch (verdict) {
    case Verdict::Accepted:
      queue_cv_.notify_one();
      return;
    case Verdict::Overloaded:
      respond_error(conn, type, id, Status::Overloaded,
                    "request queue full");
      return;
    case Verdict::Draining:
      respond_error(conn, type, id, Status::Draining, "server is draining");
      return;
  }
}

void RouteServer::dispatcher_main() {
  std::vector<Pending> batch;
  BatchScratch scratch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() ||
               draining_.load(std::memory_order_relaxed);
      });
      if (queue_.empty()) {
        return;  // draining and nothing left: exit
      }
      while (!queue_.empty() && batch.size() < config_.max_batch) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      metrics_queue_depth_.set(static_cast<std::int64_t>(queue_.size()));
    }
    process_batch(batch, scratch);
  }
}

void RouteServer::process_batch(std::vector<Pending>& batch,
                                BatchScratch& scratch) {
  const bool traced = obs::tracing_enabled();
  obs::Span span;
  if (traced) {
    span = obs::Span::begin("serve_batch", "serve", obs::TraceClock::Wall,
                            obs::wall_ts_micros());
    span.arg(obs::targ("size", static_cast<std::uint64_t>(batch.size())));
  }
  // Wire-validate and partition into the engine's two batch shapes. A slot
  // of -1 marks a request answered as BadRequest below.
  scratch.route_queries.clear();
  scratch.route_slots.clear();
  scratch.distance_queries.clear();
  scratch.distance_slots.clear();
  scratch.slot_of.assign(batch.size(), -1);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Request& request = batch[i].request;
    if (request.x.size() != config_.k || request.y.size() != config_.k) {
      continue;
    }
    const std::optional<Word> x = word_from_wire(config_.d, request.x);
    const std::optional<Word> y = word_from_wire(config_.d, request.y);
    if (!x || !y) {
      continue;
    }
    if (request.type == RequestType::Route) {
      scratch.slot_of[i] = static_cast<int>(scratch.route_queries.size());
      scratch.route_queries.push_back(RouteQuery{*x, *y});
      scratch.route_slots.push_back(i);
    } else {
      scratch.slot_of[i] = static_cast<int>(scratch.distance_queries.size());
      scratch.distance_queries.push_back(RouteQuery{*x, *y});
      scratch.distance_slots.push_back(i);
    }
  }
  if (!scratch.route_queries.empty()) {
    engine_.route_batch_into(scratch.route_queries, scratch.paths);
  }
  if (!scratch.distance_queries.empty()) {
    scratch.distances = engine_.distance_batch(scratch.distance_queries);
  }
  // Answer in admission order; per-connection responses therefore arrive
  // in the order the requests were accepted.
  const auto now = std::chrono::steady_clock::now();
  std::string frame;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Pending& pending = batch[i];
    const Request& request = pending.request;
    if (scratch.slot_of[i] < 0) {
      respond_error(pending.conn, request.type, request.id,
                    Status::BadRequest, "word does not name a vertex");
      continue;
    }
    frame.clear();
    const auto slot = static_cast<std::size_t>(scratch.slot_of[i]);
    if (request.type == RequestType::Route) {
      encode_route_response(request.id, scratch.paths[slot], frame);
    } else {
      encode_distance_response(
          request.id, static_cast<std::uint32_t>(scratch.distances[slot]),
          frame);
    }
    pending.conn->send(frame);
    responses_ok_.fetch_add(1, std::memory_order_relaxed);
    metrics_ok_.inc();
    const double waited_us =
        std::chrono::duration<double, std::micro>(now - pending.enqueued)
            .count();
    metrics_latency_us_.observe(waited_us);
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  metrics_batches_.inc();
  metrics_batch_size_.observe(static_cast<double>(batch.size()));
  if (span) {
    span.end(obs::wall_ts_micros());
  }
}

}  // namespace dbn::serve
