// Umbrella header: the whole debruijn-routing public API.
//
// Fine-grained headers remain the recommended include style; this exists
// for quick experiments and the examples.
#pragma once

// Foundations.
#include "common/ascii_plot.hpp"   // IWYU pragma: export
#include "common/contract.hpp"     // IWYU pragma: export
#include "common/rng.hpp"          // IWYU pragma: export
#include "common/table.hpp"        // IWYU pragma: export

// String machinery (Morris-Pratt, suffix structures).
#include "strings/failure.hpp"           // IWYU pragma: export
#include "strings/lyndon.hpp"            // IWYU pragma: export
#include "strings/matching.hpp"          // IWYU pragma: export
#include "strings/naive.hpp"             // IWYU pragma: export
#include "strings/suffix_array.hpp"      // IWYU pragma: export
#include "strings/suffix_automaton.hpp"  // IWYU pragma: export
#include "strings/suffix_tree.hpp"       // IWYU pragma: export
#include "strings/zfunction.hpp"         // IWYU pragma: export

// De Bruijn (and sibling) graphs.
#include "debruijn/bfs.hpp"               // IWYU pragma: export
#include "debruijn/dot.hpp"               // IWYU pragma: export
#include "debruijn/embedding.hpp"         // IWYU pragma: export
#include "debruijn/generalized.hpp"       // IWYU pragma: export
#include "debruijn/graph.hpp"             // IWYU pragma: export
#include "debruijn/kautz.hpp"             // IWYU pragma: export
#include "debruijn/kautz_routing.hpp"     // IWYU pragma: export
#include "debruijn/sequence.hpp"          // IWYU pragma: export
#include "debruijn/shuffle_exchange.hpp"  // IWYU pragma: export
#include "debruijn/word.hpp"              // IWYU pragma: export

// The paper's contribution: distances and routing.
#include "core/average_distance.hpp"   // IWYU pragma: export
#include "core/bfs_router.hpp"         // IWYU pragma: export
#include "core/common_substring.hpp"   // IWYU pragma: export
#include "core/distance.hpp"           // IWYU pragma: export
#include "core/hop_by_hop.hpp"         // IWYU pragma: export
#include "core/path.hpp"               // IWYU pragma: export
#include "core/path_builder.hpp"       // IWYU pragma: export
#include "core/path_count.hpp"         // IWYU pragma: export
#include "core/prop5_as_printed.hpp"   // IWYU pragma: export
#include "core/route_engine.hpp"       // IWYU pragma: export
#include "core/routers.hpp"            // IWYU pragma: export
#include "core/routing_table.hpp"      // IWYU pragma: export

// The network: messages, simulators, protocols.
#include "net/adaptive.hpp"        // IWYU pragma: export
#include "net/broadcast.hpp"       // IWYU pragma: export
#include "net/fault.hpp"           // IWYU pragma: export
#include "net/load_stats.hpp"      // IWYU pragma: export
#include "net/message.hpp"         // IWYU pragma: export
#include "net/reliable.hpp"        // IWYU pragma: export
#include "net/simulator.hpp"       // IWYU pragma: export
#include "net/sort_emulation.hpp"  // IWYU pragma: export
#include "net/synchronous.hpp"     // IWYU pragma: export
#include "net/traffic.hpp"         // IWYU pragma: export
