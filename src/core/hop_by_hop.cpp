#include "core/hop_by_hop.hpp"

#include "common/contract.hpp"
#include "core/distance.hpp"
#include "strings/failure.hpp"

namespace dbn {

namespace {

void check_pair(const Word& at, const Word& dst) {
  DBN_REQUIRE(at.radix() == dst.radix() && at.length() == dst.length(),
              "hop endpoints must share radix and length");
  DBN_REQUIRE(!(at == dst), "already at the destination");
}

}  // namespace

Hop next_hop_unidirectional(const Word& at, const Word& dst) {
  check_pair(at, dst);
  const int l = strings::suffix_prefix_overlap(at.symbols(), dst.symbols());
  // Algorithm 1 sends y_{l+1} next; l < k because at != dst.
  return Hop{ShiftType::Left, dst.digit(static_cast<std::size_t>(l))};
}

Hop next_hop_bidirectional(const Word& at, const Word& dst) {
  check_pair(at, dst);
  const int here = undirected_distance(at, dst);
  for (const ShiftType type : {ShiftType::Left, ShiftType::Right}) {
    for (Digit a = 0; a < at.radix(); ++a) {
      const Word next =
          type == ShiftType::Left ? at.left_shift(a) : at.right_shift(a);
      if (undirected_distance(next, dst) == here - 1) {
        return Hop{type, a};
      }
    }
  }
  DBN_ASSERT(false,
             "a strictly improving neighbor exists on every shortest path");
  return Hop{};
}

std::vector<Word> greedy_walk(const Word& src, const Word& dst,
                              Orientation orientation) {
  DBN_REQUIRE(src.radix() == dst.radix() && src.length() == dst.length(),
              "walk endpoints must share radix and length");
  std::vector<Word> visited = {src};
  const std::size_t bound = 2 * src.length() + 2;  // > diameter: loop guard
  while (!(visited.back() == dst)) {
    DBN_ASSERT(visited.size() <= bound, "greedy walk failed to converge");
    const Word& at = visited.back();
    const Hop hop = orientation == Orientation::Directed
                        ? next_hop_unidirectional(at, dst)
                        : next_hop_bidirectional(at, dst);
    visited.push_back(hop.type == ShiftType::Left ? at.left_shift(hop.digit)
                                                  : at.right_shift(hop.digit));
  }
  return visited;
}

}  // namespace dbn
