#include "core/bfs_router.hpp"

#include "common/contract.hpp"
#include "debruijn/bfs.hpp"

namespace dbn {

Hop classify_edge(const DeBruijnGraph& graph, std::uint64_t from,
                  std::uint64_t to) {
  DBN_REQUIRE(graph.has_edge(from, to), "classify_edge: not an edge");
  const std::uint64_t d = graph.radix();
  const std::uint64_t top = graph.vertex_count() / d;
  if (from % top == to / d) {  // to == from^-(a)
    return Hop{ShiftType::Left, static_cast<Digit>(to % d)};
  }
  return Hop{ShiftType::Right, static_cast<Digit>(to / top)};
}

RoutingPath route_bfs(const DeBruijnGraph& graph, const Word& x, const Word& y) {
  DBN_REQUIRE(x.radix() == graph.radix() && x.length() == graph.k() &&
                  y.radix() == graph.radix() && y.length() == graph.k(),
              "route_bfs: endpoints must belong to the graph");
  const std::vector<std::uint64_t> ranks =
      bfs_shortest_path(graph, x.rank(), y.rank());
  DBN_ASSERT(!ranks.empty(), "DG(d,k) is connected");
  RoutingPath path;
  for (std::size_t i = 0; i + 1 < ranks.size(); ++i) {
    path.push(classify_edge(graph, ranks[i], ranks[i + 1]));
  }
  return path;
}

}  // namespace dbn
