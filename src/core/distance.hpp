// The paper's distance functions (Section 2).
#pragma once

#include <cstdint>

#include "debruijn/word.hpp"

namespace dbn {

/// Property 1: D(X,Y) = k - max{ s : x_{k-s+1}..x_k = y_1..y_s } in the
/// directed DG(d,k). O(k) time via the Morris–Pratt failure function.
int directed_distance(const Word& x, const Word& y);

/// Theorem 2: the undirected distance, computed with the O(k^2) matching
/// scan (Algorithms 2/3).
int undirected_distance_quadratic(const Word& x, const Word& y);

/// Theorem 2: the undirected distance in O(k). Uses the suffix-automaton
/// engine (the fastest of the library's linear kernels, EXPERIMENTS.md A1);
/// identical results to the Algorithm 4 suffix-tree form, which remains
/// available through route_bidirectional_suffix_tree / common_substring.hpp.
int undirected_distance(const Word& x, const Word& y);

/// Equation (5) as printed in the paper:
/// delta(d,k) = k - (1 - alpha^k) * alpha / (1 - alpha), alpha = 1/d.
///
/// Reproduction note (EXPERIMENTS.md, experiment E5): the paper derives
/// this from P(D <= k-s) = alpha^s, which implicitly assumes the overlap
/// events "suffix_s(X) == prefix_s(Y)" are nested in s. They are not (the
/// maximal overlap l can exceed s while the length-s overlap fails, e.g.
/// X = Y = (0,1)), so equation (5) is an upper bound that is exact only
/// for k = 1. The exact average is directed_average_distance_exact; the
/// measured gap saturates near 0.62 for d = 2 and shrinks with d
/// (bench_eq5_directed_avg tabulates it).
double directed_average_distance_closed_form(std::uint32_t radix,
                                             std::size_t k);

/// Exact histogram of the directed distance over all ordered pairs
/// (index = distance, 0..k), computed without BFS in O(N k^2):
/// for each source X, the set of Y with overlap >= s is a union of prefix
/// cylinders C_{s'} = { Y : Y starts with the length-s' suffix of X },
/// s' >= s; two cylinders are either nested or disjoint, so the union size
/// is the sum of d^(k-s') over the cylinders not nested in an earlier one,
/// decided by the self-overlap (border) structure of X.
std::vector<std::uint64_t> directed_distance_histogram_exact(
    std::uint32_t radix, std::size_t k);

/// Exact average directed distance over all ordered pairs (self-pairs
/// included), from directed_distance_histogram_exact.
double directed_average_distance_exact(std::uint32_t radix, std::size_t k);

}  // namespace dbn
