// Average-distance machinery behind Figure 2 and equation (5).
//
// The paper gives the directed average in closed form (equation (5)) and
// reports the undirected average numerically ("Numerical results are
// provided in Figure 2"). We provide three estimators for the undirected
// average: exact all-pairs BFS (ground truth, small N), exact enumeration
// through the Theorem 2 formula (cross-check, small N), and uniform pair
// sampling through the linear-time distance (scales to any k).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace dbn {

/// Exact average over all ordered pairs, all-pairs BFS. O(N^2 d).
double undirected_average_exact_bfs(std::uint32_t radix, std::size_t k);

/// Exact average over all ordered pairs, evaluating Theorem 2 for every
/// pair with the O(k)-per-pair suffix-tree distance. O(N^2 k).
double undirected_average_exact_formula(std::uint32_t radix, std::size_t k);

/// Monte-Carlo estimate from `samples` uniform ordered pairs (with
/// replacement). Standard error <= k / (2 sqrt(samples)).
double undirected_average_sampled(std::uint32_t radix, std::size_t k,
                                  std::size_t samples, Rng& rng);

/// Exact histogram of the undirected distance over all ordered pairs
/// (index = distance, 0..k), via all-pairs BFS. O(N^2 d).
std::vector<std::uint64_t> undirected_distance_histogram(std::uint32_t radix,
                                                         std::size_t k);

}  // namespace dbn
