#include "core/path_builder.hpp"

#include "common/contract.hpp"

namespace dbn {

strings::OverlapMin r_side_from_reversed(int k,
                                         const strings::OverlapMin& rev) {
  strings::OverlapMin out;
  out.cost = rev.cost;
  out.s = k + 1 - rev.s;
  out.t = k + 1 - rev.t;
  out.theta = rev.theta;
  return out;
}

BidiPlan make_bidi_plan(int k, const strings::OverlapMin& l_side,
                        const strings::OverlapMin& r_side) {
  DBN_ASSERT(l_side.cost <= k && r_side.cost <= k,
             "Theorem 2 candidates never exceed the diameter");
  BidiPlan plan;
  if (l_side.cost == k && r_side.cost == k) {
    plan.shape = BidiPlan::Shape::Trivial;
    plan.distance = k;
  } else if (l_side.cost <= r_side.cost) {
    plan.shape = BidiPlan::Shape::LeftBlock;
    plan.distance = l_side.cost;
    plan.s = l_side.s;
    plan.t = l_side.t;
    plan.theta = l_side.theta;
  } else {
    plan.shape = BidiPlan::Shape::RightBlock;
    plan.distance = r_side.cost;
    plan.s = r_side.s;
    plan.t = r_side.t;
    plan.theta = r_side.theta;
  }
  // Three-block shape validity (Algorithm 2 lines 6/8/9): the trivial path
  // has length k; a block plan's minimizer must be in range, carry a real
  // overlap (θ >= 1 — otherwise its cost would be >= k and the trivial
  // shape would have won), and reproduce the side cost it was chosen for.
  if (plan.shape == BidiPlan::Shape::Trivial) {
    DBN_ENSURE(plan.distance == k, "trivial path must have length k");
  } else {
    DBN_ENSURE(plan.s >= 1 && plan.s <= k && plan.t >= 1 && plan.t <= k,
               "block-plan minimizer (s, t) out of range");
    DBN_ENSURE(plan.theta >= 1, "block plan requires a non-empty overlap");
    DBN_ENSURE(plan.shape == BidiPlan::Shape::LeftBlock
                   ? plan.theta <= plan.t && plan.theta <= k - plan.s + 1 &&
                         plan.distance == 2 * k - 1 + plan.s - plan.t -
                                              plan.theta
                   : plan.theta <= plan.s && plan.theta <= k - plan.t + 1 &&
                         plan.distance == 2 * k - 1 - plan.s + plan.t -
                                              plan.theta,
               "block plan does not reproduce its side cost");
  }
  DBN_ENSURE(plan.distance >= 0 && plan.distance <= k,
             "planned distance must lie in [0, k]");
  return plan;
}

RoutingPath build_bidi_path(const Word& x, const Word& y, const BidiPlan& plan,
                            WildcardMode mode) {
  RoutingPath path;
  build_bidi_path_into(x, y, plan, mode, path);
  return path;
}

void build_bidi_path_into(const Word& x, const Word& y, const BidiPlan& plan,
                          WildcardMode mode, RoutingPath& path) {
  DBN_REQUIRE(x.radix() == y.radix() && x.length() == y.length(),
              "route endpoints must share radix and length");
  const int k = static_cast<int>(x.length());
  const Digit arbitrary = (mode == WildcardMode::Wildcards) ? kWildcard : 0;
  // y_i in the paper's 1-based indexing.
  const auto yd = [&y](int i) {
    return y.digit(static_cast<std::size_t>(i - 1));
  };

  path.clear();
  switch (plan.shape) {
    case BidiPlan::Shape::Trivial:
      for (int i = 1; i <= k; ++i) {
        path.push({ShiftType::Left, yd(i)});
      }
      break;
    case BidiPlan::Shape::LeftBlock: {
      const int s = plan.s, t = plan.t, theta = plan.theta;
      // L^(s-1) with arbitrary digits,
      for (int i = 0; i < s - 1; ++i) {
        path.push({ShiftType::Left, arbitrary});
      }
      // R inserting y_{t-θ}, y_{t-θ-1}, ..., y_1,
      for (int i = t - theta; i >= 1; --i) {
        path.push({ShiftType::Right, yd(i)});
      }
      // R^(k-t) with arbitrary digits,
      for (int i = 0; i < k - t; ++i) {
        path.push({ShiftType::Right, arbitrary});
      }
      // L inserting y_{t+1}, ..., y_k.
      for (int i = t + 1; i <= k; ++i) {
        path.push({ShiftType::Left, yd(i)});
      }
      break;
    }
    case BidiPlan::Shape::RightBlock: {
      const int s = plan.s, t = plan.t, theta = plan.theta;
      // R^(k-s) with arbitrary digits,
      for (int i = 0; i < k - s; ++i) {
        path.push({ShiftType::Right, arbitrary});
      }
      // L inserting y_{t+θ}, ..., y_k,
      for (int i = t + theta; i <= k; ++i) {
        path.push({ShiftType::Left, yd(i)});
      }
      // L^(t-1) with arbitrary digits,
      for (int i = 0; i < t - 1; ++i) {
        path.push({ShiftType::Left, arbitrary});
      }
      // R inserting y_{t-1}, ..., y_1.
      for (int i = t - 1; i >= 1; --i) {
        path.push({ShiftType::Right, yd(i)});
      }
      break;
    }
  }
  DBN_ASSERT(static_cast<int>(path.length()) == plan.distance,
             "constructed path length must equal the planned distance");
  // The paper's correctness claim for all three shapes: the path reaches y
  // under any wildcard resolution (zero resolver as the spot-check).
  DBN_AUDIT(path.apply(x) == y, "constructed path must reach the destination");
}

}  // namespace dbn
