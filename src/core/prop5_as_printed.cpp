#include "core/prop5_as_printed.hpp"

#include <algorithm>
#include <limits>

#include "common/contract.hpp"
#include "strings/suffix_tree.hpp"

namespace dbn {

strings::OverlapMin l_side_min_prop5_as_printed(strings::SymbolView x,
                                                strings::SymbolView y) {
  DBN_REQUIRE(!x.empty() && x.size() == y.size(),
              "prop5 kernel requires two non-empty words of equal length");
  const int k = static_cast<int>(x.size());
  strings::Symbol max_symbol = 0;
  for (const strings::Symbol c : x) {
    max_symbol = std::max(max_symbol, c);
  }
  for (const strings::Symbol c : y) {
    max_symbol = std::max(max_symbol, c);
  }
  DBN_REQUIRE(max_symbol < std::numeric_limits<strings::Symbol>::max() - 1,
              "symbols too large to append the two endmarkers");
  // S = X ⊥ reverse(Y) ⊤ (paper notation; 1-based positions 1..2k+2).
  std::vector<strings::Symbol> s;
  s.reserve(2 * x.size() + 2);
  s.insert(s.end(), x.begin(), x.end());
  s.push_back(max_symbol + 1);                  // ⊥ at position k+1
  s.insert(s.end(), y.rbegin(), y.rend());      // reverse(Y) at k+2..2k+1
  s.push_back(max_symbol + 2);                  // ⊤ at position 2k+2

  const strings::SuffixTree tree(std::move(s));
  const int n = tree.node_count();
  constexpr int kFar = std::numeric_limits<int>::max() / 4;

  // Line 3.1: p(v) and q(v) by a post-order sweep (children before
  // parents; preorder reversed works since parents precede children).
  std::vector<int> p(static_cast<std::size_t>(n), kFar);
  std::vector<int> q(static_cast<std::size_t>(n), kFar);
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<int> stack = {tree.root()};
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    order.push_back(v);
    for (const auto& [sym, child] : tree.children(v)) {
      (void)sym;
      stack.push_back(child);
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const int v = *it;
    if (tree.is_leaf(v) && v != tree.root()) {
      const int pos = static_cast<int>(tree.suffix_start(v)) + 1;  // 1-based
      p[static_cast<std::size_t>(v)] = pos <= k ? pos : 2 * k + 2;
      q[static_cast<std::size_t>(v)] =
          (pos >= k + 2 && pos <= 2 * k + 1) ? pos - k - 1 : 2 * k + 2;
    } else {
      for (const auto& [sym, child] : tree.children(v)) {
        (void)sym;
        p[static_cast<std::size_t>(v)] = std::min(
            p[static_cast<std::size_t>(v)], p[static_cast<std::size_t>(child)]);
        q[static_cast<std::size_t>(v)] = std::min(
            q[static_cast<std::size_t>(v)], q[static_cast<std::size_t>(child)]);
      }
    }
  }

  // Line 3.2: interior vertex minimizing p+q-D subject to p+q <= 2k.
  int best_value = kFar;
  int best_vertex = tree.root();
  for (int v = 0; v < n; ++v) {
    if (tree.is_leaf(v) && v != tree.root()) {
      continue;  // interior vertices only
    }
    const int pq = p[static_cast<std::size_t>(v)] + q[static_cast<std::size_t>(v)];
    if (pq > 2 * k) {
      continue;
    }
    const int value = pq - tree.string_depth(v);
    if (value < best_value) {
      best_value = value;
      best_vertex = v;
    }
  }
  DBN_ASSERT(best_value < kFar, "the root always satisfies p+q <= 2k");

  // Line 3.3.
  strings::OverlapMin result;
  result.cost = k - 2 + best_value;
  result.s = p[static_cast<std::size_t>(best_vertex)];
  result.t = k + 1 - q[static_cast<std::size_t>(best_vertex)];
  result.theta = tree.string_depth(best_vertex);
  return result;
}

}  // namespace dbn
