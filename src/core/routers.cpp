#include "core/routers.hpp"

#include "common/contract.hpp"
#include "core/common_substring.hpp"
#include "core/route_trace.hpp"
#include "obs/trace.hpp"
#include "strings/failure.hpp"
#include "strings/matching.hpp"
#include "strings/suffix_automaton.hpp"

namespace dbn {

namespace {

void check_endpoints(const Word& x, const Word& y) {
  DBN_REQUIRE(x.radix() == y.radix() && x.length() == y.length(),
              "route endpoints must share radix and length");
}

using SideMinFn = strings::OverlapMin (*)(strings::SymbolView,
                                          strings::SymbolView);

RoutingPath route_bidirectional(const Word& x, const Word& y,
                                WildcardMode mode, SideMinFn side_min,
                                const char* algo) {
  check_endpoints(x, y);
  const int k = static_cast<int>(x.length());
  const Word xr = x.reversed();
  const Word yr = y.reversed();
  const strings::OverlapMin l_side = side_min(x.symbols(), y.symbols());
  const strings::OverlapMin r_side =
      r_side_from_reversed(k, side_min(xr.symbols(), yr.symbols()));
  const BidiPlan plan = make_bidi_plan(k, l_side, r_side);
  RoutingPath path = build_bidi_path(x, y, plan, mode);
  if (obs::tracing_enabled()) {
    trace_bidi_route(algo, x, y, plan, path);
  }
  return path;
}

}  // namespace

RoutingPath route_unidirectional(const Word& x, const Word& y) {
  check_endpoints(x, y);
  if (x == y) {
    return RoutingPath{};
  }
  const int l = strings::suffix_prefix_overlap(x.symbols(), y.symbols());
  RoutingPath path;
  for (std::size_t i = static_cast<std::size_t>(l); i < y.length(); ++i) {
    path.push({ShiftType::Left, y.digit(i)});
  }
  if (obs::tracing_enabled()) {
    trace_uni_route(x, y, l, path);
  }
  return path;
}

RoutingPath route_bidirectional_mp(const Word& x, const Word& y,
                                   WildcardMode mode) {
  return route_bidirectional(x, y, mode, &strings::min_l_cost, "bidi-mp");
}

RoutingPath route_bidirectional_suffix_tree(const Word& x, const Word& y,
                                            WildcardMode mode) {
  return route_bidirectional(x, y, mode, &min_l_cost_suffix_tree,
                             "bidi-suffix-tree");
}

RoutingPath route_bidirectional_suffix_automaton(const Word& x, const Word& y,
                                                 WildcardMode mode) {
  return route_bidirectional(x, y, mode, &strings::min_l_cost_suffix_automaton,
                             "bidi-suffix-automaton");
}

}  // namespace dbn
