// Compiled next-hop routing tables — the alternative the paper's O(k)
// algorithms make unnecessary.
//
// A conventional interconnect stores, per site, a next-hop entry for every
// destination: O(N) words of state per site, O(N^2) total, built with one
// reverse BFS per destination. The paper's point is that de Bruijn
// networks need none of it: the next hop is computable from the two
// addresses alone in O(k) = O(log N). This module builds the tables so the
// trade-off can be measured (bench_routing_tables).
#pragma once

#include <cstdint>
#include <vector>

#include "core/path.hpp"
#include "debruijn/graph.hpp"

namespace dbn {

/// Full next-hop table for a de Bruijn network: entry (src, dst) is a hop
/// whose application moves src one step along a shortest path to dst.
class RoutingTable {
 public:
  /// Builds with one BFS per destination. O(N^2 d) time, O(N^2) memory.
  /// The graph must be materializable.
  explicit RoutingTable(const DeBruijnGraph& graph);

  /// The compiled next hop; src != dst.
  Hop next_hop(std::uint64_t src, std::uint64_t dst) const;

  /// Walks the table from src to dst; returns the hop count (== the exact
  /// distance, asserted in tests).
  int walk_length(std::uint64_t src, std::uint64_t dst) const;

  /// Bytes of table state (the O(N^2) the formulas avoid).
  std::size_t memory_bytes() const;

  std::uint64_t vertex_count() const { return n_; }

 private:
  std::uint64_t n_;
  std::uint32_t radix_;
  // Packed entries: type in the top bit, digit below. Indexed src * N + dst.
  std::vector<std::uint32_t> entries_;
};

}  // namespace dbn
