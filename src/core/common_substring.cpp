#include "core/common_substring.hpp"

#include <algorithm>
#include <limits>

#include "common/contract.hpp"
#include "strings/packed.hpp"
#include "strings/suffix_tree.hpp"

namespace dbn {

namespace {

using strings::Symbol;
using strings::SymbolView;
using strings::SuffixTree;

/// Builds the text a·sep1·b·sep2 with fresh sentinels above max(a, b).
std::vector<Symbol> joined_text(SymbolView a, SymbolView b) {
  Symbol max_symbol = 0;
  for (const Symbol s : a) {
    max_symbol = std::max(max_symbol, s);
  }
  for (const Symbol s : b) {
    max_symbol = std::max(max_symbol, s);
  }
  DBN_REQUIRE(max_symbol < std::numeric_limits<Symbol>::max() - 1,
              "symbols too large to append sentinels");
  std::vector<Symbol> text;
  text.reserve(a.size() + b.size() + 2);
  text.insert(text.end(), a.begin(), a.end());
  text.push_back(max_symbol + 1);
  text.insert(text.end(), b.begin(), b.end());
  text.push_back(max_symbol + 2);
  return text;
}

struct NodeAggregate {
  std::int64_t min_start_a = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_start_b = -1;
};

/// Post-order DFS computing per-node (min start in a, max start in b) and
/// invoking `visit(node, aggregate)` on every node.
template <typename Visit>
void aggregate_dfs(const SuffixTree& tree, std::size_t a_len, std::size_t b_len,
                   Visit&& visit) {
  const std::size_t b_offset = a_len + 1;  // b starts after sep1
  const int n = tree.node_count();
  std::vector<NodeAggregate> agg(static_cast<std::size_t>(n));
  // Children-first order: reverse of a preorder stack traversal.
  std::vector<int> preorder;
  preorder.reserve(static_cast<std::size_t>(n));
  std::vector<int> stack = {tree.root()};
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    preorder.push_back(v);
    for (const auto& [symbol, child] : tree.children(v)) {
      (void)symbol;
      stack.push_back(child);
    }
  }
  for (auto it = preorder.rbegin(); it != preorder.rend(); ++it) {
    const int v = *it;
    NodeAggregate& a = agg[static_cast<std::size_t>(v)];
    if (tree.is_leaf(v) && v != tree.root()) {
      const std::size_t start = tree.suffix_start(v);
      if (start < a_len) {
        a.min_start_a = static_cast<std::int64_t>(start);
      } else if (start >= b_offset && start < b_offset + b_len) {
        a.max_start_b = static_cast<std::int64_t>(start - b_offset);
      }
      // Suffixes starting at a sentinel contribute nothing.
    } else {
      for (const auto& [symbol, child] : tree.children(v)) {
        (void)symbol;
        const NodeAggregate& c = agg[static_cast<std::size_t>(child)];
        a.min_start_a = std::min(a.min_start_a, c.min_start_a);
        a.max_start_b = std::max(a.max_start_b, c.max_start_b);
      }
    }
    visit(v, a);
  }
}

}  // namespace

strings::OverlapMin min_l_cost_suffix_tree(SymbolView x, SymbolView y) {
  DBN_REQUIRE(!x.empty() && x.size() == y.size(),
              "min_l_cost_suffix_tree requires two non-empty words of equal "
              "length");
  const int k = static_cast<int>(x.size());
  const SuffixTree tree(joined_text(x, y));

  // θ = 0 baseline: min_{i,j}(2k-1+i-j) at (i,j) = (1,k).
  strings::OverlapMin best{k, 1, k, 0};
  aggregate_dfs(tree, x.size(), y.size(),
                [&](int v, const NodeAggregate& a) {
                  const int depth = tree.string_depth(v);
                  if (depth == 0 || tree.is_leaf(v) ||
                      a.min_start_a ==
                          std::numeric_limits<std::int64_t>::max() ||
                      a.max_start_b < 0) {
                    return;  // needs occurrences in both words and θ >= 1
                  }
                  const int cost = static_cast<int>(
                      2 * k + a.min_start_a - a.max_start_b - 2 * depth);
                  if (cost < best.cost) {
                    best.cost = cost;
                    best.s = static_cast<int>(a.min_start_a) + 1;
                    best.t = static_cast<int>(a.max_start_b) + depth;
                    best.theta = depth;
                  }
                });
  DBN_ASSERT(best.cost <= k, "l-side minimum must not exceed the diameter");
  // Same witness contract as the Morris–Pratt scan (route_engine): the
  // minimizer is in range and reproduces its cost; at audit level the
  // result is cross-checked against the O(k^2) Algorithm 3 reference.
  DBN_ENSURE(best.s >= 1 && best.s <= k && best.t >= 1 && best.t <= k &&
                 best.theta >= 0 && best.theta <= best.t &&
                 best.theta <= k - best.s + 1,
             "suffix-tree witness (s, t, theta) out of range");
  DBN_ENSURE(best.cost == 2 * k - 1 + best.s - best.t - best.theta,
             "suffix-tree witness does not reproduce its cost");
  DBN_AUDIT(best.cost == strings::min_l_cost(x, y).cost,
            "suffix-tree minimum must equal the Algorithm 3 scan");
  return best;
}

int longest_common_substring_suffix_tree(SymbolView a, SymbolView b) {
  if (a.empty() || b.empty()) {
    return 0;
  }
  const SuffixTree tree(joined_text(a, b));
  int best = 0;
  aggregate_dfs(tree, a.size(), b.size(),
                [&](int v, const NodeAggregate& agg) {
                  if (tree.is_leaf(v) ||
                      agg.min_start_a ==
                          std::numeric_limits<std::int64_t>::max() ||
                      agg.max_start_b < 0) {
                    return;
                  }
                  best = std::max(best, tree.string_depth(v));
                });
  return best;
}

int longest_common_substring(SymbolView a, SymbolView b) {
  strings::PackedBuf pa;
  strings::PackedBuf pb;
  if (strings::try_pack_pair(a, b, pa, pb)) {
    return strings::longest_common_substring_packed(pa, pb);
  }
  return longest_common_substring_suffix_tree(a, b);
}

}  // namespace dbn
