#include "core/average_distance.hpp"

#include "common/contract.hpp"
#include "core/distance.hpp"
#include "debruijn/bfs.hpp"
#include "debruijn/graph.hpp"

namespace dbn {

double undirected_average_exact_bfs(std::uint32_t radix, std::size_t k) {
  const DeBruijnGraph graph(radix, k, Orientation::Undirected);
  return average_distance(graph);
}

double undirected_average_exact_formula(std::uint32_t radix, std::size_t k) {
  const std::uint64_t n = Word::vertex_count(radix, k);
  double total = 0.0;
  for (std::uint64_t xr = 0; xr < n; ++xr) {
    const Word x = Word::from_rank(radix, k, xr);
    for (std::uint64_t yr = 0; yr < n; ++yr) {
      const Word y = Word::from_rank(radix, k, yr);
      total += undirected_distance(x, y);
    }
  }
  return total / (static_cast<double>(n) * static_cast<double>(n));
}

double undirected_average_sampled(std::uint32_t radix, std::size_t k,
                                  std::size_t samples, Rng& rng) {
  DBN_REQUIRE(samples > 0, "undirected_average_sampled requires samples > 0");
  double total = 0.0;
  std::vector<Digit> xd(k), yd(k);
  for (std::size_t s = 0; s < samples; ++s) {
    for (std::size_t i = 0; i < k; ++i) {
      xd[i] = static_cast<Digit>(rng.below(radix));
      yd[i] = static_cast<Digit>(rng.below(radix));
    }
    total += undirected_distance(Word(radix, xd), Word(radix, yd));
  }
  return total / static_cast<double>(samples);
}

std::vector<std::uint64_t> undirected_distance_histogram(std::uint32_t radix,
                                                         std::size_t k) {
  const DeBruijnGraph graph(radix, k, Orientation::Undirected);
  const std::uint64_t n = graph.vertex_count();
  std::vector<std::uint64_t> histogram(k + 1, 0);
  for (std::uint64_t v = 0; v < n; ++v) {
    const std::vector<int> dist = bfs_distances(graph, v);
    for (std::uint64_t w = 0; w < n; ++w) {
      DBN_ASSERT(dist[w] >= 0 && dist[w] <= static_cast<int>(k),
                 "undirected distance lies in [0, k]");
      ++histogram[static_cast<std::size_t>(dist[w])];
    }
  }
  return histogram;
}

}  // namespace dbn
