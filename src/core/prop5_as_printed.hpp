// The paper's Proposition 5 / Algorithm 4 lines 3.0-3.3, implemented
// *exactly as printed* — kept as a falsification artifact.
//
// As printed, the compact prefix tree is built for S = X ⊥ reverse(Y) ⊤
// and the l-side candidate is D1 = k - 2 + p(w) + q(w) - D(w) over interior
// vertices with p(v) + q(v) <= 2k. The longest common prefix of the suffix
// x_i x_{i+1}... and the suffix y_j y_{j-1}... is a *reversed* block of Y,
// not the forward block that definition (8) and Theorem 2 require, so this
// quantity differs from min_{i,j}(2k-1+i-j-l_{i,j}) on concrete pairs
// (X = Y = (0,1) is the smallest counterexample). The test suite and
// EXPERIMENTS.md quantify how often it disagrees; the corrected
// formulation lives in core/common_substring.hpp.
#pragma once

#include "strings/matching.hpp"
#include "strings/symbol.hpp"

namespace dbn {

/// Lines 3.0-3.3 verbatim: returns the candidate D1 with the paper's
/// s1 = p(w), t1 = k+1-q(w), and theta = D(w). Same input contract as the
/// correct kernels (|x| == |y| == k >= 1).
strings::OverlapMin l_side_min_prop5_as_printed(strings::SymbolView x,
                                                strings::SymbolView y);

}  // namespace dbn
