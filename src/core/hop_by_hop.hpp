// Hop-by-hop (distributed) routing.
//
// The paper routes at the source: the whole path rides in the message's
// routing-path field. The distance functions enable an alternative that a
// real network would also want: each site greedily forwards to any
// neighbor strictly closer to the destination — possible in O(d k) per hop
// precisely because Property 1 / Theorem 2 price every neighbor without
// any global state. Greedy is exact here: some neighbor at distance
// D(X,Y) - 1 always exists on a shortest path, so the walk takes exactly
// D(X,Y) hops (asserted in the tests against BFS).
#pragma once

#include <vector>

#include "core/path.hpp"
#include "debruijn/graph.hpp"
#include "debruijn/word.hpp"

namespace dbn {

/// The next hop a uni-directional site takes towards dst: the left shift
/// inserting the first digit Algorithm 1 would send. Requires at != dst.
/// O(k).
Hop next_hop_unidirectional(const Word& at, const Word& dst);

/// The next hop a bi-directional site takes towards dst: the
/// lexicographically first (type, digit) whose neighbor has undirected
/// distance D(at,dst) - 1. Requires at != dst. O(d k).
Hop next_hop_bidirectional(const Word& at, const Word& dst);

/// Full greedy walk from src to dst using the per-orientation next-hop
/// rule; returns the visited words, src first, dst last. The length
/// (hops) equals the exact distance.
std::vector<Word> greedy_walk(const Word& src, const Word& dst,
                              Orientation orientation);

}  // namespace dbn
