// Baseline router: breadth-first search over the explicit graph, converted
// to the paper's (a,b) hop format. Exact but O(N·d) per query versus the
// paper's O(k) / O(k^2) — the comparison benchmarks quantify the gap.
#pragma once

#include "core/path.hpp"
#include "debruijn/graph.hpp"
#include "debruijn/word.hpp"

namespace dbn {

/// Shortest path from x to y in `graph` (whose orientation decides the move
/// set) as a RoutingPath of concrete hops. x and y must belong to the
/// graph. The graph must be small enough to enumerate.
RoutingPath route_bfs(const DeBruijnGraph& graph, const Word& x, const Word& y);

/// Classifies the edge from `from` to `to` as a hop (type + digit); used to
/// convert vertex sequences into routing paths. When a move is realizable
/// both as a left and as a right shift, the left shift is chosen.
Hop classify_edge(const DeBruijnGraph& graph, std::uint64_t from,
                  std::uint64_t to);

}  // namespace dbn
