// Allocation-free bi-directional routing engine — the paper's Section 4
// made concrete: "In order to gain efficiency, some mechanical
// transformations on the programs are necessary ... Appropriately
// implemented, the constant factors of our linear algorithms are low
// enough to make these algorithms of practical use."
//
// Two mechanical transformations live here. First, every buffer is
// hoisted into a reusable object so route() performs no heap allocation
// once warmed up (beyond growing the returned path in place). Second,
// whenever the endpoints fit a 128-bit packed lane (strings/packed.hpp:
// d <= 4 up to k = 64, d <= 16 up to k = 32 — every network the paper's
// figures discuss), the Theorem 2 side minima are computed by the
// word-parallel offset sweep instead of the per-symbol Algorithm 3 scan;
// the scalar kernels remain as the fallback for larger alphabets and
// diameters. One engine per thread. The ablation benchmark
// (bench_route_engine) measures the gain; the packed-vs-scalar
// differential battery pins the equivalence.
#pragma once

#include <string_view>
#include <vector>

#include "core/path.hpp"
#include "core/path_builder.hpp"
#include "debruijn/word.hpp"
#include "strings/matching.hpp"

namespace dbn {

/// Which scalar kernel computes the side minima when the endpoints do not
/// pack: the Algorithm 2/3 Morris–Pratt scan (O(k^2), allocation-free
/// once warmed) or the Algorithm 4 generalized suffix tree (O(k), but it
/// allocates per query). Both feed the identical plan/emission machinery,
/// so the choice only shows in the unpackable regime.
enum class SideKernelFallback { MpScan, SuffixTree };

class BidirectionalRouteEngine {
 public:
  /// Buffers are sized for diameters up to max_k.
  explicit BidirectionalRouteEngine(
      std::size_t max_k,
      SideKernelFallback fallback = SideKernelFallback::MpScan);

  /// Exact undirected distance (Theorem 2); no allocation when the words
  /// pack or the MpScan fallback runs.
  int distance(const Word& x, const Word& y);

  /// A shortest path of the same length as route_bidirectional_mp's,
  /// writing into the caller's path object (cleared first) so storage is
  /// reused. The Theorem 2 witness — and with it the placement of the
  /// arbitrary/wildcard digits — may differ between the packed and scalar
  /// kernels; every witness satisfies the same shape contracts.
  void route_into(const Word& x, const Word& y, WildcardMode mode,
                  RoutingPath& out);

  std::size_t max_k() const { return max_k_; }
  SideKernelFallback fallback() const { return fallback_; }

 private:
  /// Packed side minima for both orientations; false when (d, k) does not
  /// fit the lane and the caller must take the scalar path.
  bool packed_minima(const Word& x, const Word& y,
                     strings::OverlapMin& l_side, strings::OverlapMin& r_side);

  /// The l-side minimum over raw digit buffers via the configured scalar
  /// fallback kernel.
  strings::OverlapMin side_min_scalar(const std::vector<strings::Symbol>& x,
                                      const std::vector<strings::Symbol>& y,
                                      std::size_t k);

  /// The l-side minimum via the reusable Morris–Pratt row buffers.
  strings::OverlapMin min_l_cost_inplace(const std::vector<strings::Symbol>& x,
                                         const std::vector<strings::Symbol>& y,
                                         std::size_t k);

  /// The algo label this engine traces route spans under.
  std::string_view trace_algo() const;

  std::size_t max_k_;
  SideKernelFallback fallback_;
  std::vector<strings::Symbol> x_, y_, xr_, yr_;
  std::vector<int> border_;
};

}  // namespace dbn
