// Allocation-free bi-directional routing engine — the paper's Section 4
// made concrete: "In order to gain efficiency, some mechanical
// transformations on the programs are necessary ... Appropriately
// implemented, the constant factors of our linear algorithms are low
// enough to make these algorithms of practical use."
//
// The biggest constant factor in this codebase's Algorithm 2 is per-call
// allocation (failure-function rows, reversed copies, path storage). This
// engine hoists every buffer into a reusable object: route() performs no
// heap allocation once warmed up (beyond growing the returned path in
// place). One engine per thread. The ablation benchmark
// (bench_route_engine) measures the gain.
#pragma once

#include <vector>

#include "core/path.hpp"
#include "core/path_builder.hpp"
#include "debruijn/word.hpp"
#include "strings/matching.hpp"

namespace dbn {

class BidirectionalRouteEngine {
 public:
  /// Buffers are sized for diameters up to max_k.
  explicit BidirectionalRouteEngine(std::size_t max_k);

  /// Exact undirected distance (Theorem 2), no allocation.
  int distance(const Word& x, const Word& y);

  /// Shortest path equal to route_bidirectional_mp's, writing into the
  /// caller's path object (cleared first) so storage is reused.
  void route_into(const Word& x, const Word& y, WildcardMode mode,
                  RoutingPath& out);

  std::size_t max_k() const { return max_k_; }

 private:
  /// The l-side minimum over (x, y) given as raw digit buffers.
  strings::OverlapMin min_l_cost_inplace(const std::vector<strings::Symbol>& x,
                                         const std::vector<strings::Symbol>& y,
                                         std::size_t k);

  std::size_t max_k_;
  std::vector<strings::Symbol> x_, y_, xr_, yr_;
  std::vector<int> border_;
};

}  // namespace dbn
