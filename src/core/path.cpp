#include "core/path.hpp"

#include <sstream>

#include "common/contract.hpp"

namespace dbn {

WildcardResolver zero_resolver() {
  return [](std::size_t, ShiftType, const Word&) -> Digit { return 0; };
}

const Hop& RoutingPath::hop(std::size_t i) const {
  DBN_REQUIRE(i < hops_.size(), "RoutingPath::hop index out of range");
  return hops_[i];
}

bool RoutingPath::has_wildcards() const {
  for (const Hop& h : hops_) {
    if (h.is_wildcard()) {
      return true;
    }
  }
  return false;
}

Word RoutingPath::apply(const Word& source,
                        const WildcardResolver& resolver) const {
  Word at = source;
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    const Hop& h = hops_[i];
    Digit digit = h.digit;
    if (h.is_wildcard()) {
      DBN_REQUIRE(resolver != nullptr,
                  "RoutingPath::apply: wildcard hop without a resolver");
      digit = resolver(i, h.type, at);
    }
    if (h.type == ShiftType::Left) {
      at.left_shift_inplace(digit);
    } else {
      at.right_shift_inplace(digit);
    }
  }
  return at;
}

std::string RoutingPath::to_string() const {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    os << (i == 0 ? "" : ",") << "("
       << (hops_[i].type == ShiftType::Left ? 0 : 1) << ",";
    if (hops_[i].is_wildcard()) {
      os << "*";
    } else {
      os << hops_[i].digit;
    }
    os << ")";
  }
  os << "}";
  return os.str();
}

}  // namespace dbn
