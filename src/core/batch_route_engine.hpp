// Parallel batch routing over one network DG(d,k) — the paper's O(k)
// per-query cost (Algorithms 1 and 4) turned into a throughput engine.
//
// The paper's closing argument is that de Bruijn routing is cheap enough
// to compute per message instead of per table; the realistic regime for
// that claim is bulk traffic (all-to-all and many-to-many workloads, as in
// the distance-layer and all-to-all analyses of PAPERS.md). This engine
// routes large query batches with:
//
//   - a chunked thread pool (common/thread_pool.hpp) — queries are
//     independent, so the batch splits into dynamically scheduled chunks;
//   - per-worker scratch arenas — each worker owns a
//     BidirectionalRouteEngine (reused Morris–Pratt failure rows and
//     Algorithm 2/3 matching buffers) and writes paths in place, so the
//     hot path performs no per-query allocation beyond growing the
//     caller-visible output paths;
//   - pluggable backends — Algorithm 1 (directed), Algorithm 2/3 via the
//     allocation-free engine, Algorithm 4 (suffix tree), or a compiled
//     next-hop table walk (the O(N^2)-state alternative the paper
//     obviates, kept for measurement);
//   - an optional sharded memo cache keyed on (X, Y) for workloads with
//     repeated pairs (hot flows), direct-mapped within each shard so a
//     lookup is one hash, one lock, one compare.
//
// Results are bit-for-bit deterministic in the batch: out[i] depends only
// on queries[i] and the backend, never on the thread count, chunk size or
// cache state (every backend is a deterministic function, and the cache
// only ever returns what that function produced earlier).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/mutex.hpp"
#include "core/path.hpp"
#include "core/path_builder.hpp"
#include "core/route_engine.hpp"
#include "debruijn/graph.hpp"
#include "debruijn/word.hpp"
#include "obs/metrics.hpp"

namespace dbn {

class ThreadPool;
class RoutingTable;

/// Which routing computation answers each query of the batch.
enum class BatchBackend {
  Alg1Directed,     // Algorithm 1: directed DG(d,k), left shifts only
  BidiEngine,       // Algorithms 2/3 via the allocation-free route engine
  BidiSuffixTree,   // Algorithm 4: the same engine arena with the
                    // suffix-tree scalar fallback (packed lanes whenever
                    // (d,k) fits — no per-query tree construction there)
  CompiledTable,    // next-hop table walk (requires materializable d^k)
};

std::string_view batch_backend_name(BatchBackend backend);

struct BatchRouteOptions {
  BatchBackend backend = BatchBackend::BidiEngine;
  /// Worker threads (the caller counts as one); 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Queries per scheduling quantum of the pool.
  std::size_t chunk = 256;
  /// Total memo-cache entries across all shards; 0 disables the cache.
  std::size_t cache_entries = 0;
  /// Shard count for the memo cache (rounded up to at least 1). More
  /// shards = less lock contention; entries are split evenly.
  std::size_t cache_shards = 16;
  /// How the bi-directional backends emit the arbitrary digits.
  WildcardMode wildcard_mode = WildcardMode::Concrete;
  /// When false, per-query route/hop spans are suppressed inside the batch
  /// loops (the engine's own batch/chunk spans still fire). The serving
  /// path turns this off: with a trace sink installed for sampled
  /// per-request spans, every routed query would otherwise pay the full
  /// per-hop tracer.
  bool trace_routes = true;
};

/// One source/destination pair; both words must be vertices of DG(d,k).
struct RouteQuery {
  Word x;
  Word y;
};

/// Counters from the last route_batch/distance_batch call.
struct BatchStats {
  std::size_t queries = 0;
  std::size_t cache_lookups = 0;
  std::size_t cache_hits = 0;
  /// Stores that overwrote a live entry for a *different* pair (direct-
  /// mapped collisions). Refreshing the same pair does not count.
  std::size_t cache_evictions = 0;
  std::size_t threads = 0;
};

class BatchRouteEngine {
 public:
  /// An engine for DG(d,k). CompiledTable additionally requires d^k small
  /// enough to materialize (RoutingTable's own guard applies).
  BatchRouteEngine(std::uint32_t d, std::size_t k,
                   const BatchRouteOptions& options = {});
  ~BatchRouteEngine();

  BatchRouteEngine(const BatchRouteEngine&) = delete;
  BatchRouteEngine& operator=(const BatchRouteEngine&) = delete;

  /// Routes queries[i] into out[i] (resized to match). Deterministic:
  /// independent of thread count and cache state.
  void route_batch_into(const std::vector<RouteQuery>& queries,
                        std::vector<RoutingPath>& out);

  /// Convenience wrapper over route_batch_into.
  std::vector<RoutingPath> route_batch(const std::vector<RouteQuery>& queries);

  /// Distances only (no path construction, no cache).
  std::vector<int> distance_batch(const std::vector<RouteQuery>& queries);

  /// Routes one query through the batch machinery (worker 0's scratch and
  /// the cache) — the single-message view of the same engine.
  RoutingPath route_one(const Word& x, const Word& y);

  std::uint32_t radix() const { return d_; }
  std::size_t k() const { return k_; }
  BatchBackend backend() const { return options_.backend; }
  std::size_t thread_count() const;
  bool cache_enabled() const { return !shards_.empty(); }

  const BatchStats& last_stats() const { return stats_; }

 private:
  // One worker's reusable state: the allocation-free bidirectional engine
  // (packed lanes, Morris–Pratt failure rows + matching buffers). Both
  // bi-directional backends route through it; they differ only in the
  // engine's scalar fallback kernel for unpackable (d, k).
  struct Scratch {
    Scratch(std::size_t max_k, SideKernelFallback fallback)
        : engine(max_k, fallback) {}
    BidirectionalRouteEngine engine;
  };

  // Direct-mapped cache entry; `filled` distinguishes the empty slot from
  // a real (X, Y) -> path mapping.
  struct CacheEntry {
    bool filled = false;
    std::uint64_t hash = 0;
    Word x{1, {0}};
    Word y{1, {0}};
    RoutingPath path;
  };
  struct CacheShard {
    Mutex mutex;
    // Sized once at construction (never resized), so entries.size() is
    // immutable; the lock guards the slots' contents.
    std::vector<CacheEntry> entries DBN_GUARDED_BY(mutex);
  };

  void validate(const RouteQuery& query) const;
  void compute_route(const RouteQuery& query, Scratch& scratch,
                     RoutingPath& out) const;
  int compute_distance(const RouteQuery& query, Scratch& scratch) const;
  static std::uint64_t pair_hash(const Word& x, const Word& y);
  bool cache_lookup(std::uint64_t hash, const Word& x, const Word& y,
                    RoutingPath& out);
  void cache_store(std::uint64_t hash, const Word& x, const Word& y,
                   const RoutingPath& path);

  std::uint32_t d_;
  std::size_t k_;
  BatchRouteOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<Scratch>> scratch_;
  std::unique_ptr<DeBruijnGraph> graph_;   // CompiledTable backend only
  std::unique_ptr<RoutingTable> table_;    // CompiledTable backend only
  std::vector<std::unique_ptr<CacheShard>> shards_;
  std::atomic<std::size_t> cache_lookups_{0};
  std::atomic<std::size_t> cache_hits_{0};
  std::atomic<std::size_t> cache_evictions_{0};
  BatchStats stats_;
  // Mirrors of the batch counters in the global registry (folded in once
  // per batch, not per query, to keep the hot loop untouched).
  obs::Counter metrics_queries_;
  obs::Counter metrics_cache_lookups_;
  obs::Counter metrics_cache_hits_;
  obs::Counter metrics_cache_evictions_;
  obs::Counter metrics_batches_;
};

}  // namespace dbn
