// Distance-layer tables: the Fàbrega–Martí-Farré–Muñoz layer structure of
// de Bruijn / Kautz networks (PAPERS.md, arXiv 2203.09918) turned into an
// O(1) deflection primitive.
//
// For a fixed destination Y the vertices partition into layers by distance
// D(·,Y); in the undirected DG(d,k) every neighbor of a vertex X lies in
// layer D(X,Y)-1, D(X,Y) or D(X,Y)+1, and a deflection router needs exactly
// that trichotomy — forward (Closer), sidestep (Same) or retreat (Farther)
// — at every hop. net/adaptive.* used to recompute D(neighbor, Y) with the
// O(k) Theorem-2 scan for every candidate of every hop; a LayerTable
// instead materializes D(·,Y) once per active destination (an O(N k)
// analytic fill using the paper's distance formulas — no BFS) and answers
// classify() with two array reads.
//
// Destinations are cached lazily in direct-mapped shards behind per-shard
// mutexes (the BatchRouteEngine memo idiom), and each destination's table
// is handed out as an immutable shared View so the per-hop hot path holds
// no lock: a router pins the view for its walk and classifies neighbors
// with plain loads. Memory is one byte per vertex per cached destination;
// the max_vertices guard keeps an accidental DG(2,30) from allocating it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/contract.hpp"
#include "common/mutex.hpp"
#include "debruijn/graph.hpp"
#include "debruijn/kautz.hpp"
#include "debruijn/word.hpp"
#include "obs/metrics.hpp"

namespace dbn {

/// Where a neighbor sits relative to the current vertex's distance layer:
/// strictly nearer the destination, in the same layer, or farther away.
/// (Undirected de Bruijn: Farther always means exactly one layer out; in
/// directed graphs an out-neighbor can be arbitrarily far, and Farther
/// covers every such case.)
enum class DistanceLayer : std::uint8_t { Closer, Same, Farther };

std::string_view layer_name(DistanceLayer layer);

struct LayerTableOptions {
  /// Total cached destination tables across all shards; 0 disables caching
  /// (every view() call rebuilds — measurement/debug only).
  std::size_t cache_destinations = 64;
  /// Shard count for the cache (rounded up to at least 1).
  std::size_t cache_shards = 8;
  /// Hard cap on the vertex count: one table is one byte per vertex.
  std::uint64_t max_vertices = 1ull << 20;
};

/// Counters since construction (view() is thread-safe; so is this).
struct LayerTableStats {
  std::size_t lookups = 0;
  std::size_t hits = 0;
  std::size_t builds = 0;
  /// Stores that displaced a live table for a *different* destination.
  std::size_t evictions = 0;
};

class LayerTable {
 public:
  /// One destination's distance table, immutable once built. Safe to read
  /// from any number of threads; keeps itself alive past eviction.
  class View {
   public:
    std::uint64_t destination() const { return destination_; }

    /// D(rank, destination) in the table's network.
    int distance(std::uint64_t rank) const {
      DBN_ASSERT(rank < dist_.size(), "layer view rank out of range");
      return dist_[rank];
    }

    /// The layer trichotomy for one neighbor of `from_rank` — the O(1)
    /// deflection decision: two loads and a compare.
    DistanceLayer classify(std::uint64_t from_rank,
                           std::uint64_t neighbor_rank) const {
      DBN_ASSERT(from_rank < dist_.size() && neighbor_rank < dist_.size(),
                 "layer classify rank out of range");
      const std::uint8_t here = dist_[from_rank];
      const std::uint8_t there = dist_[neighbor_rank];
      if (there < here) {
        return DistanceLayer::Closer;
      }
      return there == here ? DistanceLayer::Same : DistanceLayer::Farther;
    }

   private:
    friend class LayerTable;
    std::uint64_t destination_ = 0;
    std::vector<std::uint8_t> dist_;
  };

  /// Tables over DG(d,k); the orientation picks the distance function
  /// (Property 1 directed, Theorem 2 undirected).
  explicit LayerTable(const DeBruijnGraph& graph,
                      const LayerTableOptions& options = {});

  /// Tables over the Kautz digraph K(d,k) (directed distance).
  explicit LayerTable(const KautzGraph& graph,
                      const LayerTableOptions& options = {});

  LayerTable(const LayerTable&) = delete;
  LayerTable& operator=(const LayerTable&) = delete;

  std::uint64_t vertex_count() const { return n_; }

  /// The distance table for destination `y`, built on first use and cached.
  /// Thread-safe; the returned view stays valid after eviction.
  std::shared_ptr<const View> view(const Word& y);

  /// Convenience triple form of the primitive: pins y's view, classifies
  /// one neighbor of x. Routers doing one walk should hold view(y) instead.
  DistanceLayer classify(const Word& x, const Word& y, const Word& neighbor);

  LayerTableStats stats() const;

 private:
  enum class Family : std::uint8_t {
    DeBruijnDirected,
    DeBruijnUndirected,
    Kautz,
  };

  struct Shard {
    Mutex mutex;
    // Sized once by init_cache; the lock guards the slot pointers. Readers
    // copy the shared_ptr under the lock and then use the pinned immutable
    // View lock-free — the intentional pattern the header comment
    // describes, and one the analysis verifies rather than exempts
    // (no field of View is guarded; only the slot pointer is).
    std::vector<std::shared_ptr<const View>> slots DBN_GUARDED_BY(mutex);
  };

  void init_cache(const LayerTableOptions& options);
  std::uint64_t rank_of(const Word& w) const;
  std::shared_ptr<const View> build_view(std::uint64_t destination) const;

  Family family_;
  std::uint64_t n_ = 0;
  // Exactly one is engaged, per family (both graph types are a handful of
  // scalars; keeping copies makes the table self-contained).
  std::unique_ptr<DeBruijnGraph> graph_;
  std::unique_ptr<KautzGraph> kautz_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t slots_per_shard_ = 0;
  std::atomic<std::size_t> lookups_{0};
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> builds_{0};
  std::atomic<std::size_t> evictions_{0};
  // Global-registry mirrors (schema.hpp metric names); builds/evictions are
  // per-destination-rare, lookups/hits once per walk — all off the per-hop
  // path, which is pure View reads.
  obs::Counter metrics_lookups_;
  obs::Counter metrics_hits_;
  obs::Counter metrics_builds_;
  obs::Counter metrics_evictions_;
};

}  // namespace dbn
