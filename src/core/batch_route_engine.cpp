#include "core/batch_route_engine.hpp"

#include <algorithm>
#include <optional>

#include "common/contract.hpp"
#include "common/thread_pool.hpp"
#include "core/distance.hpp"
#include "core/routers.hpp"
#include "core/routing_table.hpp"
#include "obs/trace.hpp"

namespace dbn {

std::string_view batch_backend_name(BatchBackend backend) {
  switch (backend) {
    case BatchBackend::Alg1Directed:
      return "alg1-directed";
    case BatchBackend::BidiEngine:
      return "bidi-engine";
    case BatchBackend::BidiSuffixTree:
      return "bidi-suffix-tree";
    case BatchBackend::CompiledTable:
      return "compiled-table";
  }
  DBN_ASSERT(false, "unknown batch backend");
  return "";
}

BatchRouteEngine::BatchRouteEngine(std::uint32_t d, std::size_t k,
                                   const BatchRouteOptions& options)
    : d_(d), k_(k), options_(options) {
  DBN_REQUIRE(d_ >= 1, "batch engine needs radix >= 1");
  DBN_REQUIRE(k_ >= 1, "batch engine needs k >= 1");
  pool_ = std::make_unique<ThreadPool>(options_.threads);
  scratch_.reserve(pool_->thread_count());
  const SideKernelFallback fallback =
      options_.backend == BatchBackend::BidiSuffixTree
          ? SideKernelFallback::SuffixTree
          : SideKernelFallback::MpScan;
  for (std::size_t i = 0; i < pool_->thread_count(); ++i) {
    scratch_.push_back(std::make_unique<Scratch>(k_, fallback));
  }
  if (options_.backend == BatchBackend::CompiledTable) {
    // The table answers for the undirected network, matching the other
    // bi-directional backends (and the RoutingTable's own N cap applies).
    graph_ = std::make_unique<DeBruijnGraph>(d_, k_, Orientation::Undirected);
    table_ = std::make_unique<RoutingTable>(*graph_);
  }
  if (options_.cache_entries > 0) {
    const std::size_t shard_count = std::max<std::size_t>(
        1, std::min(options_.cache_shards, options_.cache_entries));
    const std::size_t per_shard =
        (options_.cache_entries + shard_count - 1) / shard_count;
    shards_.reserve(shard_count);
    for (std::size_t i = 0; i < shard_count; ++i) {
      auto shard = std::make_unique<CacheShard>();
      // Pre-publication, but lock anyway: one uncontended acquisition per
      // shard keeps the sizing write inside the checked discipline.
      {
        const MutexLock lock(shard->mutex);
        shard->entries.resize(per_shard);
      }
      shards_.push_back(std::move(shard));
    }
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  metrics_queries_ = registry.counter("batch.queries");
  metrics_cache_lookups_ = registry.counter("batch.cache_lookups");
  metrics_cache_hits_ = registry.counter("batch.cache_hits");
  metrics_cache_evictions_ = registry.counter("batch.cache_evictions");
  metrics_batches_ = registry.counter("batch.runs");
}

BatchRouteEngine::~BatchRouteEngine() = default;

std::size_t BatchRouteEngine::thread_count() const {
  return pool_->thread_count();
}

void BatchRouteEngine::validate(const RouteQuery& query) const {
  DBN_REQUIRE(query.x.radix() == d_ && query.y.radix() == d_,
              "query words must use the engine's radix");
  DBN_REQUIRE(query.x.length() == k_ && query.y.length() == k_,
              "query words must have the engine's length k");
}

std::uint64_t BatchRouteEngine::pair_hash(const Word& x, const Word& y) {
  const std::size_t hx = std::hash<Word>{}(x);
  const std::size_t hy = std::hash<Word>{}(y);
  // Asymmetric mix so (X, Y) and (Y, X) land in different slots.
  std::uint64_t h = static_cast<std::uint64_t>(hx) * 0x9e3779b97f4a7c15ull;
  h ^= static_cast<std::uint64_t>(hy) + 0xbf58476d1ce4e5b9ull + (h << 6) +
       (h >> 2);
  return h;
}

bool BatchRouteEngine::cache_lookup(std::uint64_t hash, const Word& x,
                                    const Word& y, RoutingPath& out) {
  // memory_order_relaxed: pure statistics counters, read only after
  // parallel_for's join (which is the synchronization point).
  cache_lookups_.fetch_add(1, std::memory_order_relaxed);
  CacheShard& shard = *shards_[hash % shards_.size()];
  const MutexLock lock(shard.mutex);
  const std::size_t slot = (hash / shards_.size()) % shard.entries.size();
  const CacheEntry& entry = shard.entries[slot];
  if (entry.filled && entry.hash == hash && entry.x == x && entry.y == y) {
    out = entry.path;
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void BatchRouteEngine::cache_store(std::uint64_t hash, const Word& x,
                                   const Word& y, const RoutingPath& path) {
  CacheShard& shard = *shards_[hash % shards_.size()];
  const MutexLock lock(shard.mutex);
  const std::size_t slot = (hash / shards_.size()) % shard.entries.size();
  CacheEntry& entry = shard.entries[slot];
  if (entry.filled &&
      !(entry.hash == hash && entry.x == x && entry.y == y)) {
    cache_evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  entry.filled = true;
  entry.hash = hash;
  entry.x = x;
  entry.y = y;
  entry.path = path;
}

void BatchRouteEngine::compute_route(const RouteQuery& query, Scratch& scratch,
                                     RoutingPath& out) const {
  switch (options_.backend) {
    case BatchBackend::Alg1Directed:
      out = route_unidirectional(query.x, query.y);
      return;
    case BatchBackend::BidiEngine:
    case BatchBackend::BidiSuffixTree:
      // Both bi-directional backends run in the per-worker engine arena;
      // the suffix-tree variant only differs in the engine's scalar
      // fallback kernel (and allocates nothing per query when (d, k)
      // packs into a lane).
      scratch.engine.route_into(query.x, query.y, options_.wildcard_mode, out);
      return;
    case BatchBackend::CompiledTable: {
      out = RoutingPath{};
      std::uint64_t at = query.x.rank();
      const std::uint64_t dst = query.y.rank();
      const std::size_t bound = 2 * k_ + 2;  // > diameter: loop guard
      while (at != dst) {
        DBN_ASSERT(out.length() <= bound, "table walk failed to converge");
        const Hop hop = table_->next_hop(at, dst);
        out.push(hop);
        at = hop.type == ShiftType::Left
                 ? graph_->left_shift_rank(at, hop.digit)
                 : graph_->right_shift_rank(at, hop.digit);
      }
      return;
    }
  }
  DBN_ASSERT(false, "unknown batch backend");
}

int BatchRouteEngine::compute_distance(const RouteQuery& query,
                                       Scratch& scratch) const {
  switch (options_.backend) {
    case BatchBackend::Alg1Directed:
      return directed_distance(query.x, query.y);
    case BatchBackend::BidiEngine:
    case BatchBackend::BidiSuffixTree:
      return scratch.engine.distance(query.x, query.y);
    case BatchBackend::CompiledTable:
      return table_->walk_length(query.x.rank(), query.y.rank());
  }
  DBN_ASSERT(false, "unknown batch backend");
  return -1;
}

void BatchRouteEngine::route_batch_into(const std::vector<RouteQuery>& queries,
                                        std::vector<RoutingPath>& out) {
  out.resize(queries.size());
  cache_lookups_.store(0, std::memory_order_relaxed);
  cache_hits_.store(0, std::memory_order_relaxed);
  cache_evictions_.store(0, std::memory_order_relaxed);
  // When a sink is registered each chunk runs on its worker's lane and is
  // bracketed by a wall-clock span, making the pool's parallelism visible
  // as per-worker tracks in the Chrome export. When off: one branch.
  const bool traced = obs::tracing_enabled();
  obs::Span batch_span;
  if (traced) {
    batch_span = obs::Span::begin("route_batch", "batch",
                                  obs::TraceClock::Wall, obs::wall_ts_micros());
    batch_span.arg(obs::targ("backend", batch_backend_name(options_.backend)))
        .arg(obs::targ("queries", static_cast<std::uint64_t>(queries.size())))
        .arg(obs::targ("threads",
                       static_cast<std::uint64_t>(pool_->thread_count())));
  }
  pool_->parallel_for(
      queries.size(), options_.chunk,
      [this, traced, &queries, &out](std::size_t begin, std::size_t end,
                                     std::size_t worker) {
        Scratch& scratch = *scratch_[worker];
        obs::Span chunk_span;
        std::unique_ptr<obs::LaneScope> lane;
        if (traced) {
          lane = std::make_unique<obs::LaneScope>(worker);
          chunk_span = obs::Span::begin("chunk", "batch", obs::TraceClock::Wall,
                                        obs::wall_ts_micros());
          chunk_span.arg(obs::targ("begin", static_cast<std::uint64_t>(begin)))
              .arg(obs::targ("end", static_cast<std::uint64_t>(end)))
              .arg(obs::targ("worker", static_cast<std::uint64_t>(worker)));
        }
        std::optional<obs::TraceSuppressScope> suppress;
        if (!options_.trace_routes) {
          suppress.emplace();  // on this worker, for this chunk only
        }
        for (std::size_t i = begin; i < end; ++i) {
          const RouteQuery& query = queries[i];
          validate(query);
          if (!shards_.empty()) {
            const std::uint64_t hash = pair_hash(query.x, query.y);
            if (cache_lookup(hash, query.x, query.y, out[i])) {
              continue;
            }
            compute_route(query, scratch, out[i]);
            cache_store(hash, query.x, query.y, out[i]);
          } else {
            compute_route(query, scratch, out[i]);
          }
        }
        if (chunk_span) {
          chunk_span.end(obs::wall_ts_micros());
        }
      });
  if (batch_span) {
    batch_span.end(obs::wall_ts_micros());
  }
  stats_ = BatchStats{queries.size(),
                      cache_lookups_.load(std::memory_order_relaxed),
                      cache_hits_.load(std::memory_order_relaxed),
                      cache_evictions_.load(std::memory_order_relaxed),
                      pool_->thread_count()};
  metrics_batches_.inc();
  metrics_queries_.inc(stats_.queries);
  metrics_cache_lookups_.inc(stats_.cache_lookups);
  metrics_cache_hits_.inc(stats_.cache_hits);
  metrics_cache_evictions_.inc(stats_.cache_evictions);
}

std::vector<RoutingPath> BatchRouteEngine::route_batch(
    const std::vector<RouteQuery>& queries) {
  std::vector<RoutingPath> out;
  route_batch_into(queries, out);
  return out;
}

std::vector<int> BatchRouteEngine::distance_batch(
    const std::vector<RouteQuery>& queries) {
  std::vector<int> out(queries.size(), -1);
  pool_->parallel_for(
      queries.size(), options_.chunk,
      [this, &queries, &out](std::size_t begin, std::size_t end,
                             std::size_t worker) {
        Scratch& scratch = *scratch_[worker];
        std::optional<obs::TraceSuppressScope> suppress;
        if (!options_.trace_routes) {
          suppress.emplace();
        }
        for (std::size_t i = begin; i < end; ++i) {
          validate(queries[i]);
          out[i] = compute_distance(queries[i], scratch);
        }
      });
  stats_ = BatchStats{queries.size(), 0, 0, 0, pool_->thread_count()};
  metrics_batches_.inc();
  metrics_queries_.inc(stats_.queries);
  return out;
}

RoutingPath BatchRouteEngine::route_one(const Word& x, const Word& y) {
  const RouteQuery query{x, y};
  validate(query);
  RoutingPath out;
  Scratch& scratch = *scratch_[0];
  if (!shards_.empty()) {
    const std::uint64_t hash = pair_hash(x, y);
    if (cache_lookup(hash, x, y, out)) {
      return out;
    }
    compute_route(query, scratch, out);
    cache_store(hash, x, y, out);
    return out;
  }
  compute_route(query, scratch, out);
  return out;
}

}  // namespace dbn
