// The paper's routing algorithms.
//
//  - route_unidirectional: Algorithm 1, O(k) time/space. Left shifts only.
//  - route_bidirectional_mp: Algorithm 2 with Algorithm 3 rows (the O(k)-
//    space variant of Section 3.2), O(k^2) time.
//  - route_bidirectional_suffix_tree: Algorithm 4 (corrected, DESIGN.md
//    §1.1), O(k) time/space.
//
// All routers return a path whose length equals the exact distance D(X,Y)
// of Section 2 and which, applied to X (under any wildcard resolution),
// reaches Y.
#pragma once

#include "core/path.hpp"
#include "core/path_builder.hpp"
#include "debruijn/word.hpp"

namespace dbn {

/// Algorithm 1: shortest path in the uni-directional network DN(d,k).
/// The path consists of k - l left shifts inserting y_{l+1}..y_k, where l
/// is the longest suffix of X that is a prefix of Y (equation (2)).
RoutingPath route_unidirectional(const Word& x, const Word& y);

/// Algorithm 2 (+ Algorithm 3): shortest path in the bi-directional
/// network. O(k^2) time, O(k) space.
RoutingPath route_bidirectional_mp(const Word& x, const Word& y,
                                   WildcardMode mode = WildcardMode::Concrete);

/// Algorithm 4: shortest path in the bi-directional network via suffix
/// trees. O(k) time and space. Produces a path of identical length to
/// route_bidirectional_mp (the minimizers may differ when ties exist).
RoutingPath route_bidirectional_suffix_tree(
    const Word& x, const Word& y, WildcardMode mode = WildcardMode::Concrete);

/// Algorithm 4 with the suffix automaton of X in place of the generalized
/// suffix tree — a third, independently derived O(k) engine for the same
/// Theorem 2 minimum (see strings/suffix_automaton.hpp). Same guarantees.
RoutingPath route_bidirectional_suffix_automaton(
    const Word& x, const Word& y, WildcardMode mode = WildcardMode::Concrete);

}  // namespace dbn
