#include "core/distance.hpp"

#include <algorithm>
#include <cmath>

#include "common/contract.hpp"
#include "core/common_substring.hpp"
#include "strings/failure.hpp"
#include "strings/matching.hpp"
#include "strings/suffix_automaton.hpp"

namespace dbn {

namespace {

void check_pair(const Word& x, const Word& y) {
  DBN_REQUIRE(x.radix() == y.radix() && x.length() == y.length(),
              "distance endpoints must share radix and length");
}

}  // namespace

int directed_distance(const Word& x, const Word& y) {
  check_pair(x, y);
  const int d = static_cast<int>(x.length()) -
                strings::suffix_prefix_overlap(x.symbols(), y.symbols());
  DBN_ENSURE(d >= 0 && d <= static_cast<int>(x.length()),
             "directed distance must lie in [0, k]");
  return d;
}

int undirected_distance_quadratic(const Word& x, const Word& y) {
  check_pair(x, y);
  const int d1 = strings::min_l_cost(x.symbols(), y.symbols()).cost;
  const Word xr = x.reversed();
  const Word yr = y.reversed();
  const int d2 = strings::min_l_cost(xr.symbols(), yr.symbols()).cost;
  return std::min(d1, d2);
}

int undirected_distance(const Word& x, const Word& y) {
  check_pair(x, y);
  // The suffix-automaton kernel: same Theorem 2 minimum as the suffix-tree
  // form of Algorithm 4 (cross-checked continuously in the tests), with
  // the best measured constants of the linear engines (EXPERIMENTS.md A1).
  const int d1 =
      strings::min_l_cost_suffix_automaton(x.symbols(), y.symbols()).cost;
  const Word xr = x.reversed();
  const Word yr = y.reversed();
  const int d2 =
      strings::min_l_cost_suffix_automaton(xr.symbols(), yr.symbols()).cost;
  const int d = std::min(d1, d2);
  // D(X,Y) = min(D1, D2) of Theorem 2; both candidates are bounded by the
  // diameter k, and at audit level the O(k^2) scan must agree.
  DBN_ENSURE(d >= 0 && d <= static_cast<int>(x.length()),
             "undirected distance must lie in [0, k]");
  DBN_AUDIT(d == undirected_distance_quadratic(x, y),
            "linear kernels must agree with the quadratic reference");
  return d;
}

double directed_average_distance_closed_form(std::uint32_t radix,
                                             std::size_t k) {
  DBN_REQUIRE(radix >= 2 && k >= 1, "requires d >= 2, k >= 1");
  const double alpha = 1.0 / static_cast<double>(radix);
  const double alpha_bar = 1.0 - alpha;
  const double alpha_k = std::pow(alpha, static_cast<double>(k));
  return static_cast<double>(k) - (1.0 - alpha_k) * alpha / alpha_bar;
}

std::vector<std::uint64_t> directed_distance_histogram_exact(
    std::uint32_t radix, std::size_t k) {
  const std::uint64_t n = Word::vertex_count(radix, k);
  // Powers d^0..d^k for cylinder sizes.
  std::vector<std::uint64_t> pow(k + 1, 1);
  for (std::size_t e = 1; e <= k; ++e) {
    pow[e] = pow[e - 1] * radix;
  }
  std::vector<std::uint64_t> histogram(k + 1, 0);
  std::vector<Digit> x(k);
  // lcp[i] is reused per source: lcp[i][j] suffix LCPs, computed on the fly.
  for (std::uint64_t rank = 0; rank < n; ++rank) {
    {
      std::uint64_t r = rank;
      for (std::size_t i = k; i-- > 0;) {
        x[i] = static_cast<Digit>(r % radix);
        r /= radix;
      }
    }
    // lcp[i][j]: longest common prefix of the suffixes of x starting at
    // 0-based i and j (O(k^2) dynamic program, diagonal recursion).
    std::vector<std::vector<int>> lcp(k + 1, std::vector<int>(k + 1, 0));
    for (std::size_t i = k; i-- > 0;) {
      for (std::size_t j = k; j-- > 0;) {
        lcp[i][j] = (x[i] == x[j]) ? lcp[i + 1][j + 1] + 1 : 0;
      }
    }
    // For cylinder C_{s'} (Y starts with the length-s' suffix of x),
    // C_{s'} is nested inside C_{s''} (s'' < s') iff the length-s'' suffix
    // of x occurs at the start of the length-s' suffix. m[s'] is the
    // largest such s'' (0 if none).
    std::vector<std::size_t> m(k + 1, 0);
    for (std::size_t sp = 2; sp <= k; ++sp) {
      for (std::size_t spp = sp - 1; spp >= 1; --spp) {
        if (lcp[k - sp][k - spp] >= static_cast<int>(spp)) {
          m[sp] = spp;
          break;
        }
      }
    }
    // cnt_ge[s] = |union over s' >= s of C_{s'}|: cylinder s' contributes
    // iff it is not nested inside any cylinder with index in [s, s'), i.e.
    // iff m[s'] < s.
    std::vector<std::uint64_t> cnt_ge(k + 2, 0);
    cnt_ge[0] = n;  // C_0 is everything
    for (std::size_t s = 1; s <= k; ++s) {
      for (std::size_t sp = s; sp <= k; ++sp) {
        if (m[sp] < s) {
          cnt_ge[s] += pow[k - sp];
        }
      }
    }
    // Distance i corresponds to maximal overlap k - i.
    for (std::size_t i = 0; i <= k; ++i) {
      const std::size_t s = k - i;
      histogram[i] += cnt_ge[s] - cnt_ge[s + 1];
    }
  }
  return histogram;
}

double directed_average_distance_exact(std::uint32_t radix, std::size_t k) {
  const std::vector<std::uint64_t> histogram =
      directed_distance_histogram_exact(radix, k);
  const double n = static_cast<double>(Word::vertex_count(radix, k));
  double total = 0.0;
  for (std::size_t i = 0; i <= k; ++i) {
    total += static_cast<double>(i) * static_cast<double>(histogram[i]);
  }
  return total / (n * n);
}

}  // namespace dbn
