#include "core/route_engine.hpp"

#include <algorithm>

#include "common/contract.hpp"
#include "core/route_trace.hpp"
#include "obs/trace.hpp"

namespace dbn {

BidirectionalRouteEngine::BidirectionalRouteEngine(std::size_t max_k)
    : max_k_(max_k) {
  DBN_REQUIRE(max_k_ >= 1, "engine needs max_k >= 1");
  x_.reserve(max_k_);
  y_.reserve(max_k_);
  xr_.reserve(max_k_);
  yr_.reserve(max_k_);
  border_.reserve(max_k_);
}

strings::OverlapMin BidirectionalRouteEngine::min_l_cost_inplace(
    const std::vector<strings::Symbol>& x,
    const std::vector<strings::Symbol>& y, std::size_t k) {
  // Algorithm 3 rows with the border buffer reused across rows; logic
  // identical to strings::min_l_cost (tested for equality).
  const int ki = static_cast<int>(k);
  strings::OverlapMin best;
  best.cost = 2 * ki;
  for (int i = 1; i <= ki; ++i) {
    const std::size_t i0 = static_cast<std::size_t>(i - 1);
    const std::size_t m = k - i0;  // pattern length
    border_.assign(m, 0);
    int q = 0;
    for (std::size_t idx = 1; idx < m; ++idx) {
      while (q > 0 && x[i0 + static_cast<std::size_t>(q)] != x[i0 + idx]) {
        q = border_[static_cast<std::size_t>(q) - 1];
      }
      if (x[i0 + static_cast<std::size_t>(q)] == x[i0 + idx]) {
        ++q;
      }
      border_[idx] = q;
    }
    q = 0;
    for (int j = 1; j <= ki; ++j) {
      const strings::Symbol c = y[static_cast<std::size_t>(j - 1)];
      if (q == static_cast<int>(m)) {
        q = border_[static_cast<std::size_t>(q) - 1];
      }
      while (q > 0 && x[i0 + static_cast<std::size_t>(q)] != c) {
        q = border_[static_cast<std::size_t>(q) - 1];
      }
      if (x[i0 + static_cast<std::size_t>(q)] == c) {
        ++q;
      }
      const int cost = 2 * ki - 1 + i - j - q;
      if (cost < best.cost) {
        best = strings::OverlapMin{cost, i, j, q};
      }
    }
    // Morris–Pratt failure bounds: a border is a proper prefix, and the
    // match length never exceeds what the pattern row offers.
    DBN_AUDIT(std::all_of(border_.begin(), border_.end(),
                          [n = 0](int b) mutable { return b <= n++; }),
              "border array entries must be proper-prefix lengths");
  }
  DBN_ASSERT(best.cost <= ki, "l-side minimum must not exceed the diameter");
  // Theorem 2 witness validity: the minimizer must be in range, reproduce
  // its own cost, and (audit level) actually match the θ-length block
  // x_s..x_{s+θ-1} = y_{t-θ+1}..y_t it claims.
  DBN_ENSURE(best.s >= 1 && best.s <= ki && best.t >= 1 && best.t <= ki &&
                 best.theta >= 0 && best.theta <= best.t &&
                 best.theta <= ki - best.s + 1,
             "l-side witness (s, t, theta) out of range");
  DBN_ENSURE(best.cost == 2 * ki - 1 + best.s - best.t - best.theta,
             "l-side witness does not reproduce its cost");
  DBN_AUDIT(
      [&] {
        for (int m = 0; m < best.theta; ++m) {
          if (x[static_cast<std::size_t>(best.s - 1 + m)] !=
              y[static_cast<std::size_t>(best.t - best.theta + m)]) {
            return false;
          }
        }
        return true;
      }(),
      "l-side witness block does not match");
  return best;
}

int BidirectionalRouteEngine::distance(const Word& x, const Word& y) {
  DBN_REQUIRE(x.radix() == y.radix() && x.length() == y.length(),
              "distance endpoints must share radix and length");
  const std::size_t k = x.length();
  DBN_REQUIRE(k <= max_k_, "word longer than the engine's max_k");
  x_.assign(x.symbols().begin(), x.symbols().end());
  y_.assign(y.symbols().begin(), y.symbols().end());
  xr_.assign(x.symbols().rbegin(), x.symbols().rend());
  yr_.assign(y.symbols().rbegin(), y.symbols().rend());
  const int d1 = min_l_cost_inplace(x_, y_, k).cost;
  const int d2 = min_l_cost_inplace(xr_, yr_, k).cost;
  const int d = std::min(d1, d2);
  DBN_ENSURE(d >= 0 && d <= static_cast<int>(k),
             "undirected distance must lie in [0, k]");
  return d;
}

void BidirectionalRouteEngine::route_into(const Word& x, const Word& y,
                                          WildcardMode mode,
                                          RoutingPath& out) {
  DBN_REQUIRE(x.radix() == y.radix() && x.length() == y.length(),
              "route endpoints must share radix and length");
  const std::size_t k = x.length();
  DBN_REQUIRE(k <= max_k_, "word longer than the engine's max_k");
  x_.assign(x.symbols().begin(), x.symbols().end());
  y_.assign(y.symbols().begin(), y.symbols().end());
  xr_.assign(x.symbols().rbegin(), x.symbols().rend());
  yr_.assign(y.symbols().rbegin(), y.symbols().rend());
  const strings::OverlapMin l_side = min_l_cost_inplace(x_, y_, k);
  const strings::OverlapMin r_side = r_side_from_reversed(
      static_cast<int>(k), min_l_cost_inplace(xr_, yr_, k));
  const BidiPlan plan = make_bidi_plan(static_cast<int>(k), l_side, r_side);
  // Emit hops directly (same shapes as build_bidi_path, minus allocation).
  out.clear();
  const Digit arbitrary = (mode == WildcardMode::Wildcards) ? kWildcard : 0;
  const auto yd = [&y](int i) {
    return y.digit(static_cast<std::size_t>(i - 1));
  };
  const int ki = static_cast<int>(k);
  switch (plan.shape) {
    case BidiPlan::Shape::Trivial:
      for (int i = 1; i <= ki; ++i) {
        out.push({ShiftType::Left, yd(i)});
      }
      break;
    case BidiPlan::Shape::LeftBlock:
      for (int i = 0; i < plan.s - 1; ++i) {
        out.push({ShiftType::Left, arbitrary});
      }
      for (int i = plan.t - plan.theta; i >= 1; --i) {
        out.push({ShiftType::Right, yd(i)});
      }
      for (int i = 0; i < ki - plan.t; ++i) {
        out.push({ShiftType::Right, arbitrary});
      }
      for (int i = plan.t + 1; i <= ki; ++i) {
        out.push({ShiftType::Left, yd(i)});
      }
      break;
    case BidiPlan::Shape::RightBlock:
      for (int i = 0; i < ki - plan.s; ++i) {
        out.push({ShiftType::Right, arbitrary});
      }
      for (int i = plan.t + plan.theta; i <= ki; ++i) {
        out.push({ShiftType::Left, yd(i)});
      }
      for (int i = 0; i < plan.t - 1; ++i) {
        out.push({ShiftType::Left, arbitrary});
      }
      for (int i = plan.t - 1; i >= 1; --i) {
        out.push({ShiftType::Right, yd(i)});
      }
      break;
  }
  DBN_ASSERT(static_cast<int>(out.length()) == plan.distance,
             "constructed path length must equal the planned distance");
  // Theorem 2 promises the path reaches y under *any* wildcard resolution;
  // walking it with the zero resolver is a sound spot-check.
  DBN_AUDIT(out.apply(x) == y, "constructed path must reach the destination");
  if (obs::tracing_enabled()) {
    trace_bidi_route("bidi-engine", x, y, plan, out);
  }
}

}  // namespace dbn
