#include "core/route_engine.hpp"

#include <algorithm>

#include "common/contract.hpp"
#include "core/common_substring.hpp"
#include "core/route_trace.hpp"
#include "obs/trace.hpp"
#include "strings/packed.hpp"

namespace dbn {

BidirectionalRouteEngine::BidirectionalRouteEngine(std::size_t max_k,
                                                   SideKernelFallback fallback)
    : max_k_(max_k), fallback_(fallback) {
  DBN_REQUIRE(max_k_ >= 1, "engine needs max_k >= 1");
  x_.reserve(max_k_);
  y_.reserve(max_k_);
  xr_.reserve(max_k_);
  yr_.reserve(max_k_);
  border_.reserve(max_k_);
}

std::string_view BidirectionalRouteEngine::trace_algo() const {
  return fallback_ == SideKernelFallback::MpScan ? "bidi-engine"
                                                 : "bidi-suffix-tree";
}

bool BidirectionalRouteEngine::packed_minima(const Word& x, const Word& y,
                                             strings::OverlapMin& l_side,
                                             strings::OverlapMin& r_side) {
  const std::uint32_t d = x.radix();
  const std::size_t k = x.length();
  if (!strings::packable(d, k)) {
    return false;
  }
  // Two packs (the reversed lanes are O(log) cell reversals of the
  // forward ones) plus two pruned offset sweeps replace the two O(k^2)
  // Algorithm 3 scans. The r-side runs on the reversed words and maps
  // back through the same reduction the scalar path uses; it sweeps
  // against the l-side incumbent, which is sound because the route only
  // needs the winning side's witness (see min_l_cost_packed_bounded).
  const strings::PackedBuf px = strings::pack_word(x.symbols(), d);
  const strings::PackedBuf py = strings::pack_word(y.symbols(), d);
  l_side = strings::min_l_cost_packed(px, py);
  r_side = r_side_from_reversed(
      static_cast<int>(k),
      strings::min_l_cost_packed_bounded(strings::reverse_cells(px),
                                         strings::reverse_cells(py),
                                         l_side.cost));
  return true;
}

strings::OverlapMin BidirectionalRouteEngine::side_min_scalar(
    const std::vector<strings::Symbol>& x,
    const std::vector<strings::Symbol>& y, std::size_t k) {
  if (fallback_ == SideKernelFallback::SuffixTree) {
    return min_l_cost_suffix_tree(x, y);
  }
  return min_l_cost_inplace(x, y, k);
}

strings::OverlapMin BidirectionalRouteEngine::min_l_cost_inplace(
    const std::vector<strings::Symbol>& x,
    const std::vector<strings::Symbol>& y, std::size_t k) {
  // Algorithm 3 rows with the border buffer reused across rows; logic
  // identical to strings::min_l_cost (tested for equality).
  const int ki = static_cast<int>(k);
  strings::OverlapMin best;
  best.cost = 2 * ki;
  for (int i = 1; i <= ki; ++i) {
    const std::size_t i0 = static_cast<std::size_t>(i - 1);
    const std::size_t m = k - i0;  // pattern length
    border_.assign(m, 0);
    int q = 0;
    for (std::size_t idx = 1; idx < m; ++idx) {
      while (q > 0 && x[i0 + static_cast<std::size_t>(q)] != x[i0 + idx]) {
        q = border_[static_cast<std::size_t>(q) - 1];
      }
      if (x[i0 + static_cast<std::size_t>(q)] == x[i0 + idx]) {
        ++q;
      }
      border_[idx] = q;
    }
    q = 0;
    for (int j = 1; j <= ki; ++j) {
      const strings::Symbol c = y[static_cast<std::size_t>(j - 1)];
      if (q == static_cast<int>(m)) {
        q = border_[static_cast<std::size_t>(q) - 1];
      }
      while (q > 0 && x[i0 + static_cast<std::size_t>(q)] != c) {
        q = border_[static_cast<std::size_t>(q) - 1];
      }
      if (x[i0 + static_cast<std::size_t>(q)] == c) {
        ++q;
      }
      const int cost = 2 * ki - 1 + i - j - q;
      if (cost < best.cost) {
        best = strings::OverlapMin{cost, i, j, q};
      }
    }
    // Morris–Pratt failure bounds: a border is a proper prefix, and the
    // match length never exceeds what the pattern row offers.
    DBN_AUDIT(std::all_of(border_.begin(), border_.end(),
                          [n = 0](int b) mutable { return b <= n++; }),
              "border array entries must be proper-prefix lengths");
  }
  DBN_ASSERT(best.cost <= ki, "l-side minimum must not exceed the diameter");
  // Theorem 2 witness validity: the minimizer must be in range, reproduce
  // its own cost, and (audit level) actually match the θ-length block
  // x_s..x_{s+θ-1} = y_{t-θ+1}..y_t it claims.
  DBN_ENSURE(best.s >= 1 && best.s <= ki && best.t >= 1 && best.t <= ki &&
                 best.theta >= 0 && best.theta <= best.t &&
                 best.theta <= ki - best.s + 1,
             "l-side witness (s, t, theta) out of range");
  DBN_ENSURE(best.cost == 2 * ki - 1 + best.s - best.t - best.theta,
             "l-side witness does not reproduce its cost");
  DBN_AUDIT(
      [&] {
        for (int m = 0; m < best.theta; ++m) {
          if (x[static_cast<std::size_t>(best.s - 1 + m)] !=
              y[static_cast<std::size_t>(best.t - best.theta + m)]) {
            return false;
          }
        }
        return true;
      }(),
      "l-side witness block does not match");
  return best;
}

int BidirectionalRouteEngine::distance(const Word& x, const Word& y) {
  DBN_REQUIRE(x.radix() == y.radix() && x.length() == y.length(),
              "distance endpoints must share radix and length");
  const std::size_t k = x.length();
  DBN_REQUIRE(k <= max_k_, "word longer than the engine's max_k");
  strings::OverlapMin l_side;
  strings::OverlapMin r_side;
  if (!packed_minima(x, y, l_side, r_side)) {
    x_.assign(x.symbols().begin(), x.symbols().end());
    y_.assign(y.symbols().begin(), y.symbols().end());
    xr_.assign(x.symbols().rbegin(), x.symbols().rend());
    yr_.assign(y.symbols().rbegin(), y.symbols().rend());
    l_side = side_min_scalar(x_, y_, k);
    r_side = r_side_from_reversed(static_cast<int>(k),
                                  side_min_scalar(xr_, yr_, k));
  }
  const int d = std::min(l_side.cost, r_side.cost);
  DBN_ENSURE(d >= 0 && d <= static_cast<int>(k),
             "undirected distance must lie in [0, k]");
  return d;
}

void BidirectionalRouteEngine::route_into(const Word& x, const Word& y,
                                          WildcardMode mode,
                                          RoutingPath& out) {
  DBN_REQUIRE(x.radix() == y.radix() && x.length() == y.length(),
              "route endpoints must share radix and length");
  const std::size_t k = x.length();
  DBN_REQUIRE(k <= max_k_, "word longer than the engine's max_k");
  strings::OverlapMin l_side;
  strings::OverlapMin r_side;
  if (!packed_minima(x, y, l_side, r_side)) {
    x_.assign(x.symbols().begin(), x.symbols().end());
    y_.assign(y.symbols().begin(), y.symbols().end());
    xr_.assign(x.symbols().rbegin(), x.symbols().rend());
    yr_.assign(y.symbols().rbegin(), y.symbols().rend());
    l_side = side_min_scalar(x_, y_, k);
    r_side = r_side_from_reversed(static_cast<int>(k),
                                  side_min_scalar(xr_, yr_, k));
  }
  const BidiPlan plan = make_bidi_plan(static_cast<int>(k), l_side, r_side);
  build_bidi_path_into(x, y, plan, mode, out);
  if (obs::tracing_enabled()) {
    trace_bidi_route(trace_algo(), x, y, plan, out);
  }
}

}  // namespace dbn
