// Shortest-path counting: how many optimal routes exist between two sites.
//
// The paper's wildcard remark is about freedom *within* one optimal path
// shape; this measures the freedom across all optimal paths — the route
// diversity a balancing or fault-recovery layer can actually use
// (bench_path_diversity quantifies it).
#pragma once

#include <cstdint>
#include <vector>

#include "debruijn/graph.hpp"

namespace dbn {

/// Number of distinct shortest paths from src to dst (counting vertex
/// sequences). BFS-layered dynamic program, O(N d) per source. Counts can
/// be large but fit 64 bits comfortably for the sizes this library
/// enumerates (counts are bounded by (2d)^k).
std::uint64_t count_shortest_paths(const DeBruijnGraph& graph,
                                   std::uint64_t src, std::uint64_t dst);

/// All counts from one source (index = destination rank), one BFS+DP.
std::vector<std::uint64_t> count_shortest_paths_from(
    const DeBruijnGraph& graph, std::uint64_t src);

/// Mean number of shortest paths over ordered pairs with src != dst.
/// O(N^2 d): enumerate-only.
double mean_shortest_path_count(const DeBruijnGraph& graph);

}  // namespace dbn
