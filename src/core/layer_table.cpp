#include "core/layer_table.hpp"

#include <algorithm>

#include "common/schema.hpp"
#include "core/distance.hpp"
#include "debruijn/kautz_routing.hpp"

namespace dbn {

namespace {

/// splitmix64 finalizer — spreads consecutive destination ranks across
/// shards and slots.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::string_view layer_name(DistanceLayer layer) {
  switch (layer) {
    case DistanceLayer::Closer:
      return "closer";
    case DistanceLayer::Same:
      return "same";
    case DistanceLayer::Farther:
      return "farther";
  }
  return "?";
}

LayerTable::LayerTable(const DeBruijnGraph& graph,
                       const LayerTableOptions& options)
    : family_(graph.orientation() == Orientation::Directed
                  ? Family::DeBruijnDirected
                  : Family::DeBruijnUndirected),
      n_(graph.vertex_count()),
      graph_(std::make_unique<DeBruijnGraph>(graph)) {
  DBN_REQUIRE(n_ <= options.max_vertices,
              "layer table: network too large for dense per-destination "
              "tables");
  // The distance never exceeds the diameter k, and any graph small enough
  // to pass the vertex guard with d >= 2 has k < 64; d = 1 collapses to a
  // single vertex at distance 0. Either way a byte holds every entry.
  DBN_REQUIRE(graph.k() <= 255 || graph.radix() == 1,
              "layer table: diameter does not fit the byte-per-vertex "
              "layout");
  init_cache(options);
}

LayerTable::LayerTable(const KautzGraph& graph, const LayerTableOptions& options)
    : family_(Family::Kautz),
      n_(graph.vertex_count()),
      kautz_(std::make_unique<KautzGraph>(graph)) {
  DBN_REQUIRE(n_ <= options.max_vertices,
              "layer table: network too large for dense per-destination "
              "tables");
  DBN_REQUIRE(graph.k() <= 255 || graph.degree() == 1,
              "layer table: diameter does not fit the byte-per-vertex "
              "layout");
  init_cache(options);
}

void LayerTable::init_cache(const LayerTableOptions& options) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  metrics_lookups_ = registry.counter(schema::metric::kLayerLookups);
  metrics_hits_ = registry.counter(schema::metric::kLayerHits);
  metrics_builds_ = registry.counter(schema::metric::kLayerBuilds);
  metrics_evictions_ = registry.counter(schema::metric::kLayerEvictions);
  if (options.cache_destinations == 0) {
    return;  // uncached: every view() rebuilds
  }
  const std::size_t shard_count = std::max<std::size_t>(options.cache_shards, 1);
  slots_per_shard_ =
      std::max<std::size_t>(options.cache_destinations / shard_count, 1);
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    auto shard = std::make_unique<Shard>();
    // Pre-publication, but lock anyway: one uncontended acquisition per
    // shard keeps the sizing write inside the checked discipline.
    {
      const MutexLock lock(shard->mutex);
      shard->slots.resize(slots_per_shard_);
    }
    shards_.push_back(std::move(shard));
  }
}

std::uint64_t LayerTable::rank_of(const Word& w) const {
  if (family_ == Family::Kautz) {
    return kautz_->rank(w);  // validates the Kautz word shape
  }
  DBN_REQUIRE(w.radix() == graph_->radix() && w.length() == graph_->k(),
              "layer table: word does not belong to this network");
  return w.rank();
}

std::shared_ptr<const LayerTable::View> LayerTable::build_view(
    std::uint64_t destination) const {
  auto view = std::make_shared<View>();
  view->destination_ = destination;
  view->dist_.resize(n_);
  switch (family_) {
    case Family::DeBruijnDirected: {
      const Word y = graph_->word(destination);
      for (std::uint64_t v = 0; v < n_; ++v) {
        view->dist_[v] =
            static_cast<std::uint8_t>(directed_distance(graph_->word(v), y));
      }
      break;
    }
    case Family::DeBruijnUndirected: {
      const Word y = graph_->word(destination);
      for (std::uint64_t v = 0; v < n_; ++v) {
        view->dist_[v] =
            static_cast<std::uint8_t>(undirected_distance(graph_->word(v), y));
      }
      break;
    }
    case Family::Kautz: {
      const Word y = kautz_->word(destination);
      for (std::uint64_t v = 0; v < n_; ++v) {
        view->dist_[v] = static_cast<std::uint8_t>(
            kautz_directed_distance(*kautz_, kautz_->word(v), y));
      }
      break;
    }
  }
  DBN_ENSURE(view->dist_[destination] == 0,
             "layer table: destination must be in layer 0 of itself");
  return view;
}

std::shared_ptr<const LayerTable::View> LayerTable::view(const Word& y) {
  const std::uint64_t destination = rank_of(y);
  lookups_.fetch_add(1, std::memory_order_relaxed);
  metrics_lookups_.inc();
  if (shards_.empty()) {
    builds_.fetch_add(1, std::memory_order_relaxed);
    metrics_builds_.inc();
    return build_view(destination);
  }
  const std::uint64_t h = mix(destination);
  Shard& shard = *shards_[h % shards_.size()];
  const std::size_t slot = (h >> 32) % slots_per_shard_;
  {
    const MutexLock lock(shard.mutex);
    const std::shared_ptr<const View>& cached = shard.slots[slot];
    if (cached != nullptr && cached->destination() == destination) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      metrics_hits_.inc();
      return cached;
    }
  }
  // Build outside the lock: an O(N k) fill must not stall other shard
  // traffic. A racing builder of the same destination produces an
  // identical table; last store wins and both callers hold valid views.
  std::shared_ptr<const View> built = build_view(destination);
  builds_.fetch_add(1, std::memory_order_relaxed);
  metrics_builds_.inc();
  {
    const MutexLock lock(shard.mutex);
    std::shared_ptr<const View>& slot_ref = shard.slots[slot];
    if (slot_ref != nullptr && slot_ref->destination() != destination) {
      evictions_.fetch_add(1, std::memory_order_relaxed);
      metrics_evictions_.inc();
    }
    slot_ref = built;
  }
  return built;
}

DistanceLayer LayerTable::classify(const Word& x, const Word& y,
                                   const Word& neighbor) {
  const std::uint64_t from = rank_of(x);
  const std::uint64_t to = rank_of(neighbor);
  DBN_AUDIT(family_ == Family::Kautz ||
                graph_->has_edge(from, to),
            "layer classify: `neighbor` must be one move from `x`");
  return view(y)->classify(from, to);
}

LayerTableStats LayerTable::stats() const {
  LayerTableStats stats;
  stats.lookups = lookups_.load(std::memory_order_relaxed);
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.builds = builds_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace dbn
