// Route-span emission: turns a computed bi-directional (or Algorithm 1)
// route into one obs::Span whose child events — one per hop — carry the
// shift kind, the inserted digit, and the paper's block segmentation, so a
// trace visibly decomposes into Theorem 2's three blocks
//   LeftBlock:  L^(s-1) R^(k-θ) L^(k-t)   (witness l_{s,t} = θ)
//   RightBlock: R^(k-s) L^(k-θ) R^(t-1)   (witness r_{s,t} = θ)
// or the trivial L^k path. Callers guard with obs::tracing_enabled() so the
// routing hot path pays one branch when tracing is off.
#pragma once

#include <string_view>

#include "core/path.hpp"
#include "core/path_builder.hpp"
#include "debruijn/word.hpp"

namespace dbn {

/// Emits the span for a route produced from `plan` (Logical clock: ts is the
/// hop index). `algo` names the producing router ("bidi-engine",
/// "bidi-mp", "bidi-suffix-tree", "bidi-suffix-automaton", ...).
void trace_bidi_route(std::string_view algo, const Word& x, const Word& y,
                      const BidiPlan& plan, const RoutingPath& path);

/// Same for Algorithm 1's left-shift-only route; `overlap` is the
/// suffix-prefix overlap l that the route skips.
void trace_uni_route(const Word& x, const Word& y, int overlap,
                     const RoutingPath& path);

}  // namespace dbn
