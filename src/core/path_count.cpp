#include "core/path_count.hpp"

#include <deque>

#include "common/contract.hpp"
#include "debruijn/bfs.hpp"

namespace dbn {

std::vector<std::uint64_t> count_shortest_paths_from(
    const DeBruijnGraph& graph, std::uint64_t src) {
  const std::uint64_t n = graph.vertex_count();
  DBN_REQUIRE(src < n, "count_shortest_paths_from: rank out of range");
  std::vector<int> dist(n, -1);
  std::vector<std::uint64_t> count(n, 0);
  std::deque<std::uint64_t> frontier;
  dist[src] = 0;
  count[src] = 1;
  frontier.push_back(src);
  // BFS order processes u before any w with dist[w] > dist[u], so count[u]
  // is final when its outgoing shortest-path-DAG edges are relaxed.
  while (!frontier.empty()) {
    const std::uint64_t u = frontier.front();
    frontier.pop_front();
    for (const std::uint64_t w : graph.neighbors(u)) {
      if (dist[w] == -1) {
        dist[w] = dist[u] + 1;
        frontier.push_back(w);
      }
      if (dist[w] == dist[u] + 1) {
        count[w] += count[u];
      }
    }
  }
  return count;
}

std::uint64_t count_shortest_paths(const DeBruijnGraph& graph,
                                   std::uint64_t src, std::uint64_t dst) {
  DBN_REQUIRE(dst < graph.vertex_count(),
              "count_shortest_paths: rank out of range");
  return count_shortest_paths_from(graph, src)[dst];
}

double mean_shortest_path_count(const DeBruijnGraph& graph) {
  const std::uint64_t n = graph.vertex_count();
  DBN_REQUIRE(n >= 2, "mean over ordered pairs needs at least two vertices");
  double total = 0.0;
  for (std::uint64_t src = 0; src < n; ++src) {
    const auto counts = count_shortest_paths_from(graph, src);
    for (std::uint64_t dst = 0; dst < n; ++dst) {
      if (dst != src) {
        total += static_cast<double>(counts[dst]);
      }
    }
  }
  return total / (static_cast<double>(n) * static_cast<double>(n - 1));
}

}  // namespace dbn
