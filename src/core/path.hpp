// Routing paths in the form the paper's Section 3.1 defines: a sequence of
// pairs (a_i, b_i) where a_i selects the neighbor type (0 = type-L, left
// shift; 1 = type-R, right shift) and b_i the inserted digit. The special
// digit "*" (kWildcard) marks a hop whose digit any forwarding site may
// choose freely — the paper's traffic-balancing remark.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "debruijn/word.hpp"

namespace dbn {

/// The paper's a_i field: which shift the hop performs.
enum class ShiftType : std::uint8_t {
  Left = 0,   // X -> X^-(b): drop head, append b
  Right = 1,  // X -> X^+(b): prepend b, drop tail
};

/// The paper's "*" symbol: the forwarding site picks the digit.
inline constexpr Digit kWildcard = 0xFFFFFFFFu;

/// One element (a, b) of the routing-path field.
struct Hop {
  ShiftType type = ShiftType::Left;
  Digit digit = 0;

  bool is_wildcard() const { return digit == kWildcard; }
  friend bool operator==(const Hop& a, const Hop& b) = default;
};

/// Chooses a digit for a wildcard hop. Receives the index of the hop within
/// the path, its shift type, and the word currently holding the message.
using WildcardResolver =
    std::function<Digit(std::size_t hop_index, ShiftType type, const Word& at)>;

/// Resolver that substitutes 0 for every wildcard.
WildcardResolver zero_resolver();

/// An ordered list of hops from a source towards a destination.
class RoutingPath {
 public:
  RoutingPath() = default;
  explicit RoutingPath(std::vector<Hop> hops) : hops_(std::move(hops)) {}

  std::size_t length() const { return hops_.size(); }
  bool empty() const { return hops_.empty(); }
  const Hop& hop(std::size_t i) const;
  const std::vector<Hop>& hops() const { return hops_; }
  void push(Hop hop) { hops_.push_back(hop); }
  /// Removes all hops but keeps the storage (route_into reuses it).
  void clear() { hops_.clear(); }

  bool has_wildcards() const;

  /// Walks the path from `source`, resolving wildcards with `resolver`
  /// (must be non-null if the path has wildcards; defaults to zeros).
  /// Returns the word reached. Throws if a concrete digit is out of range
  /// for the word's radix.
  Word apply(const Word& source,
             const WildcardResolver& resolver = zero_resolver()) const;

  /// "{(0,1),(1,*),...}" in the paper's notation.
  std::string to_string() const;

  friend bool operator==(const RoutingPath& a, const RoutingPath& b) = default;

 private:
  std::vector<Hop> hops_;
};

}  // namespace dbn
