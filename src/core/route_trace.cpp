#include "core/route_trace.hpp"

#include <array>
#include <string>

#include "obs/trace.hpp"

namespace dbn {

namespace {

using obs::targ;

std::string digit_string(Digit digit) {
  return digit == kWildcard ? std::string("*") : std::to_string(digit);
}

struct Block {
  std::string role;  // e.g. "L^(s-1)"
  int length = 0;
};

/// The three-block decomposition of `plan` (empty blocks kept so the role
/// strings always line up with the paper's formula).
std::array<Block, 3> plan_blocks(int k, const BidiPlan& plan) {
  switch (plan.shape) {
    case BidiPlan::Shape::Trivial:
      return {Block{"L^k", k}, Block{}, Block{}};
    case BidiPlan::Shape::LeftBlock:
      return {Block{"L^(s-1)", plan.s - 1}, Block{"R^(k-theta)", k - plan.theta},
              Block{"L^(k-t)", k - plan.t}};
    case BidiPlan::Shape::RightBlock:
      return {Block{"R^(k-s)", k - plan.s}, Block{"L^(k-theta)", k - plan.theta},
              Block{"R^(t-1)", plan.t - 1}};
  }
  return {};
}

const char* shape_name(BidiPlan::Shape shape) {
  switch (shape) {
    case BidiPlan::Shape::Trivial:
      return "trivial";
    case BidiPlan::Shape::LeftBlock:
      return "left-block";
    case BidiPlan::Shape::RightBlock:
      return "right-block";
  }
  return "?";
}

void emit_hops(obs::Span& span, const RoutingPath& path,
               const std::array<Block, 3>& blocks) {
  std::size_t block_index = 0;
  int remaining = blocks[0].length;
  for (std::size_t i = 0; i < path.hops().size(); ++i) {
    while (remaining == 0 && block_index + 1 < blocks.size()) {
      ++block_index;
      remaining = blocks[block_index].length;
    }
    const Hop& hop = path.hops()[i];
    span.instant(
        "hop", static_cast<double>(i),
        {targ("shift", hop.type == ShiftType::Left ? "L" : "R"),
         targ("digit", digit_string(hop.digit)),
         targ("block", static_cast<std::uint64_t>(block_index + 1)),
         targ("role", blocks[block_index].role)});
    if (remaining > 0) {
      --remaining;
    }
  }
}

}  // namespace

void trace_bidi_route(std::string_view algo, const Word& x, const Word& y,
                      const BidiPlan& plan, const RoutingPath& path) {
  const int k = static_cast<int>(x.length());
  obs::Span span = obs::Span::begin("route", "route", obs::TraceClock::Logical,
                                    0.0);
  if (!span) {
    return;
  }
  span.arg(targ("algo", algo))
      .arg(targ("x", x.to_string()))
      .arg(targ("y", y.to_string()))
      .arg(targ("k", k))
      .arg(targ("shape", shape_name(plan.shape)))
      .arg(targ("distance", plan.distance));
  if (plan.shape != BidiPlan::Shape::Trivial) {
    const char* witness_fn =
        plan.shape == BidiPlan::Shape::LeftBlock ? "l" : "r";
    span.arg(targ("s", plan.s))
        .arg(targ("t", plan.t))
        .arg(targ("theta", plan.theta))
        .arg(targ("witness", std::string(witness_fn) + "[" +
                                 std::to_string(plan.s) + "," +
                                 std::to_string(plan.t) +
                                 "]=" + std::to_string(plan.theta)));
  }
  const std::array<Block, 3> blocks = plan_blocks(k, plan);
  std::string shape_str;
  for (const Block& block : blocks) {
    if (block.length > 0) {
      if (!shape_str.empty()) {
        shape_str += " ";
      }
      shape_str += block.role + "{" + std::to_string(block.length) + "}";
    }
  }
  span.arg(targ("blocks", shape_str));
  emit_hops(span, path, blocks);
  span.end(static_cast<double>(path.length()));
}

void trace_uni_route(const Word& x, const Word& y, int overlap,
                     const RoutingPath& path) {
  obs::Span span = obs::Span::begin("route", "route", obs::TraceClock::Logical,
                                    0.0);
  if (!span) {
    return;
  }
  span.arg(targ("algo", "alg1-directed"))
      .arg(targ("x", x.to_string()))
      .arg(targ("y", y.to_string()))
      .arg(targ("k", static_cast<int>(x.length())))
      .arg(targ("shape", "left-only"))
      .arg(targ("distance", static_cast<std::uint64_t>(path.length())))
      .arg(targ("overlap", overlap))
      .arg(targ("blocks",
                "L^(k-l){" + std::to_string(path.length()) + "}"));
  for (std::size_t i = 0; i < path.hops().size(); ++i) {
    const Hop& hop = path.hops()[i];
    span.instant("hop", static_cast<double>(i),
                 {targ("shift", hop.type == ShiftType::Left ? "L" : "R"),
                  targ("digit", digit_string(hop.digit)),
                  targ("block", std::uint64_t{1}),
                  targ("role", "L^(k-l)")});
  }
  span.end(static_cast<double>(path.length()));
}

}  // namespace dbn
