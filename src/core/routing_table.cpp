#include "core/routing_table.hpp"

#include <deque>

#include "common/contract.hpp"
#include "core/bfs_router.hpp"

namespace dbn {

namespace {
constexpr std::uint32_t kTypeBit = 0x80000000u;
constexpr std::uint32_t kSelf = 0xffffffffu;
}  // namespace

RoutingTable::RoutingTable(const DeBruijnGraph& graph)
    : n_(graph.vertex_count()), radix_(graph.radix()) {
  DBN_REQUIRE(n_ <= (1u << 13),
              "routing table needs O(N^2) memory; N is capped at 8192");
  entries_.assign(n_ * n_, kSelf);
  // One reverse BFS per destination: dist[v] = D(v, dst); the next hop of
  // src is any neighbor one closer. For the undirected graph forward and
  // reverse distances coincide; for the directed graph we BFS on reversed
  // arcs (predecessors of v are its right shifts).
  std::vector<int> dist(n_);
  for (std::uint64_t dst = 0; dst < n_; ++dst) {
    std::fill(dist.begin(), dist.end(), -1);
    std::deque<std::uint64_t> frontier;
    dist[dst] = 0;
    frontier.push_back(dst);
    while (!frontier.empty()) {
      const std::uint64_t v = frontier.front();
      frontier.pop_front();
      if (graph.orientation() == Orientation::Directed) {
        for (Digit c = 0; c < radix_; ++c) {
          const std::uint64_t u = graph.right_shift_rank(v, c);
          if (dist[u] == -1) {
            dist[u] = dist[v] + 1;
            frontier.push_back(u);
          }
        }
      } else {
        for (const std::uint64_t u : graph.neighbors(v)) {
          if (dist[u] == -1) {
            dist[u] = dist[v] + 1;
            frontier.push_back(u);
          }
        }
      }
    }
    for (std::uint64_t src = 0; src < n_; ++src) {
      if (src == dst) {
        continue;
      }
      DBN_ASSERT(dist[src] > 0, "DG(d,k) is (strongly) connected");
      // First improving neighbor, deterministic order.
      bool placed = false;
      for (const std::uint64_t w : graph.neighbors(src)) {
        if (dist[w] == dist[src] - 1) {
          const Hop hop = classify_edge(graph, src, w);
          entries_[src * n_ + dst] =
              (hop.type == ShiftType::Right ? kTypeBit : 0) | hop.digit;
          placed = true;
          break;
        }
      }
      DBN_ASSERT(placed, "some neighbor lies on a shortest path");
    }
  }
}

Hop RoutingTable::next_hop(std::uint64_t src, std::uint64_t dst) const {
  DBN_REQUIRE(src < n_ && dst < n_, "next_hop: rank out of range");
  DBN_REQUIRE(src != dst, "next_hop: already at the destination");
  const std::uint32_t entry = entries_[src * n_ + dst];
  return Hop{(entry & kTypeBit) != 0 ? ShiftType::Right : ShiftType::Left,
             entry & ~kTypeBit};
}

int RoutingTable::walk_length(std::uint64_t src, std::uint64_t dst) const {
  DBN_REQUIRE(src < n_ && dst < n_, "walk_length: rank out of range");
  const std::uint64_t top = n_ / radix_;
  int hops = 0;
  std::uint64_t at = src;
  while (at != dst) {
    DBN_ASSERT(hops <= static_cast<int>(2 * n_), "table walk diverged");
    const Hop hop = next_hop(at, dst);
    at = hop.type == ShiftType::Left
             ? (at % top) * radix_ + hop.digit
             : at / radix_ + static_cast<std::uint64_t>(hop.digit) * top;
    ++hops;
  }
  return hops;
}

std::size_t RoutingTable::memory_bytes() const {
  return entries_.size() * sizeof(std::uint32_t);
}

}  // namespace dbn
