// Shared path construction for the bi-directional routers (the paper's
// Algorithm 2 lines 5-9, reused verbatim by Algorithm 4).
//
// Both routers first compute the two candidate distances of Theorem 2:
//   D1 = min_{i,j} (2k-1 + i - j - l_{i,j}(X,Y))   with minimizer (s1,t1,θ1)
//   D2 = min_{i,j} (2k-1 - i + j - r_{i,j}(X,Y))   with minimizer (s2,t2,θ2)
// and then emit one of three path shapes. The r-side is computed by running
// the l-side machinery on the reversed words, using
//   r_{i,j}(X,Y) = l_{k+1-i, k+1-j}(reverse(X), reverse(Y)).
#pragma once

#include "core/path.hpp"
#include "debruijn/word.hpp"
#include "strings/matching.hpp"

namespace dbn {

/// Whether the arbitrary digits (the paper's u_i / v_i) are emitted as the
/// wildcard "*" (letting forwarding sites balance traffic) or as zeros.
enum class WildcardMode { Concrete, Wildcards };

/// A fully-determined shortest-path recipe for a bi-directional route.
struct BidiPlan {
  enum class Shape {
    Trivial,     // paper line 6: k left shifts inserting y_1..y_k
    LeftBlock,   // paper line 8: L^(s-1) R^(k-θ) L^(k-t), uses l_{s,t} = θ
    RightBlock,  // paper line 9: R^(k-s) L^(k-θ) R^(t-1), uses r_{s,t} = θ
  };
  Shape shape = Shape::Trivial;
  int distance = 0;  // path length == D(X,Y)
  int s = 0, t = 0, theta = 0;  // 1-based minimizer for the chosen side
};

/// Maps a minimizer of the l-side problem on (reverse(X), reverse(Y)) back
/// to an r-side minimizer on (X, Y): s = k+1-s', t = k+1-t', same theta and
/// cost.
strings::OverlapMin r_side_from_reversed(int k, const strings::OverlapMin& rev);

/// Combines the two side minima into a plan, following Algorithm 2's
/// lines 5-9 (trivial path when both candidates equal the diameter k;
/// otherwise the smaller side, ties to the l-side).
BidiPlan make_bidi_plan(int k, const strings::OverlapMin& l_side,
                        const strings::OverlapMin& r_side);

/// Emits the hops for `plan` (paper lines 6/8/9). The arbitrary digits are
/// wildcards or zeros per `mode`. The result has length plan.distance and,
/// applied to x under any wildcard resolution, reaches y.
RoutingPath build_bidi_path(const Word& x, const Word& y, const BidiPlan& plan,
                            WildcardMode mode);

/// Same emission writing into `out` (cleared first) so callers can reuse
/// the path's storage — the allocation-free engines route through this.
void build_bidi_path_into(const Word& x, const Word& y, const BidiPlan& plan,
                          WildcardMode mode, RoutingPath& out);

}  // namespace dbn
