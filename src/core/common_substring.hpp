// Linear-time computation of the Theorem 2 side-minimum via a generalized
// suffix tree — the engine of the paper's Algorithm 4, in the corrected
// formulation (see DESIGN.md §1.1 for why the printed Proposition 5 cannot
// be used as-is).
//
// Derivation. The l-side minimum rewrites over *occurrences*: for every
// common substring W of X and Y with an occurrence starting at p (1-based)
// in X and at q' in Y,
//     i - j - l_{i,j}  at  (i,j) = (p, q'+|W|-1)  contributes  p-q'-2|W|+1,
// and conversely every (i,j) with l_{i,j} = θ >= 1 yields such an occurrence
// with |W| = θ. θ = 0 terms contribute min_{i,j}(2k-1+i-j) = k (at i=1,j=k).
// Hence, over the generalized suffix tree of X·sep1·Y·sep2:
//     D1 = min( k,  min over internal nodes v with leaves from both words
//                   of  2k + minStartX(v) - maxStartY(v) - 2·depth(v) )
// (0-based starts). Node candidates are achievable because any two leaves
// below v share a prefix of length >= depth(v), and dominance along root
// paths (minStartX non-increasing, maxStartY non-decreasing, depth
// increasing) makes truncated matches redundant. One DFS computes all
// aggregates: O(k·log d) time, O(k) space.
#pragma once

#include "strings/matching.hpp"
#include "strings/symbol.hpp"

namespace dbn {

/// Same contract and result semantics as strings::min_l_cost (the O(k^2)
/// Algorithm 3 scan), computed in linear time with a generalized suffix
/// tree. Requires |x| == |y| == k >= 1 and symbols < 2^32 - 2 (two
/// sentinels are appended internally).
strings::OverlapMin min_l_cost_suffix_tree(strings::SymbolView x,
                                           strings::SymbolView y);

/// Length of the longest common substring of a and b (may have different
/// lengths), via the same generalized suffix tree. O(|a|+|b|).
int longest_common_substring_suffix_tree(strings::SymbolView a,
                                         strings::SymbolView b);

/// Packed-first front for the same quantity: the word-parallel offset
/// sweep (strings/packed.hpp) when both words fit a 128-bit lane, the
/// generalized suffix tree otherwise. Same result either way — the packed
/// kernel is differentially tested against both the suffix tree and the
/// naive enumeration.
int longest_common_substring(strings::SymbolView a, strings::SymbolView b);

}  // namespace dbn
