// The single registry of on-disk schema version strings.
//
// Every serialized artifact this repo emits or parses carries a
// "<name>/<version>" tag so offline tooling (scripts/check_trace.py,
// scripts/bench_report.py, corpus replay) can reject files it does not
// understand. House rule, enforced by scripts/dbn_lint.py: the version
// literals live here and nowhere else in src/ or tools/, so bumping a
// format is a one-line diff plus the writers/readers it breaks.
#pragma once

#include <string_view>

namespace dbn::schema {

/// obs NDJSON event stream (obs/trace.hpp, scripts/check_trace.py).
inline constexpr std::string_view kTrace = "trace/1";

/// obs metrics snapshot JSON (obs/metrics.hpp, scripts/bench_report.py).
inline constexpr std::string_view kMetrics = "metrics/1";

/// Chaos scenario text format (testkit/chaos.hpp, tools/dbn_chaos).
inline constexpr std::string_view kChaos = "chaos/1";

/// dbn_bench JSON perf report (tools/dbn_bench, scripts/bench_report.py).
inline constexpr std::string_view kBench = "dbn-bench/1";

/// Serving wire protocol: the length-prefixed binary frames `dbn serve`
/// speaks (serve/protocol.hpp, tools/dbn_loadgen, docs/serving.md).
inline constexpr std::string_view kServe = "serve/1";

/// dbn_loadgen NDJSON result summary (tools/dbn_loadgen,
/// scripts/check_metrics.py reads the server-side metrics instead).
inline constexpr std::string_view kLoadgen = "loadgen/1";

}  // namespace dbn::schema
