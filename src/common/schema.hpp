// The single registry of on-disk schema version strings.
//
// Every serialized artifact this repo emits or parses carries a
// "<name>/<version>" tag so offline tooling (scripts/check_trace.py,
// scripts/bench_report.py, corpus replay) can reject files it does not
// understand. House rule, enforced by scripts/dbn_lint.py: the version
// literals live here and nowhere else in src/ or tools/, so bumping a
// format is a one-line diff plus the writers/readers it breaks.
#pragma once

#include <string_view>

namespace dbn::schema {

/// obs NDJSON event stream (obs/trace.hpp, scripts/check_trace.py).
inline constexpr std::string_view kTrace = "trace/1";

/// obs metrics snapshot JSON (obs/metrics.hpp, scripts/bench_report.py).
inline constexpr std::string_view kMetrics = "metrics/1";

/// Chaos scenario text format (testkit/chaos.hpp, tools/dbn_chaos).
inline constexpr std::string_view kChaos = "chaos/1";

/// dbn_bench JSON perf report (tools/dbn_bench, scripts/bench_report.py).
inline constexpr std::string_view kBench = "dbn-bench/1";

/// Serving wire protocol: the length-prefixed binary frames `dbn serve`
/// speaks (serve/protocol.hpp, tools/dbn_loadgen, docs/serving.md).
inline constexpr std::string_view kServe = "serve/1";

/// dbn_loadgen NDJSON result summary (tools/dbn_loadgen,
/// scripts/check_metrics.py reads the server-side metrics instead).
inline constexpr std::string_view kLoadgen = "loadgen/1";

/// Metrics time-series NDJSON timeline: one header line plus one line per
/// periodic registry sample (obs/live.hpp, scripts/check_metrics.py).
inline constexpr std::string_view kMetricsTs = "metricsts/1";

/// Serve introspection probe document: server config + exact request
/// accounting + embedded metrics snapshot (serve/introspect.hpp,
/// tools/dbn_top, docs/serving.md).
inline constexpr std::string_view kIntrospect = "introspect/1";

/// Registry names for metrics that more than one subsystem reads or
/// writes (emitter in src/, consumers in scripts/ and the bench layer).
/// Single-writer metric names may stay literal at their emission site;
/// these are the shared ones, so renames are a one-line diff here.
namespace metric {

/// Distance-layer table cache (core/layer_table.hpp): destination-view
/// lookups, cache hits, full O(N k) table builds, and direct-mapped
/// evictions of a live destination.
inline constexpr std::string_view kLayerLookups = "layer.lookups";
inline constexpr std::string_view kLayerHits = "layer.hits";
inline constexpr std::string_view kLayerBuilds = "layer.builds";
inline constexpr std::string_view kLayerEvictions = "layer.evictions";

/// Simulator adaptive-forwarding outcomes (net/load_stats.cpp): messages
/// dropped on TTL exhaustion and backward (deflection) moves taken.
inline constexpr std::string_view kSimDroppedTtl = "sim.dropped_ttl";
inline constexpr std::string_view kSimDeflections = "sim.adaptive_deflections";

/// Serving slow-request log (serve/server.cpp): responses whose
/// admit->respond latency crossed the --slow-us threshold.
inline constexpr std::string_view kServeSlowRequests = "serve.slow_requests";

/// Per-connection serving counters (serve/server.cpp, read by the
/// introspect probe and the future per-client quota work): currently
/// connected peers, and the distribution of per-connection request
/// counts observed when each connection closes.
inline constexpr std::string_view kServeConnActive = "serve.conn.active";
inline constexpr std::string_view kServeConnRequests = "serve.conn.requests";

}  // namespace metric

}  // namespace dbn::schema
