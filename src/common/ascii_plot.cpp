#include "common/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/contract.hpp"

namespace dbn {

AsciiPlot::AsciiPlot(std::size_t width, std::size_t height)
    : width_(width), height_(height) {
  DBN_REQUIRE(width_ >= 16 && height_ >= 4, "plot area too small");
}

void AsciiPlot::add_series(PlotSeries series) {
  DBN_REQUIRE(series.xs.size() == series.ys.size(),
              "series must have matching x/y sizes");
  series_.push_back(std::move(series));
}

void AsciiPlot::print(std::ostream& out, const std::string& title) const {
  double min_x = std::numeric_limits<double>::max();
  double max_x = std::numeric_limits<double>::lowest();
  double min_y = std::numeric_limits<double>::max();
  double max_y = std::numeric_limits<double>::lowest();
  bool any = false;
  for (const PlotSeries& s : series_) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      min_x = std::min(min_x, s.xs[i]);
      max_x = std::max(max_x, s.xs[i]);
      min_y = std::min(min_y, s.ys[i]);
      max_y = std::max(max_y, s.ys[i]);
      any = true;
    }
  }
  if (!any) {
    out << "(empty plot)\n";
    return;
  }
  if (max_x == min_x) {
    max_x = min_x + 1;
  }
  if (max_y == min_y) {
    max_y = min_y + 1;
  }
  std::vector<std::string> grid(height_, std::string(width_, ' '));
  for (const PlotSeries& s : series_) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      const double fx = (s.xs[i] - min_x) / (max_x - min_x);
      const double fy = (s.ys[i] - min_y) / (max_y - min_y);
      const auto col = static_cast<std::size_t>(
          std::llround(fx * static_cast<double>(width_ - 1)));
      const auto row = static_cast<std::size_t>(
          std::llround((1.0 - fy) * static_cast<double>(height_ - 1)));
      grid[row][col] = s.glyph;
    }
  }
  if (!title.empty()) {
    out << title << "\n";
  }
  std::ostringstream top_label, bottom_label;
  top_label << std::setprecision(3) << max_y;
  bottom_label << std::setprecision(3) << min_y;
  const std::size_t label_width =
      std::max(top_label.str().size(), bottom_label.str().size());
  for (std::size_t r = 0; r < height_; ++r) {
    std::string label(label_width, ' ');
    if (r == 0) {
      label = top_label.str();
    } else if (r == height_ - 1) {
      label = bottom_label.str();
    }
    out << std::setw(static_cast<int>(label_width)) << label << " |"
        << grid[r] << "\n";
  }
  out << std::string(label_width + 1, ' ') << '+'
      << std::string(width_, '-') << "\n";
  out << std::string(label_width + 2, ' ') << std::setprecision(3) << min_x;
  const std::string max_x_str = [&] {
    std::ostringstream os;
    os << std::setprecision(3) << max_x;
    return os.str();
  }();
  out << std::string(width_ > max_x_str.size() + 4 ? width_ - max_x_str.size() - 1
                                                   : 1,
                     ' ')
      << max_x_str << "\n";
  for (const PlotSeries& s : series_) {
    out << "  " << s.glyph << " = " << s.label << "\n";
  }
}

}  // namespace dbn
