// Capability-annotated mutex wrappers for Clang Thread Safety Analysis.
//
// libstdc++'s std::mutex carries no capability attributes, so guarding a
// field with it is invisible to `-Wthread-safety`. dbn::Mutex is a
// zero-overhead std::mutex wrapper declared as a capability; MutexLock
// and RelockableLock are the scoped guards the analysis understands
// (std::lock_guard / std::unique_lock shapes). Condition-variable waits
// go through std::condition_variable_any, which accepts any BasicLockable
// — RelockableLock qualifies — so waiting code keeps its annotations.
//
// House rules (checked by dbn_lint's mutex-needs-annotation rule and the
// clang -Wthread-safety wall in CI):
//   * concurrent state is guarded by a dbn::Mutex member and every
//     protected field carries DBN_GUARDED_BY(that_mutex_);
//   * critical sections use MutexLock (or RelockableLock when they wait);
//   * helpers called with the lock held are annotated DBN_REQUIRES(m).
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/annotations.hpp"

namespace dbn {

/// A std::mutex the thread-safety analysis can see. Same cost, same
/// semantics; only the type carries capability attributes.
class DBN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DBN_ACQUIRE() { impl_.lock(); }
  void unlock() DBN_RELEASE() { impl_.unlock(); }
  bool try_lock() DBN_TRY_ACQUIRE(true) { return impl_.try_lock(); }

  /// The wrapped mutex, for interop that needs the std type. Bypasses the
  /// analysis — prefer MutexLock/RelockableLock.
  std::mutex& native() DBN_RETURN_CAPABILITY(this) { return impl_; }

 private:
  std::mutex impl_;  // dbn-lint: allow(mutex-needs-annotation) the capability wrapper itself; guarded state hangs off the enclosing dbn::Mutex
};

/// std::lock_guard over dbn::Mutex (scoped capability: the analysis
/// tracks the acquire in the constructor and the release in the
/// destructor).
class DBN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) DBN_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() DBN_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// std::unique_lock over dbn::Mutex: relockable, so it satisfies
/// BasicLockable and can be handed to std::condition_variable_any::wait
/// (which unlocks/relocks internally — the analysis models the capability
/// as continuously held across the wait, which is exactly the invariant
/// the guarded fields rely on at the wait's observable points).
class DBN_SCOPED_CAPABILITY RelockableLock {
 public:
  explicit RelockableLock(Mutex& mutex) DBN_ACQUIRE(mutex)
      : mutex_(mutex), held_(true) {
    mutex_.lock();
  }
  ~RelockableLock() DBN_RELEASE() {
    if (held_) {
      mutex_.unlock();
    }
  }

  RelockableLock(const RelockableLock&) = delete;
  RelockableLock& operator=(const RelockableLock&) = delete;

  void lock() DBN_ACQUIRE() {
    mutex_.lock();
    held_ = true;
  }
  void unlock() DBN_RELEASE() {
    held_ = false;
    mutex_.unlock();
  }

 private:
  Mutex& mutex_;
  bool held_;
};

/// The condition variable that pairs with RelockableLock. (The plain
/// std::condition_variable only accepts std::unique_lock<std::mutex>,
/// which the analysis cannot see through.)
using CondVar = std::condition_variable_any;

}  // namespace dbn
