#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/contract.hpp"

namespace dbn {

std::size_t ThreadPool::resolve_thread_count(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return threads;
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = resolve_thread_count(threads);
  workers_.reserve(count - 1);
  for (std::size_t i = 1; i < count; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

namespace {
thread_local std::size_t t_current_worker = ThreadPool::no_worker;
}  // namespace

std::size_t ThreadPool::current_worker() { return t_current_worker; }

void ThreadPool::run_chunks(std::size_t worker_index) {
  const std::size_t previous_worker = t_current_worker;
  t_current_worker = worker_index;
  while (true) {
    // memory_order_relaxed: `next_` is a pure work counter — the only thing
    // that must be atomic is the claim itself. Every other job field
    // (body_, total_, chunk_size_) was written by parallel_for under
    // `mutex_` before the worker observed the new generation under the same
    // mutex, so the lock provides the happens-before edge; the counter
    // carries no payload.
    const std::size_t begin =
        next_.fetch_add(chunk_size_, std::memory_order_relaxed);
    if (begin >= total_) {
      break;
    }
    const std::size_t end = std::min(begin + chunk_size_, total_);
    try {
      (*body_)(begin, end, worker_index);
    } catch (...) {
      // Abort the remaining chunks and remember the first failure; the
      // caller rethrows it once every worker has drained.
      // memory_order_relaxed: the store only needs to become visible
      // eventually — a worker that misses it claims one extra chunk, which
      // is wasted work, not a correctness problem. The exception itself is
      // published under `mutex_`.
      next_.store(total_, std::memory_order_relaxed);
      const MutexLock lock(mutex_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
    }
  }
  t_current_worker = previous_worker;
}

void ThreadPool::worker_main(std::size_t worker_index) {
  std::uint64_t seen_generation = 0;
  while (true) {
    {
      RelockableLock lock(mutex_);
      // Explicit wait loop: the analysis checks the guarded reads in this
      // body directly (a predicate lambda would need its own annotation).
      while (!stopping_ && generation_ == seen_generation) {
        start_cv_.wait(lock);
      }
      if (stopping_) {
        return;
      }
      seen_generation = generation_;
    }
    run_chunks(worker_index);
    {
      const MutexLock lock(mutex_);
      --active_workers_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(std::size_t total, std::size_t chunk_size,
                              const ChunkBody& body) {
  if (total == 0) {
    return;
  }
  chunk_size = std::max<std::size_t>(1, chunk_size);
  if (workers_.empty() || total <= chunk_size) {
    // Single-worker pool or a single chunk: run inline, no synchronization.
    const std::size_t previous_worker = t_current_worker;
    t_current_worker = 0;
    try {
      body(0, total, 0);
    } catch (...) {
      t_current_worker = previous_worker;
      throw;
    }
    t_current_worker = previous_worker;
    return;
  }
  {
    const MutexLock lock(mutex_);
    DBN_REQUIRE(body_ == nullptr, "parallel_for is not reentrant");
    body_ = &body;
    total_ = total;
    chunk_size_ = chunk_size;
    // memory_order_relaxed: ordered against the workers' first fetch_add by
    // the mutex_-protected generation bump below (see run_chunks).
    next_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    active_workers_ = workers_.size();
    ++generation_;
  }
  start_cv_.notify_all();
  run_chunks(0);
  std::exception_ptr error;
  {
    RelockableLock lock(mutex_);
    while (active_workers_ != 0) {
      done_cv_.wait(lock);
    }
    body_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

}  // namespace dbn
