// Leveled contract checking for the debruijn-routing library.
//
// Public API entry points validate their preconditions with DBN_REQUIRE and
// throw dbn::ContractViolation on failure; internal invariants use
// DBN_ASSERT; postconditions use DBN_ENSURE; expensive re-verification of
// algorithmic invariants (re-deriving a Theorem 2 witness, re-walking a
// path) uses DBN_AUDIT.
//
// Which checks are compiled in is selected per translation unit by
// DBN_CONTRACT_LEVEL:
//
//   level 0 (release)  every macro compiles to nothing — conditions are
//                      *not evaluated* (guarded by sizeof, so the
//                      expressions still have to parse and name-lookup).
//   level 1 (default)  DBN_REQUIRE / DBN_ENSURE / DBN_ASSERT are active;
//                      DBN_AUDIT compiles away. The checks on hot routing
//                      paths are O(1) compares; the BM_UntracedRoute
//                      overhead gate in CI proves they stay in the noise.
//   level 2 (audit)    everything is active, including O(k)-and-worse
//                      re-verification. Sanitizer builds (DBN_SAN=... in
//                      CMake) default to this level so fuzzing and TSan
//                      stress runs double-check the algorithmic invariants
//                      they exercise.
//
// The level may be set on the command line (-DDBN_CONTRACT_LEVEL=2, which
// is what CMake's DBN_CONTRACT_LEVEL cache option does) or by a test TU
// before including this header (tests/test_contract_*.cpp pin levels 0 and
// 2 to cover all three configurations in one build).
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

#ifndef DBN_CONTRACT_LEVEL
#define DBN_CONTRACT_LEVEL 1
#endif

#if DBN_CONTRACT_LEVEL < 0 || DBN_CONTRACT_LEVEL > 2
#error "DBN_CONTRACT_LEVEL must be 0 (release), 1 (default) or 2 (audit)"
#endif

namespace dbn {

/// Thrown when a documented precondition of a public API is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

/// The contract level the current translation unit was compiled at.
constexpr int contract_level() { return DBN_CONTRACT_LEVEL; }

namespace detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const std::string& msg,
                                          const std::source_location loc) {
  std::string full = std::string(kind) + " failure: (" + expr + ") at " +
                     loc.file_name() + ":" + std::to_string(loc.line()) +
                     " in " + loc.function_name();
  if (!msg.empty()) {
    full += ": " + msg;
  }
  throw ContractViolation(full);
}

}  // namespace detail

}  // namespace dbn

// Active form: evaluate and throw on failure.
#define DBN_CONTRACT_CHECK_(kind, cond, msg)                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::dbn::detail::contract_failure(kind, #cond, (msg),                 \
                                      ::std::source_location::current()); \
    }                                                                     \
  } while (false)

// Disabled form: the condition and message are parsed (so they cannot rot)
// but never evaluated — sizeof is an unevaluated context.
#define DBN_CONTRACT_IGNORE_(cond, msg)                 \
  do {                                                  \
    static_cast<void>(sizeof((cond) ? 1 : 0));          \
    static_cast<void>(sizeof(msg));                     \
  } while (false)

#if DBN_CONTRACT_LEVEL >= 1

/// Precondition check on a public API: throws dbn::ContractViolation with
/// location info. Active at levels 1 and 2.
#define DBN_REQUIRE(cond, msg) DBN_CONTRACT_CHECK_("precondition", cond, msg)

/// Postcondition check: what a function promises about its own result.
/// Active at levels 1 and 2.
#define DBN_ENSURE(cond, msg) DBN_CONTRACT_CHECK_("postcondition", cond, msg)

/// Internal invariant check: same mechanics, different label so failures are
/// attributable to library bugs rather than caller errors. Active at levels
/// 1 and 2.
#define DBN_ASSERT(cond, msg) DBN_CONTRACT_CHECK_("invariant", cond, msg)

#else  // DBN_CONTRACT_LEVEL == 0

#define DBN_REQUIRE(cond, msg) DBN_CONTRACT_IGNORE_(cond, msg)
#define DBN_ENSURE(cond, msg) DBN_CONTRACT_IGNORE_(cond, msg)
#define DBN_ASSERT(cond, msg) DBN_CONTRACT_IGNORE_(cond, msg)

#endif

#if DBN_CONTRACT_LEVEL >= 2

/// Expensive invariant re-verification (O(k) and worse): only compiled in
/// at audit level, which sanitizer and stress builds enable by default.
#define DBN_AUDIT(cond, msg) DBN_CONTRACT_CHECK_("audit", cond, msg)

/// True when DBN_AUDIT is active — use to guard setup code (witness
/// recomputation buffers etc.) that only audit checks consume.
#define DBN_AUDIT_ENABLED 1

#else

#define DBN_AUDIT(cond, msg) DBN_CONTRACT_IGNORE_(cond, msg)
#define DBN_AUDIT_ENABLED 0

#endif
