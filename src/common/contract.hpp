// Contract checking for the debruijn-routing library.
//
// Public API entry points validate their preconditions with DBN_REQUIRE and
// throw dbn::ContractViolation on failure; internal invariants use
// DBN_ASSERT, which compiles to a check in all build types (the library is
// cheap enough that we never strip invariant checks).
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace dbn {

/// Thrown when a documented precondition of a public API is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const std::string& msg,
                                          const std::source_location loc) {
  std::string full = std::string(kind) + " failure: (" + expr + ") at " +
                     loc.file_name() + ":" + std::to_string(loc.line()) +
                     " in " + loc.function_name();
  if (!msg.empty()) {
    full += ": " + msg;
  }
  throw ContractViolation(full);
}

}  // namespace detail

}  // namespace dbn

/// Precondition check: throws dbn::ContractViolation with location info.
#define DBN_REQUIRE(cond, msg)                                       \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::dbn::detail::contract_failure("precondition", #cond, (msg),  \
                                      ::std::source_location::current()); \
    }                                                                \
  } while (false)

/// Internal invariant check: same mechanics, different label so failures are
/// attributable to library bugs rather than caller errors.
#define DBN_ASSERT(cond, msg)                                        \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::dbn::detail::contract_failure("invariant", #cond, (msg),     \
                                      ::std::source_location::current()); \
    }                                                                \
  } while (false)
