// Deterministic pseudo-random number generation for simulations and tests.
//
// We use our own splitmix64/xoshiro256** implementation rather than
// std::mt19937 so that streams are (a) cheap to seed, (b) cheap to split into
// independent per-entity substreams (every simulated node gets its own), and
// (c) reproducible across standard-library implementations.
#pragma once

#include <cstdint>
#include <limits>

#include "common/contract.hpp"

namespace dbn {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm),
/// seeded through splitmix64 so that any 64-bit seed yields a well-mixed
/// state. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      word = splitmix64(x);
    }
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be positive. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) {
    DBN_REQUIRE(bound > 0, "Rng::below requires a positive bound");
    const std::uint64_t threshold = (0 - bound) % bound;  // (2^64 - bound) % bound
    while (true) {
      const __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
      if (static_cast<std::uint64_t>(m) >= threshold) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    DBN_REQUIRE(lo <= hi, "Rng::between requires lo <= hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) { return uniform01() < p; }

  /// Exponentially distributed value with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Derive an independent substream; two streams forked with different tags
  /// from the same parent are statistically independent.
  Rng fork(std::uint64_t tag) const {
    std::uint64_t mix =
        state_[0] ^ rotl(state_[3], 13) ^ (tag * 0xbf58476d1ce4e5b9ull);
    return Rng(splitmix64(mix));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  static std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  std::uint64_t state_[4] = {};
};

}  // namespace dbn
