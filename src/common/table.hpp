// Minimal fixed-width table printer used by the benchmark harnesses to emit
// the paper's figures/tables as aligned text (one series per column).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace dbn {

/// Accumulates rows of string cells and prints them with aligned columns,
/// a header rule, and an optional caption. Numeric formatting is left to
/// the caller (use Table::num for a consistent default).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Formats a double with a fixed number of decimals (default 4).
  static std::string num(double value, int decimals = 4);

  void add_row(std::vector<std::string> cells);

  /// Writes the caption (if any), header, rule, and rows to `out`.
  void print(std::ostream& out, const std::string& caption = "") const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dbn
