#include "common/rng.hpp"

#include <cmath>

namespace dbn {

double Rng::exponential(double rate) {
  DBN_REQUIRE(rate > 0.0, "Rng::exponential requires a positive rate");
  // Inverse-CDF sampling; 1 - uniform01() is in (0, 1], so log is finite.
  return -std::log(1.0 - uniform01()) / rate;
}

}  // namespace dbn
