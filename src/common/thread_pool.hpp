// A small chunked thread pool for data-parallel batch work (no external
// dependencies). Workers are started once and reused across calls;
// parallel_for() hands out index chunks from a shared atomic counter so
// uneven per-item cost self-balances (work sharing — the chunked cousin of
// work stealing, which a single shared queue makes unnecessary here).
//
// The calling thread participates as worker 0, so a pool constructed with
// `threads == 1` spawns no OS threads at all and parallel_for() degrades
// to a plain loop — the sequential and parallel code paths are the same
// code. Worker indices are stable within a call, which is what lets
// callers keep per-worker scratch arenas (see core/batch_route_engine.hpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>
#include <vector>

#include "common/mutex.hpp"

namespace dbn {

class ThreadPool {
 public:
  /// Body of a parallel loop: half-open index range [begin, end) plus the
  /// executing worker's index in [0, thread_count()).
  ///
  /// A non-owning view rather than a std::function: parallel_for only
  /// borrows the callable for the duration of the (blocking) call, and a
  /// std::function would heap-allocate for every capture-heavy lambda —
  /// which would break the batch engine's zero-allocation steady state
  /// (pinned by the operator-new counting tests).
  class ChunkBody {
   public:
    template <typename F>
    ChunkBody(const F& f)  // NOLINT(google-explicit-constructor)
        : ctx_(&f), invoke_([](const void* ctx, std::size_t begin,
                               std::size_t end, std::size_t worker) {
            (*static_cast<const F*>(ctx))(begin, end, worker);
          }) {}

    void operator()(std::size_t begin, std::size_t end,
                    std::size_t worker) const {
      invoke_(ctx_, begin, end, worker);
    }

   private:
    const void* ctx_;
    void (*invoke_)(const void*, std::size_t, std::size_t, std::size_t);
  };

  /// A pool of `threads` workers total (the caller counts as one);
  /// 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Runs `body` over [0, total) in chunks of `chunk_size` (clamped to
  /// >= 1), dynamically scheduled across all workers. Blocks until every
  /// chunk is done. The first exception thrown by any chunk aborts the
  /// remaining chunks and is rethrown on the calling thread. Not
  /// reentrant: one parallel_for at a time per pool.
  void parallel_for(std::size_t total, std::size_t chunk_size,
                    const ChunkBody& body);

  /// Resolves the constructor's `threads` argument the way the pool does.
  static std::size_t resolve_thread_count(std::size_t threads);

  /// The worker index of the pool chunk executing on this thread, or
  /// `no_worker` outside of one. Lets instrumentation deep inside a chunk
  /// body find its lane without plumbing the index through every call.
  static constexpr std::size_t no_worker = static_cast<std::size_t>(-1);
  static std::size_t current_worker();

 private:
  void worker_main(std::size_t worker_index);
  // DBN_NO_THREAD_SAFETY_ANALYSIS: the one sanctioned unchecked reader of
  // the job fields — run_chunks executes between a generation_ observation
  // and the active_workers_ decrement, both under mutex_, so body_/total_/
  // chunk_size_ are frozen for its whole execution (the happens-before
  // rationale on the fields below).
  void run_chunks(std::size_t worker_index) DBN_NO_THREAD_SAFETY_ANALYSIS;

  std::vector<std::thread> workers_;

  Mutex mutex_;
  CondVar start_cv_;
  CondVar done_cv_;
  bool stopping_ DBN_GUARDED_BY(mutex_) = false;
  // Bumped per parallel_for; wakes workers.
  std::uint64_t generation_ DBN_GUARDED_BY(mutex_) = 0;
  // Helpers still inside the current job.
  std::size_t active_workers_ DBN_GUARDED_BY(mutex_) = 0;

  // Current job (valid while active_workers_ > 0 or the caller is inside
  // parallel_for). Concurrency audit: the plain fields are written by
  // parallel_for under mutex_ and read by workers (run_chunks, exempted
  // above) only after they observe the matching generation_ bump under the
  // same mutex, so the lock — not the atomic — provides the happens-before
  // edge. `next_` is the lone cross-thread atomic and is used purely as a
  // work counter with relaxed ordering (rationale at each use in
  // thread_pool.cpp and in docs/static_analysis.md).
  const ChunkBody* body_ DBN_GUARDED_BY(mutex_) = nullptr;
  std::size_t total_ DBN_GUARDED_BY(mutex_) = 0;
  std::size_t chunk_size_ DBN_GUARDED_BY(mutex_) = 1;
  std::atomic<std::size_t> next_{0};
  std::exception_ptr first_error_ DBN_GUARDED_BY(mutex_);
};

}  // namespace dbn
