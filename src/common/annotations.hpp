// Clang Thread Safety Analysis annotations (DBN_* spelling).
//
// These macros let the compiler prove, on every clang build, that each
// field marked DBN_GUARDED_BY(m) is only touched while `m` is held and
// that every DBN_ACQUIRE/DBN_RELEASE pair balances. They expand to
// clang's capability attributes under `-Wthread-safety` and to nothing
// everywhere else (gcc, MSVC), so annotated headers stay portable.
//
// The analysis only understands types that are themselves declared as
// capabilities; std::mutex is not annotated in libstdc++, so guarded
// state must hang off dbn::Mutex (common/mutex.hpp), the repo's
// capability-annotated wrapper. CI's static-analysis job compiles with
// `-Wthread-safety -Wthread-safety-beta -Werror`, and
// tests/compile_fail/ proves the analysis actually rejects a
// guarded-field-without-lock TU and a double-acquire TU. See
// docs/static_analysis.md ("Thread safety analysis") for the macro
// table and how to read the diagnostics.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define DBN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DBN_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Declares a class to be a capability (lockable) type. The string names
/// the capability kind in diagnostics ("mutex").
#define DBN_CAPABILITY(x) DBN_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class whose constructor acquires and destructor
/// releases a capability (std::lock_guard shape).
#define DBN_SCOPED_CAPABILITY DBN_THREAD_ANNOTATION(scoped_lockable)

/// Field annotation: reads and writes require holding `x`.
#define DBN_GUARDED_BY(x) DBN_THREAD_ANNOTATION(guarded_by(x))

/// Pointer-field annotation: the pointee (not the pointer) is protected
/// by `x`.
#define DBN_PT_GUARDED_BY(x) DBN_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function annotation: the caller must hold the listed capabilities on
/// entry (they stay held on exit).
#define DBN_REQUIRES(...) \
  DBN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function annotation: the caller must NOT hold the listed capabilities
/// (the function acquires them itself; catches self-deadlock).
#define DBN_EXCLUDES(...) DBN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function annotation: acquires the listed capabilities (held on exit).
#define DBN_ACQUIRE(...) \
  DBN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function annotation: releases the listed capabilities (held on entry).
#define DBN_RELEASE(...) \
  DBN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function annotation: acquires the capability iff the function returns
/// the given value (e.g. DBN_TRY_ACQUIRE(true) on try_lock()).
#define DBN_TRY_ACQUIRE(...) \
  DBN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function annotation: the returned reference/pointer designates the
/// capability `x` (lets accessors participate in the analysis).
#define DBN_RETURN_CAPABILITY(x) DBN_THREAD_ANNOTATION(lock_returned(x))

/// Lock-ordering declarations (deadlock detection under
/// -Wthread-safety-beta).
#define DBN_ACQUIRED_BEFORE(...) \
  DBN_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define DBN_ACQUIRED_AFTER(...) \
  DBN_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Escape hatch: turns the analysis off for one function. Every use MUST
/// carry an inline comment explaining why the unchecked access is safe
/// (the intentional lock-free patterns: owner-thread shard cells,
/// generation-published job fields, shared_ptr-pinned views). The rules
/// for acceptable uses live in docs/static_analysis.md.
#define DBN_NO_THREAD_SAFETY_ANALYSIS \
  DBN_THREAD_ANNOTATION(no_thread_safety_analysis)
