#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/contract.hpp"

namespace dbn {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  DBN_REQUIRE(!header_.empty(), "Table requires at least one column");
}

std::string Table::num(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

void Table::add_row(std::vector<std::string> cells) {
  DBN_REQUIRE(cells.size() == header_.size(),
              "row width must match the header width");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out, const std::string& caption) const {
  if (!caption.empty()) {
    out << caption << "\n";
  }
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
          << row[c];
    }
    out << "\n";
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    emit(row);
  }
}

}  // namespace dbn
