// Minimal ASCII chart renderer so the benchmark binaries can *draw* the
// paper's Figure 2 (and friends) directly in the terminal, one glyph per
// series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dbn {

/// One curve: (x, y) points, a single-character glyph, and a legend label.
struct PlotSeries {
  std::vector<double> xs;
  std::vector<double> ys;
  char glyph = '*';
  std::string label;
};

/// Renders the series onto a width x height character grid with simple
/// linear scaling, y axis on the left, x axis on the bottom, and a legend.
/// Points from later series overwrite earlier glyphs on collisions.
class AsciiPlot {
 public:
  AsciiPlot(std::size_t width, std::size_t height);

  void add_series(PlotSeries series);

  /// Writes the chart (optionally titled) to `out`.
  void print(std::ostream& out, const std::string& title = "") const;

 private:
  std::size_t width_;
  std::size_t height_;
  std::vector<PlotSeries> series_;
};

}  // namespace dbn
