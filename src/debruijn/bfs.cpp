#include "debruijn/bfs.hpp"

#include <algorithm>
#include <deque>

#include "common/contract.hpp"

namespace dbn {

namespace {

std::vector<int> bfs_impl(const DeBruijnGraph& graph, std::uint64_t source,
                          const std::vector<bool>* blocked) {
  const std::uint64_t n = graph.vertex_count();
  DBN_REQUIRE(source < n, "bfs: source rank out of range");
  DBN_REQUIRE(blocked == nullptr || !(*blocked)[source],
              "bfs: source vertex is blocked");
  std::vector<int> dist(n, -1);
  std::deque<std::uint64_t> frontier;
  dist[source] = 0;
  frontier.push_back(source);
  while (!frontier.empty()) {
    const std::uint64_t v = frontier.front();
    frontier.pop_front();
    for (const std::uint64_t w : graph.neighbors(v)) {
      if (dist[w] != -1 || (blocked != nullptr && (*blocked)[w])) {
        continue;
      }
      dist[w] = dist[v] + 1;
      frontier.push_back(w);
    }
  }
  return dist;
}

}  // namespace

std::vector<int> bfs_distances(const DeBruijnGraph& graph, std::uint64_t source) {
  return bfs_impl(graph, source, nullptr);
}

std::vector<int> bfs_distances_avoiding(const DeBruijnGraph& graph,
                                        std::uint64_t source,
                                        const std::vector<bool>& blocked) {
  DBN_REQUIRE(blocked.size() == graph.vertex_count(),
              "bfs: blocked mask size must equal the vertex count");
  return bfs_impl(graph, source, &blocked);
}

std::vector<std::uint64_t> bfs_shortest_path(const DeBruijnGraph& graph,
                                             std::uint64_t source,
                                             std::uint64_t destination) {
  const std::uint64_t n = graph.vertex_count();
  DBN_REQUIRE(source < n && destination < n, "bfs: rank out of range");
  // Parent-pointer BFS from the source, stopping at the destination.
  std::vector<std::int64_t> parent(n, -2);  // -2 unvisited, -1 root
  std::deque<std::uint64_t> frontier;
  parent[source] = -1;
  frontier.push_back(source);
  while (!frontier.empty() && parent[destination] == -2) {
    const std::uint64_t v = frontier.front();
    frontier.pop_front();
    for (const std::uint64_t w : graph.neighbors(v)) {
      if (parent[w] != -2) {
        continue;
      }
      parent[w] = static_cast<std::int64_t>(v);
      frontier.push_back(w);
    }
  }
  if (parent[destination] == -2) {
    return {};
  }
  std::vector<std::uint64_t> path;
  for (std::uint64_t v = destination;; v = static_cast<std::uint64_t>(parent[v])) {
    path.push_back(v);
    if (parent[v] == -1) {
      break;
    }
  }
  std::reverse(path.begin(), path.end());
  return path;
}

int eccentricity(const DeBruijnGraph& graph, std::uint64_t source) {
  const std::vector<int> dist = bfs_distances(graph, source);
  int ecc = -1;
  for (std::uint64_t v = 0; v < graph.vertex_count(); ++v) {
    if (v != source) {
      ecc = std::max(ecc, dist[v]);
    }
  }
  return ecc;
}

int diameter(const DeBruijnGraph& graph) {
  int diam = -1;
  for (std::uint64_t v = 0; v < graph.vertex_count(); ++v) {
    diam = std::max(diam, eccentricity(graph, v));
  }
  return diam;
}

double average_distance(const DeBruijnGraph& graph) {
  const std::uint64_t n = graph.vertex_count();
  double total = 0.0;
  for (std::uint64_t v = 0; v < n; ++v) {
    const std::vector<int> dist = bfs_distances(graph, v);
    for (std::uint64_t w = 0; w < n; ++w) {
      DBN_ASSERT(dist[w] >= 0, "DG(d,k) is strongly connected");
      total += dist[w];
    }
  }
  return total / (static_cast<double>(n) * static_cast<double>(n));
}

}  // namespace dbn
