// De Bruijn sequences and Hamiltonian cycles of DG(d,k).
//
// The paper's introduction lists "the existence of multiple Hamiltonian
// paths" (de Bruijn 1946; Etzion & Lempel 1984) among the network's
// attractive features; the ring/linear-array embeddings in embedding.hpp
// are built on these cycles.
#pragma once

#include <cstdint>
#include <vector>

#include "debruijn/word.hpp"

namespace dbn {

/// A d-ary de Bruijn sequence B(d, n): a cyclic digit sequence of length
/// d^n in which every d-ary word of length n occurs exactly once as a
/// cyclic window. Built with the Fredricksen–Kessler–Maiorana (FKM)
/// necklace-concatenation algorithm (lexicographically least sequence).
/// O(d^n) output, O(n) working space beyond the output.
std::vector<Digit> de_bruijn_sequence(std::uint32_t radix, std::size_t n);

/// A (generally different) de Bruijn sequence from an explicit Hierholzer
/// Euler cycle of DG(d, n-1). Together with de_bruijn_sequence and
/// de_bruijn_sequence_greedy this witnesses the paper's "multiple
/// Hamiltonian paths" remark (de Bruijn 1946; Etzion & Lempel 1984).
/// O(d^n) time and space.
std::vector<Digit> de_bruijn_sequence_hierholzer(std::uint32_t radix,
                                                 std::size_t n);

/// De Bruijn's classic "prefer-largest" greedy construction: starting from
/// 0^n, repeatedly append the largest digit whose window is still unseen.
/// O(d^n) time, O(d^n) window bookkeeping.
std::vector<Digit> de_bruijn_sequence_greedy(std::uint32_t radix,
                                             std::size_t n);

/// A Hamiltonian cycle of the (directed) DG(d,k): the d^k vertex ranks in
/// cycle order; consecutive vertices (and last -> first) are joined by
/// left-shift edges. Derived from the length-k windows of B(d,k).
std::vector<std::uint64_t> hamiltonian_cycle(std::uint32_t radix, std::size_t k);

/// Hamiltonian cycle built from a caller-supplied de Bruijn sequence
/// (e.g. the Hierholzer or greedy one) — distinct sequences give distinct
/// cycles, the "multiple Hamiltonian paths" of Section 1.
std::vector<std::uint64_t> hamiltonian_cycle_from_sequence(
    std::uint32_t radix, std::size_t k, const std::vector<Digit>& sequence);

}  // namespace dbn
