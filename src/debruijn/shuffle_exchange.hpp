// The shuffle-exchange network SE(k) — the architecture the introduction
// says the binary de Bruijn network subsumes (Samatham & Pradhan).
//
// SE(k) has 2^k nodes; node w is joined to shuffle(w) (left rotation,
// undirected) and to exchange(w) (last bit flipped). Degree <= 3,
// diameter ~ 2k. The emulation of SE moves by DN(2,k) hops lives in
// embedding.hpp (shuffle: 1 hop, exchange: 2 hops); this class provides
// the SE graph itself so the dilation claims can be checked both ways.
#pragma once

#include <cstdint>
#include <vector>

#include "debruijn/word.hpp"

namespace dbn {

class ShuffleExchangeGraph {
 public:
  explicit ShuffleExchangeGraph(std::size_t k);

  std::size_t k() const { return k_; }
  std::uint64_t vertex_count() const { return n_; }

  /// shuffle(w): rotate left by one bit.
  std::uint64_t shuffle(std::uint64_t v) const;
  /// unshuffle(w): rotate right by one bit (shuffle's inverse).
  std::uint64_t unshuffle(std::uint64_t v) const;
  /// exchange(w): flip the last (least significant) bit.
  std::uint64_t exchange(std::uint64_t v) const;

  /// Undirected neighbors: shuffle, unshuffle, exchange (deduplicated,
  /// self excluded).
  std::vector<std::uint64_t> neighbors(std::uint64_t v) const;

  /// Max distance from v (BFS over the undirected edges).
  int eccentricity(std::uint64_t v) const;

  /// Max eccentricity over all sources. O(N^2).
  int diameter() const;

 private:
  std::size_t k_;
  std::uint64_t n_;
};

}  // namespace dbn
