#include "debruijn/generalized.hpp"

#include <algorithm>
#include <deque>

#include "common/contract.hpp"

namespace dbn {

GeneralizedDeBruijn::GeneralizedDeBruijn(std::uint64_t n, std::uint32_t radix)
    : n_(n), radix_(radix) {
  DBN_REQUIRE(n_ >= 1, "GB(n,d) requires n >= 1");
  DBN_REQUIRE(radix_ >= 2, "GB(n,d) requires d >= 2");
  DBN_REQUIRE(n_ <= (std::uint64_t{1} << 40) / radix_,
              "GB(n,d): d*n must not overflow the rank arithmetic");
}

std::vector<std::uint64_t> GeneralizedDeBruijn::out_neighbors(
    std::uint64_t v) const {
  DBN_REQUIRE(v < n_, "out_neighbors: vertex out of range");
  std::vector<std::uint64_t> out;
  out.reserve(radix_);
  for (std::uint32_t a = 0; a < radix_; ++a) {
    out.push_back((v * radix_ + a) % n_);
  }
  return out;
}

int GeneralizedDeBruijn::eccentricity(std::uint64_t v) const {
  DBN_REQUIRE(v < n_, "eccentricity: vertex out of range");
  std::vector<int> dist(n_, -1);
  std::deque<std::uint64_t> frontier;
  dist[v] = 0;
  frontier.push_back(v);
  std::uint64_t reached = 1;
  int ecc = 0;
  while (!frontier.empty()) {
    const std::uint64_t u = frontier.front();
    frontier.pop_front();
    for (const std::uint64_t w : out_neighbors(u)) {
      if (dist[w] != -1) {
        continue;
      }
      dist[w] = dist[u] + 1;
      ecc = std::max(ecc, dist[w]);
      ++reached;
      frontier.push_back(w);
    }
  }
  return reached == n_ ? ecc : -1;
}

int GeneralizedDeBruijn::diameter() const {
  int diam = 0;
  for (std::uint64_t v = 0; v < n_; ++v) {
    const int ecc = eccentricity(v);
    if (ecc < 0) {
      return -1;
    }
    diam = std::max(diam, ecc);
  }
  return diam;
}

int directed_diameter_lower_bound(std::uint64_t n, std::uint32_t radix) {
  DBN_REQUIRE(n >= 1 && radix >= 2, "bound requires n >= 1, d >= 2");
  std::uint64_t covered = 1;  // the vertex itself
  std::uint64_t frontier = 1;
  int depth = 0;
  while (covered < n) {
    frontier *= radix;
    covered += frontier;
    ++depth;
  }
  return depth;
}

}  // namespace dbn
