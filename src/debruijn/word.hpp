// The vertex type of DG(d,k): a d-ary word X = (x_1, ..., x_k).
//
// Index conventions: the paper writes X = (x_1, ..., x_k) with x_1 the
// leftmost digit; Word stores digits 0-based with digit(0) == x_1. The two
// shift operations are the paper's
//   X^-(a) = (x_2, ..., x_k, a)   — left shift, append a        (type L)
//   X^+(a) = (a, x_1, ..., x_{k-1}) — right shift, prepend a    (type R)
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "strings/symbol.hpp"

namespace dbn {

using Digit = strings::Symbol;  // d-ary digit in [0, radix)

/// Immutable-style d-ary word of fixed length k over digits [0, radix).
/// Value type: cheap to copy for the k's this library targets, hashable,
/// totally ordered (lexicographic).
class Word {
 public:
  /// Constructs from explicit digits; every digit must be < radix.
  Word(std::uint32_t radix, std::vector<Digit> digits);

  /// The all-zero word of length k.
  static Word zero(std::uint32_t radix, std::size_t k);

  /// The word whose digits are the base-`radix` representation of `rank`
  /// (most significant digit first, zero padded to length k).
  /// Requires rank < radix^k (and radix^k to fit in 64 bits).
  static Word from_rank(std::uint32_t radix, std::size_t k, std::uint64_t rank);

  /// radix^k, checked to fit in 64 bits (throws ContractViolation if not).
  static std::uint64_t vertex_count(std::uint32_t radix, std::size_t k);

  std::uint32_t radix() const { return radix_; }
  std::size_t length() const { return digits_.size(); }

  /// x_{i+1} in the paper's 1-based notation; i in [0, k).
  Digit digit(std::size_t i) const;

  /// The integer whose base-radix digits are this word (x_1 most
  /// significant). Inverse of from_rank.
  std::uint64_t rank() const;

  /// X^-(a): drop the first digit, append a (type-L neighbor).
  Word left_shift(Digit a) const;

  /// X^+(a): prepend a, drop the last digit (type-R neighbor).
  Word right_shift(Digit a) const;

  /// In-place variants for hot paths (simulator, enumeration).
  void left_shift_inplace(Digit a);
  void right_shift_inplace(Digit a);

  /// The reversal (x_k, ..., x_1) — used by the r-side reductions.
  Word reversed() const;

  /// Digits as a symbol view for the strings substrate.
  strings::SymbolView symbols() const { return digits_; }

  /// "(x1,x2,...,xk)" — matches the paper's tuples, e.g. "(0,1,1)".
  std::string to_string() const;

  friend bool operator==(const Word& a, const Word& b) = default;
  friend auto operator<=>(const Word& a, const Word& b) = default;

 private:
  std::uint32_t radix_;
  std::vector<Digit> digits_;
};

}  // namespace dbn

template <>
struct std::hash<dbn::Word> {
  std::size_t operator()(const dbn::Word& w) const noexcept {
    std::size_t h = 0xcbf29ce484222325ull ^ w.radix();
    for (std::size_t i = 0; i < w.length(); ++i) {
      h ^= w.digit(i);
      h *= 0x100000001b3ull;
    }
    return h;
  }
};
