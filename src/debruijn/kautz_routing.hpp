// Optimal uni-directional routing in the Kautz network — the Property 1
// machinery carried over to the sibling family (an extension the paper
// does not treat; proof sketch below).
//
// In K(d,k) the left shift X -> (x_2,...,x_k,a) requires a != x_k. The
// trivial overlap path that pins down Property 1 survives verbatim:
// with l = max{ s : x_{k-s+1}..x_k = y_1..y_s }, the walk inserting
// y_{l+1},...,y_k is valid, because at the junction either l >= 1 and
// x_k = y_l != y_{l+1} (Y is a Kautz word), or l = 0 and x_k != y_1
// (otherwise the overlap would be at least 1); every other junction lies
// inside Y, where adjacent digits differ by definition. The lower bound
// argument is unchanged (any j-step walk forces y_1..y_{k-j} =
// x_{j+1}..x_k). Hence D(X,Y) = k - l exactly as in DG(d,k).
#pragma once

#include "core/path.hpp"
#include "debruijn/kautz.hpp"
#include "debruijn/word.hpp"

namespace dbn {

/// Exact distance in the directed Kautz graph K(d,k): k minus the longest
/// suffix/prefix overlap. O(k) via the Morris-Pratt scan. Both words must
/// be valid Kautz words of the graph.
int kautz_directed_distance(const KautzGraph& graph, const Word& x,
                            const Word& y);

/// Shortest uni-directional path in K(d,k) (left shifts only), the
/// Algorithm 1 analog. Every emitted hop is a legal Kautz move.
RoutingPath kautz_route(const KautzGraph& graph, const Word& x, const Word& y);

}  // namespace dbn
