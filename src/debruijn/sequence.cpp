#include "debruijn/sequence.hpp"

#include <algorithm>

#include "common/contract.hpp"
#include "debruijn/graph.hpp"

namespace dbn {

std::vector<Digit> de_bruijn_sequence(std::uint32_t radix, std::size_t n) {
  DBN_REQUIRE(radix >= 2 && n >= 1, "de_bruijn_sequence requires d >= 2, n >= 1");
  const std::uint64_t expected = Word::vertex_count(radix, n);
  // FKM: concatenate, in lexicographic order, every Lyndon word over
  // [0, d) whose length divides n. The classic iterative formulation scans
  // candidate necklaces a[1..t].
  std::vector<Digit> sequence;
  sequence.reserve(expected);
  std::vector<Digit> a(n + 1, 0);
  // Iterative necklace generation (Duval's algorithm shape).
  std::size_t t = 1;
  while (true) {
    if (n % t == 0) {
      sequence.insert(sequence.end(), a.begin() + 1,
                      a.begin() + static_cast<std::ptrdiff_t>(t) + 1);
    }
    // Find the next pre-necklace.
    std::size_t j = t;
    // Extend periodically to length n, then increment from the right.
    while (j < n) {
      ++j;
      a[j] = a[j - t];
    }
    while (j >= 1 && a[j] == radix - 1) {
      --j;
    }
    if (j == 0) {
      break;
    }
    ++a[j];
    t = j;
  }
  DBN_ASSERT(sequence.size() == expected,
             "FKM must produce exactly d^n digits");
  return sequence;
}

std::vector<Digit> de_bruijn_sequence_hierholzer(std::uint32_t radix,
                                                 std::size_t n) {
  DBN_REQUIRE(radix >= 2 && n >= 1,
              "de_bruijn_sequence_hierholzer requires d >= 2, n >= 1");
  if (n == 1) {
    std::vector<Digit> seq(radix);
    for (Digit a = 0; a < radix; ++a) {
      seq[a] = a;
    }
    return seq;
  }
  // Euler cycle over DG(d, n-1): vertices are (n-1)-windows, the arc
  // labeled a leaves v toward left_shift(v, a). Iterative Hierholzer with
  // per-vertex next-unused-arc counters.
  const std::uint64_t vertices = Word::vertex_count(radix, n - 1);
  const std::uint64_t expected = vertices * radix;
  const DeBruijnGraph graph(radix, n - 1, Orientation::Directed);
  std::vector<Digit> next_arc(vertices, 0);
  std::vector<std::pair<std::uint64_t, Digit>> stack;  // (vertex, arc taken)
  std::vector<Digit> cycle_labels;
  cycle_labels.reserve(expected);
  stack.reserve(expected + 1);
  stack.emplace_back(0, 0);  // start at 0^(n-1); arc label unused for root
  while (!stack.empty()) {
    const std::uint64_t v = stack.back().first;
    if (next_arc[v] < radix) {
      const Digit a = next_arc[v]++;
      stack.emplace_back(graph.left_shift_rank(v, a), a);
    } else {
      // Retreat: the arc that led here joins the cycle (reverse order).
      cycle_labels.push_back(stack.back().second);
      stack.pop_back();
    }
  }
  cycle_labels.pop_back();  // drop the root's dummy label
  DBN_ASSERT(cycle_labels.size() == expected,
             "Euler cycle must use every arc exactly once");
  std::reverse(cycle_labels.begin(), cycle_labels.end());
  return cycle_labels;
}

std::vector<Digit> de_bruijn_sequence_greedy(std::uint32_t radix,
                                             std::size_t n) {
  DBN_REQUIRE(radix >= 2 && n >= 1,
              "de_bruijn_sequence_greedy requires d >= 2, n >= 1");
  const std::uint64_t count = Word::vertex_count(radix, n);
  const std::uint64_t window_mod = count;  // d^n
  std::vector<bool> seen(count, false);
  // Start on the all-zero window (which the initial zeros establish).
  std::vector<Digit> seq(n - 1, 0);
  std::uint64_t window = 0;  // value of the last n-1 digits (times d later)
  std::uint64_t placed = 0;
  while (placed < count) {
    bool advanced = false;
    for (Digit a = radix; a-- > 0;) {  // prefer the largest digit
      const std::uint64_t candidate = (window * radix + a) % window_mod;
      if (!seen[candidate]) {
        seen[candidate] = true;
        seq.push_back(a);
        window = candidate % (window_mod / radix);
        ++placed;
        advanced = true;
        break;
      }
    }
    DBN_ASSERT(advanced, "prefer-largest never gets stuck (de Bruijn 1946)");
  }
  // Drop the n-1 priming zeros; the cyclic sequence is the remainder
  // (which ends with n-1 zeros, closing the initial window).
  seq.erase(seq.begin(), seq.begin() + static_cast<std::ptrdiff_t>(n - 1));
  DBN_ASSERT(seq.size() == count, "greedy sequence has length d^n");
  return seq;
}

std::vector<std::uint64_t> hamiltonian_cycle_from_sequence(
    std::uint32_t radix, std::size_t k, const std::vector<Digit>& sequence) {
  const std::uint64_t n = Word::vertex_count(radix, k);
  DBN_REQUIRE(sequence.size() == n,
              "sequence length must be d^k for a Hamiltonian cycle");
  const DeBruijnGraph graph(radix, k, Orientation::Directed);
  std::vector<std::uint64_t> cycle;
  cycle.reserve(n);
  // The i-th vertex is the window sequence[i .. i+k) (cyclic); each step
  // drops the first digit and appends the next, i.e. a left-shift edge.
  std::uint64_t rank = 0;
  for (std::size_t i = 0; i < k; ++i) {
    rank = rank * radix + sequence[i % n];
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    cycle.push_back(rank);
    rank = graph.left_shift_rank(rank, sequence[(k + i) % n]);
  }
  return cycle;
}

std::vector<std::uint64_t> hamiltonian_cycle(std::uint32_t radix, std::size_t k) {
  return hamiltonian_cycle_from_sequence(radix, k,
                                         de_bruijn_sequence(radix, k));
}

}  // namespace dbn
