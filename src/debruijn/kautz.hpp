// Kautz graphs K(d,k): the de Bruijn family's sibling, with
// N = (d+1)·d^(k-1) vertices of out-degree d and diameter k — strictly
// more vertices than DG(d,k) at the same degree and diameter, i.e. the
// natural yardstick for the introduction's near-optimality discussion.
//
// Vertices are words of length k over an alphabet of d+1 symbols in which
// adjacent digits differ; arcs are left shifts X -> (x_2,...,x_k,a) with
// a != x_k. Ranks encode the first digit in [0,d] and each subsequent
// digit as its offset (1..d) from the previous one, giving a dense
// [0, N) range.
#pragma once

#include <cstdint>
#include <vector>

#include "debruijn/word.hpp"

namespace dbn {

/// Implicit Kautz digraph K(d,k).
class KautzGraph {
 public:
  KautzGraph(std::uint32_t degree, std::size_t k);

  std::uint32_t degree() const { return degree_; }
  std::size_t k() const { return k_; }
  std::uint64_t vertex_count() const { return n_; }

  /// The word (digits over [0, d]) of a rank; adjacent digits differ.
  Word word(std::uint64_t rank) const;

  /// Inverse of word().
  std::uint64_t rank(const Word& w) const;

  /// The d out-neighbors (left shifts appending a != last digit).
  std::vector<std::uint64_t> out_neighbors(std::uint64_t rank) const;

  /// Max distance from v (BFS); -1 if something is unreachable.
  int eccentricity(std::uint64_t v) const;

  /// Max eccentricity over all sources (Kautz: exactly k). O(N^2 d).
  int diameter() const;

 private:
  std::uint32_t degree_;
  std::size_t k_;
  std::uint64_t n_;
};

}  // namespace dbn
