#include "debruijn/packed_word.hpp"

#include "common/contract.hpp"

namespace dbn {

namespace {

// The low `bits` bits of a lane set (bits <= 128).
__uint128_t low_mask(std::uint32_t bits) {
  if (bits >= 128) {
    return ~static_cast<__uint128_t>(0);
  }
  return (static_cast<__uint128_t>(1) << bits) - 1;
}

}  // namespace

PackedWord::PackedWord(std::uint32_t radix, std::size_t k) : radix_(radix) {
  DBN_REQUIRE(radix_ >= 1, "PackedWord requires radix d >= 1");
  DBN_REQUIRE(k >= 1, "PackedWord requires length k >= 1");
  DBN_REQUIRE(packable(radix, k),
              "PackedWord requires a packable (d, k); use Word otherwise");
  buf_.width = strings::packed_width(radix_);
  buf_.size = static_cast<std::uint32_t>(k);
}

bool PackedWord::packable(std::uint32_t radix, std::size_t k) {
  return strings::packable(radix, k);
}

PackedWord PackedWord::from_word(const Word& w) {
  PackedWord out(w.radix(), w.length());
  out.buf_ = strings::pack_word(w.symbols(), w.radix());
  return out;
}

Word PackedWord::to_word() const {
  return Word(radix_, strings::unpack(buf_));
}

PackedWord PackedWord::from_rank(std::uint32_t radix, std::size_t k,
                                 std::uint64_t rank) {
  const std::uint64_t n = Word::vertex_count(radix, k);
  DBN_REQUIRE(rank < n, "from_rank: rank out of range [0, d^k)");
  PackedWord out(radix, k);
  for (std::size_t i = k; i-- > 0;) {
    out.buf_.set(i, static_cast<std::uint32_t>(rank % radix));
    rank /= radix;
  }
  return out;
}

std::uint64_t PackedWord::rank() const {
  std::uint64_t r = 0;
  for (std::size_t i = 0; i < buf_.size; ++i) {
    r = r * radix_ + buf_.get(i);
  }
  return r;
}

Digit PackedWord::digit(std::size_t i) const { return buf_.get(i); }

void PackedWord::set_digit(std::size_t i, Digit v) {
  DBN_REQUIRE(v < radix_, "set_digit out of range [0, d)");
  buf_.set(i, v);
}

PackedWord PackedWord::left_shift(Digit a) const {
  PackedWord out = *this;
  out.left_shift_inplace(a);
  return out;
}

PackedWord PackedWord::right_shift(Digit a) const {
  PackedWord out = *this;
  out.right_shift_inplace(a);
  return out;
}

void PackedWord::left_shift_inplace(Digit a) {
  DBN_REQUIRE(a < radix_, "left_shift digit out of range [0, d)");
  // Cell 0 is the low cell, so dropping x_1 is one lane shift down; the
  // vacated top cell is then overwritten with the appended digit.
  buf_.bits >>= buf_.width;
  buf_.set(buf_.size - 1, a);
}

void PackedWord::right_shift_inplace(Digit a) {
  DBN_REQUIRE(a < radix_, "right_shift digit out of range [0, d)");
  buf_.bits = (buf_.bits << buf_.width) & low_mask(buf_.size * buf_.width);
  buf_.set(0, a);
}

PackedWord PackedWord::reversed() const {
  PackedWord out(radix_, buf_.size);
  for (std::size_t i = 0; i < buf_.size; ++i) {
    out.buf_.set(i, buf_.get(buf_.size - 1 - i));
  }
  return out;
}

std::strong_ordering operator<=>(const PackedWord& a, const PackedWord& b) {
  if (const auto c = a.radix_ <=> b.radix_; c != 0) {
    return c;
  }
  const std::size_t common = std::min(a.length(), b.length());
  for (std::size_t i = 0; i < common; ++i) {
    if (const auto c = a.digit(i) <=> b.digit(i); c != 0) {
      return c;
    }
  }
  return a.length() <=> b.length();
}

}  // namespace dbn
