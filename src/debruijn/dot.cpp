#include "debruijn/dot.hpp"

#include <sstream>

#include "common/contract.hpp"

namespace dbn {

std::string to_dot(const DeBruijnGraph& graph, bool word_labels,
                   std::uint64_t max_vertices) {
  DBN_REQUIRE(graph.vertex_count() <= max_vertices,
              "to_dot: graph too large to render (raise max_vertices)");
  const bool directed = graph.orientation() == Orientation::Directed;
  std::ostringstream os;
  os << (directed ? "digraph" : "graph") << " debruijn {\n";
  os << "  // DG(" << graph.radix() << "," << graph.k() << "), "
     << graph.vertex_count() << " vertices\n";

  const auto name = [&](std::uint64_t rank) {
    if (!word_labels) {
      return std::to_string(rank);
    }
    const Word w = graph.word(rank);
    std::string s = "\"";
    for (std::size_t i = 0; i < w.length(); ++i) {
      s += std::to_string(w.digit(i));
    }
    s += "\"";
    return s;
  };

  for (std::uint64_t v = 0; v < graph.vertex_count(); ++v) {
    os << "  " << name(v) << ";\n";
  }
  const char* arrow = directed ? " -> " : " -- ";
  for (std::uint64_t v = 0; v < graph.vertex_count(); ++v) {
    for (const std::uint64_t w : graph.neighbors(v)) {
      if (!directed && w < v) {
        continue;  // each undirected edge once
      }
      os << "  " << name(v) << arrow << name(w) << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace dbn
