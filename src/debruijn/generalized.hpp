// Generalized de Bruijn graphs GB(n,d) (Imase & Itoh 1981, the paper's
// reference [4] for "de Bruijn graphs are nearly optimal graphs that
// minimize the diameter, given the number of vertices and the degree").
//
// GB(n,d) has vertices 0..n-1 and arcs i -> (d*i + a) mod n, a in [0,d).
// For n = d^k it *is* the directed DG(d,k) under the rank encoding. Imase
// and Itoh proved diameter(GB(n,d)) <= ceil(log_d n), within one of the
// Moore-style lower bound for out-degree-d digraphs — the optimality claim
// bench_diameter_optimality measures.
#pragma once

#include <cstdint>
#include <vector>

namespace dbn {

/// Implicit generalized de Bruijn digraph.
class GeneralizedDeBruijn {
 public:
  GeneralizedDeBruijn(std::uint64_t n, std::uint32_t radix);

  std::uint64_t vertex_count() const { return n_; }
  std::uint32_t radix() const { return radix_; }

  /// The d out-neighbors (d*v + a) mod n, a = 0..d-1 (with multiplicity).
  std::vector<std::uint64_t> out_neighbors(std::uint64_t v) const;

  /// Max distance from v to any vertex, or -1 if some vertex is
  /// unreachable. O(n d).
  int eccentricity(std::uint64_t v) const;

  /// Max eccentricity over all sources; -1 if not strongly connected.
  /// O(n^2 d) — intended for the optimality sweep, keep n modest.
  int diameter() const;

 private:
  std::uint64_t n_;
  std::uint32_t radix_;
};

/// The Moore-style lower bound on the diameter of any digraph with n
/// vertices and out-degree d: the smallest D with 1 + d + ... + d^D >= n.
int directed_diameter_lower_bound(std::uint64_t n, std::uint32_t radix);

}  // namespace dbn
