#include "debruijn/kautz.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/contract.hpp"

namespace dbn {

KautzGraph::KautzGraph(std::uint32_t degree, std::size_t k)
    : degree_(degree), k_(k) {
  DBN_REQUIRE(degree_ >= 1 && k_ >= 1, "KautzGraph requires d >= 1, k >= 1");
  // N = (d+1) * d^(k-1), overflow-checked.
  std::uint64_t n = degree_ + 1;
  for (std::size_t i = 1; i < k_; ++i) {
    DBN_REQUIRE(n <= std::numeric_limits<std::uint64_t>::max() / degree_,
                "Kautz vertex count does not fit in 64 bits");
    n *= degree_;
  }
  n_ = n;
}

Word KautzGraph::word(std::uint64_t rank) const {
  DBN_REQUIRE(rank < n_, "KautzGraph::word: rank out of range");
  // Peel offsets from the least significant end, then the leading digit.
  std::vector<Digit> offsets(k_ - 1);
  for (std::size_t i = k_ - 1; i-- > 0;) {
    offsets[i] = static_cast<Digit>(rank % degree_);
    rank /= degree_;
  }
  std::vector<Digit> digits(k_);
  digits[0] = static_cast<Digit>(rank);  // < d+1
  for (std::size_t i = 1; i < k_; ++i) {
    digits[i] = (digits[i - 1] + offsets[i - 1] + 1) % (degree_ + 1);
  }
  return Word(degree_ + 1, std::move(digits));
}

std::uint64_t KautzGraph::rank(const Word& w) const {
  DBN_REQUIRE(w.radix() == degree_ + 1 && w.length() == k_,
              "KautzGraph::rank: word does not belong to this graph");
  std::uint64_t r = w.digit(0);
  for (std::size_t i = 1; i < k_; ++i) {
    DBN_REQUIRE(w.digit(i) != w.digit(i - 1),
                "KautzGraph::rank: adjacent digits must differ");
    const std::uint32_t offset =
        (w.digit(i) + degree_ + 1 - w.digit(i - 1)) % (degree_ + 1) - 1;
    r = r * degree_ + offset;
  }
  return r;
}

std::vector<std::uint64_t> KautzGraph::out_neighbors(std::uint64_t v) const {
  const Word w = word(v);
  const Digit last = w.digit(k_ - 1);
  std::vector<std::uint64_t> out;
  out.reserve(degree_);
  for (Digit a = 0; a <= degree_; ++a) {
    if (a == last) {
      continue;
    }
    out.push_back(rank(w.left_shift(a)));
  }
  return out;
}

int KautzGraph::eccentricity(std::uint64_t v) const {
  DBN_REQUIRE(v < n_, "eccentricity: vertex out of range");
  std::vector<int> dist(n_, -1);
  std::deque<std::uint64_t> frontier;
  dist[v] = 0;
  frontier.push_back(v);
  std::uint64_t reached = 1;
  int ecc = 0;
  while (!frontier.empty()) {
    const std::uint64_t u = frontier.front();
    frontier.pop_front();
    for (const std::uint64_t w : out_neighbors(u)) {
      if (dist[w] != -1) {
        continue;
      }
      dist[w] = dist[u] + 1;
      ecc = std::max(ecc, dist[w]);
      ++reached;
      frontier.push_back(w);
    }
  }
  return reached == n_ ? ecc : -1;
}

int KautzGraph::diameter() const {
  int diam = 0;
  for (std::uint64_t v = 0; v < n_; ++v) {
    const int ecc = eccentricity(v);
    if (ecc < 0) {
      return -1;
    }
    diam = std::max(diam, ecc);
  }
  return diam;
}

}  // namespace dbn
