// Graphviz DOT export of de Bruijn graphs — small quality-of-life tool for
// downstream users (render Figure 1 and friends directly).
#pragma once

#include <string>

#include "debruijn/graph.hpp"

namespace dbn {

/// Renders the graph as Graphviz DOT. Directed graphs become `digraph`
/// with one arc per left shift (self-loops included); undirected graphs
/// become `graph` with deduplicated edges. Vertices are labeled with their
/// digit strings ("011") when `word_labels` is set, ranks otherwise.
/// The graph must be materializable (guarded like adjacency()).
std::string to_dot(const DeBruijnGraph& graph, bool word_labels = true,
                   std::uint64_t max_vertices = 1u << 12);

}  // namespace dbn
