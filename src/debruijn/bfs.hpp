// Breadth-first search over DG(d,k): the exact ground truth the paper's
// closed-form distance functions are validated against, and the baseline
// router for the benchmarks (O(N d) per source versus the paper's O(k)).
#pragma once

#include <cstdint>
#include <vector>

#include "debruijn/graph.hpp"

namespace dbn {

/// Distances (in moves) from `source` to every vertex; entry -1 means
/// unreachable. Enumerates the graph: requires d^k to fit in memory.
std::vector<int> bfs_distances(const DeBruijnGraph& graph, std::uint64_t source);

/// Like bfs_distances but avoiding the vertices marked true in `blocked`
/// (used by the fault-tolerance experiments). `blocked[source]` must be
/// false.
std::vector<int> bfs_distances_avoiding(const DeBruijnGraph& graph,
                                        std::uint64_t source,
                                        const std::vector<bool>& blocked);

/// A shortest vertex sequence source -> ... -> destination (inclusive), or
/// an empty vector if unreachable.
std::vector<std::uint64_t> bfs_shortest_path(const DeBruijnGraph& graph,
                                             std::uint64_t source,
                                             std::uint64_t destination);

/// Maximum distance from `source` (ignores unreachable vertices; returns -1
/// if nothing else is reachable).
int eccentricity(const DeBruijnGraph& graph, std::uint64_t source);

/// Maximum distance over all ordered pairs; the paper proves this equals k.
int diameter(const DeBruijnGraph& graph);

/// Average of D(X,Y) over all ordered pairs (X,Y), X == Y included with
/// D = 0 — the convention under which equation (5) holds exactly.
double average_distance(const DeBruijnGraph& graph);

}  // namespace dbn
