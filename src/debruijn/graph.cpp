#include "debruijn/graph.hpp"

#include <algorithm>
#include <set>

#include "common/contract.hpp"

namespace dbn {

DeBruijnGraph::DeBruijnGraph(std::uint32_t radix, std::size_t k,
                             Orientation orientation)
    : radix_(radix),
      k_(k),
      orientation_(orientation),
      n_(Word::vertex_count(radix, k)),
      top_place_(n_ / radix) {}

std::uint64_t DeBruijnGraph::left_shift_rank(std::uint64_t rank, Digit a) const {
  DBN_REQUIRE(rank < n_ && a < radix_, "left_shift_rank: argument out of range");
  return (rank % top_place_) * radix_ + a;
}

std::uint64_t DeBruijnGraph::right_shift_rank(std::uint64_t rank, Digit a) const {
  DBN_REQUIRE(rank < n_ && a < radix_, "right_shift_rank: argument out of range");
  return rank / radix_ + static_cast<std::uint64_t>(a) * top_place_;
}

std::vector<std::uint64_t> DeBruijnGraph::neighbors(std::uint64_t rank) const {
  std::vector<std::uint64_t> out;
  out.reserve(2 * radix_);
  for (Digit a = 0; a < radix_; ++a) {
    out.push_back(left_shift_rank(rank, a));
  }
  if (orientation_ == Orientation::Undirected) {
    for (Digit a = 0; a < radix_; ++a) {
      out.push_back(right_shift_rank(rank, a));
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    out.erase(std::remove(out.begin(), out.end(), rank), out.end());
  }
  return out;
}

bool DeBruijnGraph::has_edge(std::uint64_t from, std::uint64_t to) const {
  DBN_REQUIRE(from < n_ && to < n_, "has_edge: rank out of range");
  // `to` is a left shift of `from` iff they agree on the overlapping k-1
  // digits: from mod d^(k-1) == to div d.
  const bool left = (from % top_place_) == to / radix_;
  if (orientation_ == Orientation::Directed) {
    return left;
  }
  const bool right = (to % top_place_) == from / radix_;
  return (left || right) && from != to;
}

std::vector<std::vector<std::uint64_t>> DeBruijnGraph::adjacency(
    std::uint64_t max_vertices) const {
  DBN_REQUIRE(n_ <= max_vertices,
              "adjacency: graph too large to materialize (raise max_vertices)");
  std::vector<std::vector<std::uint64_t>> adj(n_);
  for (std::uint64_t v = 0; v < n_; ++v) {
    adj[v] = neighbors(v);
  }
  return adj;
}

std::map<std::size_t, std::uint64_t> DeBruijnGraph::degree_census(
    std::uint64_t max_vertices) const {
  DBN_REQUIRE(n_ <= max_vertices,
              "degree_census: graph too large (raise max_vertices)");
  std::map<std::size_t, std::uint64_t> census;
  for (std::uint64_t v = 0; v < n_; ++v) {
    std::size_t degree = 0;
    if (orientation_ == Orientation::Directed) {
      // Incident arcs: d out + d in, minus both endpoints of a self-loop
      // (X -> X exists iff X is a constant word).
      degree = 2 * static_cast<std::size_t>(radix_);
      if (left_shift_rank(v, static_cast<Digit>(v % radix_)) == v) {
        degree -= 2;
      }
    } else {
      degree = neighbors(v).size();  // distinct non-self neighbors
    }
    ++census[degree];
  }
  return census;
}

}  // namespace dbn
