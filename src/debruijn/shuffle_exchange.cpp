#include "debruijn/shuffle_exchange.hpp"

#include <algorithm>
#include <deque>

#include "common/contract.hpp"

namespace dbn {

ShuffleExchangeGraph::ShuffleExchangeGraph(std::size_t k) : k_(k) {
  DBN_REQUIRE(k_ >= 1 && k_ < 63, "ShuffleExchangeGraph requires 1 <= k < 63");
  n_ = std::uint64_t{1} << k_;
}

std::uint64_t ShuffleExchangeGraph::shuffle(std::uint64_t v) const {
  DBN_REQUIRE(v < n_, "shuffle: vertex out of range");
  const std::uint64_t top = (v >> (k_ - 1)) & 1;
  return ((v << 1) | top) & (n_ - 1);
}

std::uint64_t ShuffleExchangeGraph::unshuffle(std::uint64_t v) const {
  DBN_REQUIRE(v < n_, "unshuffle: vertex out of range");
  const std::uint64_t low = v & 1;
  return (v >> 1) | (low << (k_ - 1));
}

std::uint64_t ShuffleExchangeGraph::exchange(std::uint64_t v) const {
  DBN_REQUIRE(v < n_, "exchange: vertex out of range");
  return v ^ 1;
}

std::vector<std::uint64_t> ShuffleExchangeGraph::neighbors(
    std::uint64_t v) const {
  std::vector<std::uint64_t> out = {shuffle(v), unshuffle(v), exchange(v)};
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  out.erase(std::remove(out.begin(), out.end(), v), out.end());
  return out;
}

int ShuffleExchangeGraph::eccentricity(std::uint64_t v) const {
  std::vector<int> dist(n_, -1);
  std::deque<std::uint64_t> frontier;
  dist[v] = 0;
  frontier.push_back(v);
  int ecc = 0;
  while (!frontier.empty()) {
    const std::uint64_t u = frontier.front();
    frontier.pop_front();
    for (const std::uint64_t w : neighbors(u)) {
      if (dist[w] == -1) {
        dist[w] = dist[u] + 1;
        ecc = std::max(ecc, dist[w]);
        frontier.push_back(w);
      }
    }
  }
  for (std::uint64_t u = 0; u < n_; ++u) {
    DBN_ASSERT(dist[u] >= 0, "SE(k) is connected");
  }
  return ecc;
}

int ShuffleExchangeGraph::diameter() const {
  int diam = 0;
  for (std::uint64_t v = 0; v < n_; ++v) {
    diam = std::max(diam, eccentricity(v));
  }
  return diam;
}

}  // namespace dbn
