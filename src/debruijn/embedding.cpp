#include "debruijn/embedding.hpp"

#include "common/contract.hpp"
#include "debruijn/sequence.hpp"

namespace dbn {

std::vector<std::uint64_t> ring_embedding(std::uint32_t radix, std::size_t k) {
  return hamiltonian_cycle(radix, k);
}

std::vector<std::uint64_t> linear_array_embedding(std::uint32_t radix,
                                                  std::size_t k) {
  return hamiltonian_cycle(radix, k);  // drop the wrap-around edge
}

std::vector<std::uint64_t> complete_binary_tree_embedding(std::size_t k) {
  DBN_REQUIRE(k >= 1 && k < 63, "tree embedding requires 1 <= k < 63");
  const std::uint64_t n = std::uint64_t{1} << k;
  std::vector<std::uint64_t> node(n, 0);
  // Heap index n_i written in binary, left-padded to k bits, is the vertex
  // word; the child edges append one bit, which is exactly a left shift
  // because every internal index is < 2^(k-1) (leading bit 0 gets dropped).
  for (std::uint64_t i = 1; i < n; ++i) {
    node[i] = i;
  }
  return node;
}

std::vector<Word> shuffle_emulation(const Word& w) {
  DBN_REQUIRE(w.radix() == 2, "shuffle-exchange emulation is binary (d = 2)");
  return {w, w.left_shift(w.digit(0))};
}

std::vector<Word> exchange_emulation(const Word& w) {
  DBN_REQUIRE(w.radix() == 2, "shuffle-exchange emulation is binary (d = 2)");
  const std::size_t k = w.length();
  const Digit last = w.digit(k - 1);
  // Right shift (prepend the to-be-dropped last bit, any digit works), then
  // left shift re-appending the flipped bit: (x1..xk) -> (xk, x1..x_{k-1})
  // -> (x1..x_{k-1}, ¬xk). Both moves are undirected de Bruijn edges.
  const Word mid = w.right_shift(last);
  const Word target = mid.left_shift(1 - last);
  return {w, mid, target};
}

}  // namespace dbn
