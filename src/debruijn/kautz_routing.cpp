#include "debruijn/kautz_routing.hpp"

#include "common/contract.hpp"
#include "strings/failure.hpp"

namespace dbn {

namespace {

void check_kautz_words(const KautzGraph& graph, const Word& x, const Word& y) {
  DBN_REQUIRE(x.radix() == graph.degree() + 1 && x.length() == graph.k() &&
                  y.radix() == graph.degree() + 1 && y.length() == graph.k(),
              "endpoints must belong to this Kautz graph");
  for (std::size_t i = 1; i < x.length(); ++i) {
    DBN_REQUIRE(x.digit(i) != x.digit(i - 1) && y.digit(i) != y.digit(i - 1),
                "endpoints must be Kautz words (adjacent digits differ)");
  }
}

}  // namespace

int kautz_directed_distance(const KautzGraph& graph, const Word& x,
                            const Word& y) {
  check_kautz_words(graph, x, y);
  return static_cast<int>(graph.k()) -
         strings::suffix_prefix_overlap(x.symbols(), y.symbols());
}

RoutingPath kautz_route(const KautzGraph& graph, const Word& x, const Word& y) {
  check_kautz_words(graph, x, y);
  if (x == y) {
    return RoutingPath{};
  }
  const int l = strings::suffix_prefix_overlap(x.symbols(), y.symbols());
  RoutingPath path;
  for (std::size_t i = static_cast<std::size_t>(l); i < y.length(); ++i) {
    path.push({ShiftType::Left, y.digit(i)});
  }
  return path;
}

}  // namespace dbn
