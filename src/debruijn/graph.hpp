// The de Bruijn graph DG(d,k) in its directed and undirected variants
// (paper Section 1), with implicit rank-level adjacency (O(1) per neighbor,
// no materialization) plus explicit adjacency lists and a degree census for
// validation of the structural claims of the paper's introduction.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "debruijn/word.hpp"

namespace dbn {

/// Directed: edges X -> X^-(a) (moves are left shifts only).
/// Undirected: edges {X, X^-(a)} and {X, X^+(a)} (moves are both shifts).
enum class Orientation { Directed, Undirected };

/// DG(d,k). Vertices are identified by their rank in [0, d^k) (see
/// Word::rank); the graph is implicit, so construction is O(1) and any
/// (d,k) with d^k < 2^64 is representable. Methods that enumerate all
/// vertices state so explicitly.
class DeBruijnGraph {
 public:
  DeBruijnGraph(std::uint32_t radix, std::size_t k, Orientation orientation);

  std::uint32_t radix() const { return radix_; }
  std::size_t k() const { return k_; }
  Orientation orientation() const { return orientation_; }
  std::uint64_t vertex_count() const { return n_; }

  Word word(std::uint64_t rank) const { return Word::from_rank(radix_, k_, rank); }

  /// Rank of X^-(a): (rank * d + a) mod d^k.
  std::uint64_t left_shift_rank(std::uint64_t rank, Digit a) const;

  /// Rank of X^+(a): rank / d + a * d^(k-1).
  std::uint64_t right_shift_rank(std::uint64_t rank, Digit a) const;

  /// Ranks reachable in one move. Directed: the d left shifts (out-
  /// neighbors). Undirected: left and right shifts, deduplicated, with the
  /// vertex itself excluded (self-loops never shorten a path).
  std::vector<std::uint64_t> neighbors(std::uint64_t rank) const;

  /// True iff a single move goes from `from` to `to`.
  bool has_edge(std::uint64_t from, std::uint64_t to) const;

  /// Explicit adjacency lists (index = rank). Enumerates all vertices;
  /// requires vertex_count() <= max_vertices (guards accidental blowups).
  std::vector<std::vector<std::uint64_t>> adjacency(
      std::uint64_t max_vertices = 1u << 22) const;

  /// Degree census after removing loops and redundant (parallel) edges, as
  /// in the paper's Section 1 discussion. Maps degree -> vertex count.
  /// Directed degree counts incident arcs (in + out); undirected degree
  /// counts distinct neighbors. Enumerates all vertices.
  std::map<std::size_t, std::uint64_t> degree_census(
      std::uint64_t max_vertices = 1u << 22) const;

 private:
  std::uint32_t radix_;
  std::size_t k_;
  Orientation orientation_;
  std::uint64_t n_;        // d^k
  std::uint64_t top_place_;  // d^(k-1)
};

}  // namespace dbn
