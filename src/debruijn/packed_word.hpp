// A bit-packed vertex of DG(d,k): the digits of a Word in one 128-bit
// lane (strings::PackedBuf) instead of a heap vector.
//
// PackedWord mirrors Word's shift/rank/compare API digit for digit so the
// two representations are interchangeable wherever they both exist —
// tests/test_packed_word.cpp pins the equivalence exhaustively. It exists
// for the hot paths: a shift is two lane operations instead of a
// std::rotate, equality is one integer compare, and the packed matching
// kernels (strings/packed.hpp) consume the buffer directly. The
// representation covers d <= 4 up to k = 64 and d <= 16 up to k = 32
// (strings::packable); larger networks stay on Word.
#pragma once

#include <cstdint>
#include <functional>

#include "debruijn/word.hpp"
#include "strings/packed.hpp"

namespace dbn {

class PackedWord {
 public:
  /// The all-zero word of length k. Requires PackedWord::packable(radix, k).
  PackedWord(std::uint32_t radix, std::size_t k);

  /// Whether DG(radix, k) vertices fit the packed representation.
  static bool packable(std::uint32_t radix, std::size_t k);

  /// Conversions to and from the vector-backed representation.
  static PackedWord from_word(const Word& w);
  Word to_word() const;

  /// Same contract as Word::from_rank / Word::rank.
  static PackedWord from_rank(std::uint32_t radix, std::size_t k,
                              std::uint64_t rank);
  std::uint64_t rank() const;

  std::uint32_t radix() const { return radix_; }
  std::size_t length() const { return buf_.size; }

  /// x_{i+1} in the paper's 1-based notation; i in [0, k).
  Digit digit(std::size_t i) const;
  void set_digit(std::size_t i, Digit v);

  /// X^-(a): drop the first digit, append a (type-L neighbor).
  PackedWord left_shift(Digit a) const;
  /// X^+(a): prepend a, drop the last digit (type-R neighbor).
  PackedWord right_shift(Digit a) const;
  void left_shift_inplace(Digit a);
  void right_shift_inplace(Digit a);

  /// The reversal (x_k, ..., x_1).
  PackedWord reversed() const;

  /// The underlying lane, consumable by the strings::*_packed kernels.
  const strings::PackedBuf& packed() const { return buf_; }

  friend bool operator==(const PackedWord& a, const PackedWord& b) = default;
  /// Lexicographic digit order, matching Word's ordering.
  friend std::strong_ordering operator<=>(const PackedWord& a,
                                          const PackedWord& b);

 private:
  std::uint32_t radix_ = 0;
  strings::PackedBuf buf_;
};

}  // namespace dbn

template <>
struct std::hash<dbn::PackedWord> {
  std::size_t operator()(const dbn::PackedWord& w) const noexcept {
    // Same digit-fold as std::hash<Word> so mixed-representation tables
    // hash equal vertices identically.
    std::size_t h = 0xcbf29ce484222325ull ^ w.radix();
    for (std::size_t i = 0; i < w.length(); ++i) {
      h ^= w.digit(i);
      h *= 0x100000001b3ull;
    }
    return h;
  }
};
