#include "debruijn/word.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/contract.hpp"

namespace dbn {

Word::Word(std::uint32_t radix, std::vector<Digit> digits)
    : radix_(radix), digits_(std::move(digits)) {
  DBN_REQUIRE(radix_ >= 1, "Word requires radix d >= 1");
  DBN_REQUIRE(!digits_.empty(), "Word requires length k >= 1");
  for (const Digit x : digits_) {
    DBN_REQUIRE(x < radix_, "Word digit out of range [0, d)");
  }
}

Word Word::zero(std::uint32_t radix, std::size_t k) {
  DBN_REQUIRE(k >= 1, "Word requires length k >= 1");
  return Word(radix, std::vector<Digit>(k, 0));
}

std::uint64_t Word::vertex_count(std::uint32_t radix, std::size_t k) {
  DBN_REQUIRE(radix >= 1 && k >= 1, "vertex_count requires d >= 1, k >= 1");
  std::uint64_t n = 1;
  for (std::size_t i = 0; i < k; ++i) {
    DBN_REQUIRE(n <= std::numeric_limits<std::uint64_t>::max() / radix,
                "d^k does not fit in 64 bits");
    n *= radix;
  }
  return n;
}

Word Word::from_rank(std::uint32_t radix, std::size_t k, std::uint64_t rank) {
  const std::uint64_t n = vertex_count(radix, k);
  DBN_REQUIRE(rank < n, "from_rank: rank out of range [0, d^k)");
  std::vector<Digit> digits(k, 0);
  for (std::size_t i = k; i-- > 0;) {
    digits[i] = static_cast<Digit>(rank % radix);
    rank /= radix;
  }
  return Word(radix, std::move(digits));
}

Digit Word::digit(std::size_t i) const {
  DBN_REQUIRE(i < digits_.size(), "Word::digit index out of range");
  return digits_[i];
}

std::uint64_t Word::rank() const {
  std::uint64_t r = 0;
  for (const Digit x : digits_) {
    r = r * radix_ + x;
  }
  return r;
}

Word Word::left_shift(Digit a) const {
  Word out = *this;
  out.left_shift_inplace(a);
  return out;
}

Word Word::right_shift(Digit a) const {
  Word out = *this;
  out.right_shift_inplace(a);
  return out;
}

void Word::left_shift_inplace(Digit a) {
  DBN_REQUIRE(a < radix_, "left_shift digit out of range [0, d)");
  std::rotate(digits_.begin(), digits_.begin() + 1, digits_.end());
  digits_.back() = a;
}

void Word::right_shift_inplace(Digit a) {
  DBN_REQUIRE(a < radix_, "right_shift digit out of range [0, d)");
  std::rotate(digits_.begin(), digits_.end() - 1, digits_.end());
  digits_.front() = a;
}

Word Word::reversed() const {
  return Word(radix_, std::vector<Digit>(digits_.rbegin(), digits_.rend()));
}

std::string Word::to_string() const {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < digits_.size(); ++i) {
    os << (i == 0 ? "" : ",") << digits_[i];
  }
  os << ")";
  return os.str();
}

}  // namespace dbn
