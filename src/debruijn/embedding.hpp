// Embeddings of standard architectures into the de Bruijn network.
//
// The paper's introduction motivates DN(d,k) by its versatility (Samatham &
// Pradhan 1989): the binary network can emulate linear arrays, rings,
// complete binary trees, and shuffle-exchange networks. This module builds
// those embeddings explicitly so the claims can be checked and demonstrated
// (see examples/embeddings_tour.cpp and tests/test_embedding.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "debruijn/graph.hpp"
#include "debruijn/word.hpp"

namespace dbn {

/// Ring of d^k nodes embedded with dilation 1 (a Hamiltonian cycle):
/// ring position i -> the returned rank at index i; consecutive positions
/// (cyclically) are adjacent in the directed (hence also undirected) graph.
std::vector<std::uint64_t> ring_embedding(std::uint32_t radix, std::size_t k);

/// Linear array of d^k nodes with dilation 1 (a Hamiltonian path).
std::vector<std::uint64_t> linear_array_embedding(std::uint32_t radix,
                                                  std::size_t k);

/// Complete binary tree with 2^k - 1 nodes embedded in DG(2,k) with
/// dilation 1 (Samatham–Pradhan): heap index n in [1, 2^k) maps to the
/// vertex whose k-bit word is the binary representation of n; the edges
/// n -> 2n and n -> 2n+1 are left-shift edges. Index 0 of the returned
/// vector is unused (heap indexing).
std::vector<std::uint64_t> complete_binary_tree_embedding(std::size_t k);

/// One shuffle move of the shuffle-exchange network SE(k) (w -> rotate
/// left), emulated as a single de Bruijn hop: returns {w, sigma(w)}.
std::vector<Word> shuffle_emulation(const Word& w);

/// One exchange move of SE(k) (flip the last bit), emulated with dilation 2:
/// returns {w, intermediate, w with last bit flipped}; consecutive words are
/// adjacent in the undirected DG(2,k) (or equal, for the degenerate shift at
/// a constant word).
std::vector<Word> exchange_emulation(const Word& w);

}  // namespace dbn
