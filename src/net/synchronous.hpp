// Cycle-accurate synchronous network model — a second, independently
// coded evaluation substrate for DN(d,k).
//
// Time advances in unit rounds; every directed link moves at most one
// message per round (FIFO); forwarding at a site is instantaneous. For
// unit link delay this model and the discrete-event simulator
// (net/simulator.hpp) describe the same network, so their per-message
// latencies must coincide exactly on deterministic workloads — a strong
// cross-substrate validation the test suite performs. The DES scales
// better (it skips idle time); the synchronous model is simpler to reason
// about and mirrors how NoC papers evaluate routers.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "debruijn/graph.hpp"
#include "net/message.hpp"
#include "net/simulator.hpp"

namespace dbn::net {

class SynchronousNetwork {
 public:
  /// Uses the same configuration type as the DES; link_delay is ignored
  /// (every link moves one message per round by definition).
  explicit SynchronousNetwork(const SimConfig& config);

  const DeBruijnGraph& graph() const { return graph_; }

  void fail_node(std::uint64_t rank);

  /// Schedules a message to enter the network at the given round (>= the
  /// current round).
  void inject(int round, Message message);

  /// Runs rounds until every message has reached an outcome (or
  /// `max_rounds` passes, as a livelock guard). Returns the final round.
  int run(int max_rounds = 1 << 20);

  /// Same accounting structure as the DES (latency measured in rounds).
  const SimStats& stats() const { return stats_; }

  int now() const { return round_; }

 private:
  struct Flight {
    Message message;
    int injected_round = 0;
    std::size_t cursor = 0;
    std::uint64_t at = 0;
  };

  void process_at_site(std::size_t flight_index);

  SimConfig config_;
  DeBruijnGraph graph_;
  std::vector<Flight> flights_;
  std::vector<bool> failed_;
  // Link output queues, keyed by from * N + to; ordered map keeps round
  // processing deterministic.
  std::map<std::uint64_t, std::deque<std::size_t>> queues_;
  std::multimap<int, std::size_t> pending_;  // round -> flight
  SimStats stats_;
  Rng rng_;
  int round_ = 0;
};

}  // namespace dbn::net
