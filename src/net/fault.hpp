// Fault tolerance in DN(d,k).
//
// The paper's introduction cites Pradhan & Reddy: de Bruijn networks
// "tolerate up to d-1 processor failures". This module provides the
// machinery to measure that claim: a fault-aware router (exact BFS on the
// surviving subgraph) and connectivity probes used by the S2 benchmark.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "core/path.hpp"
#include "debruijn/graph.hpp"

namespace dbn::net {

/// Routes around a fixed set of failed sites with BFS on the surviving
/// subgraph. Exact (finds a path iff one exists) but O(N d) per query —
/// this is the recovery path, not the common case.
class FaultAwareRouter {
 public:
  /// `failed[rank]` marks dead sites. The graph must be materializable.
  FaultAwareRouter(const DeBruijnGraph& graph, std::vector<bool> failed);

  /// A shortest surviving path from x to y avoiding failed sites, or
  /// std::nullopt if none exists (or an endpoint is dead).
  std::optional<RoutingPath> route(const Word& x, const Word& y) const;

  const std::vector<bool>& failed() const { return failed_; }

 private:
  const DeBruijnGraph& graph_;
  std::vector<bool> failed_;
};

/// True iff every pair of surviving sites remains mutually reachable after
/// removing the failed ones. O(N d) (one BFS from the first survivor; for
/// directed graphs checks forward and backward reachability).
bool survivors_connected(const DeBruijnGraph& graph,
                         const std::vector<bool>& failed);

/// Draws `count` distinct failed ranks uniformly at random.
std::vector<bool> random_fault_set(const DeBruijnGraph& graph,
                                   std::size_t count, Rng& rng);

/// Shortest path avoiding failed sites and failed *directed links* (keys
/// are from * N + to, matching Simulator::fail_link). std::nullopt when no
/// surviving path exists. O(N d) BFS.
std::optional<RoutingPath> route_avoiding(
    const DeBruijnGraph& graph, const std::vector<bool>& failed_nodes,
    const std::unordered_set<std::uint64_t>& failed_links, const Word& x,
    const Word& y);

}  // namespace dbn::net
