// Fault tolerance in DN(d,k).
//
// The paper's introduction cites Pradhan & Reddy: de Bruijn networks
// "tolerate up to d-1 processor failures". This module provides the
// machinery to measure that claim: a fault-aware router (exact BFS on the
// surviving subgraph) and connectivity probes used by the S2 benchmark.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "core/path.hpp"
#include "debruijn/graph.hpp"

namespace dbn::net {

/// One entry of a FaultSchedule.
enum class FaultEventKind : std::uint8_t {
  SiteCrash,
  SiteRecover,
  LinkCrash,    // the directed link a -> b
  LinkRecover,
};

/// "site.crash", "site.recover", "link.crash", "link.recover" (the event
/// names used by the trace event log).
const char* fault_event_kind_name(FaultEventKind kind);

struct FaultEvent {
  double time = 0.0;
  FaultEventKind kind = FaultEventKind::SiteCrash;
  std::uint64_t a = 0;  // site rank, or link source
  std::uint64_t b = 0;  // link target (unused for site events)

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// A time-stamped crash/recover script for sites and directed links,
/// applied by the Simulator as its clock advances (replacing the static
/// t=0-only fault model). Events at time t take effect before any message
/// arrival at time t: a site crashing at the instant a message lands wins.
/// Recovering something that is up (or crashing something already down) is
/// a no-op, so overlapping flap windows compose safely.
class FaultSchedule {
 public:
  void site_crash(double time, std::uint64_t rank);
  void site_recover(double time, std::uint64_t rank);
  void link_crash(double time, std::uint64_t from, std::uint64_t to);
  void link_recover(double time, std::uint64_t from, std::uint64_t to);

  /// A flapping site: starting at `start`, `cycles` repetitions of
  /// (down for `down_for`, then up for `up_for`).
  void site_flap(std::uint64_t rank, double start, double down_for,
                 double up_for, int cycles);
  /// Same for a directed link.
  void link_flap(std::uint64_t from, std::uint64_t to, double start,
                 double down_for, double up_for, int cycles);

  void add(const FaultEvent& event);

  /// Events sorted by time; ties keep insertion order (stable).
  const std::vector<FaultEvent>& events() const;

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); sorted_ = true; }

  friend bool operator==(const FaultSchedule& lhs, const FaultSchedule& rhs) {
    return lhs.events() == rhs.events();
  }

 private:
  mutable std::vector<FaultEvent> events_;
  mutable bool sorted_ = true;
};

/// Routes around a fixed set of failed sites with BFS on the surviving
/// subgraph. Exact (finds a path iff one exists) but O(N d) per query —
/// this is the recovery path, not the common case.
class FaultAwareRouter {
 public:
  /// `failed[rank]` marks dead sites. The graph must be materializable.
  FaultAwareRouter(const DeBruijnGraph& graph, std::vector<bool> failed);

  /// A shortest surviving path from x to y avoiding failed sites, or
  /// std::nullopt if none exists (or an endpoint is dead).
  std::optional<RoutingPath> route(const Word& x, const Word& y) const;

  const std::vector<bool>& failed() const { return failed_; }

 private:
  const DeBruijnGraph& graph_;
  std::vector<bool> failed_;
};

/// True iff every pair of surviving sites remains mutually reachable after
/// removing the failed ones. O(N d) (one BFS from the first survivor; for
/// directed graphs checks forward and backward reachability).
bool survivors_connected(const DeBruijnGraph& graph,
                         const std::vector<bool>& failed);

/// Draws `count` distinct failed ranks uniformly at random.
std::vector<bool> random_fault_set(const DeBruijnGraph& graph,
                                   std::size_t count, Rng& rng);

/// Shortest path avoiding failed sites and failed *directed links* (keys
/// are from * N + to, matching Simulator::fail_link). std::nullopt when no
/// surviving path exists. O(N d) BFS.
std::optional<RoutingPath> route_avoiding(
    const DeBruijnGraph& graph, const std::vector<bool>& failed_nodes,
    const std::unordered_set<std::uint64_t>& failed_links, const Word& x,
    const Word& y);

}  // namespace dbn::net
