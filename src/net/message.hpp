// The paper's message format (Section 3.1): "when a message is generated,
// it is composed of five fields: control code, source address, destination
// address, routing path, and the message content."
//
// This module defines that message and a compact binary wire codec, so the
// simulator moves exactly what a DN(d,k) site would move.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/path.hpp"
#include "debruijn/word.hpp"

namespace dbn::net {

/// The control-code field. The paper leaves the values open; the simulator
/// uses Data for payload traffic and Probe for measurement traffic.
enum class ControlCode : std::uint8_t {
  Data = 0,
  Ack = 1,
  Probe = 2,
};

/// A DN(d,k) message. The routing-path field is consumed left to right by
/// forwarding sites; `cursor` marks how many hops have been consumed (it is
/// simulator state, not serialized).
struct Message {
  ControlCode control = ControlCode::Data;
  Word source;
  Word destination;
  RoutingPath path;
  std::vector<std::uint8_t> payload;

  Message(ControlCode control_, Word source_, Word destination_,
          RoutingPath path_, std::vector<std::uint8_t> payload_ = {});

  friend bool operator==(const Message& a, const Message& b) = default;
};

/// Serializes the five fields into a length-prefixed little-endian buffer.
std::vector<std::uint8_t> encode(const Message& message);

/// Parses a buffer produced by encode. Returns std::nullopt on any
/// structural error (truncation, bad radix/digits, trailing bytes), never
/// throws on malformed input: the decoder is the trust boundary.
std::optional<Message> decode(const std::vector<std::uint8_t>& buffer);

}  // namespace dbn::net
