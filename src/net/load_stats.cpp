#include "net/load_stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/schema.hpp"
#include "net/simulator.hpp"

namespace dbn::net {

double gini_coefficient(std::vector<double> values) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    weighted += (2.0 * static_cast<double>(i + 1) - n - 1.0) * values[i];
    total += values[i];
  }
  if (total <= 0.0) {
    return 0.0;
  }
  return weighted / (n * total);
}

double gini_coefficient(const std::vector<std::uint64_t>& values) {
  std::vector<double> doubles(values.begin(), values.end());
  return gini_coefficient(std::move(doubles));
}

double coefficient_of_variation(const std::vector<std::uint64_t>& values) {
  obs::Summary summary;
  for (const std::uint64_t v : values) {
    summary.observe(static_cast<double>(v));
  }
  return summary.coefficient_of_variation();
}

double jain_fairness_index(const std::vector<double>& values) {
  double total = 0.0;
  double total_squares = 0.0;
  for (const double v : values) {
    total += v;
    total_squares += v * v;
  }
  if (values.empty() || total_squares <= 0.0) {
    return 1.0;
  }
  return (total * total) /
         (static_cast<double>(values.size()) * total_squares);
}

double jain_fairness_index(const std::vector<std::uint64_t>& values) {
  std::vector<double> doubles(values.begin(), values.end());
  return jain_fairness_index(doubles);
}

void record_sim_metrics(obs::MetricsRegistry& registry, const Simulator& sim) {
  const SimStats& stats = sim.stats();
  registry.counter("sim.injected").inc(stats.injected);
  registry.counter("sim.delivered").inc(stats.delivered);
  registry.counter("sim.dropped_fault").inc(stats.dropped_fault);
  registry.counter("sim.dropped_link").inc(stats.dropped_link);
  registry.counter("sim.dropped_overflow").inc(stats.dropped_overflow);
  registry.counter("sim.misdelivered").inc(stats.misdelivered);
  registry.counter(schema::metric::kSimDroppedTtl).inc(stats.dropped_ttl);
  registry.counter(schema::metric::kSimDeflections)
      .inc(stats.adaptive_deflections);
  registry.counter("sim.fault_events").inc(stats.fault_events_applied);

  obs::Histogram link_load = registry.histogram(
      "sim.link_load", {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
                        256.0, 512.0, 1024.0});
  const std::vector<std::uint64_t> loads = sim.link_transmissions();
  for (const std::uint64_t load : loads) {
    link_load.observe(static_cast<double>(load));
  }

  // Hop counts are bounded by twice the diameter for shortest paths; the
  // buckets leave headroom for adaptive detours.
  obs::Histogram hops = registry.histogram(
      "sim.hops", {0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0});
  for (const std::uint64_t h : stats.hop_counts) {
    hops.observe(static_cast<double>(h));
  }

  obs::Histogram latency = registry.histogram(
      "sim.latency", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
                      512.0, 1024.0, 4096.0});
  for (const double l : stats.latencies) {
    latency.observe(l);
  }

  // Gauges are integral; store the balance metrics in fixed-point x1000.
  registry.gauge("sim.link_load_gini_milli")
      .set(static_cast<std::int64_t>(std::llround(
          gini_coefficient(loads) * 1000.0)));
  registry.gauge("sim.link_load_cov_milli")
      .set(static_cast<std::int64_t>(std::llround(
          coefficient_of_variation(loads) * 1000.0)));
  registry.gauge("sim.max_queue")
      .set(static_cast<std::int64_t>(stats.max_queue));
}

}  // namespace dbn::net
