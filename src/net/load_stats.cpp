#include "net/load_stats.hpp"

#include <algorithm>
#include <cmath>

namespace dbn::net {

double gini_coefficient(std::vector<double> values) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    weighted += (2.0 * static_cast<double>(i + 1) - n - 1.0) * values[i];
    total += values[i];
  }
  if (total <= 0.0) {
    return 0.0;
  }
  return weighted / (n * total);
}

double gini_coefficient(const std::vector<std::uint64_t>& values) {
  std::vector<double> doubles(values.begin(), values.end());
  return gini_coefficient(std::move(doubles));
}

double coefficient_of_variation(const std::vector<std::uint64_t>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double mean = 0.0;
  for (const std::uint64_t v : values) {
    mean += static_cast<double>(v);
  }
  mean /= static_cast<double>(values.size());
  if (mean == 0.0) {
    return 0.0;
  }
  double var = 0.0;
  for (const std::uint64_t v : values) {
    const double delta = static_cast<double>(v) - mean;
    var += delta * delta;
  }
  var /= static_cast<double>(values.size());
  return std::sqrt(var) / mean;
}

}  // namespace dbn::net
