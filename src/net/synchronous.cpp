#include "net/synchronous.hpp"

#include <algorithm>

#include "common/contract.hpp"
#include "core/hop_by_hop.hpp"

namespace dbn::net {

SynchronousNetwork::SynchronousNetwork(const SimConfig& config)
    : config_(config),
      graph_(config.radix, config.k, config.orientation),
      rng_(config.seed) {
  DBN_REQUIRE(graph_.vertex_count() <= (1u << 22),
              "synchronous model caps the network at 2^22 sites");
  failed_.resize(graph_.vertex_count(), false);
}

void SynchronousNetwork::fail_node(std::uint64_t rank) {
  DBN_REQUIRE(rank < graph_.vertex_count(), "fail_node: rank out of range");
  failed_[rank] = true;
}

void SynchronousNetwork::inject(int round, Message message) {
  DBN_REQUIRE(round >= round_, "cannot inject in a past round");
  DBN_REQUIRE(message.source.radix() == config_.radix &&
                  message.source.length() == config_.k,
              "message does not fit this network");
  const std::uint64_t src = message.source.rank();
  flights_.push_back(Flight{std::move(message), round, 0, src});
  pending_.emplace(round, flights_.size() - 1);
  ++stats_.injected;
}

void SynchronousNetwork::process_at_site(std::size_t flight_index) {
  Flight& flight = flights_[flight_index];
  const std::uint64_t at = flight.at;
  if (failed_[at]) {
    ++stats_.dropped_fault;
    return;
  }
  Hop hop;
  if (config_.forwarding == ForwardingMode::SourceRouted) {
    const RoutingPath& path = flight.message.path;
    if (flight.cursor == path.length()) {
      if (at == flight.message.destination.rank()) {
        ++stats_.delivered;
        stats_.total_hops += flight.cursor;
        const double latency =
            static_cast<double>(round_ - flight.injected_round);
        stats_.total_latency += latency;
        stats_.max_latency = std::max(stats_.max_latency, latency);
        stats_.latencies.push_back(latency);
      } else {
        ++stats_.misdelivered;
      }
      return;
    }
    hop = path.hop(flight.cursor);
  } else {
    if (at == flight.message.destination.rank()) {
      ++stats_.delivered;
      stats_.total_hops += flight.cursor;
      const double latency =
          static_cast<double>(round_ - flight.injected_round);
      stats_.total_latency += latency;
      stats_.max_latency = std::max(stats_.max_latency, latency);
      stats_.latencies.push_back(latency);
      return;
    }
    const Word here = graph_.word(at);
    hop = config_.orientation == Orientation::Directed
              ? next_hop_unidirectional(here, flight.message.destination)
              : next_hop_bidirectional(here, flight.message.destination);
  }
  Digit digit = hop.digit;
  if (hop.is_wildcard()) {
    digit = config_.wildcard_policy == WildcardPolicy::Random
                ? static_cast<Digit>(rng_.below(config_.radix))
                : 0;  // Zero and LeastQueue collapse to 0 here: the
                      // synchronous model has no queue introspection yet
  }
  const std::uint64_t to = hop.type == ShiftType::Left
                               ? graph_.left_shift_rank(at, digit)
                               : graph_.right_shift_rank(at, digit);
  ++flight.cursor;
  flight.at = to;
  auto& queue = queues_[at * graph_.vertex_count() + to];
  if (queue.size() >= config_.link_queue_capacity) {
    ++stats_.dropped_overflow;
    return;
  }
  stats_.max_queue = std::max(stats_.max_queue, queue.size() + 1);
  queue.push_back(flight_index);
}

int SynchronousNetwork::run(int max_rounds) {
  const auto process_due_injections = [&] {
    for (auto it = pending_.begin();
         it != pending_.end() && it->first <= round_;) {
      const std::size_t f = it->second;
      it = pending_.erase(it);
      process_at_site(f);  // a source forwards in the injection round
    }
  };
  process_due_injections();
  int guard = 0;
  while (!pending_.empty() ||
         std::any_of(queues_.begin(), queues_.end(),
                     [](const auto& kv) { return !kv.second.empty(); })) {
    DBN_REQUIRE(guard++ < max_rounds,
                "synchronous run exceeded max_rounds (livelock?)");
    ++round_;
    // One departure per link this round; arrivals are processed within the
    // round, so anything they enqueue moves no earlier than next round.
    std::vector<std::size_t> arrivals;
    for (auto& [key, queue] : queues_) {
      (void)key;
      if (!queue.empty()) {
        arrivals.push_back(queue.front());
        queue.pop_front();
      }
    }
    for (const std::size_t f : arrivals) {
      process_at_site(f);
    }
    process_due_injections();
  }
  return round_;
}

}  // namespace dbn::net
