#include "net/adaptive.hpp"

#include <algorithm>

#include "common/contract.hpp"
#include "core/distance.hpp"

namespace dbn::net {

AdaptiveResult adaptive_route(const DeBruijnGraph& graph,
                              const std::vector<bool>& failed, const Word& x,
                              const Word& y, Rng& rng,
                              const AdaptiveConfig& config) {
  DBN_REQUIRE(failed.size() == graph.vertex_count(),
              "failed mask size must equal the vertex count");
  DBN_REQUIRE(x.radix() == graph.radix() && x.length() == graph.k() &&
                  y.radix() == graph.radix() && y.length() == graph.k(),
              "route endpoints must belong to the graph");
  DBN_REQUIRE(!failed[x.rank()] && !failed[y.rank()],
              "adaptive_route endpoints must be live");
  DBN_REQUIRE(graph.orientation() == Orientation::Undirected,
              "adaptive routing uses the bi-directional distance function");

  const int ttl = config.ttl > 0 ? config.ttl
                                 : 4 * static_cast<int>(graph.k());
  AdaptiveResult result;
  Word at = x;
  while (!(at == y)) {
    if (result.hops >= ttl) {
      return result;  // undelivered
    }
    const int here = undirected_distance(at, y);
    std::vector<Word> improving;
    std::vector<Word> sideways;
    for (const std::uint64_t r : graph.neighbors(at.rank())) {
      if (failed[r]) {
        continue;
      }
      const Word next = graph.word(r);
      const int dist = undirected_distance(next, y);
      if (dist == here - 1) {
        improving.push_back(next);
      } else if (dist == here) {
        sideways.push_back(next);
      }
    }
    const bool take_sideways =
        improving.empty() ||
        (!sideways.empty() && rng.chance(config.jitter));
    const std::vector<Word>& pool = take_sideways ? sideways : improving;
    if (pool.empty()) {
      return result;  // stuck: every useful neighbor is dead
    }
    at = pool[rng.below(pool.size())];
    ++result.hops;
  }
  result.delivered = true;
  return result;
}

}  // namespace dbn::net
