#include "net/adaptive.hpp"

#include <algorithm>
#include <memory>

#include "common/contract.hpp"
#include "core/distance.hpp"
#include "obs/trace.hpp"

namespace dbn::net {

AdaptiveResult adaptive_route(const DeBruijnGraph& graph,
                              const std::vector<bool>& failed, const Word& x,
                              const Word& y, Rng& rng,
                              const AdaptiveConfig& config) {
  DBN_REQUIRE(failed.size() == graph.vertex_count(),
              "failed mask size must equal the vertex count");
  DBN_REQUIRE(x.radix() == graph.radix() && x.length() == graph.k() &&
                  y.radix() == graph.radix() && y.length() == graph.k(),
              "route endpoints must belong to the graph");
  DBN_REQUIRE(!failed[x.rank()] && !failed[y.rank()],
              "adaptive_route endpoints must be live");
  DBN_REQUIRE(graph.orientation() == Orientation::Undirected,
              "adaptive routing uses the bi-directional distance function");
  DBN_REQUIRE(config.layers == nullptr ||
                  config.layers->vertex_count() == graph.vertex_count(),
              "layer table must cover the routed graph");

  // One cache interaction per walk: the destination's view is pinned here
  // and every per-hop decision below is plain array reads.
  const std::shared_ptr<const LayerTable::View> view =
      config.layers != nullptr ? config.layers->view(y) : nullptr;
  const auto distance_to_y = [&](const Word& w) {
    return view != nullptr ? view->distance(w.rank())
                           : undirected_distance(w, y);
  };

  // 4k covers greedy walks with detours for k >= 2; at k = 1 it leaves a
  // 4-hop budget that real fault clusters exhaust, so floor it.
  const int ttl = config.ttl > 0
                      ? config.ttl
                      : std::max(4 * static_cast<int>(graph.k()), 8);
  AdaptiveResult result;
  obs::Span span;
  if (obs::tracing_enabled()) {
    span = obs::Span::begin("adaptive_route", "adaptive",
                            obs::TraceClock::Logical, 0.0);
    span.arg(obs::targ("x", x.to_string()))
        .arg(obs::targ("y", y.to_string()))
        .arg(obs::targ("ttl", ttl))
        .arg(obs::targ("scoring", view != nullptr ? "layer-table" : "rescore"));
  }
  Word at = x;
  std::uint64_t previous = graph.vertex_count();  // sentinel: no previous
  std::vector<Word> improving;  // layer Closer
  std::vector<Word> sideways;   // layer Same
  std::vector<Word> backward;   // nearest Farther layer
  while (!(at == y)) {
    if (result.hops >= ttl) {
      if (span) {
        span.arg(obs::targ("delivered", "false"))
            .arg(obs::targ("reason", "ttl"));
        span.end(static_cast<double>(result.hops));
      }
      return result;  // undelivered
    }
    const int here = distance_to_y(at);
    improving.clear();
    sideways.clear();
    backward.clear();
    int backward_best = 0;
    for (const std::uint64_t r : graph.neighbors(at.rank())) {
      if (failed[r]) {
        continue;
      }
      const Word next = graph.word(r);
      const int dist = distance_to_y(next);
      const DistanceLayer layer = dist < here    ? DistanceLayer::Closer
                                  : dist == here ? DistanceLayer::Same
                                                 : DistanceLayer::Farther;
      switch (layer) {
        case DistanceLayer::Closer:
          improving.push_back(next);
          break;
        case DistanceLayer::Same:
          sideways.push_back(next);
          break;
        case DistanceLayer::Farther:
          if (!config.deflect) {
            break;
          }
          // In the undirected DG every Farther neighbor sits exactly one
          // layer out (the distance is a graph metric), so this minimum is
          // trivially the whole pool; tracking it keeps the deflection
          // choice well-defined for any distance source.
          if (backward.empty() || dist < backward_best) {
            backward_best = dist;
            backward.clear();
          }
          if (dist == backward_best) {
            backward.push_back(next);
          }
          break;
      }
    }
    const bool take_sideways =
        improving.empty() ||
        (!sideways.empty() && rng.chance(config.jitter));
    const std::vector<Word>* pool = take_sideways ? &sideways : &improving;
    bool deflected = false;
    if (pool->empty()) {
      if (backward.empty()) {
        if (span) {
          span.arg(obs::targ("delivered", "false"))
              .arg(obs::targ("reason", "stuck"));
          span.end(static_cast<double>(result.hops));
        }
        return result;  // stuck: every live neighbor is dead or none exist
      }
      // Deflect: retreat along the nearest Farther layer, but never
      // straight back to where we came from when any other escape exists.
      if (backward.size() > 1) {
        std::vector<Word> away;
        for (const Word& w : backward) {
          if (w.rank() != previous) {
            away.push_back(w);
          }
        }
        if (!away.empty()) {
          backward = std::move(away);
        }
      }
      pool = &backward;
      deflected = true;
    }
    previous = at.rank();
    at = (*pool)[rng.below(pool->size())];
    ++result.hops;
    result.deflections += deflected;
    const bool moved_sideways = !deflected && pool == &sideways;
    result.sideways_moves += moved_sideways;
    if (span) {
      span.instant("hop", static_cast<double>(result.hops - 1),
                   {obs::targ("to", at.to_string()),
                    obs::targ("move", deflected        ? "deflect"
                              : moved_sideways ? "sideways"
                                               : "improve"),
                    obs::targ("dist", here)});
    }
  }
  result.delivered = true;
  if (span) {
    span.arg(obs::targ("delivered", "true"));
    span.end(static_cast<double>(result.hops));
  }
  return result;
}

}  // namespace dbn::net
