// Parallel sorting on DN(d,k) — the Samatham-Pradhan versatility claim
// ("a versatile parallel processing and sorting network") made concrete.
//
// One value per site; sites are arranged along the dilation-1 linear-array
// embedding (a Hamiltonian path), and odd-even transposition sort runs N
// rounds of neighbor compare-exchange. Every exchange crosses a single
// de Bruijn link, so a round costs one link delay regardless of N — the
// point of embedding the array instead of routing arbitrary pairs.
#pragma once

#include <cstdint>
#include <vector>

namespace dbn::net {

struct SortEmulationResult {
  /// Values in array order after sorting (ascending).
  std::vector<std::uint64_t> sorted;
  /// Rounds executed until no exchange fired (<= N).
  std::size_t rounds = 0;
  /// Total compare-exchange operations that actually swapped.
  std::uint64_t exchanges = 0;
  /// Which site (rank) holds array position i.
  std::vector<std::uint64_t> site_of_position;
};

/// Runs odd-even transposition sort of `values` (one per site of DN(d,k),
/// so values.size() must equal d^k) over the linear-array embedding.
SortEmulationResult odd_even_transposition_sort(
    std::uint32_t radix, std::size_t k, std::vector<std::uint64_t> values);

}  // namespace dbn::net
