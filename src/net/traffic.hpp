// Workload generators for the DN(d,k) simulation benchmarks.
//
// Each generator produces a time-ordered injection schedule (when, from
// where, to where); the harness turns the (src, dst) pairs into messages
// with whichever routing algorithm and wildcard mode the experiment needs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "debruijn/word.hpp"

namespace dbn::net {

struct Injection {
  double time = 0.0;
  std::uint64_t source = 0;
  std::uint64_t destination = 0;
};

/// Poisson arrivals at each site with the given per-site rate over
/// [0, duration); destinations uniform over all sites (self included —
/// self-traffic delivers immediately and exercises the empty path).
std::vector<Injection> uniform_traffic(std::uint32_t radix, std::size_t k,
                                       double rate_per_node, double duration,
                                       Rng& rng);

/// Like uniform_traffic but a fraction `hotspot_fraction` of destinations
/// is redirected to one fixed hotspot site. The paper's "*" remark is about
/// exactly this kind of congestion.
std::vector<Injection> hotspot_traffic(std::uint32_t radix, std::size_t k,
                                       double rate_per_node, double duration,
                                       double hotspot_fraction,
                                       std::uint64_t hotspot, Rng& rng);

/// One message per site to a random permutation partner, all injected at
/// time 0 (a classic permutation-routing workload).
std::vector<Injection> permutation_traffic(std::uint32_t radix, std::size_t k,
                                           Rng& rng);

/// One message per site to the digit-reversed address, all at time 0.
/// A structured workload: X and reverse(X) share reversed blocks, which is
/// exactly what the r-side matching function exploits, so bi-directional
/// routes for reversal pairs are markedly shorter than the uni-directional
/// ones — a workload where Theorem 2's two-sided minimum shines (measured
/// in bench_routing_throughput).
std::vector<Injection> reversal_traffic(std::uint32_t radix, std::size_t k);

}  // namespace dbn::net
