// Reliable transfer on top of the lossy network: sender-side timeout and
// retransmission, the minimal protocol a real DN(d,k) deployment would run
// over the paper's raw forwarding (which silently drops on queue overflow
// and on failed sites).
//
// Each transfer is tagged with an id carried in the payload; the driver
// injects a batch, advances the simulator one timeout window at a time,
// and re-injects whatever was not delivered, re-routing every attempt
// (fresh wildcard choices give retransmissions an independent chance to
// miss transient congestion).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/path.hpp"
#include "net/simulator.hpp"

namespace dbn::net {

struct Transfer {
  std::uint64_t source = 0;
  std::uint64_t destination = 0;
};

struct ReliableConfig {
  double timeout = 64.0;    // window before a retransmission
  int max_attempts = 6;     // total tries per transfer
};

struct ReliableReport {
  std::uint64_t transfers = 0;
  std::uint64_t completed = 0;     // delivered at least once
  std::uint64_t retransmissions = 0;
  std::uint64_t abandoned = 0;     // max_attempts exhausted
  double completion_time = 0.0;    // clock when the last delivery landed
};

/// Routes each attempt; receives (source, destination, attempt index).
using AttemptRouter =
    std::function<RoutingPath(const Word&, const Word&, int attempt)>;

/// Drives `transfers` to completion over `sim` (which may have failed
/// sites and finite queues). Installs a delivery hook on the simulator;
/// any hook previously installed is replaced.
ReliableReport run_reliable(Simulator& sim, const std::vector<Transfer>& transfers,
                            const AttemptRouter& route,
                            const ReliableConfig& config = {});

}  // namespace dbn::net
