// Reliable transfer on top of the lossy network: sender-side timeout and
// retransmission, the minimal protocol a real DN(d,k) deployment would run
// over the paper's raw forwarding (which silently drops on queue overflow
// and on failed sites).
//
// Each transfer is tagged with an id carried in the payload. The driver
// injects a batch and retransmits per transfer on an exponential-backoff
// clock (base `timeout`, multiplied by `backoff` per retry, optionally
// capped and jittered by a seeded RNG so synchronized bursts decorrelate).
// Every attempt is re-routed (fresh wildcard choices and, with a
// fault-aware AttemptRouter, fresh knowledge of the fault state). A late
// original plus a retransmission can both land: the receiver-side
// deduplication accepts the first copy and counts the rest as
// duplicate_deliveries.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/path.hpp"
#include "net/simulator.hpp"

namespace dbn::net {

struct Transfer {
  std::uint64_t source = 0;
  std::uint64_t destination = 0;

  friend bool operator==(const Transfer&, const Transfer&) = default;
};

struct ReliableConfig {
  double timeout = 64.0;    // base window before the first retransmission
  int max_attempts = 6;     // total tries per transfer
  double backoff = 2.0;     // window multiplier per retry; 1.0 = fixed
  double max_timeout = 0.0; // cap on a single window; 0 = uncapped
  /// Each window is stretched by a uniform factor in [1, 1 + jitter),
  /// drawn from a per-transfer stream forked off `jitter_seed` — fully
  /// deterministic, independent of transfer interleaving.
  double jitter = 0.0;
  std::uint64_t jitter_seed = 0x5eed;
  /// Record a per-transfer attempt trace in the report (costs memory
  /// proportional to attempts).
  bool record_attempts = false;
  /// Observer invoked on every delivery of a protocol message (including
  /// duplicates), after the report accounting. Used by the chaos engine to
  /// check cross-layer invariants (e.g. no delivery to a dead site).
  std::function<void(const Message&, double time)> on_delivery;
};

/// Why an attempt fired.
enum class AttemptCause : std::uint8_t {
  Initial,  // the transfer's first send
  Timeout,  // the previous attempt's window expired
};

/// How an attempt resolved. Each protocol copy carries (transfer id,
/// attempt index) in its payload, so the simulator's delivery and drop
/// hooks attribute every outcome to the exact attempt that suffered it —
/// not just success/failure per transfer.
enum class AttemptOutcome : std::uint8_t {
  Pending,          // unresolved when the run drained (still queued/aborted)
  Delivered,        // the copy that completed the transfer
  Duplicate,        // landed after another copy had already completed it
  DroppedFault,     // hit a failed site
  DroppedLink,      // crossed a failed link
  DroppedOverflow,  // link queue over capacity
  Misdelivered,     // path exhausted at a wrong site
  DroppedTtl,       // adaptive walk exhausted its TTL
};

const char* attempt_cause_name(AttemptCause cause);
const char* attempt_outcome_name(AttemptOutcome outcome);

/// One send of one transfer.
struct AttemptRecord {
  int attempt = 0;      // 0-based
  double sent_at = 0.0;
  double window = 0.0;  // timeout armed for this attempt (backoff + jitter)
  /// Time actually waited since the previous attempt's send (the realized
  /// backoff, jitter included); 0 for the first attempt.
  double backoff_delay = 0.0;
  AttemptCause cause = AttemptCause::Initial;
  AttemptOutcome outcome = AttemptOutcome::Pending;
  double resolved_at = 0.0;  // when the outcome landed; 0 while Pending
};

struct TransferTrace {
  std::vector<AttemptRecord> attempts;
  bool completed = false;
  double completed_at = 0.0;  // first delivery; meaningless unless completed
  int delivered_attempt = -1;  // attempt index that completed it; -1 = none
};

struct ReliableReport {
  std::uint64_t transfers = 0;
  std::uint64_t completed = 0;     // delivered at least once
  std::uint64_t retransmissions = 0;
  std::uint64_t abandoned = 0;     // max_attempts exhausted
  std::uint64_t duplicate_deliveries = 0;  // copies after the first, deduped
  double completion_time = 0.0;    // clock when the last first-copy landed
  /// One trace per transfer, in order; empty unless record_attempts.
  std::vector<TransferTrace> traces;
};

/// Routes each attempt; receives (source, destination, attempt index).
using AttemptRouter =
    std::function<RoutingPath(const Word&, const Word&, int attempt)>;

/// Drives `transfers` to completion over `sim` (which may have failed
/// sites, a fault schedule and finite queues). Installs a delivery hook on
/// the simulator; any hook previously installed is replaced.
ReliableReport run_reliable(Simulator& sim, const std::vector<Transfer>& transfers,
                            const AttemptRouter& route,
                            const ReliableConfig& config = {});

}  // namespace dbn::net
