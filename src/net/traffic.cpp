#include "net/traffic.hpp"

#include <algorithm>
#include <numeric>

#include "common/contract.hpp"

namespace dbn::net {

namespace {

void sort_by_time(std::vector<Injection>& schedule) {
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const Injection& a, const Injection& b) {
                     return a.time < b.time;
                   });
}

}  // namespace

std::vector<Injection> uniform_traffic(std::uint32_t radix, std::size_t k,
                                       double rate_per_node, double duration,
                                       Rng& rng) {
  DBN_REQUIRE(rate_per_node > 0.0 && duration > 0.0,
              "uniform_traffic requires positive rate and duration");
  const std::uint64_t n = Word::vertex_count(radix, k);
  std::vector<Injection> schedule;
  for (std::uint64_t src = 0; src < n; ++src) {
    double t = rng.exponential(rate_per_node);
    while (t < duration) {
      schedule.push_back({t, src, rng.below(n)});
      t += rng.exponential(rate_per_node);
    }
  }
  sort_by_time(schedule);
  return schedule;
}

std::vector<Injection> hotspot_traffic(std::uint32_t radix, std::size_t k,
                                       double rate_per_node, double duration,
                                       double hotspot_fraction,
                                       std::uint64_t hotspot, Rng& rng) {
  DBN_REQUIRE(hotspot_fraction >= 0.0 && hotspot_fraction <= 1.0,
              "hotspot_fraction must be in [0, 1]");
  const std::uint64_t n = Word::vertex_count(radix, k);
  DBN_REQUIRE(hotspot < n, "hotspot rank out of range");
  std::vector<Injection> schedule =
      uniform_traffic(radix, k, rate_per_node, duration, rng);
  for (Injection& inj : schedule) {
    if (rng.chance(hotspot_fraction)) {
      inj.destination = hotspot;
    }
  }
  return schedule;
}

std::vector<Injection> permutation_traffic(std::uint32_t radix, std::size_t k,
                                           Rng& rng) {
  const std::uint64_t n = Word::vertex_count(radix, k);
  std::vector<std::uint64_t> partner(n);
  std::iota(partner.begin(), partner.end(), 0);
  // Fisher–Yates with our deterministic RNG.
  for (std::uint64_t i = n; i-- > 1;) {
    std::swap(partner[i], partner[rng.below(i + 1)]);
  }
  std::vector<Injection> schedule(n);
  for (std::uint64_t src = 0; src < n; ++src) {
    schedule[src] = {0.0, src, partner[src]};
  }
  return schedule;
}

std::vector<Injection> reversal_traffic(std::uint32_t radix, std::size_t k) {
  const std::uint64_t n = Word::vertex_count(radix, k);
  std::vector<Injection> schedule(n);
  for (std::uint64_t src = 0; src < n; ++src) {
    schedule[src] = {0.0, src,
                     Word::from_rank(radix, k, src).reversed().rank()};
  }
  return schedule;
}

}  // namespace dbn::net
