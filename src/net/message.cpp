#include "net/message.hpp"

#include <cstring>

#include "common/contract.hpp"

namespace dbn::net {

namespace {

// Wire format (all integers little-endian):
//   u8  control
//   u32 radix, u32 k
//   k * u32 source digits, k * u32 destination digits
//   u32 hop count; per hop: u8 type (0/1), u32 digit (0xFFFFFFFF = "*")
//   u32 payload size; payload bytes
// A word digit and a hop digit must be < radix (except the wildcard).

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& buffer) : buffer_(buffer) {}

  bool u8(std::uint8_t& out) {
    if (pos_ + 1 > buffer_.size()) {
      return false;
    }
    out = buffer_[pos_++];
    return true;
  }

  bool u32(std::uint32_t& out) {
    if (pos_ + 4 > buffer_.size()) {
      return false;
    }
    out = static_cast<std::uint32_t>(buffer_[pos_]) |
          (static_cast<std::uint32_t>(buffer_[pos_ + 1]) << 8) |
          (static_cast<std::uint32_t>(buffer_[pos_ + 2]) << 16) |
          (static_cast<std::uint32_t>(buffer_[pos_ + 3]) << 24);
    pos_ += 4;
    return true;
  }

  bool bytes(std::vector<std::uint8_t>& out, std::size_t n) {
    if (pos_ + n > buffer_.size()) {
      return false;
    }
    out.assign(buffer_.begin() + static_cast<std::ptrdiff_t>(pos_),
               buffer_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return true;
  }

  bool exhausted() const { return pos_ == buffer_.size(); }

 private:
  const std::vector<std::uint8_t>& buffer_;
  std::size_t pos_ = 0;
};

}  // namespace

Message::Message(ControlCode control_, Word source_, Word destination_,
                 RoutingPath path_, std::vector<std::uint8_t> payload_)
    : control(control_),
      source(std::move(source_)),
      destination(std::move(destination_)),
      path(std::move(path_)),
      payload(std::move(payload_)) {
  DBN_REQUIRE(source.radix() == destination.radix() &&
                  source.length() == destination.length(),
              "message endpoints must share radix and length");
  for (const Hop& h : path.hops()) {
    DBN_REQUIRE(h.is_wildcard() || h.digit < source.radix(),
                "routing-path digit out of range for the network radix");
  }
}

std::vector<std::uint8_t> encode(const Message& message) {
  std::vector<std::uint8_t> out;
  const std::size_t k = message.source.length();
  out.reserve(1 + 8 + 8 * k + 4 + 5 * message.path.length() + 4 +
              message.payload.size());
  put_u8(out, static_cast<std::uint8_t>(message.control));
  put_u32(out, message.source.radix());
  put_u32(out, static_cast<std::uint32_t>(k));
  for (std::size_t i = 0; i < k; ++i) {
    put_u32(out, message.source.digit(i));
  }
  for (std::size_t i = 0; i < k; ++i) {
    put_u32(out, message.destination.digit(i));
  }
  put_u32(out, static_cast<std::uint32_t>(message.path.length()));
  for (const Hop& h : message.path.hops()) {
    put_u8(out, static_cast<std::uint8_t>(h.type));
    put_u32(out, h.digit);
  }
  put_u32(out, static_cast<std::uint32_t>(message.payload.size()));
  out.insert(out.end(), message.payload.begin(), message.payload.end());
  return out;
}

std::optional<Message> decode(const std::vector<std::uint8_t>& buffer) {
  Reader in(buffer);
  std::uint8_t control = 0;
  std::uint32_t radix = 0, k = 0;
  if (!in.u8(control) || !in.u32(radix) || !in.u32(k)) {
    return std::nullopt;
  }
  if (control > static_cast<std::uint8_t>(ControlCode::Probe) || radix < 2 ||
      k < 1 || k > (1u << 20)) {
    return std::nullopt;
  }
  auto read_word = [&]() -> std::optional<Word> {
    std::vector<Digit> digits(k);
    for (auto& digit : digits) {
      std::uint32_t v = 0;
      if (!in.u32(v) || v >= radix) {
        return std::nullopt;
      }
      digit = v;
    }
    return Word(radix, std::move(digits));
  };
  auto source = read_word();
  auto destination = read_word();
  if (!source || !destination) {
    return std::nullopt;
  }
  std::uint32_t hop_count = 0;
  if (!in.u32(hop_count) || hop_count > (1u << 24)) {
    return std::nullopt;
  }
  RoutingPath path;
  for (std::uint32_t i = 0; i < hop_count; ++i) {
    std::uint8_t type = 0;
    std::uint32_t digit = 0;
    if (!in.u8(type) || !in.u32(digit) || type > 1 ||
        (digit != kWildcard && digit >= radix)) {
      return std::nullopt;
    }
    path.push({static_cast<ShiftType>(type), digit});
  }
  std::uint32_t payload_size = 0;
  if (!in.u32(payload_size)) {
    return std::nullopt;
  }
  std::vector<std::uint8_t> payload;
  if (!in.bytes(payload, payload_size) || !in.exhausted()) {
    return std::nullopt;
  }
  return Message(static_cast<ControlCode>(control), std::move(*source),
                 std::move(*destination), std::move(path), std::move(payload));
}

}  // namespace dbn::net
