#include "net/broadcast.hpp"

#include <algorithm>
#include <deque>

#include "common/contract.hpp"

namespace dbn::net {

BroadcastTree build_broadcast_tree(const DeBruijnGraph& graph,
                                   std::uint64_t root) {
  const std::uint64_t n = graph.vertex_count();
  DBN_REQUIRE(root < n, "build_broadcast_tree: root out of range");
  BroadcastTree tree;
  tree.root = root;
  tree.parent.assign(n, -2);
  tree.children.assign(n, {});
  tree.depth.assign(n, -1);
  std::deque<std::uint64_t> frontier;
  tree.parent[root] = -1;
  tree.depth[root] = 0;
  frontier.push_back(root);
  while (!frontier.empty()) {
    const std::uint64_t v = frontier.front();
    frontier.pop_front();
    for (const std::uint64_t w : graph.neighbors(v)) {
      if (tree.parent[w] != -2) {
        continue;
      }
      tree.parent[w] = static_cast<std::int64_t>(v);
      tree.depth[w] = tree.depth[v] + 1;
      tree.height = std::max(tree.height, tree.depth[w]);
      tree.children[v].push_back(w);
      frontier.push_back(w);
    }
  }
  for (std::uint64_t v = 0; v < n; ++v) {
    DBN_ASSERT(tree.parent[v] != -2, "DG(d,k) is connected");
  }
  return tree;
}

ReduceSchedule schedule_reduce(const BroadcastTree& tree, PortModel model) {
  const std::size_t n = tree.parent.size();
  ReduceSchedule schedule;
  schedule.send_round.assign(n, 0);
  schedule.messages = n - 1;
  // ready[v]: round by which v holds its whole subtree's contribution.
  std::vector<int> ready(n, 0);
  // Children-first: BFS order from the root, reversed.
  std::vector<std::uint64_t> order;
  order.reserve(n);
  std::deque<std::uint64_t> frontier = {tree.root};
  while (!frontier.empty()) {
    const std::uint64_t v = frontier.front();
    frontier.pop_front();
    order.push_back(v);
    for (const std::uint64_t c : tree.children[v]) {
      frontier.push_back(c);
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::uint64_t v = *it;
    int last_arrival = 0;
    for (const std::uint64_t c : tree.children[v]) {
      // Child c transmits once it is ready; a single-port parent also
      // serializes receptions (children in stored order).
      const int arrival = model == PortModel::AllPort
                              ? ready[c] + 1
                              : std::max(last_arrival + 1, ready[c] + 1);
      schedule.send_round[c] = arrival;
      last_arrival = arrival;
      ready[v] = std::max(ready[v], arrival);
    }
  }
  schedule.completion = ready[tree.root];
  return schedule;
}

BroadcastSchedule schedule_broadcast(const BroadcastTree& tree,
                                     PortModel model) {
  const std::size_t n = tree.parent.size();
  BroadcastSchedule schedule;
  schedule.receive_round.assign(n, 0);
  schedule.messages = n - 1;
  // Top-down in BFS order: parents always precede children, and the
  // children vectors were filled in that order.
  std::deque<std::uint64_t> frontier = {tree.root};
  while (!frontier.empty()) {
    const std::uint64_t v = frontier.front();
    frontier.pop_front();
    const int base = schedule.receive_round[v];
    int slot = 0;
    for (const std::uint64_t c : tree.children[v]) {
      const int round =
          model == PortModel::AllPort ? base + 1 : base + 1 + slot;
      schedule.receive_round[c] = round;
      schedule.completion = std::max(schedule.completion, round);
      ++slot;
      frontier.push_back(c);
    }
  }
  return schedule;
}

}  // namespace dbn::net
