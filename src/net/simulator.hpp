// Discrete-event simulator of the de Bruijn network DN(d,k).
//
// The model follows the paper's Section 3.1 forwarding rule exactly: a site
// receiving a message with a non-empty routing-path field removes the first
// pair (a,b) and transmits the message to the type-a neighbor selected by
// digit b; a site receiving a message with an empty field accepts it. The
// wildcard digit "*" is resolved by the forwarding site according to a
// configurable policy — the traffic-balancing freedom the paper points out.
//
// Link model: every directed link (u -> v) transmits one message per
// `link_delay` time units, FIFO. A message that would find more than
// `link_queue_capacity` messages ahead of it on the link is dropped
// (overflow). Node processing time is zero. Failed sites drop every
// message addressed through them.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "core/layer_table.hpp"
#include "debruijn/graph.hpp"
#include "net/fault.hpp"
#include "net/message.hpp"

namespace dbn::net {

/// How a forwarding site resolves the wildcard digit "*".
enum class WildcardPolicy {
  Zero,        // always digit 0 (degenerate, no balancing)
  Random,      // uniform digit, per-site RNG
  LeastQueue,  // digit whose outgoing link currently has the shortest queue
};

/// Who decides the next hop.
enum class ForwardingMode {
  SourceRouted,  // the paper's scheme: consume the routing-path field
  HopByHop,      // each site computes the greedy next hop from the distance
                 // function (core/hop_by_hop.hpp); the path field is unused
  Adaptive,      // deflection routing by distance layer (net/adaptive.hpp's
                 // decision rule, in-network): Closer neighbors first,
                 // Same-layer sideways as an escape, Farther-layer
                 // deflection when faults kill everything else, TTL-bounded
};

/// Distance source for ForwardingMode::Adaptive decisions. Both make
/// identical choices; they differ only in per-hop cost (the saturation
/// benchmark's subject).
enum class AdaptiveScoring {
  Rescore,     // O(k) Theorem-2 distance per neighbor per hop
  LayerTable,  // O(1) reads from a cached per-destination layer table
};

struct SimConfig {
  std::uint32_t radix = 2;
  std::size_t k = 4;
  Orientation orientation = Orientation::Undirected;
  double link_delay = 1.0;
  std::size_t link_queue_capacity = std::numeric_limits<std::size_t>::max();
  WildcardPolicy wildcard_policy = WildcardPolicy::Zero;
  ForwardingMode forwarding = ForwardingMode::SourceRouted;
  /// Adaptive forwarding only (ignored otherwise). Requires the undirected
  /// orientation (the layer trichotomy needs the graph metric).
  AdaptiveScoring adaptive_scoring = AdaptiveScoring::Rescore;
  int adaptive_ttl = 0;          // 0 = max(4k, 8), as in net/adaptive.hpp
  double adaptive_jitter = 0.0;  // sideways-move probability
  /// Record every (time, site) visit per message (traces() accessor);
  /// costs memory proportional to total hops.
  bool record_traces = false;
  std::uint64_t seed = 1;
};

/// Why the simulator discarded a message (the drop hook's taxonomy; all
/// but Misdelivered mirror the dropped_* counters of SimStats). Ttl only
/// occurs under adaptive forwarding, whose walks are hop-bounded.
enum class DropReason : std::uint8_t { Fault, Link, Overflow, Misdelivered, Ttl };

const char* drop_reason_name(DropReason reason);

/// Aggregate results of a run.
struct SimStats {
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_fault = 0;     // hit a failed site
  std::uint64_t dropped_link = 0;      // sent across a failed link
  std::uint64_t dropped_overflow = 0;  // link queue over capacity
  std::uint64_t misdelivered = 0;      // path exhausted at a wrong site
  std::uint64_t dropped_ttl = 0;       // adaptive walk exhausted its TTL
  std::uint64_t adaptive_deflections = 0;  // Farther-layer moves taken
  std::uint64_t fault_events_applied = 0;  // schedule entries consumed
  std::uint64_t total_hops = 0;
  double total_latency = 0.0;
  double max_latency = 0.0;
  std::size_t max_queue = 0;  // largest link backlog seen (messages)
  std::vector<double> latencies;  // per delivered message, unsorted
  std::vector<std::uint64_t> hop_counts;  // per delivered message, unsorted

  double mean_latency() const {
    return delivered == 0 ? 0.0 : total_latency / static_cast<double>(delivered);
  }
  double mean_hops() const {
    return delivered == 0 ? 0.0
                          : static_cast<double>(total_hops) /
                                static_cast<double>(delivered);
  }
  /// Latency percentile in [0, 100]; 0 if nothing was delivered.
  double latency_percentile(double p) const;
};

class Simulator {
 public:
  explicit Simulator(const SimConfig& config);

  const DeBruijnGraph& graph() const { return graph_; }
  const SimConfig& config() const { return config_; }

  /// Marks a site as failed. Messages arriving at (or injected from) a
  /// failed site are dropped and counted.
  void fail_node(std::uint64_t rank);
  bool is_failed(std::uint64_t rank) const;

  /// Brings a failed site back (no-op if it is up).
  void recover_node(std::uint64_t rank);

  /// Marks a directed link as failed: anything forwarded across it is
  /// dropped (stats().dropped_link). Both ranks must be valid; the pair
  /// need not currently be an edge (failing it is then a no-op).
  void fail_link(std::uint64_t from, std::uint64_t to);
  bool is_link_failed(std::uint64_t from, std::uint64_t to) const;

  /// Brings a failed directed link back (no-op if it is up).
  void recover_link(std::uint64_t from, std::uint64_t to);

  /// Current fault state, as of now(). Link keys are from * N + to.
  const std::vector<bool>& failed_sites() const { return failed_; }
  const std::unordered_set<std::uint64_t>& failed_links() const {
    return failed_links_;
  }

  /// Installs a dynamic fault script, replacing any previous one. Events
  /// are applied as run() advances the clock; an event at time t is
  /// applied before message arrivals at t (crash-before-arrival). Events
  /// at or before now() are applied immediately. With a finite run(until),
  /// events up to `until` are applied even if no message arrival reaches
  /// them, so later injections observe the scheduled state.
  void set_fault_schedule(FaultSchedule schedule);

  /// Fault events not yet applied (i.e. scheduled after the clock).
  std::size_t pending_fault_events() const {
    return schedule_.events().size() - schedule_cursor_;
  }

  /// Schedules `message` to enter the network at its source site at `time`
  /// (>= 0). Must be called before run() finishes processing that time.
  void inject(double time, Message message);

  /// Invoked from within run() whenever a message is accepted by its
  /// destination; enables protocols (acknowledgements, retransmission —
  /// see net/reliable.hpp) on top of the raw network. The hook may call
  /// inject() re-entrantly.
  using DeliveryHook = std::function<void(const Message&, double time)>;
  void set_delivery_hook(DeliveryHook hook) { delivery_hook_ = std::move(hook); }

  /// Invoked from within run() whenever a message is discarded, with the
  /// reason and the site where it happened. Lets protocols attribute
  /// failures per attempt (net/reliable.hpp) instead of inferring them
  /// from aggregate counters. The hook may call inject() re-entrantly.
  using DropHook = std::function<void(const Message&, double time,
                                      DropReason reason, std::uint64_t at)>;
  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }

  /// Processes events in time order until the queue is empty or the clock
  /// passes `until`. Returns the final clock value.
  double run(double until = std::numeric_limits<double>::infinity());

  const SimStats& stats() const { return stats_; }

  /// Current backlog (messages not yet done transmitting) on link u -> v,
  /// as seen at the current clock. Exposed for tests and for the
  /// LeastQueue policy.
  std::size_t queue_length(std::uint64_t from, std::uint64_t to) const;

  /// Per-link transmission counts for every usable directed link of the
  /// network (links never used report 0). Order is unspecified but stable
  /// within a run. O(N d).
  std::vector<std::uint64_t> link_transmissions() const;

  /// One visit record per site a message touched (arrival time, rank).
  struct Trace {
    std::vector<std::pair<double, std::uint64_t>> visits;
  };

  /// Traces in injection order; empty unless config.record_traces.
  const std::vector<Trace>& traces() const { return traces_; }

  double now() const { return now_; }

 private:
  struct InFlight {
    Message message;
    double injected_at = 0.0;
    std::size_t cursor = 0;  // hops consumed
    std::uint64_t at = 0;    // current site rank
    std::uint64_t previous = 0;  // last site left (deflection avoidance);
                                 // inject() resets it to the vertex-count
                                 // sentinel meaning "no previous site"
    /// Pinned destination layer table (Adaptive + LayerTable scoring only):
    /// one cache interaction per message, O(1) reads per hop.
    std::shared_ptr<const LayerTable::View> view;
  };

  struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;  // FIFO tie-break
    std::size_t flight = 0;
    bool operator<(const Event& other) const {
      // std::priority_queue is a max-heap; invert for earliest-first.
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  struct LinkState {
    double next_free = 0.0;
    std::uint64_t transmissions = 0;
  };

  void arrive(std::size_t flight_index);
  void apply_faults_until(double time);
  void deliver(InFlight& flight);
  void drop(std::size_t flight_index, DropReason reason, std::uint64_t at);
  Digit resolve_wildcard(std::uint64_t at, ShiftType type, Rng& rng);
  std::uint64_t shift_target(std::uint64_t at, ShiftType type, Digit digit) const;
  /// The adaptive next hop from `at`, or nullopt when the walk is stuck
  /// (every candidate neighbor is dead). Consumes rng_ draws; sets
  /// `deflected` when the move retreats a layer.
  std::optional<std::uint64_t> adaptive_next(InFlight& flight,
                                             std::uint64_t at,
                                             bool& deflected);
  void schedule(double time, std::size_t flight_index);

  SimConfig config_;
  DeBruijnGraph graph_;
  std::vector<InFlight> flights_;
  std::vector<Event> heap_;
  std::vector<bool> failed_;
  std::unordered_map<std::uint64_t, LinkState> links_;  // key: from * N + to
  std::unordered_set<std::uint64_t> failed_links_;      // same keying
  FaultSchedule schedule_;
  std::size_t schedule_cursor_ = 0;
  std::unique_ptr<LayerTable> layers_;  // Adaptive + LayerTable scoring
  int adaptive_ttl_ = 0;                // resolved (floor applied)
  SimStats stats_;
  std::vector<Trace> traces_;
  Rng rng_;
  DeliveryHook delivery_hook_;
  DropHook drop_hook_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dbn::net
