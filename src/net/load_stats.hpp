// Load-distribution statistics for the balancing experiments.
//
// Max queue length shows the worst instant; these summarize the whole
// run: per-link transmission counts and their Gini coefficient (0 = all
// links carried equal traffic, ->1 = traffic concentrated on few links).
// The wildcard experiment (S1) uses the Gini of link loads as its primary
// balancing metric.
//
// The accumulation itself lives in obs::Summary (one implementation of
// mean/variance/cov for the whole codebase); record_sim_metrics folds a
// finished simulation into an obs::MetricsRegistry so link-load and hop
// histograms come from the same registry as every other metric.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"

namespace dbn::net {

class Simulator;

/// Gini coefficient of a non-negative sample (0 for empty/uniform input).
double gini_coefficient(std::vector<double> values);

/// Convenience overload for counters.
double gini_coefficient(const std::vector<std::uint64_t>& values);

/// Coefficient of variation (stddev / mean); 0 for empty or zero-mean
/// input. Thin adapter over obs::Summary.
double coefficient_of_variation(const std::vector<std::uint64_t>& values);

/// Jain's fairness index (sum x)^2 / (n * sum x^2): 1 when every share is
/// equal, -> 1/n when one participant takes everything. The serving
/// introspection probe reports it over per-connection request counts (the
/// quota work's "is one client hogging the queue" signal); 1 for empty or
/// all-zero input, where no one is being starved.
double jain_fairness_index(const std::vector<double>& values);
double jain_fairness_index(const std::vector<std::uint64_t>& values);

/// Folds a finished simulation into `registry`:
///   counters   sim.injected/delivered/dropped_fault/dropped_link/
///              dropped_overflow/misdelivered
///   histograms sim.link_load (per-link transmissions),
///              sim.hops + sim.latency (per delivered message)
///   gauges     sim.link_load_gini_milli / sim.link_load_cov_milli
///              (fixed-point x1000, gauges are integral)
void record_sim_metrics(obs::MetricsRegistry& registry, const Simulator& sim);

}  // namespace dbn::net
