// Load-distribution statistics for the balancing experiments.
//
// Max queue length shows the worst instant; these summarize the whole
// run: per-link transmission counts and their Gini coefficient (0 = all
// links carried equal traffic, ->1 = traffic concentrated on few links).
// The wildcard experiment (S1) uses the Gini of link loads as its primary
// balancing metric.
#pragma once

#include <cstdint>
#include <vector>

namespace dbn::net {

/// Gini coefficient of a non-negative sample (0 for empty/uniform input).
double gini_coefficient(std::vector<double> values);

/// Convenience overload for counters.
double gini_coefficient(const std::vector<std::uint64_t>& values);

/// Coefficient of variation (stddev / mean); 0 for empty or zero-mean input.
double coefficient_of_variation(const std::vector<std::uint64_t>& values);

}  // namespace dbn::net
