#include "net/fault.hpp"

#include <algorithm>
#include <deque>

#include "common/contract.hpp"
#include "core/bfs_router.hpp"

namespace dbn::net {

const char* fault_event_kind_name(FaultEventKind kind) {
  switch (kind) {
    case FaultEventKind::SiteCrash:
      return "site.crash";
    case FaultEventKind::SiteRecover:
      return "site.recover";
    case FaultEventKind::LinkCrash:
      return "link.crash";
    case FaultEventKind::LinkRecover:
      return "link.recover";
  }
  return "?";
}

void FaultSchedule::add(const FaultEvent& event) {
  DBN_REQUIRE(event.time >= 0.0, "fault events cannot predate the run");
  if (!events_.empty() && sorted_ && event.time < events_.back().time) {
    sorted_ = false;
  }
  events_.push_back(event);
}

void FaultSchedule::site_crash(double time, std::uint64_t rank) {
  add(FaultEvent{time, FaultEventKind::SiteCrash, rank, 0});
}

void FaultSchedule::site_recover(double time, std::uint64_t rank) {
  add(FaultEvent{time, FaultEventKind::SiteRecover, rank, 0});
}

void FaultSchedule::link_crash(double time, std::uint64_t from,
                               std::uint64_t to) {
  add(FaultEvent{time, FaultEventKind::LinkCrash, from, to});
}

void FaultSchedule::link_recover(double time, std::uint64_t from,
                                 std::uint64_t to) {
  add(FaultEvent{time, FaultEventKind::LinkRecover, from, to});
}

void FaultSchedule::site_flap(std::uint64_t rank, double start, double down_for,
                              double up_for, int cycles) {
  DBN_REQUIRE(down_for > 0.0 && up_for >= 0.0 && cycles >= 1,
              "flap needs a positive down window and at least one cycle");
  double t = start;
  for (int c = 0; c < cycles; ++c) {
    site_crash(t, rank);
    site_recover(t + down_for, rank);
    t += down_for + up_for;
  }
}

void FaultSchedule::link_flap(std::uint64_t from, std::uint64_t to,
                              double start, double down_for, double up_for,
                              int cycles) {
  DBN_REQUIRE(down_for > 0.0 && up_for >= 0.0 && cycles >= 1,
              "flap needs a positive down window and at least one cycle");
  double t = start;
  for (int c = 0; c < cycles; ++c) {
    link_crash(t, from, to);
    link_recover(t + down_for, from, to);
    t += down_for + up_for;
  }
}

const std::vector<FaultEvent>& FaultSchedule::events() const {
  if (!sorted_) {
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent& lhs, const FaultEvent& rhs) {
                       return lhs.time < rhs.time;
                     });
    sorted_ = true;
  }
  return events_;
}

FaultAwareRouter::FaultAwareRouter(const DeBruijnGraph& graph,
                                   std::vector<bool> failed)
    : graph_(graph), failed_(std::move(failed)) {
  DBN_REQUIRE(failed_.size() == graph_.vertex_count(),
              "failed mask size must equal the vertex count");
}

std::optional<RoutingPath> FaultAwareRouter::route(const Word& x,
                                                   const Word& y) const {
  DBN_REQUIRE(x.radix() == graph_.radix() && x.length() == graph_.k() &&
                  y.radix() == graph_.radix() && y.length() == graph_.k(),
              "route endpoints must belong to the graph");
  const std::uint64_t source = x.rank();
  const std::uint64_t target = y.rank();
  if (failed_[source] || failed_[target]) {
    return std::nullopt;
  }
  if (source == target) {
    return RoutingPath{};
  }
  // Parent-pointer BFS skipping failed sites.
  std::vector<std::int64_t> parent(graph_.vertex_count(), -2);
  std::deque<std::uint64_t> frontier;
  parent[source] = -1;
  frontier.push_back(source);
  while (!frontier.empty() && parent[target] == -2) {
    const std::uint64_t v = frontier.front();
    frontier.pop_front();
    for (const std::uint64_t w : graph_.neighbors(v)) {
      if (parent[w] != -2 || failed_[w]) {
        continue;
      }
      parent[w] = static_cast<std::int64_t>(v);
      frontier.push_back(w);
    }
  }
  if (parent[target] == -2) {
    return std::nullopt;
  }
  std::vector<std::uint64_t> ranks;
  for (std::uint64_t v = target;; v = static_cast<std::uint64_t>(parent[v])) {
    ranks.push_back(v);
    if (parent[v] == -1) {
      break;
    }
  }
  std::reverse(ranks.begin(), ranks.end());
  RoutingPath path;
  for (std::size_t i = 0; i + 1 < ranks.size(); ++i) {
    path.push(classify_edge(graph_, ranks[i], ranks[i + 1]));
  }
  return path;
}

namespace {

/// BFS over survivors following `step` to enumerate moves; returns the
/// number of survivors reached from `start`.
template <typename NeighborsFn>
std::uint64_t reachable_survivors(const DeBruijnGraph& graph,
                                  const std::vector<bool>& failed,
                                  std::uint64_t start, NeighborsFn&& step) {
  std::vector<bool> seen(graph.vertex_count(), false);
  std::deque<std::uint64_t> frontier;
  seen[start] = true;
  frontier.push_back(start);
  std::uint64_t reached = 1;
  while (!frontier.empty()) {
    const std::uint64_t v = frontier.front();
    frontier.pop_front();
    for (const std::uint64_t w : step(v)) {
      if (seen[w] || failed[w]) {
        continue;
      }
      seen[w] = true;
      ++reached;
      frontier.push_back(w);
    }
  }
  return reached;
}

}  // namespace

bool survivors_connected(const DeBruijnGraph& graph,
                         const std::vector<bool>& failed) {
  DBN_REQUIRE(failed.size() == graph.vertex_count(),
              "failed mask size must equal the vertex count");
  std::uint64_t survivors = 0;
  std::uint64_t first = graph.vertex_count();
  for (std::uint64_t v = 0; v < graph.vertex_count(); ++v) {
    if (!failed[v]) {
      ++survivors;
      first = std::min(first, v);
    }
  }
  if (survivors <= 1) {
    return true;
  }
  const auto forward = [&graph](std::uint64_t v) { return graph.neighbors(v); };
  if (reachable_survivors(graph, failed, first, forward) != survivors) {
    return false;
  }
  if (graph.orientation() == Orientation::Directed) {
    // Strong connectivity needs the reverse direction too; predecessors of
    // X under left shifts are exactly the right shifts X^+(c).
    const auto backward = [&graph](std::uint64_t v) {
      std::vector<std::uint64_t> in;
      in.reserve(graph.radix());
      for (Digit c = 0; c < graph.radix(); ++c) {
        in.push_back(graph.right_shift_rank(v, c));
      }
      return in;
    };
    return reachable_survivors(graph, failed, first, backward) == survivors;
  }
  return true;
}

std::optional<RoutingPath> route_avoiding(
    const DeBruijnGraph& graph, const std::vector<bool>& failed_nodes,
    const std::unordered_set<std::uint64_t>& failed_links, const Word& x,
    const Word& y) {
  DBN_REQUIRE(failed_nodes.size() == graph.vertex_count(),
              "failed mask size must equal the vertex count");
  DBN_REQUIRE(x.radix() == graph.radix() && x.length() == graph.k() &&
                  y.radix() == graph.radix() && y.length() == graph.k(),
              "route endpoints must belong to the graph");
  const std::uint64_t source = x.rank();
  const std::uint64_t target = y.rank();
  if (failed_nodes[source] || failed_nodes[target]) {
    return std::nullopt;
  }
  if (source == target) {
    return RoutingPath{};
  }
  std::vector<std::int64_t> parent(graph.vertex_count(), -2);
  std::deque<std::uint64_t> frontier;
  parent[source] = -1;
  frontier.push_back(source);
  while (!frontier.empty() && parent[target] == -2) {
    const std::uint64_t v = frontier.front();
    frontier.pop_front();
    for (const std::uint64_t w : graph.neighbors(v)) {
      if (parent[w] != -2 || failed_nodes[w] ||
          failed_links.contains(v * graph.vertex_count() + w)) {
        continue;
      }
      parent[w] = static_cast<std::int64_t>(v);
      frontier.push_back(w);
    }
  }
  if (parent[target] == -2) {
    return std::nullopt;
  }
  std::vector<std::uint64_t> ranks;
  for (std::uint64_t v = target;; v = static_cast<std::uint64_t>(parent[v])) {
    ranks.push_back(v);
    if (parent[v] == -1) {
      break;
    }
  }
  std::reverse(ranks.begin(), ranks.end());
  RoutingPath path;
  for (std::size_t i = 0; i + 1 < ranks.size(); ++i) {
    path.push(classify_edge(graph, ranks[i], ranks[i + 1]));
  }
  return path;
}

std::vector<bool> random_fault_set(const DeBruijnGraph& graph,
                                   std::size_t count, Rng& rng) {
  DBN_REQUIRE(count < graph.vertex_count(),
              "cannot fail every site in the network");
  std::vector<bool> failed(graph.vertex_count(), false);
  std::size_t placed = 0;
  while (placed < count) {
    const std::uint64_t v = rng.below(graph.vertex_count());
    if (!failed[v]) {
      failed[v] = true;
      ++placed;
    }
  }
  return failed;
}

}  // namespace dbn::net
