#include "net/reliable.hpp"

#include <algorithm>
#include <limits>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "obs/trace.hpp"

namespace dbn::net {

namespace {

// Protocol payload: 8 bytes little-endian carrying the transfer id in the
// low 48 bits and the attempt index in the high 16, so the delivery/drop
// hooks can attribute every outcome to the exact attempt that earned it.
constexpr std::uint64_t kIdBits = 48;
constexpr std::uint64_t kIdMask = (1ull << kIdBits) - 1;

std::vector<std::uint8_t> encode_attempt_tag(std::uint64_t id, int attempt) {
  DBN_ASSERT(id <= kIdMask, "transfer id exceeds the 48-bit payload field");
  const std::uint64_t tag =
      id | (static_cast<std::uint64_t>(attempt) << kIdBits);
  std::vector<std::uint8_t> payload(8);
  for (int b = 0; b < 8; ++b) {
    payload[static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>(tag >> (8 * b));
  }
  return payload;
}

struct AttemptTag {
  std::uint64_t id = 0;
  int attempt = 0;
};

AttemptTag decode_attempt_tag(const std::vector<std::uint8_t>& payload) {
  DBN_ASSERT(payload.size() == 8, "reliable payload carries the attempt tag");
  std::uint64_t tag = 0;
  for (int b = 7; b >= 0; --b) {
    tag = (tag << 8) | payload[static_cast<std::size_t>(b)];
  }
  return AttemptTag{tag & kIdMask, static_cast<int>(tag >> kIdBits)};
}

AttemptOutcome outcome_from_drop(DropReason reason) {
  switch (reason) {
    case DropReason::Fault:
      return AttemptOutcome::DroppedFault;
    case DropReason::Link:
      return AttemptOutcome::DroppedLink;
    case DropReason::Overflow:
      return AttemptOutcome::DroppedOverflow;
    case DropReason::Misdelivered:
      return AttemptOutcome::Misdelivered;
    case DropReason::Ttl:
      return AttemptOutcome::DroppedTtl;
  }
  return AttemptOutcome::Pending;
}

/// Sim-clock instant in the "reliable" category.
void reliable_event(const char* name, double time, std::uint64_t lane,
                    std::vector<obs::TraceArg> args) {
  obs::TraceEvent event;
  event.name = name;
  event.category = "reliable";
  event.phase = obs::TracePhase::Instant;
  event.clock = obs::TraceClock::Sim;
  event.ts = time;
  event.lane = lane;
  event.args = std::move(args);
  obs::emit(std::move(event));
}

}  // namespace

const char* attempt_cause_name(AttemptCause cause) {
  switch (cause) {
    case AttemptCause::Initial:
      return "initial";
    case AttemptCause::Timeout:
      return "timeout";
  }
  return "?";
}

const char* attempt_outcome_name(AttemptOutcome outcome) {
  switch (outcome) {
    case AttemptOutcome::Pending:
      return "pending";
    case AttemptOutcome::Delivered:
      return "delivered";
    case AttemptOutcome::Duplicate:
      return "duplicate";
    case AttemptOutcome::DroppedFault:
      return "dropped_fault";
    case AttemptOutcome::DroppedLink:
      return "dropped_link";
    case AttemptOutcome::DroppedOverflow:
      return "dropped_overflow";
    case AttemptOutcome::Misdelivered:
      return "misdelivered";
    case AttemptOutcome::DroppedTtl:
      return "dropped_ttl";
  }
  return "?";
}

ReliableReport run_reliable(Simulator& sim,
                            const std::vector<Transfer>& transfers,
                            const AttemptRouter& route,
                            const ReliableConfig& config) {
  DBN_REQUIRE(config.timeout > 0.0 && config.max_attempts >= 1,
              "reliable transfer needs a positive timeout and attempt budget");
  DBN_REQUIRE(config.backoff >= 1.0, "backoff multiplier must be >= 1");
  DBN_REQUIRE(config.max_timeout >= 0.0 && config.jitter >= 0.0,
              "window cap and jitter must be non-negative");
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::uint32_t d = sim.config().radix;
  const std::size_t k = sim.config().k;
  const std::size_t n = transfers.size();
  DBN_REQUIRE(n <= kIdMask, "too many transfers for the 48-bit id field");

  ReliableReport report;
  report.transfers = n;
  if (config.record_attempts) {
    report.traces.resize(n);
  }
  std::vector<bool> done(n, false);
  std::vector<int> attempts(n, 0);
  // Per-transfer retransmission clock: when the next attempt fires.
  std::vector<double> deadline(n, sim.now());
  std::vector<double> last_sent(n, 0.0);
  // Per-transfer jitter streams: forked once, drawn per attempt, so the
  // sequence a transfer sees never depends on other transfers.
  const Rng jitter_base(config.jitter_seed);

  // Resolves attempt `tag` of a recorded trace, first writer wins (a copy
  // resolves exactly once: it is either delivered, deduplicated, or
  // dropped).
  const auto resolve_attempt = [&](const AttemptTag& tag,
                                   AttemptOutcome outcome, double time) {
    if (!config.record_attempts) {
      return;
    }
    auto& trace = report.traces[tag.id];
    if (tag.attempt >= static_cast<int>(trace.attempts.size())) {
      return;
    }
    AttemptRecord& record =
        trace.attempts[static_cast<std::size_t>(tag.attempt)];
    if (record.outcome == AttemptOutcome::Pending) {
      record.outcome = outcome;
      record.resolved_at = time;
    }
  };

  sim.set_delivery_hook([&](const Message& message, double time) {
    if (message.payload.size() != 8) {
      return;  // not one of ours
    }
    const AttemptTag tag = decode_attempt_tag(message.payload);
    if (tag.id >= n) {
      return;
    }
    if (!done[tag.id]) {
      done[tag.id] = true;
      ++report.completed;
      report.completion_time = std::max(report.completion_time, time);
      if (config.record_attempts) {
        report.traces[tag.id].completed = true;
        report.traces[tag.id].completed_at = time;
        report.traces[tag.id].delivered_attempt = tag.attempt;
      }
      resolve_attempt(tag, AttemptOutcome::Delivered, time);
      if (obs::tracing_enabled()) {
        reliable_event("complete", time, message.destination.rank(),
                       {obs::targ("transfer", tag.id),
                        obs::targ("attempt", tag.attempt)});
      }
    } else {
      ++report.duplicate_deliveries;  // deduplicated late copy
      resolve_attempt(tag, AttemptOutcome::Duplicate, time);
      if (obs::tracing_enabled()) {
        reliable_event("duplicate", time, message.destination.rank(),
                       {obs::targ("transfer", tag.id),
                        obs::targ("attempt", tag.attempt)});
      }
    }
    if (config.on_delivery) {
      config.on_delivery(message, time);
    }
  });

  sim.set_drop_hook([&](const Message& message, double time, DropReason reason,
                        std::uint64_t at) {
    if (message.payload.size() != 8) {
      return;
    }
    const AttemptTag tag = decode_attempt_tag(message.payload);
    if (tag.id >= n) {
      return;
    }
    resolve_attempt(tag, outcome_from_drop(reason), time);
    if (obs::tracing_enabled()) {
      reliable_event("attempt_drop", time, at,
                     {obs::targ("transfer", tag.id),
                      obs::targ("attempt", tag.attempt),
                      obs::targ("reason", drop_reason_name(reason))});
    }
  });

  std::vector<Rng> jitter(n, Rng(0));
  for (std::size_t id = 0; id < n; ++id) {
    jitter[id] = jitter_base.fork(id);
  }

  while (true) {
    // Earliest retransmission clock among transfers that can still act.
    double next = kInf;
    for (std::size_t id = 0; id < n; ++id) {
      if (!done[id] && attempts[id] < config.max_attempts) {
        next = std::min(next, deadline[id]);
      }
    }
    if (next == kInf) {
      break;
    }
    sim.run(next);  // deliveries up to `next` can still mark transfers done
    for (std::size_t id = 0; id < n; ++id) {
      if (done[id] || attempts[id] >= config.max_attempts ||
          deadline[id] > next) {
        continue;
      }
      const int attempt = attempts[id];
      if (attempt > 0) {
        ++report.retransmissions;
      }
      double window = config.timeout;
      for (int j = 0; j < attempt; ++j) {
        window *= config.backoff;
      }
      if (config.max_timeout > 0.0) {
        window = std::min(window, config.max_timeout);
      }
      if (config.jitter > 0.0) {
        window *= 1.0 + config.jitter * jitter[id].uniform01();
      }
      const Word src = Word::from_rank(d, k, transfers[id].source);
      const Word dst = Word::from_rank(d, k, transfers[id].destination);
      sim.inject(next, Message(ControlCode::Data, src, dst,
                               route(src, dst, attempt),
                               encode_attempt_tag(id, attempt)));
      const AttemptCause cause =
          attempt == 0 ? AttemptCause::Initial : AttemptCause::Timeout;
      const double backoff_delay = attempt == 0 ? 0.0 : next - last_sent[id];
      if (config.record_attempts) {
        AttemptRecord record;
        record.attempt = attempt;
        record.sent_at = next;
        record.window = window;
        record.backoff_delay = backoff_delay;
        record.cause = cause;
        report.traces[id].attempts.push_back(record);
      }
      if (obs::tracing_enabled()) {
        reliable_event("attempt", next, transfers[id].source,
                       {obs::targ("transfer", static_cast<std::uint64_t>(id)),
                        obs::targ("attempt", attempt),
                        obs::targ("cause", attempt_cause_name(cause)),
                        obs::targ("window", window),
                        obs::targ("backoff_delay", backoff_delay)});
      }
      last_sent[id] = next;
      deadline[id] = next + window;
      ++attempts[id];
    }
  }
  sim.run();  // drain whatever is still in flight
  sim.set_delivery_hook(nullptr);
  sim.set_drop_hook(nullptr);

  for (std::size_t id = 0; id < n; ++id) {
    if (!done[id]) {
      ++report.abandoned;
      if (obs::tracing_enabled()) {
        reliable_event("abandon", sim.now(), transfers[id].source,
                       {obs::targ("transfer", static_cast<std::uint64_t>(id)),
                        obs::targ("attempts", attempts[id])});
      }
    }
  }
  return report;
}

}  // namespace dbn::net
