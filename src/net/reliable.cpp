#include "net/reliable.hpp"

#include <algorithm>
#include <limits>

#include "common/contract.hpp"
#include "common/rng.hpp"

namespace dbn::net {

namespace {

std::vector<std::uint8_t> encode_transfer_id(std::uint64_t id) {
  std::vector<std::uint8_t> payload(8);
  for (int b = 0; b < 8; ++b) {
    payload[static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>(id >> (8 * b));
  }
  return payload;
}

std::uint64_t decode_transfer_id(const std::vector<std::uint8_t>& payload) {
  DBN_ASSERT(payload.size() == 8, "reliable payload carries the transfer id");
  std::uint64_t id = 0;
  for (int b = 7; b >= 0; --b) {
    id = (id << 8) | payload[static_cast<std::size_t>(b)];
  }
  return id;
}

}  // namespace

ReliableReport run_reliable(Simulator& sim,
                            const std::vector<Transfer>& transfers,
                            const AttemptRouter& route,
                            const ReliableConfig& config) {
  DBN_REQUIRE(config.timeout > 0.0 && config.max_attempts >= 1,
              "reliable transfer needs a positive timeout and attempt budget");
  DBN_REQUIRE(config.backoff >= 1.0, "backoff multiplier must be >= 1");
  DBN_REQUIRE(config.max_timeout >= 0.0 && config.jitter >= 0.0,
              "window cap and jitter must be non-negative");
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::uint32_t d = sim.config().radix;
  const std::size_t k = sim.config().k;
  const std::size_t n = transfers.size();

  ReliableReport report;
  report.transfers = n;
  if (config.record_attempts) {
    report.traces.resize(n);
  }
  std::vector<bool> done(n, false);
  std::vector<int> attempts(n, 0);
  // Per-transfer retransmission clock: when the next attempt fires.
  std::vector<double> deadline(n, sim.now());
  // Per-transfer jitter streams: forked once, drawn per attempt, so the
  // sequence a transfer sees never depends on other transfers.
  const Rng jitter_base(config.jitter_seed);

  sim.set_delivery_hook([&](const Message& message, double time) {
    if (message.payload.size() != 8) {
      return;  // not one of ours
    }
    const std::uint64_t id = decode_transfer_id(message.payload);
    if (id >= n) {
      return;
    }
    if (!done[id]) {
      done[id] = true;
      ++report.completed;
      report.completion_time = std::max(report.completion_time, time);
      if (config.record_attempts) {
        report.traces[id].completed = true;
        report.traces[id].completed_at = time;
      }
    } else {
      ++report.duplicate_deliveries;  // deduplicated late copy
    }
    if (config.on_delivery) {
      config.on_delivery(message, time);
    }
  });

  std::vector<Rng> jitter(n, Rng(0));
  for (std::size_t id = 0; id < n; ++id) {
    jitter[id] = jitter_base.fork(id);
  }

  while (true) {
    // Earliest retransmission clock among transfers that can still act.
    double next = kInf;
    for (std::size_t id = 0; id < n; ++id) {
      if (!done[id] && attempts[id] < config.max_attempts) {
        next = std::min(next, deadline[id]);
      }
    }
    if (next == kInf) {
      break;
    }
    sim.run(next);  // deliveries up to `next` can still mark transfers done
    for (std::size_t id = 0; id < n; ++id) {
      if (done[id] || attempts[id] >= config.max_attempts ||
          deadline[id] > next) {
        continue;
      }
      const int attempt = attempts[id];
      if (attempt > 0) {
        ++report.retransmissions;
      }
      double window = config.timeout;
      for (int j = 0; j < attempt; ++j) {
        window *= config.backoff;
      }
      if (config.max_timeout > 0.0) {
        window = std::min(window, config.max_timeout);
      }
      if (config.jitter > 0.0) {
        window *= 1.0 + config.jitter * jitter[id].uniform01();
      }
      const Word src = Word::from_rank(d, k, transfers[id].source);
      const Word dst = Word::from_rank(d, k, transfers[id].destination);
      sim.inject(next, Message(ControlCode::Data, src, dst,
                               route(src, dst, attempt),
                               encode_transfer_id(id)));
      if (config.record_attempts) {
        report.traces[id].attempts.push_back(
            AttemptRecord{attempt, next, window});
      }
      deadline[id] = next + window;
      ++attempts[id];
    }
  }
  sim.run();  // drain whatever is still in flight
  sim.set_delivery_hook(nullptr);

  for (std::size_t id = 0; id < n; ++id) {
    if (!done[id]) {
      ++report.abandoned;
    }
  }
  return report;
}

}  // namespace dbn::net
