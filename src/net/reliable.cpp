#include "net/reliable.hpp"

#include <algorithm>

#include "common/contract.hpp"

namespace dbn::net {

namespace {

std::vector<std::uint8_t> encode_transfer_id(std::uint64_t id) {
  std::vector<std::uint8_t> payload(8);
  for (int b = 0; b < 8; ++b) {
    payload[static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>(id >> (8 * b));
  }
  return payload;
}

std::uint64_t decode_transfer_id(const std::vector<std::uint8_t>& payload) {
  DBN_ASSERT(payload.size() == 8, "reliable payload carries the transfer id");
  std::uint64_t id = 0;
  for (int b = 7; b >= 0; --b) {
    id = (id << 8) | payload[static_cast<std::size_t>(b)];
  }
  return id;
}

}  // namespace

ReliableReport run_reliable(Simulator& sim,
                            const std::vector<Transfer>& transfers,
                            const AttemptRouter& route,
                            const ReliableConfig& config) {
  DBN_REQUIRE(config.timeout > 0.0 && config.max_attempts >= 1,
              "reliable transfer needs a positive timeout and attempt budget");
  const std::uint32_t d = sim.config().radix;
  const std::size_t k = sim.config().k;

  ReliableReport report;
  report.transfers = transfers.size();
  std::vector<bool> done(transfers.size(), false);
  std::vector<int> attempts(transfers.size(), 0);

  sim.set_delivery_hook([&](const Message& message, double time) {
    if (message.payload.size() != 8) {
      return;  // not one of ours
    }
    const std::uint64_t id = decode_transfer_id(message.payload);
    if (id < done.size() && !done[id]) {
      done[id] = true;
      ++report.completed;
      report.completion_time = std::max(report.completion_time, time);
    }
  });

  double window_start = sim.now();
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t id = 0; id < transfers.size(); ++id) {
      if (done[id] || attempts[id] >= config.max_attempts) {
        continue;
      }
      const Word src = Word::from_rank(d, k, transfers[id].source);
      const Word dst = Word::from_rank(d, k, transfers[id].destination);
      if (attempts[id] > 0) {
        ++report.retransmissions;
      }
      sim.inject(window_start,
                 Message(ControlCode::Data, src, dst,
                         route(src, dst, attempts[id]),
                         encode_transfer_id(id)));
      ++attempts[id];
      progress = true;
    }
    if (!progress) {
      break;
    }
    window_start += config.timeout;
    sim.run(window_start);
  }
  sim.run();  // drain whatever is still in flight
  sim.set_delivery_hook(nullptr);

  for (std::size_t id = 0; id < transfers.size(); ++id) {
    if (!done[id]) {
      ++report.abandoned;
    }
  }
  return report;
}

}  // namespace dbn::net
