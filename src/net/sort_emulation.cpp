#include "net/sort_emulation.hpp"

#include <algorithm>
#include <utility>

#include "common/contract.hpp"
#include "debruijn/embedding.hpp"
#include "debruijn/graph.hpp"

namespace dbn::net {

SortEmulationResult odd_even_transposition_sort(
    std::uint32_t radix, std::size_t k, std::vector<std::uint64_t> values) {
  const std::uint64_t n = Word::vertex_count(radix, k);
  DBN_REQUIRE(values.size() == n,
              "odd-even sort needs exactly one value per site (d^k)");
  SortEmulationResult result;
  result.site_of_position = linear_array_embedding(radix, k);
  // Sanity: the embedding is dilation-1, i.e. consecutive array positions
  // are adjacent sites (checked in debug; the embedding tests prove it).
  const DeBruijnGraph g(radix, k, Orientation::Undirected);
  for (std::size_t i = 0; i + 1 < result.site_of_position.size(); ++i) {
    DBN_ASSERT(g.has_edge(result.site_of_position[i],
                          result.site_of_position[i + 1]),
               "linear-array embedding must have dilation 1");
  }

  // Odd-even transposition: alternate compare-exchange on (even, even+1)
  // and (odd, odd+1) position pairs until a full quiet double-round.
  bool dirty = true;
  std::size_t parity = 0;
  std::size_t quiet_rounds = 0;
  while (dirty || quiet_rounds < 2) {
    dirty = false;
    for (std::size_t i = parity; i + 1 < values.size(); i += 2) {
      if (values[i] > values[i + 1]) {
        std::swap(values[i], values[i + 1]);
        ++result.exchanges;
        dirty = true;
      }
    }
    ++result.rounds;
    parity = 1 - parity;
    quiet_rounds = dirty ? 0 : quiet_rounds + 1;
    DBN_ASSERT(result.rounds <= values.size() + 2,
               "odd-even transposition sorts within N rounds");
  }
  result.sorted = std::move(values);
  return result;
}

}  // namespace dbn::net
