// Adaptive routing with *local* fault knowledge.
//
// The fault-aware router (net/fault.hpp) assumes the source knows every
// failed site — global state a real network rarely has. Here each site
// knows only which of its own neighbors are dead and forwards by the
// distance-layer trichotomy (core/layer_table.hpp): neighbors one layer
// Closer to Y first, Same-layer sideways moves as an escape, and — when a
// fault cluster kills every non-worsening neighbor — a deflection fallback
// that retreats through the Farther layer, the structure
// Fàbrega/Martí-Farré/Muñoz exploit for deflection routing in DG(d,k).
// With a LayerTable wired in, each per-neighbor decision is two table
// reads; without one, the O(k) Theorem-2 distance is recomputed per
// neighbor per hop (the historical policy, kept as the measurement
// baseline — both paths make bit-identical decisions). A TTL guards
// against livelock. Delivery is still not guaranteed, which is exactly
// what the saturation benchmark quantifies.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "core/layer_table.hpp"
#include "debruijn/graph.hpp"
#include "debruijn/word.hpp"

namespace dbn::net {

struct AdaptiveResult {
  bool delivered = false;
  int hops = 0;
  int sideways_moves = 0;
  int deflections = 0;  // backward moves forced by dead neighborhoods
};

struct AdaptiveConfig {
  int ttl = 0;  // 0 = default of max(4k, 8) hops (the floor keeps k = 1
                // networks from collapsing to a 4-hop budget)
  /// Probability of taking a sideways (equal-distance) move even when an
  /// improving neighbor exists; small values help escape fault clusters.
  double jitter = 0.0;
  /// When no live neighbor improves or holds D(·,Y), fall back to the live
  /// neighbor(s) in the nearest Farther layer instead of giving up; avoids
  /// bouncing straight back when any alternative exists.
  bool deflect = true;
  /// Optional O(1) layer classifier (non-owning; must cover the same
  /// graph). nullptr = re-score every neighbor with the O(k) distance
  /// function. The decisions are identical either way; only the per-hop
  /// cost differs (bench_saturation measures the gap, CI gates it).
  LayerTable* layers = nullptr;
};

/// Walks from x to y over live sites only. `failed[r]` marks dead sites;
/// x and y must be live. Randomized tie-breaking via `rng` (deterministic
/// under a fixed seed; the draw sequence does not depend on config.layers).
AdaptiveResult adaptive_route(const DeBruijnGraph& graph,
                              const std::vector<bool>& failed, const Word& x,
                              const Word& y, Rng& rng,
                              const AdaptiveConfig& config = {});

}  // namespace dbn::net
