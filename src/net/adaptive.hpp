// Adaptive routing with *local* fault knowledge.
//
// The fault-aware router (net/fault.hpp) assumes the source knows every
// failed site — global state a real network rarely has. Here each site
// knows only which of its own neighbors are dead, and greedily forwards
// using the O(k) distance function: strictly improving live neighbors
// first, sideways moves (equal distance) as an escape, and — when a fault
// cluster kills every non-worsening neighbor — a deflection fallback that
// retreats through the live neighbor minimizing D(·,Y), the distance-layer
// structure Fàbrega/Martí-Farré/Muñoz exploit for deflection routing in
// DG(d,k). A TTL guards against livelock. Delivery is still not
// guaranteed, which is exactly what the S2-companion benchmark quantifies.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "debruijn/graph.hpp"
#include "debruijn/word.hpp"

namespace dbn::net {

struct AdaptiveResult {
  bool delivered = false;
  int hops = 0;
  int sideways_moves = 0;
  int deflections = 0;  // backward moves forced by dead neighborhoods
};

struct AdaptiveConfig {
  int ttl = 0;  // 0 = default of max(4k, 8) hops (the floor keeps k = 1
                // networks from collapsing to a 4-hop budget)
  /// Probability of taking a sideways (equal-distance) move even when an
  /// improving neighbor exists; small values help escape fault clusters.
  double jitter = 0.0;
  /// When no live neighbor improves or holds D(·,Y), fall back to the live
  /// neighbor(s) with the smallest distance increase instead of giving up;
  /// avoids bouncing straight back when any alternative exists.
  bool deflect = true;
};

/// Walks from x to y over live sites only. `failed[r]` marks dead sites;
/// x and y must be live. Randomized tie-breaking via `rng` (deterministic
/// under a fixed seed).
AdaptiveResult adaptive_route(const DeBruijnGraph& graph,
                              const std::vector<bool>& failed, const Word& x,
                              const Word& y, Rng& rng,
                              const AdaptiveConfig& config = {});

}  // namespace dbn::net
