#include "net/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "common/contract.hpp"
#include "core/distance.hpp"
#include "core/hop_by_hop.hpp"
#include "obs/trace.hpp"

namespace dbn::net {

namespace {
constexpr std::uint64_t kMaxSimVertices = 1ull << 26;

/// Sim-clock instant on the given site's lane (events carry the site rank
/// as their lane so Perfetto shows per-site activity tracks).
void sim_event(const char* name, double time, std::uint64_t site,
               std::vector<obs::TraceArg> args) {
  obs::TraceEvent event;
  event.name = name;
  event.category = "sim";
  event.phase = obs::TracePhase::Instant;
  event.clock = obs::TraceClock::Sim;
  event.ts = time;
  event.lane = site;
  event.args = std::move(args);
  obs::emit(std::move(event));
}

}  // namespace

const char* drop_reason_name(DropReason reason) {
  switch (reason) {
    case DropReason::Fault:
      return "fault";
    case DropReason::Link:
      return "link";
    case DropReason::Overflow:
      return "overflow";
    case DropReason::Misdelivered:
      return "misdelivered";
    case DropReason::Ttl:
      return "ttl";
  }
  return "?";
}

double SimStats::latency_percentile(double p) const {
  DBN_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  if (latencies.empty()) {
    return 0.0;
  }
  std::vector<double> sorted = latencies;
  std::sort(sorted.begin(), sorted.end());
  const double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(std::llround(idx))];
}

Simulator::Simulator(const SimConfig& config)
    : config_(config),
      graph_(config.radix, config.k, config.orientation),
      rng_(config.seed) {
  DBN_REQUIRE(config.link_delay > 0.0, "link_delay must be positive");
  DBN_REQUIRE(graph_.vertex_count() <= kMaxSimVertices,
              "network too large to simulate (d^k > 2^26)");
  if (config.forwarding == ForwardingMode::Adaptive) {
    DBN_REQUIRE(config.orientation == Orientation::Undirected,
                "adaptive forwarding needs the undirected orientation");
    DBN_REQUIRE(config.adaptive_ttl >= 0, "adaptive_ttl must be >= 0");
    adaptive_ttl_ = config.adaptive_ttl > 0
                        ? config.adaptive_ttl
                        : std::max(4 * static_cast<int>(config.k), 8);
    if (config.adaptive_scoring == AdaptiveScoring::LayerTable) {
      layers_ = std::make_unique<LayerTable>(graph_);
    }
  }
  failed_.resize(graph_.vertex_count(), false);
}

void Simulator::fail_node(std::uint64_t rank) {
  DBN_REQUIRE(rank < graph_.vertex_count(), "fail_node: rank out of range");
  failed_[rank] = true;
}

bool Simulator::is_failed(std::uint64_t rank) const {
  DBN_REQUIRE(rank < graph_.vertex_count(), "is_failed: rank out of range");
  return failed_[rank];
}

void Simulator::recover_node(std::uint64_t rank) {
  DBN_REQUIRE(rank < graph_.vertex_count(), "recover_node: rank out of range");
  failed_[rank] = false;
}

void Simulator::fail_link(std::uint64_t from, std::uint64_t to) {
  DBN_REQUIRE(from < graph_.vertex_count() && to < graph_.vertex_count(),
              "fail_link: rank out of range");
  failed_links_.insert(from * graph_.vertex_count() + to);
}

bool Simulator::is_link_failed(std::uint64_t from, std::uint64_t to) const {
  DBN_REQUIRE(from < graph_.vertex_count() && to < graph_.vertex_count(),
              "is_link_failed: rank out of range");
  return failed_links_.contains(from * graph_.vertex_count() + to);
}

void Simulator::recover_link(std::uint64_t from, std::uint64_t to) {
  DBN_REQUIRE(from < graph_.vertex_count() && to < graph_.vertex_count(),
              "recover_link: rank out of range");
  failed_links_.erase(from * graph_.vertex_count() + to);
}

void Simulator::set_fault_schedule(FaultSchedule schedule) {
  for (const FaultEvent& event : schedule.events()) {
    const bool is_site = event.kind == FaultEventKind::SiteCrash ||
                         event.kind == FaultEventKind::SiteRecover;
    DBN_REQUIRE(event.a < graph_.vertex_count() &&
                    (is_site || event.b < graph_.vertex_count()),
                "fault schedule names a rank outside this network");
  }
  schedule_ = std::move(schedule);
  schedule_cursor_ = 0;
  apply_faults_until(now_);
}

void Simulator::apply_faults_until(double time) {
  const std::vector<FaultEvent>& events = schedule_.events();
  while (schedule_cursor_ < events.size() &&
         events[schedule_cursor_].time <= time) {
    const FaultEvent& event = events[schedule_cursor_];
    switch (event.kind) {
      case FaultEventKind::SiteCrash:
        failed_[event.a] = true;
        break;
      case FaultEventKind::SiteRecover:
        failed_[event.a] = false;
        break;
      case FaultEventKind::LinkCrash:
        failed_links_.insert(event.a * graph_.vertex_count() + event.b);
        break;
      case FaultEventKind::LinkRecover:
        failed_links_.erase(event.a * graph_.vertex_count() + event.b);
        break;
    }
    if (obs::tracing_enabled()) {
      const bool is_site = event.kind == FaultEventKind::SiteCrash ||
                           event.kind == FaultEventKind::SiteRecover;
      sim_event("fault", event.time, event.a,
                {obs::targ("kind", fault_event_kind_name(event.kind)),
                 obs::targ("a", event.a),
                 obs::targ("b", is_site ? std::uint64_t{0} : event.b)});
    }
    ++stats_.fault_events_applied;
    ++schedule_cursor_;
  }
}

void Simulator::inject(double time, Message message) {
  DBN_REQUIRE(time >= now_, "cannot inject in the simulated past");
  DBN_REQUIRE(message.source.radix() == config_.radix &&
                  message.source.length() == config_.k,
              "message does not fit this network");
  const std::uint64_t source_rank = message.source.rank();
  if (obs::tracing_enabled()) {
    sim_event("inject", time, source_rank,
              {obs::targ("src", source_rank),
               obs::targ("dst", message.destination.rank()),
               obs::targ("path_len",
                         static_cast<std::uint64_t>(message.path.length()))});
  }
  flights_.push_back(
      InFlight{std::move(message), time, /*cursor=*/0, source_rank,
               /*previous=*/graph_.vertex_count(), /*view=*/nullptr});
  if (config_.record_traces) {
    traces_.emplace_back();
  }
  ++stats_.injected;
  schedule(time, flights_.size() - 1);
}

void Simulator::schedule(double time, std::size_t flight_index) {
  heap_.push_back(Event{time, next_seq_++, flight_index});
  std::push_heap(heap_.begin(), heap_.end());
}

double Simulator::run(double until) {
  while (!heap_.empty()) {
    if (heap_.front().time > until) {
      break;
    }
    std::pop_heap(heap_.begin(), heap_.end());
    const Event event = heap_.back();
    heap_.pop_back();
    DBN_ASSERT(event.time >= now_, "event times must be non-decreasing");
    now_ = event.time;
    // Crash-before-arrival: scheduled faults at time t precede message
    // arrivals at t, so a site crashing "now" drops the message landing on
    // it in the same instant.
    apply_faults_until(now_);
    arrive(event.flight);
  }
  if (until != std::numeric_limits<double>::infinity()) {
    // Windowed runs advance the fault state to the window edge so callers
    // injecting at `until` (e.g. the reliable driver) see scheduled
    // crashes/recoveries even when no message arrival reached them.
    apply_faults_until(until);
  }
  return now_;
}

std::size_t Simulator::queue_length(std::uint64_t from, std::uint64_t to) const {
  const auto it = links_.find(from * graph_.vertex_count() + to);
  if (it == links_.end() || it->second.next_free <= now_) {
    return 0;
  }
  return static_cast<std::size_t>(
      std::ceil((it->second.next_free - now_) / config_.link_delay - 1e-9));
}

Digit Simulator::resolve_wildcard(std::uint64_t at, ShiftType type, Rng& rng) {
  switch (config_.wildcard_policy) {
    case WildcardPolicy::Zero:
      return 0;
    case WildcardPolicy::Random:
      return static_cast<Digit>(rng.below(config_.radix));
    case WildcardPolicy::LeastQueue: {
      Digit best = 0;
      std::size_t best_len = queue_length(at, shift_target(at, type, 0));
      for (Digit a = 1; a < config_.radix; ++a) {
        const std::size_t len = queue_length(at, shift_target(at, type, a));
        if (len < best_len) {
          best = a;
          best_len = len;
        }
      }
      return best;
    }
  }
  DBN_ASSERT(false, "unknown wildcard policy");
  return 0;
}

std::uint64_t Simulator::shift_target(std::uint64_t at, ShiftType type,
                                      Digit digit) const {
  return type == ShiftType::Left ? graph_.left_shift_rank(at, digit)
                                 : graph_.right_shift_rank(at, digit);
}

std::vector<std::uint64_t> Simulator::link_transmissions() const {
  std::vector<std::uint64_t> counts;
  for (std::uint64_t v = 0; v < graph_.vertex_count(); ++v) {
    for (const std::uint64_t w : graph_.neighbors(v)) {
      const auto it = links_.find(v * graph_.vertex_count() + w);
      counts.push_back(it == links_.end() ? 0 : it->second.transmissions);
    }
  }
  return counts;
}

void Simulator::deliver(InFlight& flight) {
  ++stats_.delivered;
  stats_.total_hops += flight.cursor;
  const double latency = now_ - flight.injected_at;
  stats_.total_latency += latency;
  stats_.max_latency = std::max(stats_.max_latency, latency);
  stats_.latencies.push_back(latency);
  stats_.hop_counts.push_back(flight.cursor);
  if (obs::tracing_enabled()) {
    sim_event("deliver", now_, flight.at,
              {obs::targ("src", flight.message.source.rank()),
               obs::targ("dst", flight.message.destination.rank()),
               obs::targ("latency", latency),
               obs::targ("hops", static_cast<std::uint64_t>(flight.cursor))});
  }
  if (delivery_hook_) {
    // The hook may call inject(), which can reallocate flights_ and
    // invalidate references into it — hand it a stable copy.
    const Message delivered_message = flight.message;
    delivery_hook_(delivered_message, now_);
  }
}

void Simulator::drop(std::size_t flight_index, DropReason reason,
                     std::uint64_t at) {
  switch (reason) {
    case DropReason::Fault:
      ++stats_.dropped_fault;
      break;
    case DropReason::Link:
      ++stats_.dropped_link;
      break;
    case DropReason::Overflow:
      ++stats_.dropped_overflow;
      break;
    case DropReason::Misdelivered:
      ++stats_.misdelivered;
      break;
    case DropReason::Ttl:
      ++stats_.dropped_ttl;
      break;
  }
  const InFlight& flight = flights_[flight_index];
  if (obs::tracing_enabled()) {
    sim_event("drop", now_, at,
              {obs::targ("reason", drop_reason_name(reason)),
               obs::targ("src", flight.message.source.rank()),
               obs::targ("dst", flight.message.destination.rank())});
  }
  if (drop_hook_) {
    // Same re-entrancy caveat as deliver(): the hook may inject().
    const Message dropped_message = flight.message;
    drop_hook_(dropped_message, now_, reason, at);
  }
}

std::optional<std::uint64_t> Simulator::adaptive_next(InFlight& flight,
                                                      std::uint64_t at,
                                                      bool& deflected) {
  const Word& dest = flight.message.destination;
  if (layers_ != nullptr && flight.view == nullptr) {
    // Pin the destination's table once per message; every hop after this
    // classifies neighbors with plain array reads.
    flight.view = layers_->view(dest);
  }
  const LayerTable::View* view = flight.view.get();
  const auto dist_to = [&](std::uint64_t r) {
    return view != nullptr ? view->distance(r)
                           : undirected_distance(graph_.word(r), dest);
  };
  // The decision rule of net/adaptive.hpp, verbatim: Closer first, Same as
  // a jittered escape, nearest Farther layer as the deflection fallback.
  const int here = dist_to(at);
  std::vector<std::uint64_t> improving;
  std::vector<std::uint64_t> sideways;
  std::vector<std::uint64_t> backward;
  int backward_best = 0;
  for (const std::uint64_t r : graph_.neighbors(at)) {
    if (failed_[r]) {
      continue;
    }
    const int dist = dist_to(r);
    if (dist < here) {
      improving.push_back(r);
    } else if (dist == here) {
      sideways.push_back(r);
    } else {
      if (backward.empty() || dist < backward_best) {
        backward_best = dist;
        backward.clear();
      }
      if (dist == backward_best) {
        backward.push_back(r);
      }
    }
  }
  const bool take_sideways =
      improving.empty() ||
      (!sideways.empty() && rng_.chance(config_.adaptive_jitter));
  const std::vector<std::uint64_t>* pool =
      take_sideways ? &sideways : &improving;
  deflected = false;
  if (pool->empty()) {
    if (backward.empty()) {
      return std::nullopt;  // stuck: every live neighbor is dead
    }
    if (backward.size() > 1) {
      std::vector<std::uint64_t> away;
      for (const std::uint64_t r : backward) {
        if (r != flight.previous) {
          away.push_back(r);
        }
      }
      if (!away.empty()) {
        backward = std::move(away);
      }
    }
    pool = &backward;
    deflected = true;
  }
  return (*pool)[rng_.below(pool->size())];
}

void Simulator::arrive(std::size_t flight_index) {
  InFlight& flight = flights_[flight_index];
  const std::uint64_t at = flight.at;
  if (config_.record_traces) {
    traces_[flight_index].visits.emplace_back(now_, at);
  }
  if (failed_[at]) {
    drop(flight_index, DropReason::Fault, at);
    return;
  }
  std::uint64_t to = 0;
  const char* shift_label = "L";
  Digit digit = 0;
  if (config_.forwarding == ForwardingMode::Adaptive) {
    if (at == flight.message.destination.rank()) {
      deliver(flight);
      return;
    }
    if (flight.cursor >= static_cast<std::size_t>(adaptive_ttl_)) {
      drop(flight_index, DropReason::Ttl, at);
      return;
    }
    bool deflected = false;
    const std::optional<std::uint64_t> next =
        adaptive_next(flight, at, deflected);
    if (!next.has_value()) {
      // A dead neighborhood is a fault outcome: the site is alive but
      // every exit is down.
      drop(flight_index, DropReason::Fault, at);
      return;
    }
    to = *next;
    shift_label = "A";  // adaptive moves are not tied to one shift type
    flight.previous = at;
    stats_.adaptive_deflections += deflected;
  } else {
    Hop hop;
    if (config_.forwarding == ForwardingMode::SourceRouted) {
      const RoutingPath& path = flight.message.path;
      if (flight.cursor == path.length()) {
        // Paper: empty routing-path field => the message is destined here.
        if (at == flight.message.destination.rank()) {
          deliver(flight);
        } else {
          drop(flight_index, DropReason::Misdelivered, at);
        }
        return;
      }
      hop = path.hop(flight.cursor);
    } else {
      if (at == flight.message.destination.rank()) {
        deliver(flight);
        return;
      }
      // Each site computes the greedy next hop itself — O(d k), no path
      // field consulted.
      const Word here = graph_.word(at);
      hop = config_.orientation == Orientation::Directed
                ? next_hop_unidirectional(here, flight.message.destination)
                : next_hop_bidirectional(here, flight.message.destination);
    }
    digit = hop.is_wildcard() ? resolve_wildcard(at, hop.type, rng_)
                              : hop.digit;
    to = shift_target(at, hop.type, digit);
    shift_label = hop.type == ShiftType::Left ? "L" : "R";
  }
  ++flight.cursor;
  if (failed_links_.contains(at * graph_.vertex_count() + to)) {
    drop(flight_index, DropReason::Link, at);
    return;
  }

  LinkState& link = links_[at * graph_.vertex_count() + to];
  const std::size_t backlog = queue_length(at, to);
  if (backlog >= config_.link_queue_capacity) {
    drop(flight_index, DropReason::Overflow, at);
    return;
  }
  stats_.max_queue = std::max(stats_.max_queue, backlog + 1);
  ++link.transmissions;
  const double start = std::max(now_, link.next_free);
  link.next_free = start + config_.link_delay;
  if (obs::tracing_enabled()) {
    sim_event("send", now_, at,
              {obs::targ("to", to), obs::targ("shift", shift_label),
               obs::targ("digit", static_cast<std::uint64_t>(digit)),
               obs::targ("queue", static_cast<std::uint64_t>(backlog))});
  }
  flight.at = to;
  schedule(start + config_.link_delay, flight_index);
}

}  // namespace dbn::net
