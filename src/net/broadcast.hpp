// One-to-all broadcast in DN(d,k).
//
// De Bruijn networks were proposed for exactly this kind of collective
// (Samatham & Pradhan): a BFS spanning tree rooted at the source has depth
// = eccentricity(root) <= k, so a broadcast completes in at most k rounds
// when a site can feed all its links at once ("all-port"), and in
// O(k + log N) = O(k) rounds single-port because out-degrees are bounded
// by 2d. This module builds the tree and computes both schedules; the
// bench compares root choices and port models against the eccentricity
// lower bound.
#pragma once

#include <cstdint>
#include <vector>

#include "debruijn/graph.hpp"

namespace dbn::net {

/// BFS spanning tree of the network, rooted at `root`.
struct BroadcastTree {
  std::uint64_t root = 0;
  /// parent[v] = predecessor on the tree path, -1 at the root.
  std::vector<std::int64_t> parent;
  /// children[v], in ascending rank order.
  std::vector<std::vector<std::uint64_t>> children;
  /// BFS depth of each vertex (= distance from the root).
  std::vector<int> depth;
  /// max depth = eccentricity of the root.
  int height = 0;
};

BroadcastTree build_broadcast_tree(const DeBruijnGraph& graph,
                                   std::uint64_t root);

/// How many links a site may drive simultaneously.
enum class PortModel {
  AllPort,     // a site feeds every child link in the same round
  SinglePort,  // one child per round, children served in order
};

struct BroadcastSchedule {
  /// Round (1-based; root has 0) at which each vertex receives the message.
  std::vector<int> receive_round;
  /// max receive_round = completion time in rounds.
  int completion = 0;
  /// Total point-to-point messages sent (= N - 1 for a tree).
  std::uint64_t messages = 0;
};

/// Computes the per-vertex receive rounds for the tree under the port
/// model. All-port: child receives parent's round + 1. Single-port: the
/// i-th child (0-based) receives parent's round + i + 1.
BroadcastSchedule schedule_broadcast(const BroadcastTree& tree,
                                     PortModel model);

struct ReduceSchedule {
  /// Round (1-based) at which each vertex's contribution reaches its
  /// parent; leaves send first, the root sends nothing (round 0).
  std::vector<int> send_round;
  /// Rounds until the root holds the full reduction.
  int completion = 0;
  std::uint64_t messages = 0;
};

/// The dual collective: all-to-one reduction (convergecast) over the same
/// tree. A vertex can send to its parent only after every child has
/// arrived; all-port parents absorb all children in one round each
/// (completion = height), single-port parents absorb them sequentially.
ReduceSchedule schedule_reduce(const BroadcastTree& tree, PortModel model);

}  // namespace dbn::net
