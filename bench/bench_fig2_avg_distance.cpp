// Experiment F2 — Figure 2 of the paper: "Average distance of undirected
// de Bruijn graphs" (numerical, credited to Michel Syska).
//
// We regenerate the figure's series: for each d, the average undirected
// distance as a function of k. Method: exact all-pairs BFS while
// N = d^k <= 4096; beyond that, Monte-Carlo sampling of Theorem 2's O(k)
// distance over 100000 uniform ordered pairs (std error < 0.005*k).
// The directed average (equation-5 territory) is printed alongside so the
// undirected saving is visible — the gap the bi-directional links buy.
#include <iostream>
#include <string>

#include "common/ascii_plot.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/average_distance.hpp"
#include "core/distance.hpp"
#include "debruijn/word.hpp"

int main() {
  using namespace dbn;
  std::cout << "== Experiment F2: Figure 2 — average distance of undirected "
               "DG(d,k) ==\n\n";
  constexpr std::size_t kMaxExact = 4096;
  constexpr std::size_t kSamples = 100000;
  Rng rng(20260707);

  // Series indexed by d - 2 for d in 2..5, k = 1..10.
  std::vector<std::vector<double>> curve(4);
  Table table({"k", "d=2", "d=3", "d=4", "d=5", "method(d=2..5)"});
  for (std::size_t k = 1; k <= 10; ++k) {
    std::vector<std::string> row = {std::to_string(k)};
    std::string methods;
    for (std::uint32_t d = 2; d <= 5; ++d) {
      const std::uint64_t n = Word::vertex_count(d, k);
      double avg = 0.0;
      if (n <= kMaxExact) {
        avg = undirected_average_exact_bfs(d, k);
        methods += "E";
      } else {
        avg = undirected_average_sampled(d, k, kSamples, rng);
        methods += "S";
      }
      curve[d - 2].push_back(avg);
      row.push_back(Table::num(avg, 3));
    }
    row.push_back(methods);
    table.add_row(row);
  }
  table.print(std::cout,
              "Average undirected distance (E = exact all-pairs BFS, "
              "S = 1e5-pair sampling via Theorem 2)");

  // The figure itself, as the paper drew it: average distance vs k, one
  // curve per d.
  std::cout << "\n";
  AsciiPlot plot(60, 18);
  const char glyphs[4] = {'2', '3', '4', '5'};
  for (std::uint32_t d = 2; d <= 5; ++d) {
    PlotSeries series;
    series.glyph = glyphs[d - 2];
    series.label = "d = " + std::to_string(d);
    for (std::size_t k = 1; k <= 10; ++k) {
      series.xs.push_back(static_cast<double>(k));
      series.ys.push_back(curve[d - 2][k - 1]);
    }
    plot.add_series(std::move(series));
  }
  plot.print(std::cout,
             "Figure 2 (reproduced): average distance of undirected "
             "DG(d,k) vs k");

  std::cout << "\n";
  Table gap({"k", "d=2 undirected", "d=2 directed (exact)", "saving"});
  for (std::size_t k = 1; k <= 10; ++k) {
    const double dir = directed_average_distance_exact(2, k);
    const double und = (Word::vertex_count(2, k) <= kMaxExact)
                           ? undirected_average_exact_bfs(2, k)
                           : undirected_average_sampled(2, k, kSamples, rng);
    gap.add_row({std::to_string(k), Table::num(und, 3), Table::num(dir, 3),
                 Table::num(dir - und, 3)});
  }
  gap.print(std::cout,
            "What bi-directional links buy (directed minus undirected "
            "average, d = 2)");

  std::cout << "\nShape check (paper's Figure 2): curves increase roughly "
               "linearly in k,\nstay below the diameter k, and approach it "
               "from below faster for larger d\n(less overlap structure to "
               "exploit).\n";
  return 0;
}
