// Experiment D5 — what the paper's O(k) algorithms replace: compiled
// next-hop tables.
//
// A table-driven network stores O(N) next hops per site (O(N^2) total,
// built with N reverse BFS passes); the paper computes the next hop from
// the two addresses in O(k) = O(log N) with zero state. Measured: build
// time and memory of the tables vs per-decision cost of both approaches,
// as N grows. Lookups are (slightly) faster per hop; the table's build
// time and quadratic memory are the price, and they grow without bound
// while the formula's costs stay logarithmic.
#include <chrono>
#include <iostream>
#include <string>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/routers.hpp"
#include "core/routing_table.hpp"

namespace {

using namespace dbn;

double us_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  std::cout << "== Experiment D5: compiled routing tables vs the O(k) "
               "formulas ==\n\n";
  Table table({"d", "k", "N", "table build ms", "table bytes",
               "lookup ns/hop", "route ns/hop (amortized)"});
  Rng rng(77);
  for (const auto& [d, k] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 6}, {2, 8}, {2, 10}, {2, 12}, {3, 5}, {4, 4}}) {
    const DeBruijnGraph g(d, k, Orientation::Undirected);
    const auto build_start = std::chrono::steady_clock::now();
    const RoutingTable rt(g);
    const double build_ms = us_since(build_start) / 1000.0;

    // Sample random (src, dst) pairs; measure one next-hop decision each.
    const int probes = 20000;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs;
    pairs.reserve(probes);
    for (int i = 0; i < probes; ++i) {
      const std::uint64_t a = rng.below(g.vertex_count());
      std::uint64_t b = rng.below(g.vertex_count());
      if (a == b) {
        b = (b + 1) % g.vertex_count();
      }
      pairs.emplace_back(a, b);
    }
    const auto lookup_start = std::chrono::steady_clock::now();
    std::uint64_t sink = 0;
    for (const auto& [a, b] : pairs) {
      sink += rt.next_hop(a, b).digit;
    }
    const double lookup_ns = us_since(lookup_start) * 1000.0 / probes;

    // Stateless alternative: the source computes the whole O(k^2) route
    // once and every hop consumes one entry — so the per-hop cost is the
    // route cost amortized over its length.
    const auto formula_start = std::chrono::steady_clock::now();
    std::uint64_t total_hops = 0;
    for (const auto& [a, b] : pairs) {
      const RoutingPath path = route_bidirectional_mp(g.word(a), g.word(b));
      sink += path.length();
      total_hops += path.length();
    }
    const double formula_ns = us_since(formula_start) * 1000.0 /
                              static_cast<double>(std::max<std::uint64_t>(
                                  total_hops, 1));
    if (sink == 0xdeadbeef) {  // keep the loops observable
      std::cout << "";
    }
    table.add_row({std::to_string(d), std::to_string(k),
                   std::to_string(g.vertex_count()), Table::num(build_ms, 2),
                   std::to_string(rt.memory_bytes()),
                   Table::num(lookup_ns, 1), Table::num(formula_ns, 1)});
  }
  table.print(std::cout,
              "Next-hop decision: compiled O(N^2)-state tables vs the "
              "paper's stateless O(k) computation");
  std::cout << "\nShape: lookups win per-decision, but table state grows "
               "quadratically (already\nMBs at N = 4096) and build time "
               "grows superlinearly, while the formula's cost\ngrows only "
               "with k = log_d N and needs no state at all — the paper's "
               "point.\n";
  return 0;
}
