// Ablation A2 — the paper's Section 4 remark quantified: "mechanical
// transformations" (here: hoisting every allocation out of the hot path)
// versus the straightforward implementation of the same Algorithm 2.
//
// BM_Allocating constructs rows/paths per call; BM_Engine reuses buffers
// in a BidirectionalRouteEngine. At small k (the practical regime — a
// physical network with k = 16 already has 65536 sites) the engine's
// advantage is the difference between the algorithm's cost and malloc's.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/route_engine.hpp"
#include "core/routers.hpp"

namespace {

using namespace dbn;

Word random_word(Rng& rng, std::uint32_t d, std::size_t k) {
  std::vector<Digit> digits(k);
  for (auto& x : digits) {
    x = static_cast<Digit>(rng.below(d));
  }
  return Word(d, std::move(digits));
}

void BM_Allocating(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(k);
  const Word x = random_word(rng, 2, k);
  const Word y = random_word(rng, 2, k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(route_bidirectional_mp(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Allocating)->RangeMultiplier(2)->Range(4, 256)->Complexity();

void BM_Engine(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(k);
  const Word x = random_word(rng, 2, k);
  const Word y = random_word(rng, 2, k);
  BidirectionalRouteEngine engine(k);
  RoutingPath path;
  for (auto _ : state) {
    engine.route_into(x, y, WildcardMode::Concrete, path);
    benchmark::DoNotOptimize(path);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Engine)->RangeMultiplier(2)->Range(4, 256)->Complexity();

void BM_EngineDistanceOnly(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(k);
  const Word x = random_word(rng, 2, k);
  const Word y = random_word(rng, 2, k);
  BidirectionalRouteEngine engine(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.distance(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EngineDistanceOnly)->RangeMultiplier(2)->Range(4, 256)->Complexity();

}  // namespace

BENCHMARK_MAIN();
