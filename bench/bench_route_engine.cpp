// Ablation A2 — the paper's Section 4 remark quantified: "mechanical
// transformations" (here: hoisting every allocation out of the hot path)
// versus the straightforward implementation of the same Algorithm 2.
//
// BM_Allocating constructs rows/paths per call; BM_Engine reuses buffers
// in a BidirectionalRouteEngine. At small k (the practical regime — a
// physical network with k = 16 already has 65536 sites) the engine's
// advantage is the difference between the algorithm's cost and malloc's.
// Batch mode (BM_BatchEngine*) measures the same Algorithm 2/3 kernel
// driven by the parallel BatchRouteEngine: a chunked thread pool over
// per-worker scratch arenas, with an optional sharded memo cache for
// repeated (X, Y) flows. The thread sweep 1/2/4/8 is the CI smoke grid
// recorded in BENCH_*.json (docs/benchmarking.md).
// BM_UntracedRoute / BM_TracedRoute measure the observability subsystem:
// untraced is the default disabled path (one relaxed atomic load per
// route), traced routes into a discarding sink so the cost of building
// span/hop events is visible. scripts/bench_report.py derives the
// disabled-overhead row (BM_UntracedRoute vs BM_Engine at the same k) and
// CI gates it at 5%. The gated path is compiled at the default contract
// level, so the same ratio also bounds the level-1 DBN_REQUIRE/DBN_ENSURE
// checks inside route_into (witness range + cost identity, all O(1)
// compares): contracts staying live in production is part of what the
// 1.05x budget pays for.
// BM_PackedKernel* isolate the word-parallel (SWAR) side-minimum kernel
// from strings/packed.hpp against the scalar Algorithm 3 scan on the same
// pairs — the per-query ablation behind the batch-level bidi-vs-alg1 gate
// (scripts/bench_report.py --max-bidi-vs-alg1).
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "core/batch_route_engine.hpp"
#include "core/route_engine.hpp"
#include "core/routers.hpp"
#include "obs/trace.hpp"
#include "strings/matching.hpp"
#include "strings/packed.hpp"

namespace {

using namespace dbn;

Word random_word(Rng& rng, std::uint32_t d, std::size_t k) {
  std::vector<Digit> digits(k);
  for (auto& x : digits) {
    x = static_cast<Digit>(rng.below(d));
  }
  return Word(d, std::move(digits));
}

void BM_Allocating(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(k);
  const Word x = random_word(rng, 2, k);
  const Word y = random_word(rng, 2, k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(route_bidirectional_mp(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Allocating)->RangeMultiplier(2)->Range(4, 256)->Complexity();

void BM_Engine(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(k);
  const Word x = random_word(rng, 2, k);
  const Word y = random_word(rng, 2, k);
  BidirectionalRouteEngine engine(k);
  RoutingPath path;
  for (auto _ : state) {
    engine.route_into(x, y, WildcardMode::Concrete, path);
    benchmark::DoNotOptimize(path);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Engine)->RangeMultiplier(2)->Range(4, 256)->Complexity();

void BM_EngineDistanceOnly(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(k);
  const Word x = random_word(rng, 2, k);
  const Word y = random_word(rng, 2, k);
  BidirectionalRouteEngine engine(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.distance(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EngineDistanceOnly)
    ->RangeMultiplier(2)
    ->Range(4, 256)
    ->Complexity();

/// Accepts every event and throws it away — isolates the cost of *producing*
/// trace events from any export format.
class DiscardSink : public obs::TraceSink {
 public:
  void emit(const obs::TraceEvent& event) override {
    benchmark::DoNotOptimize(&event);
  }
};

void BM_UntracedRoute(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(k);
  const Word x = random_word(rng, 2, k);
  const Word y = random_word(rng, 2, k);
  BidirectionalRouteEngine engine(k);
  RoutingPath path;
  for (auto _ : state) {
    engine.route_into(x, y, WildcardMode::Concrete, path);
    benchmark::DoNotOptimize(path);
  }
}
BENCHMARK(BM_UntracedRoute)->Arg(16);

void BM_TracedRoute(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(k);
  const Word x = random_word(rng, 2, k);
  const Word y = random_word(rng, 2, k);
  BidirectionalRouteEngine engine(k);
  RoutingPath path;
  DiscardSink sink;
  obs::set_trace_sink(&sink);
  for (auto _ : state) {
    engine.route_into(x, y, WildcardMode::Concrete, path);
    benchmark::DoNotOptimize(path);
  }
  obs::set_trace_sink(nullptr);
}
BENCHMARK(BM_TracedRoute)->Arg(16);

void BM_PackedKernelMinLCost(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(k);
  const Word x = random_word(rng, 2, k);
  const Word y = random_word(rng, 2, k);
  const strings::PackedBuf px = strings::pack_word(x.symbols(), 2);
  const strings::PackedBuf py = strings::pack_word(y.symbols(), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strings::min_l_cost_packed(px, py));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PackedKernelMinLCost)->Arg(10)->Arg(16)->Arg(32)->Arg(64)
    ->Complexity();

void BM_PackedKernelMinLCostScalar(benchmark::State& state) {
  // The scalar Algorithm 3 scan on the identical pairs — the denominator
  // of the packed speedup at each k.
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(k);
  const Word x = random_word(rng, 2, k);
  const Word y = random_word(rng, 2, k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strings::min_l_cost(x.symbols(), y.symbols()));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PackedKernelMinLCostScalar)->Arg(10)->Arg(16)->Arg(32)->Arg(64)
    ->Complexity();

void BM_PackedKernelPackAndSweep(benchmark::State& state) {
  // The full per-query packed cost as the engine pays it: two packs,
  // two O(log) lane reversals, the l-side sweep, and the r-side sweep
  // pruned against the l-side incumbent.
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(k);
  const Word x = random_word(rng, 2, k);
  const Word y = random_word(rng, 2, k);
  for (auto _ : state) {
    const strings::PackedBuf px = strings::pack_word(x.symbols(), 2);
    const strings::PackedBuf py = strings::pack_word(y.symbols(), 2);
    const strings::OverlapMin l = strings::min_l_cost_packed(px, py);
    benchmark::DoNotOptimize(l);
    benchmark::DoNotOptimize(strings::min_l_cost_packed_bounded(
        strings::reverse_cells(px), strings::reverse_cells(py), l.cost));
  }
}
BENCHMARK(BM_PackedKernelPackAndSweep)->Arg(10)->Arg(32);

// The CI smoke grid: DG(2,10), random pairs, 8192 queries per batch.
constexpr std::uint32_t kSmokeD = 2;
constexpr std::size_t kSmokeK = 10;
constexpr std::size_t kSmokeBatch = 8192;

std::vector<RouteQuery> smoke_queries(std::size_t count, std::size_t flows) {
  Rng rng(kSmokeK);
  std::vector<RouteQuery> queries;
  queries.reserve(count);
  if (flows > 0) {
    // `flows` distinct hot pairs cycled through the batch (cache regime).
    std::vector<RouteQuery> hot;
    for (std::size_t i = 0; i < flows; ++i) {
      hot.push_back(RouteQuery{random_word(rng, kSmokeD, kSmokeK),
                               random_word(rng, kSmokeD, kSmokeK)});
    }
    for (std::size_t i = 0; i < count; ++i) {
      queries.push_back(hot[i % flows]);
    }
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      queries.push_back(RouteQuery{random_word(rng, kSmokeD, kSmokeK),
                                   random_word(rng, kSmokeD, kSmokeK)});
    }
  }
  return queries;
}

void BM_BatchEngine(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const std::vector<RouteQuery> queries = smoke_queries(kSmokeBatch, 0);
  BatchRouteEngine engine(kSmokeD, kSmokeK,
                          BatchRouteOptions{.threads = threads, .chunk = 256});
  std::vector<RoutingPath> out;
  for (auto _ : state) {
    engine.route_batch_into(queries, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(queries.size()));
}
BENCHMARK(BM_BatchEngine)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_BatchEngineCached(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  // 64 hot flows repeated across the batch; the sharded memo cache turns
  // the steady state into hash + lock + copy.
  const std::vector<RouteQuery> queries = smoke_queries(kSmokeBatch, 64);
  BatchRouteEngine engine(
      kSmokeD, kSmokeK,
      BatchRouteOptions{
          .threads = threads, .chunk = 256, .cache_entries = 4096});
  std::vector<RoutingPath> out;
  for (auto _ : state) {
    engine.route_batch_into(queries, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(queries.size()));
  state.counters["hit_rate"] = benchmark::Counter(
      static_cast<double>(engine.last_stats().cache_hits) /
      static_cast<double>(engine.last_stats().cache_lookups));
}
BENCHMARK(BM_BatchEngineCached)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_BatchEngineDistanceOnly(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const std::vector<RouteQuery> queries = smoke_queries(kSmokeBatch, 0);
  BatchRouteEngine engine(kSmokeD, kSmokeK,
                          BatchRouteOptions{.threads = threads, .chunk = 256});
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.distance_batch(queries));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(queries.size()));
}
BENCHMARK(BM_BatchEngineDistanceOnly)->Arg(1)->Arg(8)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
