// Experiment S1 — Section 3.1's wildcard remark: "This would allow the site
// which transmits the message to be able to select freely one of the
// neighbors of the specified type, so that the traffic could be more or
// less balanced."
//
// The paper does not evaluate this; we do. DN(2,8) (256 sites), hotspot and
// uniform workloads, paths from Algorithm 4 with wildcard digits, and three
// resolution policies at the forwarding sites:
//   Zero       — all wildcards resolve to digit 0 (no balancing; every
//                arbitrary hop funnels through the 0-shift links),
//   Random     — uniform random digit,
//   LeastQueue — pick the emptiest outgoing link.
// Expected shape: Random and LeastQueue cut the maximum link backlog and
// tail latency versus Zero, most visibly under load; LeastQueue <= Random.
#include <iostream>
#include <string>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/routers.hpp"
#include "net/load_stats.hpp"
#include "net/simulator.hpp"
#include "net/traffic.hpp"

namespace {

using namespace dbn;
using namespace dbn::net;

constexpr std::uint32_t kRadix = 2;
constexpr std::size_t kK = 8;

const char* policy_name(WildcardPolicy policy) {
  switch (policy) {
    case WildcardPolicy::Zero:
      return "Zero";
    case WildcardPolicy::Random:
      return "Random";
    case WildcardPolicy::LeastQueue:
      return "LeastQueue";
  }
  return "?";
}

struct RunResult {
  SimStats stats;
  double link_gini = 0.0;
  double link_cv = 0.0;
};

RunResult run(const std::vector<Injection>& schedule, WildcardPolicy policy) {
  SimConfig config;
  config.radix = kRadix;
  config.k = kK;
  config.wildcard_policy = policy;
  config.seed = 7;
  Simulator sim(config);
  for (const Injection& inj : schedule) {
    const Word src = Word::from_rank(kRadix, kK, inj.source);
    const Word dst = Word::from_rank(kRadix, kK, inj.destination);
    sim.inject(inj.time,
               Message(ControlCode::Data, src, dst,
                       route_bidirectional_suffix_tree(
                           src, dst, WildcardMode::Wildcards)));
  }
  sim.run();
  const auto loads = sim.link_transmissions();
  return RunResult{sim.stats(), gini_coefficient(loads),
                   coefficient_of_variation(loads)};
}

void run_workload(const std::string& name,
                  const std::vector<Injection>& schedule) {
  Table table({"policy", "delivered", "mean lat", "p99 lat", "max queue",
               "link Gini", "link CV"});
  for (WildcardPolicy policy : {WildcardPolicy::Zero, WildcardPolicy::Random,
                                WildcardPolicy::LeastQueue}) {
    const RunResult r = run(schedule, policy);
    table.add_row({policy_name(policy), std::to_string(r.stats.delivered),
                   Table::num(r.stats.mean_latency(), 2),
                   Table::num(r.stats.latency_percentile(99), 2),
                   std::to_string(r.stats.max_queue),
                   Table::num(r.link_gini, 3), Table::num(r.link_cv, 3)});
  }
  std::cout << "\n";
  table.print(std::cout, name);
}

}  // namespace

int main() {
  std::cout << "== Experiment S1: wildcard (\"*\") traffic balancing in "
               "DN(2,8) ==\n";
  Rng rng(101);
  run_workload(
      "Uniform traffic, moderate load (rate 0.08/site over 300 time units)",
      uniform_traffic(kRadix, kK, 0.08, 300.0, rng));
  run_workload(
      "Uniform traffic, heavy load (rate 0.25/site over 300 time units)",
      uniform_traffic(kRadix, kK, 0.25, 300.0, rng));
  run_workload(
      "Hotspot traffic (30% of messages to one site, rate 0.10/site)",
      hotspot_traffic(kRadix, kK, 0.10, 300.0, 0.3, /*hotspot=*/170, rng));
  std::cout << "\nExpected shape: Zero funnels every arbitrary hop through "
               "the 0-digit links;\nRandom/LeastQueue spread them, reducing "
               "max queue and tail latency. The\nhotspot's final links are "
               "saturated for every policy (wildcards cannot help\nthe last "
               "hops), so the gap shows mid-path.\n";
  return 0;
}
