// Experiment C2 — the bi-directional router complexity claims:
//   Section 3.2: Algorithm 2 (+3) is O(k^2) time, O(k) space.
//   Section 3.3: Algorithm 4 (suffix trees) is O(k) time and space.
//   Section 4:  "when the diameter k ... is small, the use of conceptually
//                simpler pattern matching algorithms ... may not be worse
//                than the linear algorithms."
//
// google-benchmark sweep over k for Algorithm 2, Algorithm 4, and the
// O(k^3) brute-force enumeration, followed by a crossover table that
// reports which algorithm wins at each k — reproducing the Section 4
// remark quantitatively (Algorithm 2, and even the cubic scan, win below a
// few dozen digits; Algorithm 4 wins asymptotically).
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/path_builder.hpp"
#include "core/routers.hpp"
#include "debruijn/word.hpp"
#include "strings/naive.hpp"

namespace {

using namespace dbn;

Word random_word(Rng& rng, std::uint32_t d, std::size_t k) {
  std::vector<Digit> digits(k);
  for (auto& x : digits) {
    x = static_cast<Digit>(rng.below(d));
  }
  return Word(d, std::move(digits));
}

/// Brute-force bi-directional router: O(k^3) minimization, same path
/// construction (the "conceptually simpler" baseline).
RoutingPath route_bidirectional_cubic(const Word& x, const Word& y) {
  const int k = static_cast<int>(x.length());
  const strings::OverlapMin l_side =
      strings::naive::min_l_cost(x.symbols(), y.symbols());
  const Word xr = x.reversed();
  const Word yr = y.reversed();
  const strings::OverlapMin r_side = r_side_from_reversed(
      k, strings::naive::min_l_cost(xr.symbols(), yr.symbols()));
  return build_bidi_path(x, y, make_bidi_plan(k, l_side, r_side),
                         WildcardMode::Concrete);
}

void BM_Algorithm2(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(k);
  const Word x = random_word(rng, 2, k);
  const Word y = random_word(rng, 2, k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(route_bidirectional_mp(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Algorithm2)
    ->RangeMultiplier(4)
    ->Range(4, 1 << 10)
    ->Complexity(benchmark::oNSquared);

void BM_Algorithm4(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(k);
  const Word x = random_word(rng, 2, k);
  const Word y = random_word(rng, 2, k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(route_bidirectional_suffix_tree(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Algorithm4)
    ->RangeMultiplier(4)
    ->Range(4, 1 << 12)
    ->Complexity(benchmark::oN);

void BM_BruteForceCubic(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(k);
  const Word x = random_word(rng, 2, k);
  const Word y = random_word(rng, 2, k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(route_bidirectional_cubic(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BruteForceCubic)->RangeMultiplier(4)->Range(4, 1 << 7)->Complexity();

double mean_ns_per_route(RoutingPath (*route)(const Word&, const Word&),
                         std::size_t k, int reps) {
  Rng rng(k * 7919 + 13);
  const Word x = random_word(rng, 2, k);
  const Word y = random_word(rng, 2, k);
  // Warm-up.
  benchmark::DoNotOptimize(route(x, y));
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    benchmark::DoNotOptimize(route(x, y));
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count() / reps;
}

RoutingPath route_mp_concrete(const Word& x, const Word& y) {
  return route_bidirectional_mp(x, y);
}
RoutingPath route_st_concrete(const Word& x, const Word& y) {
  return route_bidirectional_suffix_tree(x, y);
}

void print_crossover_table() {
  Table table({"k", "Alg2 O(k^2) ns", "Alg4 O(k) ns", "cubic ns", "winner"});
  for (const std::size_t k :
       {2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    const int reps = k <= 64 ? 5000 : (k <= 512 ? 500 : 50);
    const double mp = mean_ns_per_route(&route_mp_concrete, k, reps);
    const double st = mean_ns_per_route(&route_st_concrete, k, reps);
    const double cubic = k <= 256
                             ? mean_ns_per_route(&route_bidirectional_cubic, k,
                                                 std::max(5, reps / 20))
                             : -1.0;
    const char* winner = "Alg4";
    if (mp <= st && (cubic < 0 || mp <= cubic)) {
      winner = "Alg2";
    } else if (cubic >= 0 && cubic <= st && cubic <= mp) {
      winner = "cubic";
    }
    table.add_row({std::to_string(k), Table::num(mp, 0), Table::num(st, 0),
                   cubic < 0 ? "-" : Table::num(cubic, 0), winner});
  }
  std::cout << "\n";
  table.print(std::cout,
              "Crossover (Section 4 remark): per-route cost by diameter k, "
              "random binary words");
  std::cout << "\nExpected shape: Alg2 (or even the cubic scan) wins at "
               "small k; Alg4's linear\nconstruction overtakes once k "
               "reaches a few hundred.\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_crossover_table();
  return 0;
}
