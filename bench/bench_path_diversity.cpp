// Experiment D2 — route diversity: how many optimal paths the network
// offers. The paper's wildcard remark exposes freedom *within* one path
// shape; this measures the freedom across all shortest paths — the slack a
// balancing or recovery layer can exploit (and part of why the S1 policies
// help).
//
// Measured: mean number of shortest paths over ordered pairs, and the
// count profile by distance, for directed and undirected DG(d,k).
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/path_count.hpp"
#include "debruijn/bfs.hpp"

int main() {
  using namespace dbn;
  std::cout << "== Experiment D2: shortest-path diversity of DG(d,k) ==\n\n";

  Table mean_table({"d", "k", "orientation", "mean #paths", "max #paths"});
  for (const auto& [d, k] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 4}, {2, 6}, {2, 8}, {3, 3}, {3, 5}, {4, 3}, {5, 3}}) {
    for (Orientation o : {Orientation::Directed, Orientation::Undirected}) {
      const DeBruijnGraph g(d, k, o);
      double total = 0.0;
      std::uint64_t max_count = 0;
      for (std::uint64_t src = 0; src < g.vertex_count(); ++src) {
        const auto counts = count_shortest_paths_from(g, src);
        for (std::uint64_t dst = 0; dst < g.vertex_count(); ++dst) {
          if (dst == src) {
            continue;
          }
          total += static_cast<double>(counts[dst]);
          max_count = std::max(max_count, counts[dst]);
        }
      }
      const double n = static_cast<double>(g.vertex_count());
      mean_table.add_row(
          {std::to_string(d), std::to_string(k),
           o == Orientation::Directed ? "directed" : "undirected",
           Table::num(total / (n * (n - 1)), 3), std::to_string(max_count)});
    }
  }
  mean_table.print(std::cout, "Mean / max number of shortest paths (ordered "
                              "pairs, src != dst)");

  std::cout << "\n";
  // Profile by distance for the undirected DG(2,8).
  const DeBruijnGraph g(2, 8, Orientation::Undirected);
  std::vector<double> sum_by_dist(9, 0.0);
  std::vector<std::uint64_t> pairs_by_dist(9, 0);
  for (std::uint64_t src = 0; src < g.vertex_count(); ++src) {
    const auto dist = bfs_distances(g, src);
    const auto counts = count_shortest_paths_from(g, src);
    for (std::uint64_t dst = 0; dst < g.vertex_count(); ++dst) {
      if (dst == src) {
        continue;
      }
      sum_by_dist[static_cast<std::size_t>(dist[dst])] +=
          static_cast<double>(counts[dst]);
      ++pairs_by_dist[static_cast<std::size_t>(dist[dst])];
    }
  }
  Table profile({"distance", "pairs", "mean #paths"});
  for (std::size_t i = 1; i <= 8; ++i) {
    if (pairs_by_dist[i] == 0) {
      continue;
    }
    profile.add_row({std::to_string(i), std::to_string(pairs_by_dist[i]),
                     Table::num(sum_by_dist[i] /
                                    static_cast<double>(pairs_by_dist[i]),
                                3)});
  }
  profile.print(std::cout, "Undirected DG(2,8): path diversity by distance");
  std::cout << "\nShape: the directed graph has mean and max exactly 1 — a "
               "directed shortest\npath is forced digit by digit (every left "
               "shift must insert the next digit of\nY). All the diversity "
               "comes from bi-directionality, and it grows with\ndistance — "
               "the slack behind wildcard balancing and fault recovery.\n";
  return 0;
}
