// Saturation study for the deflection stack, in two parts.
//
// Per-decision cost — the tentpole ratio CI gates (bench_report.py
// --max-deflection-cost): BM_DeflectionRescore is the historical adaptive
// scoring, one O(k) Theorem-2 distance per neighbor per hop;
// BM_LayerTableClassify is the same decision answered by the cached
// per-destination layer table (core/layer_table.hpp), two byte loads. Both
// run the identical pair stream over DN(2,16) so the derived row
// derived/deflection_cost = classify / rescore is a like-for-like ratio.
//
// Injection sweep — BM_Saturation{Greedy,Deflect,LayerTable} drive the
// discrete-event simulator on DN(2,8) with finite link queues across
// offered loads (Arg = injection rate per site, in percent). Delivered
// messages are the items/s figure; the delivered fraction and drop mix
// ride along as counters, and every run feeds the PR-4 metrics pipeline
// (net/load_stats.hpp) so a --metrics-out snapshot sees the saturation
// counters too.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/distance.hpp"
#include "core/layer_table.hpp"
#include "debruijn/graph.hpp"
#include "net/load_stats.hpp"
#include "net/simulator.hpp"
#include "net/traffic.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace dbn;

// One pre-sampled neighborhood decision: classify `neighbor` of `from`
// relative to a fixed destination. Both scorings consume the same stream.
struct DecisionStream {
  DeBruijnGraph graph;
  Word y;
  std::vector<std::uint64_t> from_ranks;
  std::vector<std::uint64_t> neighbor_ranks;
  std::vector<Word> neighbor_words;
  std::vector<int> here;  // D(from, y), known to the router at the hop

  DecisionStream(std::size_t k, std::size_t count)
      : graph(2, k, Orientation::Undirected), y(Word::zero(2, k)) {
    Rng rng(99);
    y = Word::from_rank(2, k, rng.below(graph.vertex_count()));
    from_ranks.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t from = rng.below(graph.vertex_count());
      const std::vector<std::uint64_t> nbrs = graph.neighbors(from);
      const std::uint64_t nbr = nbrs[rng.below(nbrs.size())];
      from_ranks.push_back(from);
      neighbor_ranks.push_back(nbr);
      neighbor_words.push_back(graph.word(nbr));
      here.push_back(undirected_distance(graph.word(from), y));
    }
  }
};

constexpr std::size_t kDecisions = 1024;

void BM_DeflectionRescore(benchmark::State& state) {
  const DecisionStream stream(static_cast<std::size_t>(state.range(0)),
                              kDecisions);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < kDecisions; ++i) {
      // The old adaptive hot path: recompute D(neighbor, Y) and compare to
      // the current layer.
      const int there = undirected_distance(stream.neighbor_words[i], stream.y);
      const int here = stream.here[i];
      acc += there < here ? 0u : there == here ? 1u : 2u;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kDecisions));
}
BENCHMARK(BM_DeflectionRescore)->Arg(16);

void BM_LayerTableClassify(benchmark::State& state) {
  const DecisionStream stream(static_cast<std::size_t>(state.range(0)),
                              kDecisions);
  LayerTable table(stream.graph);
  // Warm the destination's table: per-walk builds are measured by the
  // layer.builds metric, not by the per-hop loop this gates.
  const std::shared_ptr<const LayerTable::View> view = table.view(stream.y);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < kDecisions; ++i) {
      acc += static_cast<std::uint64_t>(
          view->classify(stream.from_ranks[i], stream.neighbor_ranks[i]));
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kDecisions));
}
BENCHMARK(BM_LayerTableClassify)->Arg(16);

// --- Injection-rate sweep ---------------------------------------------------

constexpr std::uint32_t kSatRadix = 2;
constexpr std::size_t kSatK = 8;  // 256 sites
constexpr double kSatDuration = 60.0;

void run_saturation(benchmark::State& state, net::ForwardingMode forwarding,
                    net::AdaptiveScoring scoring) {
  const double rate = static_cast<double>(state.range(0)) / 100.0;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_overflow = 0;
  std::uint64_t dropped_ttl = 0;
  for (auto _ : state) {
    net::SimConfig config;
    config.radix = kSatRadix;
    config.k = kSatK;
    config.orientation = Orientation::Undirected;
    config.link_queue_capacity = 4;  // finite queues: saturation sheds load
    config.forwarding = forwarding;
    config.adaptive_scoring = scoring;
    net::Simulator sim(config);
    Rng rng(7);
    for (const net::Injection& inj :
         net::uniform_traffic(kSatRadix, kSatK, rate, kSatDuration, rng)) {
      sim.inject(inj.time,
                 net::Message(net::ControlCode::Data,
                              Word::from_rank(kSatRadix, kSatK, inj.source),
                              Word::from_rank(kSatRadix, kSatK,
                                              inj.destination),
                              RoutingPath()));
    }
    sim.run();
    const net::SimStats& stats = sim.stats();
    injected += stats.injected;
    delivered += stats.delivered;
    dropped_overflow += stats.dropped_overflow;
    dropped_ttl += stats.dropped_ttl;
    net::record_sim_metrics(obs::MetricsRegistry::global(), sim);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
  const double runs = std::max<double>(static_cast<double>(state.iterations()), 1.0);
  state.counters["offered_rate"] = rate;
  state.counters["delivered_frac"] =
      injected == 0 ? 0.0
                    : static_cast<double>(delivered) /
                          static_cast<double>(injected);
  // Delivered throughput in messages per simulated time unit — the y axis
  // of the classic saturation figure.
  state.counters["sim_throughput"] =
      static_cast<double>(delivered) / (runs * kSatDuration);
  state.counters["overflow_drops"] =
      static_cast<double>(dropped_overflow) / runs;
  state.counters["ttl_drops"] = static_cast<double>(dropped_ttl) / runs;
}

void BM_SaturationGreedy(benchmark::State& state) {
  run_saturation(state, net::ForwardingMode::HopByHop,
                 net::AdaptiveScoring::Rescore);
}
BENCHMARK(BM_SaturationGreedy)->Arg(5)->Arg(20)->Arg(35)->Arg(50);

void BM_SaturationDeflect(benchmark::State& state) {
  run_saturation(state, net::ForwardingMode::Adaptive,
                 net::AdaptiveScoring::Rescore);
}
BENCHMARK(BM_SaturationDeflect)->Arg(5)->Arg(20)->Arg(35)->Arg(50);

void BM_SaturationLayerTable(benchmark::State& state) {
  run_saturation(state, net::ForwardingMode::Adaptive,
                 net::AdaptiveScoring::LayerTable);
}
BENCHMARK(BM_SaturationLayerTable)->Arg(5)->Arg(20)->Arg(35)->Arg(50);

}  // namespace

BENCHMARK_MAIN();
