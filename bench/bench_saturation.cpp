// Experiment D9 — the classic interconnect figure the 1990 paper predates:
// offered load vs delivered latency for DN(2,8), wildcard-balanced
// Algorithm 4 paths. Mean latency stays near the average distance until
// the network approaches saturation, then the queueing knee appears.
#include <iostream>
#include <vector>

#include "common/ascii_plot.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/routers.hpp"
#include "net/simulator.hpp"
#include "net/traffic.hpp"

int main() {
  using namespace dbn;
  using namespace dbn::net;
  constexpr std::uint32_t d = 2;
  constexpr std::size_t k = 8;
  std::cout << "== Experiment D9: load-latency curve, DN(2,8) ==\n\n";

  std::vector<double> rates;
  for (double r = 0.02; r <= 0.44; r += 0.03) {
    rates.push_back(r);
  }
  Table table({"rate/site", "delivered", "mean lat", "p99 lat", "max queue"});
  PlotSeries mean_series{{}, {}, '*', "mean latency"};
  PlotSeries p99_series{{}, {}, '9', "p99 latency"};
  for (const double rate : rates) {
    SimConfig config;
    config.radix = d;
    config.k = k;
    config.wildcard_policy = WildcardPolicy::Random;
    Simulator sim(config);
    Rng rng(static_cast<std::uint64_t>(rate * 1000));
    for (const Injection& inj : uniform_traffic(d, k, rate, 250.0, rng)) {
      const Word src = Word::from_rank(d, k, inj.source);
      const Word dst = Word::from_rank(d, k, inj.destination);
      sim.inject(inj.time,
                 Message(ControlCode::Data, src, dst,
                         route_bidirectional_suffix_tree(
                             src, dst, WildcardMode::Wildcards)));
    }
    sim.run();
    const SimStats& s = sim.stats();
    table.add_row({Table::num(rate, 2), std::to_string(s.delivered),
                   Table::num(s.mean_latency(), 2),
                   Table::num(s.latency_percentile(99), 2),
                   std::to_string(s.max_queue)});
    mean_series.xs.push_back(rate);
    mean_series.ys.push_back(s.mean_latency());
    p99_series.xs.push_back(rate);
    p99_series.ys.push_back(s.latency_percentile(99));
  }
  table.print(std::cout, "Uniform Poisson traffic, 250 time units per point");
  std::cout << "\n";
  AsciiPlot plot(60, 16);
  plot.add_series(std::move(mean_series));
  plot.add_series(std::move(p99_series));
  plot.print(std::cout, "Latency vs offered load (rate per site)");
  std::cout << "\nShape: flat near the average distance (~5) at low load, "
               "then the queueing\nknee as links saturate — the classic "
               "hockey stick.\n";
  return 0;
}
