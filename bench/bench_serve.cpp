// Steady-state serving benchmark behind the CI serve gate.
//
// BM_ServeSteadyState drives an in-process RouteServer the way a warmed
// closed-loop client does: a 256-deep window of pipelined route requests
// through Connection::feed, each answered by the dispatcher's
// micro-batched BatchRouteEngine. One iteration = one request admitted,
// so items_per_second is the sustained QPS and the p50_us/p99_us counters
// are end-to-end (encode -> admit -> batch -> respond) latencies measured
// inside the run.
//
// BM_ServeEngineOnly runs the identical query stream straight into the
// same engine configuration with no protocol, queue, or dispatcher —
// the denominator for the derived serve-overhead ratio that
// scripts/bench_report.py computes from the two rows' items_per_second
// and gates at record time (--max-serve-overhead).
//
// BM_ServeObserved is BM_ServeSteadyState with the observability plane
// switched on the way the CI serve smoke runs it: 1-in-64 deterministic
// request tracing into a discard sink, the slow-request log armed, and a
// MetricsTimeline sampling the registry in the background. Its ratio to
// BM_ServeSteadyState is derived/serve_obs_overhead, gated at record time
// (--max-serve-obs-overhead) so the probe/tracing path cannot quietly tax
// the serving fast path.
//
// All pin the engine to one worker thread so the ratios compare the
// serving machinery, not the runner's core count.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "core/batch_route_engine.hpp"
#include "debruijn/word.hpp"
#include "obs/live.hpp"
#include "obs/trace.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using namespace dbn;
using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kD = 2;
constexpr std::size_t kK = 16;
constexpr std::size_t kWindow = 256;
constexpr std::size_t kPairs = 1024;

Word random_word(Rng& rng, std::uint32_t d, std::size_t k) {
  std::vector<Digit> digits(k);
  for (auto& x : digits) {
    x = static_cast<Digit>(rng.below(d));
  }
  return Word(d, std::move(digits));
}

std::vector<RouteQuery> query_stream() {
  Rng rng(2026);
  std::vector<RouteQuery> pairs;
  pairs.reserve(kPairs);
  for (std::size_t i = 0; i < kPairs; ++i) {
    pairs.push_back(
        {random_word(rng, kD, kK), random_word(rng, kD, kK)});
  }
  return pairs;
}

std::uint64_t percentile_us(std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(rank + 0.5)];
}

serve::ServeConfig steady_config() {
  serve::ServeConfig config;
  config.d = kD;
  config.k = kK;
  config.threads = 1;
  config.queue_capacity = 1u << 15;  // never shed: every answer is Ok
  config.max_batch = kWindow;
  return config;
}

void run_steady_state(benchmark::State& state,
                      const serve::ServeConfig& config) {
  serve::RouteServer server(config);

  const std::vector<RouteQuery> pairs = query_stream();

  struct Harness {
    std::mutex mutex;
    std::condition_variable cv;
    std::uint64_t responded = 0;
    std::vector<Clock::time_point> arrivals;
  } harness;
  harness.arrivals.reserve(1u << 20);

  const std::shared_ptr<serve::Connection> conn =
      server.connect([&harness](std::string_view frames) {
        // Count complete response frames (the server only ever sends whole
        // frames) and timestamp their arrival; decoding happens after the
        // run so the sink stays off the dispatcher's critical path.
        const Clock::time_point now = Clock::now();
        std::size_t n = 0;
        std::size_t at = 0;
        while (at + 4 <= frames.size()) {
          std::uint32_t len = 0;
          std::memcpy(&len, frames.data() + at, 4);
          at += 4 + len;
          ++n;
        }
        const std::lock_guard<std::mutex> lock(harness.mutex);
        for (std::size_t i = 0; i < n; ++i) {
          harness.arrivals.push_back(now);
        }
        harness.responded += n;
        harness.cv.notify_all();
      });

  std::vector<Clock::time_point> sends;
  sends.reserve(1u << 20);
  std::string frame;
  std::uint64_t sent = 0;
  for (auto _ : state) {
    {
      std::unique_lock<std::mutex> lock(harness.mutex);
      harness.cv.wait(
          lock, [&] { return sent - harness.responded < kWindow; });
    }
    const RouteQuery& q = pairs[sent % kPairs];
    frame.clear();
    serve::encode_route_request(sent, q.x, q.y, frame);
    sends.push_back(Clock::now());
    conn->feed(frame);
    ++sent;
  }
  {
    // Tail drain (outside the timed loop): every request answered.
    std::unique_lock<std::mutex> lock(harness.mutex);
    harness.cv.wait(lock, [&] { return harness.responded == sent; });
  }
  server.wait_drained();

  std::vector<std::uint64_t> latencies;
  latencies.reserve(sends.size());
  for (std::size_t i = 0; i < sends.size(); ++i) {
    latencies.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            harness.arrivals[i] - sends[i])
            .count()));
  }
  std::sort(latencies.begin(), latencies.end());
  state.SetItemsProcessed(static_cast<std::int64_t>(sent));
  state.counters["p50_us"] =
      static_cast<double>(percentile_us(latencies, 50));
  state.counters["p99_us"] =
      static_cast<double>(percentile_us(latencies, 99));
  state.counters["window"] = static_cast<double>(kWindow);
}

void BM_ServeSteadyState(benchmark::State& state) {
  run_steady_state(state, steady_config());
}
BENCHMARK(BM_ServeSteadyState)->UseRealTime();

/// Accepts every event and throws it away — charges the serving path for
/// producing trace events without billing any export format.
class DiscardSink : public obs::TraceSink {
 public:
  void emit(const obs::TraceEvent& event) override {
    benchmark::DoNotOptimize(&event);
  }
};

void BM_ServeObserved(benchmark::State& state) {
  serve::ServeConfig config = steady_config();
  config.trace_sample = 64;  // the CI smoke's sampling rate
  config.trace_seed = 2026;
  config.slow_us = 1e6;  // armed but quiet: charge the check, not the log
  DiscardSink sink;
  obs::set_trace_sink(&sink);
  obs::MetricsTimelineOptions timeline_options;
  timeline_options.interval = std::chrono::milliseconds(50);
  obs::MetricsTimeline timeline(timeline_options);
  timeline.start();
  run_steady_state(state, config);
  timeline.stop();
  obs::set_trace_sink(nullptr);
  state.counters["timeline_samples"] =
      static_cast<double>(timeline.sample_count());
}
BENCHMARK(BM_ServeObserved)->UseRealTime();

void BM_ServeEngineOnly(benchmark::State& state) {
  BatchRouteOptions options;
  options.threads = 1;
  options.chunk = 64;
  BatchRouteEngine engine(kD, kK, options);
  const std::vector<RouteQuery> pairs = query_stream();
  std::vector<RouteQuery> batch(pairs.begin(), pairs.begin() + kWindow);
  std::vector<RoutingPath> out;
  for (auto _ : state) {
    engine.route_batch_into(batch, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      static_cast<std::uint64_t>(state.iterations()) * kWindow));
}
BENCHMARK(BM_ServeEngineOnly)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
