// Experiment C1 — Section 3.1 claim: Algorithm 1 (uni-directional routing)
// is O(k) in time and space.
//
// google-benchmark sweep over the diameter k: Algorithm 1 (Morris–Pratt
// overlap) against the naive overlap scan the paper's Section 4 calls
// "conceptually simpler". Two input families:
//   - random words: the naive scan's checks fail after O(1) expected
//     symbols, so both look linear — this is the paper's point that simple
//     algorithms are fine for small/typical cases;
//   - adversarial words (X = 0^k, Y = 0^(k/2) 1 0^...), where every naive
//     check runs ~k/2 symbols deep: the fitted complexity (BigO column)
//     reads ~N for Algorithm 1 and ~N^2 for the naive scan.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/routers.hpp"
#include "debruijn/word.hpp"
#include "strings/naive.hpp"

namespace {

using namespace dbn;

Word random_word(Rng& rng, std::uint32_t d, std::size_t k) {
  std::vector<Digit> digits(k);
  for (auto& x : digits) {
    x = static_cast<Digit>(rng.below(d));
  }
  return Word(d, std::move(digits));
}

std::pair<Word, Word> adversarial_pair(std::size_t k) {
  const Word x = Word::zero(2, k);
  std::vector<Digit> yd(k, 0);
  yd[k / 2] = 1;
  return {x, Word(2, std::move(yd))};
}

RoutingPath naive_route(const Word& x, const Word& y) {
  const int l = strings::naive::suffix_prefix_overlap(x.symbols(), y.symbols());
  RoutingPath path;
  for (std::size_t i = static_cast<std::size_t>(l); i < y.length(); ++i) {
    path.push({ShiftType::Left, y.digit(i)});
  }
  return path;
}

void BM_Algorithm1_Random(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(k);
  const Word x = random_word(rng, 2, k);
  const Word y = random_word(rng, 2, k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(route_unidirectional(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Algorithm1_Random)
    ->RangeMultiplier(4)
    ->Range(16, 1 << 16)
    ->Complexity(benchmark::oN);

void BM_Algorithm1_Adversarial(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const auto [x, y] = adversarial_pair(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(route_unidirectional(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Algorithm1_Adversarial)
    ->RangeMultiplier(4)
    ->Range(16, 1 << 16)
    ->Complexity(benchmark::oN);

void BM_NaiveOverlap_Random(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(k);
  const Word x = random_word(rng, 2, k);
  const Word y = random_word(rng, 2, k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive_route(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NaiveOverlap_Random)
    ->RangeMultiplier(4)
    ->Range(16, 1 << 16)
    ->Complexity();

void BM_NaiveOverlap_Adversarial(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const auto [x, y] = adversarial_pair(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive_route(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NaiveOverlap_Adversarial)
    ->RangeMultiplier(4)
    ->Range(16, 1 << 13)
    ->Complexity(benchmark::oNSquared);

}  // namespace

BENCHMARK_MAIN();
