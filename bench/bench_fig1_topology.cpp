// Experiment F1 — Figure 1 of the paper: the directed and undirected
// de Bruijn graphs DG(2,3), plus the Section 1 structural claims
// (arc count N*d; degree censuses after removing redundant arcs/edges).
//
// Output: the full arc/edge lists of DG(2,3) in the paper's vertex notation
// and a census table for a range of (d,k), each row checked against the
// claimed closed form.
#include <algorithm>
#include <iostream>
#include <set>
#include <string>
#include <utility>

#include "common/table.hpp"
#include "debruijn/graph.hpp"

namespace {

using namespace dbn;

std::string word_str(const DeBruijnGraph& g, std::uint64_t rank) {
  const Word w = g.word(rank);
  std::string s;
  for (std::size_t i = 0; i < w.length(); ++i) {
    s += static_cast<char>('0' + w.digit(i));
  }
  return s;
}

void print_directed_dg23() {
  const DeBruijnGraph g(2, 3, Orientation::Directed);
  std::cout << "Figure 1(a): directed DG(2,3) — arcs X -> X^-(a)\n";
  for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
    std::cout << "  " << word_str(g, v) << " ->";
    for (const std::uint64_t w : g.neighbors(v)) {
      std::cout << " " << word_str(g, w);
    }
    std::cout << "\n";
  }
}

void print_undirected_dg23() {
  const DeBruijnGraph g(2, 3, Orientation::Undirected);
  std::cout << "\nFigure 1(b): undirected DG(2,3) — edges (loops/duplicates "
               "removed)\n";
  std::set<std::pair<std::uint64_t, std::uint64_t>> printed;
  for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
    for (const std::uint64_t w : g.neighbors(v)) {
      const auto edge = std::minmax(v, w);
      if (printed.insert({edge.first, edge.second}).second) {
        std::cout << "  " << word_str(g, edge.first) << " -- "
                  << word_str(g, edge.second) << "\n";
      }
    }
  }
  std::cout << "  (" << printed.size() << " edges)\n";
}

void print_census_table() {
  Table table({"d", "k", "N", "deg=2d", "deg=2d-1", "deg=2d-2", "claim"});
  for (const auto& [d, k] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 3}, {2, 6}, {2, 9}, {3, 3}, {3, 5}, {4, 4}, {5, 3}, {7, 3}}) {
    for (Orientation o : {Orientation::Directed, Orientation::Undirected}) {
      const DeBruijnGraph g(d, k, o);
      const auto census = g.degree_census();
      const std::uint64_t n = g.vertex_count();
      const auto at = [&](std::size_t deg) -> std::uint64_t {
        const auto it = census.find(deg);
        return it == census.end() ? 0 : it->second;
      };
      bool claim_ok = false;
      if (o == Orientation::Directed) {
        // Paper: N-d vertices of degree 2d, d of degree 2d-2.
        claim_ok = at(2 * d) == n - d && at(2 * d - 2) == d;
      } else {
        // Reconstructed claim: N-d^2 of degree 2d, d^2-d of 2d-1, d of 2d-2.
        claim_ok = at(2 * d) == n - static_cast<std::uint64_t>(d) * d &&
                   at(2 * d - 1) == static_cast<std::uint64_t>(d) * (d - 1) &&
                   at(2 * d - 2) == d;
      }
      table.add_row({std::to_string(d) +
                         (o == Orientation::Directed ? " (dir)" : " (und)"),
                     std::to_string(k), std::to_string(n),
                     std::to_string(at(2 * d)), std::to_string(at(2 * d - 1)),
                     std::to_string(at(2 * d - 2)),
                     claim_ok ? "OK" : "MISMATCH"});
    }
  }
  std::cout << "\n";
  table.print(std::cout,
              "Degree census vs Section 1 claims (directed: N-d @ 2d, d @ "
              "2d-2; undirected: N-d^2 @ 2d, d^2-d @ 2d-1, d @ 2d-2)");
}

void print_arc_counts() {
  Table table({"d", "k", "N", "arcs (directed)", "N*d", "match"});
  for (const auto& [d, k] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 3}, {3, 4}, {4, 3}, {5, 3}}) {
    const DeBruijnGraph g(d, k, Orientation::Directed);
    std::uint64_t arcs = 0;
    for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
      arcs += g.neighbors(v).size();
    }
    table.add_row({std::to_string(d), std::to_string(k),
                   std::to_string(g.vertex_count()), std::to_string(arcs),
                   std::to_string(g.vertex_count() * d),
                   arcs == g.vertex_count() * d ? "OK" : "MISMATCH"});
  }
  std::cout << "\n";
  table.print(std::cout, "Arc count vs the paper's 'there are Nd arcs'");
}

}  // namespace

int main() {
  std::cout << "== Experiment F1: Figure 1 topology and Section 1 structural "
               "claims ==\n\n";
  print_directed_dg23();
  print_undirected_dg23();
  print_census_table();
  print_arc_counts();
  return 0;
}
