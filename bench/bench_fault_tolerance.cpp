// Experiment S2 — the Section 1 fault-tolerance claim (after Pradhan &
// Reddy): de Bruijn networks "are able to tolerate up to d-1 processor
// failures".
//
// Measurements on DG(d,k):
//   (a) connectivity under f random failures, f = 0..2d-1, directed and
//       undirected (500 trials each): the undirected graph has vertex
//       connectivity 2d-2, so anything below that never disconnects —
//       which covers the paper's d-1;
//   (b) the adversarial cut: failing all cleaned neighbors of a constant
//       word (2d-2 of them) always disconnects — the tight bound;
//   (c) end-to-end: with f = d-1 random failures, every surviving pair is
//       still routed by the fault-aware router and delivered by the
//       simulator.
#include <iostream>
#include <string>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "net/fault.hpp"
#include "net/simulator.hpp"

namespace {

using namespace dbn;
using namespace dbn::net;

void connectivity_sweep() {
  Table table({"d", "k", "orientation", "f", "trials", "disconnected"});
  Rng rng(2);
  for (const auto& [d, k] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 6}, {3, 4}, {4, 3}, {5, 3}}) {
    for (Orientation o : {Orientation::Undirected, Orientation::Directed}) {
      const DeBruijnGraph g(d, k, o);
      for (std::size_t f = 0; f <= 2 * static_cast<std::size_t>(d) - 1; ++f) {
        const int trials = 500;
        int disconnected = 0;
        for (int t = 0; t < trials; ++t) {
          const auto failed = random_fault_set(g, f, rng);
          disconnected += !survivors_connected(g, failed);
        }
        table.add_row({std::to_string(d), std::to_string(k),
                       o == Orientation::Directed ? "directed" : "undirected",
                       std::to_string(f), std::to_string(trials),
                       std::to_string(disconnected)});
      }
    }
  }
  table.print(std::cout,
              "Random-failure connectivity (paper claim: tolerates up to "
              "d-1 failures)");
}

void adversarial_cut() {
  Table table({"d", "k", "cut size (2d-2)", "disconnects"});
  for (const auto& [d, k] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 5}, {3, 4}, {4, 3}, {5, 3}}) {
    const DeBruijnGraph g(d, k, Orientation::Undirected);
    const Word constant = Word::zero(d, k);
    std::vector<bool> failed(g.vertex_count(), false);
    const auto nbrs = g.neighbors(constant.rank());
    for (const std::uint64_t v : nbrs) {
      failed[v] = true;
    }
    table.add_row({std::to_string(d), std::to_string(k),
                   std::to_string(nbrs.size()),
                   survivors_connected(g, failed) ? "no" : "yes"});
  }
  std::cout << "\n";
  table.print(std::cout,
              "Adversarial cut: failing every neighbor of the constant word "
              "(degree 2d-2) isolates it");
}

void end_to_end_delivery() {
  Table table({"d", "k", "f=d-1 failed", "pairs", "routed", "delivered"});
  Rng rng(3);
  for (const auto& [d, k] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 6}, {3, 4}, {4, 3}}) {
    const DeBruijnGraph g(d, k, Orientation::Undirected);
    const auto failed = random_fault_set(g, d - 1, rng);
    const FaultAwareRouter router(g, failed);
    SimConfig config;
    config.radix = d;
    config.k = k;
    Simulator sim(config);
    for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
      if (failed[v]) {
        sim.fail_node(v);
      }
    }
    std::uint64_t pairs = 0, routed = 0;
    Rng pick(17);
    for (int probe = 0; probe < 400; ++probe) {
      const std::uint64_t xr = pick.below(g.vertex_count());
      const std::uint64_t yr = pick.below(g.vertex_count());
      if (failed[xr] || failed[yr]) {
        continue;
      }
      ++pairs;
      const auto path = router.route(g.word(xr), g.word(yr));
      if (!path.has_value()) {
        continue;
      }
      ++routed;
      sim.inject(0.0,
                 Message(ControlCode::Data, g.word(xr), g.word(yr), *path));
    }
    sim.run();
    table.add_row({std::to_string(d), std::to_string(k),
                   std::to_string(d - 1), std::to_string(pairs),
                   std::to_string(routed),
                   std::to_string(sim.stats().delivered)});
  }
  std::cout << "\n";
  table.print(std::cout,
              "End-to-end with f = d-1 random failures: routed == pairs == "
              "delivered expected");
}

}  // namespace

int main() {
  std::cout << "== Experiment S2: fault tolerance of DN(d,k) ==\n\n";
  connectivity_sweep();
  adversarial_cut();
  end_to_end_delivery();
  std::cout << "\nExpected shape: 0 disconnections (undirected) for f <= "
               "2d-3, hence in\nparticular for the paper's f <= d-1; the "
               "directed graph is weaker (cuts of\nsize d-1 exist, e.g. the "
               "predecessors of a constant word's exit).\n";
  return 0;
}
