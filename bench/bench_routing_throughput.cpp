// Experiment S3 — end-to-end routing: the paper's algorithms generate the
// paths, the simulator moves the messages; every message must arrive, hop
// counts must equal the Section 2 distances, and the per-message path-
// generation cost separates the algorithms.
//
// Workloads: random permutation and digit-reversal (a structured pattern:
// X and reverse(X) share reversed blocks, which the r-side of Theorem 2
// exploits, so bi-directional routes are much shorter than uni-directional
// ones there).
// Routers: Algorithm 1 (left shifts only, directed distances), Algorithm 2
// (O(k^2)), Algorithm 4 (O(k)), and BFS ground truth.
#include <chrono>
#include <functional>
#include <iostream>
#include <string>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/bfs_router.hpp"
#include "core/routers.hpp"
#include "net/simulator.hpp"
#include "net/traffic.hpp"

namespace {

using namespace dbn;
using namespace dbn::net;

constexpr std::uint32_t kRadix = 2;
constexpr std::size_t kK = 9;  // 512 sites

struct RouterUnderTest {
  std::string name;
  std::function<RoutingPath(const Word&, const Word&)> route;
};

void run_workload(const std::string& name,
                  const std::vector<Injection>& schedule,
                  const DeBruijnGraph& undirected) {
  const std::vector<RouterUnderTest> routers = {
      {"Algorithm 1 (uni)", [](const Word& x, const Word& y) {
         return route_unidirectional(x, y);
       }},
      {"Algorithm 2 (k^2)", [](const Word& x, const Word& y) {
         return route_bidirectional_mp(x, y);
       }},
      {"Algorithm 4 (k)", [](const Word& x, const Word& y) {
         return route_bidirectional_suffix_tree(x, y);
       }},
      {"BFS baseline", [&undirected](const Word& x, const Word& y) {
         return route_bfs(undirected, x, y);
       }},
  };
  Table table({"router", "messages", "delivered", "mean hops", "mean lat",
               "max lat", "route us/msg"});
  for (const RouterUnderTest& r : routers) {
    SimConfig config;
    config.radix = kRadix;
    config.k = kK;
    Simulator sim(config);
    const auto start = std::chrono::steady_clock::now();
    std::vector<Message> messages;
    messages.reserve(schedule.size());
    for (const Injection& inj : schedule) {
      const Word src = Word::from_rank(kRadix, kK, inj.source);
      const Word dst = Word::from_rank(kRadix, kK, inj.destination);
      messages.emplace_back(ControlCode::Data, src, dst, r.route(src, dst));
    }
    const auto stop = std::chrono::steady_clock::now();
    const double route_us =
        std::chrono::duration<double, std::micro>(stop - start).count() /
        static_cast<double>(schedule.size());
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      sim.inject(schedule[i].time, std::move(messages[i]));
    }
    sim.run();
    const SimStats& s = sim.stats();
    table.add_row({r.name, std::to_string(s.injected),
                   std::to_string(s.delivered), Table::num(s.mean_hops(), 3),
                   Table::num(s.mean_latency(), 2),
                   Table::num(s.max_latency, 1), Table::num(route_us, 2)});
  }
  std::cout << "\n";
  table.print(std::cout, name);
}

}  // namespace

int main() {
  std::cout << "== Experiment S3: end-to-end routed throughput in DN(2,9) "
               "==\n";
  const DeBruijnGraph undirected(kRadix, kK, Orientation::Undirected);
  Rng rng(1234);
  run_workload("Random permutation (one message per site, t = 0)",
               permutation_traffic(kRadix, kK, rng), undirected);
  run_workload("Digit reversal (reversal symmetry favors the r-side, t = 0)",
               reversal_traffic(kRadix, kK), undirected);
  std::cout
      << "\nExpected shape: all messages delivered by every router; mean "
         "hops equal for\nAlgorithm 2 / Algorithm 4 / BFS (all optimal) and "
         "higher for Algorithm 1 (left\nshifts only). Per-route cost: the "
         "formula routers depend only on k, while BFS\ngrows with N (its "
         "early-exit makes it cheap when distances are short — the\nfull "
         "gap is quantified in bench_distance_query). At k = 9 Algorithm 2 "
         "beats\nAlgorithm 4, reproducing the Section 4 small-k remark.\n";
  return 0;
}
