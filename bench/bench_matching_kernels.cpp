// Ablation A1 — five independent engines for the same Theorem 2 side
// minimum min_{i,j}(2k-1+i-j-l_{i,j}):
//   MP        — Algorithm 3 failure-function rows (the paper's §3.2), O(k^2)
//   Z         — Z-array rows (same row semantics, different kernel), O(k^2)
//   SuffixTree— corrected Algorithm 4 (§3.3), O(k)
//   Automaton — suffix automaton of X walked over Y, O(k)
//   SuffixArr — LCP-interval sweep over the suffix array, O(k log k)
// All five return identical costs (asserted continuously in the test
// suite); this bench compares their constants, i.e. *which* linear/quadratic
// algorithm you would actually want at each diameter.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/common_substring.hpp"
#include "strings/matching.hpp"
#include "strings/suffix_automaton.hpp"
#include "strings/suffix_array.hpp"
#include "strings/zfunction.hpp"

namespace {

using namespace dbn;
using strings::Symbol;

std::vector<Symbol> random_word(std::size_t k, std::uint32_t d,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Symbol> w(k);
  for (auto& c : w) {
    c = static_cast<Symbol>(rng.below(d));
  }
  return w;
}

template <strings::OverlapMin (*Kernel)(strings::SymbolView,
                                        strings::SymbolView)>
void BM_Kernel(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const auto x = random_word(k, 2, k);
  const auto y = random_word(k, 2, k + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Kernel(x, y));
  }
  state.SetComplexityN(state.range(0));
}

BENCHMARK(BM_Kernel<&strings::min_l_cost>)
    ->Name("BM_MpRows")
    ->RangeMultiplier(4)
    ->Range(4, 1 << 10)
    ->Complexity(benchmark::oNSquared);
BENCHMARK(BM_Kernel<&strings::min_l_cost_z>)
    ->Name("BM_ZRows")
    ->RangeMultiplier(4)
    ->Range(4, 1 << 10)
    ->Complexity(benchmark::oNSquared);
BENCHMARK(BM_Kernel<&min_l_cost_suffix_tree>)
    ->Name("BM_SuffixTree")
    ->RangeMultiplier(4)
    ->Range(4, 1 << 13)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_Kernel<&strings::min_l_cost_suffix_automaton>)
    ->Name("BM_SuffixAutomaton")
    ->RangeMultiplier(4)
    ->Range(4, 1 << 13)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_Kernel<&strings::min_l_cost_suffix_array>)
    ->Name("BM_SuffixArray")
    ->RangeMultiplier(4)
    ->Range(4, 1 << 13)
    ->Complexity(benchmark::oNLogN);

}  // namespace

BENCHMARK_MAIN();
