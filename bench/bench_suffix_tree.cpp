// Experiment C4 — Section 3.3's substrate claim: the compact prefix tree
// (suffix tree) of a length-n string is built in linear time.
//
// Ukkonen's construction (our substitute for Weiner's algorithm — same
// structure, same bound) against the naive O(n^2) builder, over random
// binary and 4-ary texts. Fitted complexity should read ~N vs ~N^2, and
// the absolute cost at the router's operating point (n = 2k+2, small k)
// shows why Section 4 says quadratic algorithms are fine for small k.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "strings/suffix_tree.hpp"

namespace {

using namespace dbn;
using strings::Symbol;
using strings::SuffixTree;

std::vector<Symbol> random_text(std::size_t n, std::uint32_t alphabet,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Symbol> text(n);
  for (auto& c : text) {
    c = static_cast<Symbol>(rng.below(alphabet));
  }
  text.push_back(alphabet);  // unique endmarker
  return text;
}

void BM_UkkonenBinary(benchmark::State& state) {
  const auto text = random_text(static_cast<std::size_t>(state.range(0)), 2,
                                static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    SuffixTree tree(text);
    benchmark::DoNotOptimize(tree.node_count());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_UkkonenBinary)
    ->RangeMultiplier(4)
    ->Range(16, 1 << 16)
    ->Complexity(benchmark::oN);

void BM_UkkonenQuaternary(benchmark::State& state) {
  const auto text = random_text(static_cast<std::size_t>(state.range(0)), 4,
                                static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    SuffixTree tree(text);
    benchmark::DoNotOptimize(tree.node_count());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_UkkonenQuaternary)
    ->RangeMultiplier(4)
    ->Range(16, 1 << 16)
    ->Complexity(benchmark::oN);

void BM_NaiveBuilder(benchmark::State& state) {
  const auto text = random_text(static_cast<std::size_t>(state.range(0)), 2,
                                static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    SuffixTree tree = SuffixTree::build_naive(text);
    benchmark::DoNotOptimize(tree.node_count());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NaiveBuilder)->RangeMultiplier(4)->Range(16, 1 << 12)->Complexity();

/// The router's operating point: the generalized tree over X sep Y sep has
/// n = 2k+2 symbols; this measures the constant factor Algorithm 4 pays.
void BM_UkkonenRouterOperatingPoint(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const auto text = random_text(2 * k + 1, 2, k);  // +1 endmarker inside
  for (auto _ : state) {
    SuffixTree tree(text);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_UkkonenRouterOperatingPoint)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
