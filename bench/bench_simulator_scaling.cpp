// Experiment D7 — simulator capacity: events per second and wall-clock per
// simulated message as the network grows, so users know what scale the
// substrate sustains. Also demonstrates that the discrete-event core cost
// is O(messages * hops * log queue), independent of N beyond cache
// effects (the graph is implicit — no N-sized adjacency is ever built).
#include <chrono>
#include <iostream>
#include <string>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/routers.hpp"
#include "net/simulator.hpp"
#include "net/traffic.hpp"

int main() {
  using namespace dbn;
  using namespace dbn::net;
  std::cout << "== Experiment D7: simulator throughput ==\n\n";
  Table table({"d", "k", "N", "messages", "hops", "wall ms", "hops/sec"});
  for (const auto& [d, k] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 6}, {2, 10}, {2, 14}, {2, 17}, {3, 9}, {4, 7}}) {
    SimConfig config;
    config.radix = d;
    config.k = k;
    config.wildcard_policy = WildcardPolicy::Random;
    Simulator sim(config);
    Rng rng(k * 31 + d);
    const std::uint64_t n = Word::vertex_count(d, k);
    const std::size_t messages = 20000;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < messages; ++i) {
      const Word src = Word::from_rank(d, k, rng.below(n));
      const Word dst = Word::from_rank(d, k, rng.below(n));
      sim.inject(0.001 * static_cast<double>(i),
                 Message(ControlCode::Data, src, dst,
                         route_bidirectional_suffix_tree(
                             src, dst, WildcardMode::Wildcards)));
    }
    sim.run();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    table.add_row(
        {std::to_string(d), std::to_string(k), std::to_string(n),
         std::to_string(sim.stats().delivered),
         std::to_string(sim.stats().total_hops), Table::num(ms, 1),
         Table::num(static_cast<double>(sim.stats().total_hops) / ms * 1000.0,
                    0)});
  }
  table.print(std::cout,
              "20000 routed messages per row (route generation included in "
              "wall time)");
  std::cout << "\nShape: hops/sec stays in the millions as N grows from 64 "
               "to 131072 — the\nimplicit graph keeps the simulator's cost "
               "per hop roughly constant.\n";
  return 0;
}
