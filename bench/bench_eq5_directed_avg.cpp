// Experiment E5 — equation (5): the paper's closed form for the average
// directed distance, delta(d,k) = k - (1 - alpha^k) * alpha / (1 - alpha).
//
// Reproduction finding (DESIGN.md, EXPERIMENTS.md): the derivation treats
// the overlap events as nested, which they are not, so equation (5) is a
// strict upper bound for k >= 2. This bench prints, per (d,k):
//   - equation (5) as published,
//   - the exact average (cylinder-union enumeration, O(N k^2)),
//   - the exact average re-derived by all-pairs BFS where affordable,
//   - the gap.
// The gap saturates near 0.62 for d = 2 and shrinks roughly like 1/d^2.
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "core/distance.hpp"
#include "debruijn/bfs.hpp"

int main() {
  using namespace dbn;
  std::cout << "== Experiment E5: equation (5) vs exact directed average "
               "==\n\n";
  Table table({"d", "k", "eq(5) (paper)", "exact", "BFS check", "gap"});
  for (const auto& [d, k] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 1}, {2, 2}, {2, 4}, {2, 6}, {2, 8}, {2, 10}, {2, 12}, {2, 14},
           {3, 2}, {3, 4}, {3, 6}, {3, 8},
           {4, 2}, {4, 4}, {4, 6},
           {5, 2}, {5, 4}, {5, 6},
           {8, 2}, {8, 4}}) {
    const double eq5 = directed_average_distance_closed_form(d, k);
    const double exact = directed_average_distance_exact(d, k);
    std::string bfs_cell = "-";
    if (Word::vertex_count(d, k) <= 2048) {
      const DeBruijnGraph g(d, k, Orientation::Directed);
      bfs_cell = Table::num(average_distance(g), 6);
    }
    table.add_row({std::to_string(d), std::to_string(k), Table::num(eq5, 6),
                   Table::num(exact, 6), bfs_cell,
                   Table::num(eq5 - exact, 6)});
  }
  table.print(std::cout,
              "delta(d,k): paper's equation (5) vs the exact average "
              "(ordered pairs, self-pairs included)");
  std::cout
      << "\nFinding: eq (5) is exact only for k = 1; for k >= 2 it "
         "overestimates because\nP(max overlap >= s) > alpha^s (longer "
         "overlaps can exist when the length-s one\nfails). The special case "
         "the paper quotes, delta(2,k) = k - 1 + 2^-k, inherits\nthe same "
         "bias. See EXPERIMENTS.md for the full discussion.\n";
  return 0;
}
