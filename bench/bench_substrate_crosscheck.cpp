// Experiment D8 — two independently coded evaluation substrates, one
// network: the discrete-event simulator vs the cycle-accurate synchronous
// model. With unit link delay they describe the same system, so their
// latency statistics must coincide (they do — also asserted in
// test_synchronous.cpp); the wall-clock comparison shows why the DES is
// the default (it skips idle time instead of ticking through it).
#include <chrono>
#include <iostream>
#include <string>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/routers.hpp"
#include "net/simulator.hpp"
#include "net/synchronous.hpp"
#include "net/traffic.hpp"

int main() {
  using namespace dbn;
  using namespace dbn::net;
  std::cout << "== Experiment D8: DES vs synchronous substrate ==\n\n";
  Table table({"d", "k", "messages", "DES mean lat", "sync mean lat",
               "DES ms", "sync ms"});
  for (const auto& [d, k] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 6}, {2, 8}, {2, 10}, {3, 5}}) {
    SimConfig config;
    config.radix = d;
    config.k = k;
    Simulator des(config);
    SynchronousNetwork sync(config);
    Rng rng(k);
    const auto schedule =
        uniform_traffic(d, k, 0.02, 400.0, rng);  // sparse: few tie-breaks
    const auto route = [&](const Injection& inj) {
      const Word src = Word::from_rank(d, k, inj.source);
      const Word dst = Word::from_rank(d, k, inj.destination);
      return Message(ControlCode::Data, src, dst,
                     route_bidirectional_mp(src, dst));
    };
    const auto t0 = std::chrono::steady_clock::now();
    for (const Injection& inj : schedule) {
      des.inject(inj.time, route(inj));
    }
    des.run();
    const auto t1 = std::chrono::steady_clock::now();
    for (const Injection& inj : schedule) {
      sync.inject(static_cast<int>(inj.time), route(inj));
    }
    sync.run();
    const auto t2 = std::chrono::steady_clock::now();
    table.add_row(
        {std::to_string(d), std::to_string(k), std::to_string(schedule.size()),
         Table::num(des.stats().mean_latency(), 3),
         Table::num(sync.stats().mean_latency(), 3),
         Table::num(std::chrono::duration<double, std::milli>(t1 - t0).count(),
                    1),
         Table::num(std::chrono::duration<double, std::milli>(t2 - t1).count(),
                    1)});
  }
  table.print(std::cout,
              "Same sparse workload through both substrates (latencies in "
              "link-delay units; injection rounding shifts sync by < 1)");
  std::cout << "\nShape: near-identical latency statistics (the substrates "
               "model the same\nnetwork); the synchronous model pays for "
               "every idle round, the DES only for\nevents.\n";
  return 0;
}
