// Experiment D6 — recovering from faults and drops with increasing
// knowledge, the S2 companion:
//   oblivious     — paper's shortest path, no fault knowledge: drops;
//   adaptive      — greedy per-site forwarding, *local* fault knowledge
//                   (net/adaptive.hpp): usually delivers, no guarantee;
//   fault-aware   — global fault map (net/fault.hpp): always delivers while
//                   the survivors stay connected;
//   reliable      — oblivious first try + fault-aware retransmissions
//                   (net/reliable.hpp): always delivers, costs round trips.
#include <iostream>
#include <string>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/routers.hpp"
#include "net/adaptive.hpp"
#include "net/fault.hpp"
#include "net/reliable.hpp"
#include "net/simulator.hpp"

namespace {

using namespace dbn;
using namespace dbn::net;

constexpr std::uint32_t kRadix = 2;
constexpr std::size_t kK = 7;  // 128 sites

}  // namespace

int main() {
  std::cout << "== Experiment D6: fault recovery by knowledge level, DN(2,7) "
               "==\n\n";
  const DeBruijnGraph g(kRadix, kK, Orientation::Undirected);
  Rng rng(999);

  Table table({"failures f", "oblivious %", "adaptive %", "fault-aware %",
               "reliable %", "reliable retx"});
  for (const std::size_t f : {1u, 2u, 4u, 8u, 16u}) {
    int oblivious_ok = 0, adaptive_ok = 0, aware_ok = 0, total = 0;
    std::uint64_t reliable_done = 0, reliable_total = 0, retx = 0;
    for (int trial = 0; trial < 20; ++trial) {
      const auto failed = random_fault_set(g, f, rng);
      const FaultAwareRouter aware(g, failed);
      // Sample live pairs.
      std::vector<Transfer> transfers;
      while (transfers.size() < 25) {
        const std::uint64_t s = rng.below(g.vertex_count());
        const std::uint64_t t = rng.below(g.vertex_count());
        if (!failed[s] && !failed[t] && s != t) {
          transfers.push_back({s, t});
        }
      }
      for (const Transfer& tr : transfers) {
        const Word x = g.word(tr.source);
        const Word y = g.word(tr.destination);
        ++total;
        // Oblivious: does the shortest path dodge the faults by luck?
        const RoutingPath path = route_bidirectional_mp(x, y);
        Word at = x;
        bool survived = true;
        for (const Hop& h : path.hops()) {
          at = h.type == ShiftType::Left ? at.left_shift(h.digit)
                                         : at.right_shift(h.digit);
          if (failed[at.rank()]) {
            survived = false;
            break;
          }
        }
        oblivious_ok += survived;
        AdaptiveConfig config;
        config.jitter = 0.1;
        adaptive_ok += adaptive_route(g, failed, x, y, rng, config).delivered;
        aware_ok += aware.route(x, y).has_value();
      }
      // Reliable protocol over the simulator.
      SimConfig sc;
      sc.radix = kRadix;
      sc.k = kK;
      Simulator sim(sc);
      for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
        if (failed[v]) {
          sim.fail_node(v);
        }
      }
      const AttemptRouter router = [&](const Word& x, const Word& y,
                                       int attempt) {
        if (attempt == 0) {
          return route_bidirectional_mp(x, y);
        }
        return aware.route(x, y).value_or(RoutingPath{});
      };
      ReliableConfig rc;
      rc.timeout = 40.0;
      const ReliableReport report = run_reliable(sim, transfers, router, rc);
      reliable_done += report.completed;
      reliable_total += report.transfers;
      retx += report.retransmissions;
    }
    const auto pct = [&](int ok) {
      return Table::num(100.0 * ok / total, 1);
    };
    table.add_row({std::to_string(f), pct(oblivious_ok), pct(adaptive_ok),
                   pct(aware_ok),
                   Table::num(100.0 * static_cast<double>(reliable_done) /
                                  static_cast<double>(reliable_total),
                              1),
                   std::to_string(retx)});
  }
  table.print(std::cout,
              "Delivery rate (%) of 500 random live pairs per row, random "
              "fault sets");
  std::cout
      << "\nShape: oblivious delivery decays with f (paths blunder into dead "
         "sites);\nadaptive local routing recovers nearly everything; the "
         "global fault-aware\nrouter and the retransmitting protocol deliver "
         "100% while survivors stay\nconnected. Retransmission count grows "
         "with f — the price of obliviousness\non the first attempt.\n";
  return 0;
}
