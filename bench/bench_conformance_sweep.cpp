// Conformance-kit throughput: how many (X, Y) pairs per second the full
// differential check sustains at each fuzz-schedule region. The split
// shows what the fuzzer's iteration budget buys — BFS-backed points pay
// for ground truth and table walks, formula-only points check mutual
// agreement of the O(k)/O(k^2)/greedy engines and the Theorem 2 shape.
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "testkit/conformance.hpp"
#include "testkit/oracle.hpp"
#include "testkit/word_families.hpp"

int main() {
  using namespace dbn;
  using namespace dbn::testkit;
  std::cout << "== Conformance sweep: differential-check throughput ==\n\n";

  struct Point {
    NetworkFamily family;
    std::uint32_t d;
    std::size_t k;
    int pairs;
  };
  const std::vector<Point> points = {
      {NetworkFamily::DeBruijnDirected, 2, 6, 2000},
      {NetworkFamily::DeBruijnUndirected, 2, 6, 2000},
      {NetworkFamily::DeBruijnUndirected, 3, 5, 1000},
      {NetworkFamily::DeBruijnUndirected, 2, 16, 1000},
      {NetworkFamily::DeBruijnUndirected, 2, 33, 500},
      {NetworkFamily::DeBruijnUndirected, 10, 7, 500},
      {NetworkFamily::Kautz, 2, 4, 1000},
      {NetworkFamily::Kautz, 3, 3, 1000},
  };

  Table table({"network", "d", "k", "oracles", "bfs", "pairs", "ms",
               "pairs/s"});
  for (const Point& p : points) {
    const OracleSet set =
        p.family == NetworkFamily::Kautz
            ? OracleSet::kautz(p.d, p.k)
            : OracleSet::debruijn(p.d, p.k,
                                  p.family == NetworkFamily::DeBruijnDirected
                                      ? Orientation::Directed
                                      : Orientation::Undirected);
    const Conformance driver(set);
    Rng rng(p.d * 100 + p.k);
    int disagreements = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < p.pairs; ++i) {
      Word x = set.random_vertex(rng);
      Word y = set.random_vertex(rng);
      if (p.family != NetworkFamily::Kautz && i % 4 != 0) {
        // Bias toward structured pairs, like the fuzzer does.
        const WordFamily wf = kAllWordFamilies[i % kAllWordFamilies.size()];
        const PairFamily pf = kAllPairFamilies[i % kAllPairFamilies.size()];
        std::tie(x, y) = sample_pair(rng, p.d, p.k, wf, pf);
      }
      disagreements += driver.check(x, y).ok() ? 0 : 1;
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    table.add_row({std::string(family_name(p.family)), std::to_string(p.d),
                   std::to_string(p.k), std::to_string(set.oracles().size()),
                   set.has_bfs_reference() ? "yes" : "no",
                   std::to_string(p.pairs), Table::num(ms, 1),
                   Table::num(1000.0 * p.pairs / ms, 0)});
    if (disagreements != 0) {
      std::cout << "UNEXPECTED: " << disagreements << " disagreements at d="
                << p.d << " k=" << p.k << "\n";
      return 1;
    }
  }
  table.print(std::cout,
              "Full differential check per pair (all oracles, path walks, "
              "Theorem 2 shape)");
  std::cout << "\nShape: BFS-backed points are dominated by the per-pair "
               "reference BFS;\nformula-only points scale with k through the "
               "linear kernels, so the fuzzer\ncan afford deep words there.\n";
  return 0;
}
