// Experiment C3 — what the distance *functions* buy over graph search:
// Property 1 / Theorem 2 answer a distance query in O(k) symbols, while the
// generic alternative (BFS) costs O(N d) = O(d^(k+1)) per source.
//
// google-benchmark over k (d = 2): per-query cost of
//   - directed distance via Property 1,
//   - undirected distance via Theorem 2 (suffix-tree form),
//   - single-source BFS on the materialized graph (the baseline a system
//     without the formulas would run).
// The formulas stay in nanoseconds as N doubles; BFS grows with N.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/distance.hpp"
#include "debruijn/bfs.hpp"

namespace {

using namespace dbn;

Word random_word(Rng& rng, std::uint32_t d, std::size_t k) {
  std::vector<Digit> digits(k);
  for (auto& x : digits) {
    x = static_cast<Digit>(rng.below(d));
  }
  return Word(d, std::move(digits));
}

void BM_DirectedFormula(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(k);
  const Word x = random_word(rng, 2, k);
  const Word y = random_word(rng, 2, k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(directed_distance(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DirectedFormula)->DenseRange(4, 20, 2)->Complexity(benchmark::oN);

void BM_UndirectedFormula(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(k);
  const Word x = random_word(rng, 2, k);
  const Word y = random_word(rng, 2, k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(undirected_distance(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_UndirectedFormula)->DenseRange(4, 20, 2)->Complexity(benchmark::oN);

void BM_BfsQuery(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(k);
  const DeBruijnGraph g(2, k, Orientation::Undirected);
  const std::uint64_t src = random_word(rng, 2, k).rank();
  const std::uint64_t dst = random_word(rng, 2, k).rank();
  for (auto _ : state) {
    const auto dist = bfs_distances(g, src);
    benchmark::DoNotOptimize(dist[dst]);
  }
  // N = 2^k: express the complexity in vertices.
  state.SetComplexityN(static_cast<benchmark::IterationCount>(1) << k);
}
BENCHMARK(BM_BfsQuery)->DenseRange(4, 20, 2)->Complexity(benchmark::oN);

}  // namespace

BENCHMARK_MAIN();
