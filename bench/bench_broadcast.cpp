// Experiment D4 — one-to-all broadcast in DN(d,k) (the collective the
// Samatham-Pradhan versatility argument cares about).
//
// Measured: broadcast completion (rounds) over BFS spanning trees for the
// best and worst root, all-port vs single-port, against the eccentricity
// lower bound (no schedule can finish before the farthest site is
// reachable). All-port always meets the bound exactly; single-port pays a
// small factor bounded by the maximum number of tree children (<= 2d).
#include <algorithm>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "debruijn/bfs.hpp"
#include "net/broadcast.hpp"

int main() {
  using namespace dbn;
  using namespace dbn::net;
  std::cout << "== Experiment D4: broadcast completion in DN(d,k) ==\n\n";

  Table table({"d", "k", "N", "allport best", "allport worst",
               "singleport best", "singleport worst", "ecc bound (min/max)"});
  for (const auto& [d, k] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 4}, {2, 6}, {2, 8}, {3, 3}, {3, 4}, {4, 3}, {5, 3}}) {
    const DeBruijnGraph g(d, k, Orientation::Undirected);
    int all_best = 1 << 20, all_worst = 0;
    int single_best = 1 << 20, single_worst = 0;
    int ecc_min = 1 << 20, ecc_max = 0;
    for (std::uint64_t root = 0; root < g.vertex_count(); ++root) {
      const BroadcastTree tree = build_broadcast_tree(g, root);
      const int all = schedule_broadcast(tree, PortModel::AllPort).completion;
      const int single =
          schedule_broadcast(tree, PortModel::SinglePort).completion;
      all_best = std::min(all_best, all);
      all_worst = std::max(all_worst, all);
      single_best = std::min(single_best, single);
      single_worst = std::max(single_worst, single);
      ecc_min = std::min(ecc_min, tree.height);
      ecc_max = std::max(ecc_max, tree.height);
    }
    table.add_row({std::to_string(d), std::to_string(k),
                   std::to_string(g.vertex_count()), std::to_string(all_best),
                   std::to_string(all_worst), std::to_string(single_best),
                   std::to_string(single_worst),
                   std::to_string(ecc_min) + "/" + std::to_string(ecc_max)});
  }
  table.print(std::cout,
              "Broadcast rounds over BFS trees, every root tried (all-port "
              "equals the eccentricity bound)");
  std::cout << "\nShape: all-port broadcast completes in eccentricity(root) "
               "<= k rounds —\nlogarithmic in N, the property that makes "
               "de Bruijn networks good collective\nfabrics; single-port "
               "pays at most a small constant factor (fan-out <= 2d).\n";
  return 0;
}
