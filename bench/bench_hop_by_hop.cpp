// Experiment D3 — source routing (the paper's scheme) vs hop-by-hop
// forwarding (each site computes the greedy next hop from the distance
// function; core/hop_by_hop.hpp).
//
// Both are exact — identical hop counts — so the trade is header size vs
// per-hop computation: source routing carries 2*D(X,Y) digits of header
// and forwards in O(1) per site; hop-by-hop carries none and pays O(d k)
// per site. This bench measures delivery, hops, latency and the wall-clock
// cost of each scheme's compute under a permutation workload.
#include <chrono>
#include <iostream>
#include <string>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/routers.hpp"
#include "net/simulator.hpp"
#include "net/traffic.hpp"

namespace {

using namespace dbn;
using namespace dbn::net;

constexpr std::uint32_t kRadix = 2;
constexpr std::size_t kK = 8;

}  // namespace

int main() {
  std::cout << "== Experiment D3: source routing vs hop-by-hop forwarding "
               "(DN(2,8)) ==\n\n";
  Rng rng(55);
  const auto schedule = permutation_traffic(kRadix, kK, rng);

  Table table({"scheme", "delivered", "mean hops", "mean lat",
               "header digits/msg", "compute ms (total)"});
  for (const ForwardingMode mode :
       {ForwardingMode::SourceRouted, ForwardingMode::HopByHop}) {
    SimConfig config;
    config.radix = kRadix;
    config.k = kK;
    config.forwarding = mode;
    Simulator sim(config);
    double header_digits = 0.0;
    const auto start = std::chrono::steady_clock::now();
    for (const Injection& inj : schedule) {
      const Word src = Word::from_rank(kRadix, kK, inj.source);
      const Word dst = Word::from_rank(kRadix, kK, inj.destination);
      RoutingPath path;
      if (mode == ForwardingMode::SourceRouted) {
        path = route_bidirectional_suffix_tree(src, dst);
        header_digits += 2.0 * static_cast<double>(path.length());
      }
      sim.inject(inj.time, Message(ControlCode::Data, src, dst, path));
    }
    sim.run();
    const auto stop = std::chrono::steady_clock::now();
    const SimStats& s = sim.stats();
    table.add_row(
        {mode == ForwardingMode::SourceRouted ? "source-routed" : "hop-by-hop",
         std::to_string(s.delivered), Table::num(s.mean_hops(), 3),
         Table::num(s.mean_latency(), 2),
         Table::num(header_digits / static_cast<double>(schedule.size()), 2),
         Table::num(
             std::chrono::duration<double, std::milli>(stop - start).count(),
             2)});
  }
  table.print(std::cout,
              "Permutation workload, 256 messages: identical hops, different "
              "cost placement");
  std::cout << "\nShape: hop counts and delivery identical (both exact); "
               "source routing pays\nonce per message at the source and "
               "carries ~2D digits of header; hop-by-hop\ncarries nothing "
               "and pays O(d k) at every site (larger total compute).\n";
  return 0;
}
