// Chaos-engine smoke benchmark: one fixed mid-size failure scenario
// (DN(2,6), mixed crash/recover/flap schedule, backed-off reliable
// transfer) through run_scenario's full pipeline — simulate, drive the
// retransmission clock, check every invariant. This is the unit of work
// the dbn_chaos fuzzer repeats per iteration, so the recorded ns/op bounds
// what a CI fuzz budget buys. Folded into the dbn-bench/1 report by
// scripts/bench_report.py (docs/benchmarking.md).
#include <benchmark/benchmark.h>

#include "testkit/chaos.hpp"

namespace {

using namespace dbn;
using namespace dbn::testkit;

ChaosScenario smoke_scenario() {
  ChaosScenario s;
  s.d = 2;
  s.k = 6;  // 64 sites
  s.seed = 9;
  s.reliable.timeout = 8.0;
  s.reliable.max_attempts = 4;
  s.reliable.backoff = 2.0;
  s.reliable.jitter = 0.1;
  const std::uint64_t n = s.vertex_count();
  Rng rng(17);
  for (int i = 0; i < 24; ++i) {
    s.transfers.push_back({rng.below(n), rng.below(n)});
  }
  for (int i = 0; i < 4; ++i) {
    s.schedule.site_flap(rng.below(n), 1.0 + i, 3.0, 3.0, 2);
  }
  s.schedule.link_crash(2.0, rng.below(n), rng.below(n));
  s.schedule.site_crash(5.0, rng.below(n));
  return s;
}

void BM_ChaosSmoke(benchmark::State& state) {
  const ChaosScenario scenario = smoke_scenario();
  std::uint64_t violations = 0;
  for (auto _ : state) {
    const ChaosRunResult result = run_scenario(scenario);
    violations += result.violations.size();
    benchmark::DoNotOptimize(result.final_clock);
  }
  if (violations != 0) {
    state.SkipWithError("chaos invariant violation in the smoke scenario");
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(scenario.transfers.size()));
}
BENCHMARK(BM_ChaosSmoke);

}  // namespace

BENCHMARK_MAIN();
