// Experiment D1 — the introduction's optimality claim: "de Bruijn graphs
// are nearly optimal graphs that minimize the diameter, given the number
// of vertices and the degree" (via Imase & Itoh, reference [4]).
//
// Measured: for DG(d,k) (as GB(d^k, d)) and for non-power sizes GB(n,d),
// the BFS diameter vs the Moore-style lower bound for out-degree-d
// digraphs (smallest D with 1 + d + ... + d^D >= n) and vs ceil(log_d n)
// (the Imase-Itoh upper bound). "Nearly optimal" = within one of the
// bound, everywhere.
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "debruijn/generalized.hpp"
#include "debruijn/kautz.hpp"
#include "debruijn/word.hpp"

int main() {
  using namespace dbn;
  std::cout << "== Experiment D1: diameter optimality (Imase-Itoh, paper's "
               "ref [4]) ==\n\n";

  Table dg({"d", "k", "N = d^k", "diameter", "Moore bound", "slack"});
  for (const auto& [d, k] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 3}, {2, 6}, {2, 9}, {2, 11}, {3, 4}, {3, 6}, {4, 4}, {5, 3},
           {8, 3}}) {
    const std::uint64_t n = Word::vertex_count(d, k);
    const GeneralizedDeBruijn gb(n, d);
    const int diam = gb.diameter();
    const int bound = directed_diameter_lower_bound(n, d);
    dg.add_row({std::to_string(d), std::to_string(k), std::to_string(n),
                std::to_string(diam), std::to_string(bound),
                std::to_string(diam - bound)});
  }
  dg.print(std::cout,
           "DG(d,k): diameter k vs the Moore lower bound (slack <= 1 "
           "everywhere = 'nearly optimal')");

  std::cout << "\n";
  Table gbt({"n", "d", "diameter", "ceil(log_d n)", "Moore bound"});
  for (const std::uint32_t d : {2u, 3u, 4u}) {
    for (const std::uint64_t n :
         {10ull, 25ull, 60ull, 100ull, 300ull, 777ull, 1500ull}) {
      const GeneralizedDeBruijn gb(n, d);
      int ceil_log = 0;
      std::uint64_t power = 1;
      while (power < n) {
        power *= d;
        ++ceil_log;
      }
      gbt.add_row({std::to_string(n), std::to_string(d),
                   std::to_string(gb.diameter()), std::to_string(ceil_log),
                   std::to_string(directed_diameter_lower_bound(n, d))});
    }
  }
  gbt.print(std::cout,
            "Generalized GB(n,d) for arbitrary n: diameter <= ceil(log_d n) "
            "(Imase-Itoh), within one of the Moore bound");

  std::cout << "\n";
  Table kt({"d", "k", "Kautz N", "de Bruijn N", "Kautz diam", "Moore bound"});
  for (const auto& [d, k] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 3}, {2, 5}, {2, 8}, {3, 3}, {3, 4}, {4, 3}}) {
    const KautzGraph kautz(d, k);
    kt.add_row({std::to_string(d), std::to_string(k),
                std::to_string(kautz.vertex_count()),
                std::to_string(Word::vertex_count(d, k)),
                std::to_string(kautz.diameter()),
                std::to_string(
                    directed_diameter_lower_bound(kautz.vertex_count(), d))});
  }
  kt.print(std::cout,
           "Kautz graphs K(d,k): (d+1)/d times the vertices at the same "
           "degree and diameter — the family's tight sibling");
  std::cout << "\nShape: every de Bruijn row has slack <= 1; the generalized "
               "construction keeps\nthe property for every n, and Kautz "
               "graphs close most of the remaining gap —\nwhich is why [4] "
               "calls the family nearly optimal.\n";
  return 0;
}
