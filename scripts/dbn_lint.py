#!/usr/bin/env python3
"""Repo-specific lint for debruijn-routing, driven by compile_commands.json.

House rules (each one exists because the generic tooling cannot express it):

  naked-assert        <cassert>'s assert() is compiled out by NDEBUG, which
                      the RelWithDebInfo production build sets — a contract
                      that silently vanishes is worse than none. Library,
                      tool, bench and example code must use the DBN_REQUIRE /
                      DBN_ENSURE / DBN_ASSERT / DBN_AUDIT macros
                      (src/common/contract.hpp). tests/ may assert freely.

  std-rand            std::rand is shared mutable state (flagged by TSan,
                      breaks replayable seeding). Use common/rng.hpp.

  raw-new             src/ owns memory through containers and smart pointers
                      only; a raw `new` expression is either a leak or a
                      job for std::make_unique.

  schema-literal      On-disk schema tags ("trace/1", "metrics/1", ...) are
                      declared once in src/common/schema.hpp; writers and
                      readers reference the constants so a version bump is
                      one diff (plus the code it breaks).

  include-order       A foo.cpp must include its own foo.hpp first — the
                      cheap way to keep every header self-contained.

  mutex-needs-annotation
                      Concurrency state in src/ is checkable by Clang's
                      Thread Safety Analysis only when the mutex is a
                      dbn::Mutex (common/mutex.hpp) and the state it guards
                      carries DBN_GUARDED_BY. A raw std::mutex member can
                      never be named as a capability; a dbn::Mutex in a file
                      with no DBN_GUARDED_BY at all guards nothing the
                      analysis can see. Either annotate or justify inline.

Suppressing a finding requires an inline justification on the same line:
    ... // dbn-lint: allow(<rule>) <reason>

Suppressions are audited: an allow() naming an unknown rule, or one on a
line where that rule no longer fires, is itself a finding
(stale-suppression) — dead suppressions hide real regressions when the
code under them changes.

Usage:
    dbn_lint.py --compile-commands build/compile_commands.json
    dbn_lint.py <file.cpp> [file.hpp ...]     # explicit file list

The compilation database supplies the .cpp universe; headers are collected
by scanning the repo directories the database's sources live in.  Exits 1
if any finding is reported.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

REPO_DIRS = ("src", "tools", "bench", "examples", "tests")
SCHEMA_REGISTRY = Path("src") / "common" / "schema.hpp"

# Rules -----------------------------------------------------------------------

ALLOW_RE = re.compile(r"//\s*dbn-lint:\s*allow\(([a-z-]+)\)\s*\S")

NAKED_ASSERT_RE = re.compile(r"(?<![A-Za-z0-9_])assert\s*\(")
STD_RAND_RE = re.compile(r"std\s*::\s*rand\b|(?<![A-Za-z0-9_:])s?rand\s*\(")
# A `new` expression: preceded by something that makes it an expression
# context. `= delete`, `delete` expressions and member names like `renew`
# don't match.
RAW_NEW_RE = re.compile(r"(?<![A-Za-z0-9_])new\b(?!\s*\()")
SCHEMA_LITERAL_RE = re.compile(
    r"(?:trace|metricsts|metrics|introspect|chaos|dbn-bench|serve|loadgen"
    r"|case|corpus)/[0-9]+"
)
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(["<])([^">]+)[">]')
# A mutex *declaration* (member or local): optional qualifiers, the type,
# one identifier, `;`. References (`Mutex&`) alias an existing capability
# and don't match.
STD_MUTEX_DECL_RE = re.compile(
    r"\bstd\s*::\s*(?:recursive_|shared_|timed_)?mutex\s+\w+\s*;"
)
DBN_MUTEX_DECL_RE = re.compile(
    r"(?:(?<![A-Za-z0-9_:])Mutex|\bdbn\s*::\s*Mutex)\s+\w+\s*;"
)

KNOWN_RULES = frozenset({
    "naked-assert", "std-rand", "raw-new", "schema-literal",
    "include-order", "mutex-needs-annotation",
})


def strip_comments_keep_strings(text: str) -> str:
    """Removes // and /* */ comments, preserving line structure and strings."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif c in "\"'":
            quote = c
            out.append(c)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append(text[i : i + 2])
                    i += 2
                else:
                    out.append(text[i])
                    i += 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def strip_strings(line: str) -> str:
    """Removes string/char literal contents from one comment-free line."""
    return re.sub(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'', '""', line)


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.findings: list[str] = []

    def report(self, path: Path, lineno: int, rule: str, message: str) -> None:
        rel = path.relative_to(self.root) if path.is_absolute() else path
        self.findings.append(f"{rel}:{lineno}: [{rule}] {message}")

    def lint_file(self, path: Path) -> None:
        rel = path.relative_to(self.root) if path.is_absolute() else path
        top = rel.parts[0] if rel.parts else ""
        if top not in REPO_DIRS:
            return
        raw = path.read_text(encoding="utf-8")
        code = strip_comments_keep_strings(raw)
        raw_lines = raw.splitlines()
        code_lines = code.splitlines()

        in_tests = top == "tests"
        file_has_guarded_by = "DBN_GUARDED_BY" in code
        for lineno, (code_line, raw_line) in enumerate(
            zip(code_lines, raw_lines), start=1
        ):
            allowed = {m.group(1) for m in ALLOW_RE.finditer(raw_line)}
            bare = strip_strings(code_line)
            # Every rule that would fire on this line, allowed or not —
            # feeds both the findings and the stale-suppression audit.
            fired: set[str] = set()

            if not in_tests:
                for m in NAKED_ASSERT_RE.finditer(bare):
                    before = bare[: m.start()]
                    if before.rstrip().endswith(("static_", "_")):
                        continue
                    fired.add("naked-assert")
                if "naked-assert" in fired and "naked-assert" not in allowed:
                    self.report(
                        path, lineno, "naked-assert",
                        "use DBN_REQUIRE/DBN_ENSURE/DBN_ASSERT/DBN_AUDIT "
                        "(common/contract.hpp); assert() vanishes under NDEBUG",
                    )
            if top in ("src", "tools"):
                if STD_RAND_RE.search(bare):
                    fired.add("std-rand")
                    if "std-rand" not in allowed:
                        self.report(
                            path, lineno, "std-rand",
                            "std::rand/srand are unseeded shared state; "
                            "use common/rng.hpp",
                        )
            if top == "src":
                if RAW_NEW_RE.search(bare) and "= delete" not in bare:
                    fired.add("raw-new")
                    if "raw-new" not in allowed:
                        self.report(
                            path, lineno, "raw-new",
                            "raw new expression; "
                            "use std::make_unique/containers",
                        )
            if top in ("src", "tools") and rel != SCHEMA_REGISTRY:
                if SCHEMA_LITERAL_RE.search(code_line):
                    fired.add("schema-literal")
                    if "schema-literal" not in allowed:
                        self.report(
                            path, lineno, "schema-literal",
                            "schema version strings are declared once in "
                            "src/common/schema.hpp; reference the constant",
                        )
            if top == "src":
                if STD_MUTEX_DECL_RE.search(bare):
                    fired.add("mutex-needs-annotation")
                    if "mutex-needs-annotation" not in allowed:
                        self.report(
                            path, lineno, "mutex-needs-annotation",
                            "raw std::mutex cannot carry thread-safety "
                            "annotations; use dbn::Mutex (common/mutex.hpp) "
                            "and DBN_GUARDED_BY",
                        )
                elif DBN_MUTEX_DECL_RE.search(bare) and not file_has_guarded_by:
                    fired.add("mutex-needs-annotation")
                    if "mutex-needs-annotation" not in allowed:
                        self.report(
                            path, lineno, "mutex-needs-annotation",
                            "this file declares a Mutex but no state is "
                            "DBN_GUARDED_BY it; annotate the guarded fields "
                            "or justify inline",
                        )

            # Stale-suppression audit. include-order is checked in its own
            # whole-file pass below, so its allows are exempt here.
            for rule in sorted(allowed - fired - {"include-order"}):
                if rule not in KNOWN_RULES:
                    self.report(
                        path, lineno, "stale-suppression",
                        f"allow({rule}) names an unknown rule",
                    )
                else:
                    self.report(
                        path, lineno, "stale-suppression",
                        f"allow({rule}) suppresses nothing on this line; "
                        "remove the stale comment",
                    )

        if top == "src" and path.suffix == ".cpp":
            self.check_own_header_first(path, rel, code_lines)

    def check_own_header_first(
        self, path: Path, rel: Path, code_lines: list[str]
    ) -> None:
        own = rel.with_suffix(".hpp")
        if not (self.root / own).exists():
            return
        # The include form used in this repo is "subdir/name.hpp" relative
        # to src/.
        expected = own.relative_to("src").as_posix()
        for lineno, line in enumerate(code_lines, start=1):
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            if m.group(2) != expected:
                self.report(
                    path, lineno, "include-order",
                    f'first include must be the own header "{expected}" '
                    "(keeps headers self-contained)",
                )
            return


def sources_from_compile_commands(db_path: Path, root: Path) -> list[Path]:
    entries = json.loads(db_path.read_text(encoding="utf-8"))
    files: set[Path] = set()
    dirs: set[Path] = set()
    for entry in entries:
        src = Path(entry["directory"], entry["file"]).resolve()
        try:
            rel = src.relative_to(root)
        except ValueError:
            continue  # generated / external source
        files.add(root / rel)
        if rel.parts:
            dirs.add(Path(rel.parts[0]))
    # The database only lists .cpp files; pull in the headers next to them.
    for top in sorted(dirs):
        for header in (root / top).rglob("*.hpp"):
            files.add(header)
    return sorted(files)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--compile-commands", type=Path, default=None,
                        help="compile_commands.json supplying the file set")
    parser.add_argument("--root", type=Path, default=None,
                        help="repo root (default: this script's parent dir)")
    parser.add_argument("files", nargs="*", type=Path,
                        help="explicit files to lint instead")
    args = parser.parse_args()

    root = (args.root or Path(__file__).resolve().parent.parent).resolve()
    if args.files:
        files = [f.resolve() for f in args.files]
    elif args.compile_commands:
        files = sources_from_compile_commands(
            args.compile_commands.resolve(), root
        )
    else:
        files = sorted(
            f for top in REPO_DIRS for f in (root / top).rglob("*")
            if f.suffix in (".cpp", ".hpp") and (root / top).is_dir()
        )
    if not files:
        print("dbn_lint: no files to lint", file=sys.stderr)
        return 2

    linter = Linter(root)
    for f in files:
        if f.suffix in (".cpp", ".hpp"):
            linter.lint_file(f)

    for finding in linter.findings:
        print(finding)
    if linter.findings:
        print(f"dbn_lint: {len(linter.findings)} finding(s) in "
              f"{len(files)} files", file=sys.stderr)
        return 1
    print(f"dbn_lint: OK ({len(files)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
