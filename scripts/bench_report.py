#!/usr/bin/env python3
"""Record and compare normalized benchmark baselines (schema dbn-bench/1).

Two subcommands:

  record   Run the perf suite and write a normalized JSON report:
           - tools/dbn_bench (the parallel batch-route engine sweep), and
           - any requested Google-Benchmark binaries from bench/, executed
             with --benchmark_format=json and folded into the same schema.
           The output is the committed BENCH_<date>.json format described
           in docs/benchmarking.md. A metrics/1 snapshot from dbn_bench
           (--metrics-out) is embedded under "metrics", and when the
           gbench rows include the BM_UntracedRoute / BM_TracedRoute /
           BM_Engine trio (bench_route_engine), derived tracing-overhead
           rows are appended; --max-disabled-overhead R fails (exit 1)
           when the *disabled* tracing path costs more than R x the
           uninstrumented engine loop measured in the same run. When the
           dbn_bench sweep includes the single-thread alg1-directed and
           bidi-engine rows, a derived bidi-vs-alg1 ratio is appended and
           --max-bidi-vs-alg1 R gates it the same way (the packed-kernel
           budget: undirected optimality at <= R x the directed scan).
           When the bench_serve pair (BM_ServeSteadyState sustained QPS +
           p50/p99 latency counters, BM_ServeEngineOnly denominator) is
           recorded, a derived serve-overhead ratio is appended and
           --max-serve-overhead R gates it at record time too; with
           BM_ServeObserved also present (the same stack with sampled
           tracing, the slow log, and a metrics timeline running), a
           derived serve_obs_overhead ratio is appended and
           --max-serve-obs-overhead R gates what the observability plane
           costs the serving fast path (CI uses 1.15). When the
           bench_saturation pair (BM_LayerTableClassify O(1) layer reads,
           BM_DeflectionRescore O(k) re-scoring, same decision stream) is
           recorded, a derived deflection-cost ratio is appended and
           --max-deflection-cost R fails when a layer-table decision costs
           more than R x the re-scoring decision (CI uses 0.2: the table
           must be at least 5x cheaper or it is not paying for its memory).

  compare  Check a fresh report against a committed baseline and fail
           (exit 1) when any comparable single-thread entry regressed by
           more than --max-ratio (default 2.0x ns/query). Multi-thread
           entries are reported but never gate: their timing depends on
           the runner's core count, which differs across hosts. Derived
           rows (derived/...) are ratios, not timings, and never gate on
           the baseline; the disabled-overhead gate runs at record time.

Examples:
  scripts/bench_report.py record --build-dir build --smoke --out bench.json
  scripts/bench_report.py compare --baseline BENCH_2026-08-06.json bench.json
"""

import argparse
import datetime
import json
import os
import subprocess
import sys

SCHEMA = "dbn-bench/1"


def run_dbn_bench(build_dir, smoke, extra_args):
    """Run tools/dbn_bench; returns (report dict, metrics/1 entries)."""
    binary = os.path.join(build_dir, "tools", "dbn_bench")
    if not os.path.exists(binary):
        sys.exit(f"bench_report: {binary} not found (build the tools first)")
    out_path = os.path.join(build_dir, "dbn_bench_report.json")
    metrics_path = os.path.join(build_dir, "dbn_bench_metrics.json")
    cmd = [binary, "--json", out_path, "--metrics-out", metrics_path]
    if smoke:
        # --min-speedup 0 here: recording must not fail on slow runners;
        # the speedup is recorded in the JSON and gated by CI policy.
        cmd += ["--smoke", "--min-speedup", "0"]
    cmd += extra_args
    subprocess.run(cmd, check=True)
    with open(out_path) as f:
        report = json.load(f)
    return report, load_metrics(metrics_path)


def load_metrics(path):
    """Load a metrics/1 document, returning its entry list ([] if absent)."""
    if not os.path.exists(path):
        return []
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "metrics/1":
        sys.exit(f"bench_report: {path} has schema {doc.get('schema')!r}, "
                 "expected 'metrics/1'")
    return doc.get("metrics", [])


def derive_tracing_overhead(rows):
    """Appends derived tracing rows; returns the disabled-overhead ratio.

    Looks for the bench_route_engine trio at the same k:
      BM_Engine/16          the uninstrumented-era hot loop (baseline)
      BM_UntracedRoute/16   same loop, tracing branch compiled in, sink off
      BM_TracedRoute/16     same loop routing into a discarding sink
    Returns None when the trio is not present.
    """
    def find(suffix):
        for row in rows:
            if row["name"].endswith(suffix):
                return row["best_ns_per_query"]
        return None

    engine = find("/BM_Engine/16")
    untraced = find("/BM_UntracedRoute/16")
    traced = find("/BM_TracedRoute/16")
    if engine is None or untraced is None or traced is None:
        return None
    disabled_overhead = untraced / engine
    rows.append({
        "name": "derived/trace_disabled_overhead",
        "backend": "derived",
        "threads": 1,
        "best_ns_per_query": disabled_overhead,  # a ratio, not a timing
        "note": "BM_UntracedRoute / BM_Engine at k=16 (same run)",
    })
    rows.append({
        "name": "derived/trace_enabled_cost",
        "backend": "derived",
        "threads": 1,
        "best_ns_per_query": traced / untraced,  # a ratio, not a timing
        "note": "BM_TracedRoute / BM_UntracedRoute at k=16 (same run)",
    })
    return disabled_overhead


def derive_bidi_vs_alg1(rows):
    """Appends the derived bidi-vs-alg1 row; returns the ratio.

    Compares the two single-thread batch rows of the dbn_bench sweep:
      batch/alg1-directed/t1   Algorithm 1 (directed, one MP scan)
      batch/bidi-engine/t1     Theorem 2 (undirected, both side minima)
    The ratio is the per-query price of undirected optimality; the packed
    SWAR kernels are what keep it small. Returns None when either row is
    absent (non-smoke sweeps).
    """
    def find(name):
        for row in rows:
            if row["name"] == name:
                return row["best_ns_per_query"]
        return None

    alg1 = find("batch/alg1-directed/t1")
    bidi = find("batch/bidi-engine/t1")
    if alg1 is None or bidi is None:
        return None
    ratio = bidi / alg1
    rows.append({
        "name": "derived/bidi_vs_alg1",
        "backend": "derived",
        "threads": 1,
        "best_ns_per_query": ratio,  # a ratio, not a timing
        "note": "batch/bidi-engine/t1 / batch/alg1-directed/t1 (same run)",
    })
    return ratio


def derive_serve_overhead(rows):
    """Appends the derived serve-overhead row; returns the ratio.

    Compares the two bench_serve rows by sustained items/second:
      BM_ServeEngineOnly     the batch engine alone (1 worker, window 256)
      BM_ServeSteadyState    the same engine behind the full serving stack
                             (wire protocol, bounded queue, dispatcher)
    The ratio is the per-request price of the daemon machinery. Returns
    None when either row is absent.
    """
    def find(suffix):
        for row in rows:
            if row["name"].endswith(suffix):
                return row.get("items_per_second") or None
        return None

    engine = find("/BM_ServeEngineOnly/real_time")
    serve = find("/BM_ServeSteadyState/real_time")
    if engine is None or serve is None:
        return None
    ratio = engine / serve
    rows.append({
        "name": "derived/serve_overhead",
        "backend": "derived",
        "threads": 1,
        "best_ns_per_query": ratio,  # a ratio, not a timing
        "note": "BM_ServeEngineOnly / BM_ServeSteadyState items/s (same run)",
    })
    return ratio


def derive_serve_obs_overhead(rows):
    """Appends the derived observability-overhead row; returns the ratio.

    Compares the two bench_serve steady-state rows by items/second:
      BM_ServeSteadyState    the serving stack, observability dark
      BM_ServeObserved       the identical stack with the CI smoke's
                             observability plane on: 1-in-64 sampled
                             request tracing into a discard sink, the slow
                             log armed, and a MetricsTimeline sampling in
                             the background
    The ratio is what turning the lights on costs the serving fast path.
    Returns None when either row is absent.
    """
    def find(suffix):
        for row in rows:
            if row["name"].endswith(suffix):
                return row.get("items_per_second") or None
        return None

    dark = find("/BM_ServeSteadyState/real_time")
    observed = find("/BM_ServeObserved/real_time")
    if dark is None or observed is None:
        return None
    ratio = dark / observed
    rows.append({
        "name": "derived/serve_obs_overhead",
        "backend": "derived",
        "threads": 1,
        "best_ns_per_query": ratio,  # a ratio, not a timing
        "note": "BM_ServeSteadyState / BM_ServeObserved items/s (same run)",
    })
    return ratio


def derive_deflection_cost(rows):
    """Appends the derived deflection-cost row; returns the ratio.

    Compares the two per-decision rows of bench_saturation at k=16:
      BM_DeflectionRescore/16    O(k) Theorem-2 distance per neighbor (the
                                 historical adaptive scoring)
      BM_LayerTableClassify/16   two byte loads from the warmed layer table
    Both consume the identical pre-sampled (from, neighbor) stream, so the
    ratio is the per-decision price of re-scoring relative to the table —
    the number the layer-table tentpole exists to shrink. Returns None
    when either row is absent.
    """
    def find(suffix):
        for row in rows:
            if row["name"].endswith(suffix):
                return row["best_ns_per_query"]
        return None

    rescore = find("/BM_DeflectionRescore/16")
    classify = find("/BM_LayerTableClassify/16")
    if rescore is None or classify is None:
        return None
    ratio = classify / rescore
    rows.append({
        "name": "derived/deflection_cost",
        "backend": "derived",
        "threads": 1,
        "best_ns_per_query": ratio,  # a ratio, not a timing
        "note": "BM_LayerTableClassify / BM_DeflectionRescore at k=16 "
                "(same run)",
    })
    return ratio


# Numeric fields of a Google-Benchmark JSON row that are part of the
# format itself; everything else numeric is a user counter (e.g. the
# p99_us latency BM_ServeSteadyState reports) and rides along in the row.
GBENCH_STANDARD_FIELDS = frozenset([
    "family_index", "per_family_instance_index", "repetition_index",
    "repetitions", "threads", "iterations", "real_time", "cpu_time",
    "items_per_second", "bytes_per_second",
])


def run_gbench(build_dir, name, benchmark_filter, min_time, repetitions):
    """Run one Google-Benchmark binary, normalized to result rows.

    Each benchmark runs `repetitions` times and the row keeps the minimum —
    single-shot timings on shared runners are noisy enough to flip the
    ratio gates (derived rows compare two of these timings), while the
    min over a few repetitions is stable.
    """
    binary = os.path.join(build_dir, "bench", name)
    if not os.path.exists(binary):
        sys.exit(f"bench_report: {binary} not found (build the benches first)")
    cmd = [binary, "--benchmark_format=json",
           f"--benchmark_min_time={min_time}",
           f"--benchmark_repetitions={repetitions}"]
    if benchmark_filter:
        cmd.append(f"--benchmark_filter={benchmark_filter}")
    proc = subprocess.run(cmd, check=True, capture_output=True, text=True)
    doc = json.loads(proc.stdout)
    best = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        ns = bench.get("real_time")
        if bench.get("time_unit") == "us":
            ns = ns * 1e3
        elif bench.get("time_unit") == "ms":
            ns = ns * 1e6
        elif bench.get("time_unit") == "s":
            ns = ns * 1e9
        row_name = f"gbench/{name}/{bench['name']}"
        if row_name in best and best[row_name]["best_ns_per_query"] <= ns:
            continue
        row = {
            "name": row_name,
            "backend": "gbench",
            "threads": 1,
            "best_ns_per_query": ns,
            "items_per_second": bench.get("items_per_second", 0.0),
        }
        counters = {
            key: value
            for key, value in bench.items()
            if isinstance(value, (int, float))
            and key not in GBENCH_STANDARD_FIELDS
        }
        if counters:
            row["counters"] = counters
        best[row_name] = row
    return list(best.values())


def cmd_record(args):
    report, metrics = run_dbn_bench(args.build_dir, args.smoke,
                                    args.dbn_bench_arg)
    for name in args.gbench:
        report["results"].extend(
            run_gbench(args.build_dir, name, args.gbench_filter,
                       args.gbench_min_time, args.gbench_repetitions))
    disabled_overhead = derive_tracing_overhead(report["results"])
    bidi_vs_alg1 = derive_bidi_vs_alg1(report["results"])
    serve_overhead = derive_serve_overhead(report["results"])
    serve_obs_overhead = derive_serve_obs_overhead(report["results"])
    deflection_cost = derive_deflection_cost(report["results"])
    report["schema"] = SCHEMA
    report["generated_by"] = "scripts/bench_report.py"
    if metrics:
        report["metrics"] = metrics
    out = args.out
    if not out:
        date = datetime.date.today().isoformat()
        out = f"BENCH_{date}.json"
    with open(out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"bench_report: wrote {out} ({len(report['results'])} entries, "
          f"{len(metrics)} metrics)")
    if disabled_overhead is not None:
        print(f"bench_report: tracing disabled-overhead "
              f"{disabled_overhead:.3f}x")
        if args.max_disabled_overhead > 0 and \
                disabled_overhead > args.max_disabled_overhead:
            print(f"bench_report: FAIL disabled tracing overhead "
                  f"{disabled_overhead:.3f}x > allowed "
                  f"{args.max_disabled_overhead:.2f}x")
            return 1
    elif args.max_disabled_overhead > 0:
        print("bench_report: FAIL --max-disabled-overhead set but the "
              "BM_Engine/BM_UntracedRoute/BM_TracedRoute trio was not "
              "recorded (add --gbench bench_route_engine)")
        return 1
    if bidi_vs_alg1 is not None:
        print(f"bench_report: bidi-vs-alg1 at t1 {bidi_vs_alg1:.3f}x")
        if args.max_bidi_vs_alg1 > 0 and bidi_vs_alg1 > args.max_bidi_vs_alg1:
            print(f"bench_report: FAIL bidi-engine costs "
                  f"{bidi_vs_alg1:.3f}x alg1-directed at t1 > allowed "
                  f"{args.max_bidi_vs_alg1:.2f}x")
            return 1
    elif args.max_bidi_vs_alg1 > 0:
        print("bench_report: FAIL --max-bidi-vs-alg1 set but the "
              "batch/alg1-directed/t1 + batch/bidi-engine/t1 pair was not "
              "recorded (run the --smoke sweep)")
        return 1
    if serve_overhead is not None:
        print(f"bench_report: serve overhead {serve_overhead:.3f}x")
        if args.max_serve_overhead > 0 and \
                serve_overhead > args.max_serve_overhead:
            print(f"bench_report: FAIL serving stack costs "
                  f"{serve_overhead:.3f}x the bare engine > allowed "
                  f"{args.max_serve_overhead:.2f}x")
            return 1
    elif args.max_serve_overhead > 0:
        print("bench_report: FAIL --max-serve-overhead set but the "
              "BM_ServeSteadyState/BM_ServeEngineOnly pair was not "
              "recorded (add --gbench bench_serve)")
        return 1
    if serve_obs_overhead is not None:
        print(f"bench_report: serve observability overhead "
              f"{serve_obs_overhead:.3f}x")
        if args.max_serve_obs_overhead > 0 and \
                serve_obs_overhead > args.max_serve_obs_overhead:
            print(f"bench_report: FAIL the observability plane costs "
                  f"{serve_obs_overhead:.3f}x the dark serving stack > "
                  f"allowed {args.max_serve_obs_overhead:.2f}x")
            return 1
    elif args.max_serve_obs_overhead > 0:
        print("bench_report: FAIL --max-serve-obs-overhead set but the "
              "BM_ServeSteadyState/BM_ServeObserved pair was not "
              "recorded (add --gbench bench_serve)")
        return 1
    if deflection_cost is not None:
        print(f"bench_report: deflection cost {deflection_cost:.3f}x")
        if args.max_deflection_cost > 0 and \
                deflection_cost > args.max_deflection_cost:
            print(f"bench_report: FAIL a layer-table decision costs "
                  f"{deflection_cost:.3f}x the re-scoring decision > allowed "
                  f"{args.max_deflection_cost:.2f}x")
            return 1
    elif args.max_deflection_cost > 0:
        print("bench_report: FAIL --max-deflection-cost set but the "
              "BM_DeflectionRescore/BM_LayerTableClassify pair was not "
              "recorded (add --gbench bench_saturation)")
        return 1
    return 0


def load_results(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        sys.exit(f"bench_report: {path} has schema {doc.get('schema')!r}, "
                 f"expected {SCHEMA!r}")
    return {row["name"]: row for row in doc.get("results", [])}


def cmd_compare(args):
    baseline = load_results(args.baseline)
    current = load_results(args.report)
    failures = []
    print(f"{'entry':48} {'baseline':>12} {'current':>12} {'ratio':>7}")
    for name, row in sorted(current.items()):
        if name.startswith("derived/"):
            print(f"{name:48} {'-':>12} "
                  f"{row['best_ns_per_query']:12.3f} {'ratio':>7}")
            continue
        base = baseline.get(name)
        if base is None:
            print(f"{name:48} {'-':>12} "
                  f"{row['best_ns_per_query']:12.1f} {'new':>7}")
            continue
        ratio = row["best_ns_per_query"] / base["best_ns_per_query"]
        gating = row.get("threads", 1) == 1
        marker = ""
        if ratio > args.max_ratio:
            marker = " REGRESSED" if gating else " (slow, non-gating)"
            if gating:
                failures.append((name, ratio))
        print(f"{name:48} {base['best_ns_per_query']:12.1f} "
              f"{row['best_ns_per_query']:12.1f} {ratio:6.2f}x{marker}")
    missing = sorted(set(baseline) - set(current))
    for name in missing:
        print(f"{name:48} (entry missing from the new report)")
    if failures:
        print(f"bench_report: {len(failures)} single-thread regression(s) "
              f"beyond {args.max_ratio:.1f}x:")
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x")
        return 1
    print("bench_report: no single-thread regressions "
          f"beyond {args.max_ratio:.1f}x")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("record", help="run the suite, write a baseline")
    rec.add_argument("--build-dir", default="build")
    rec.add_argument("--smoke", action="store_true",
                     help="use the CI smoke grid of tools/dbn_bench")
    rec.add_argument("--out", default="",
                     help="output path (default BENCH_<today>.json)")
    rec.add_argument("--gbench", action="append", default=[],
                     help="also run this bench/ binary (repeatable)")
    rec.add_argument("--gbench-filter", default="",
                     help="--benchmark_filter for the gbench binaries")
    rec.add_argument("--gbench-min-time", default="0.05")
    rec.add_argument("--gbench-repetitions", type=int, default=3,
                     help="repetitions per benchmark; rows keep the min "
                          "(stabilizes the derived ratio gates)")
    rec.add_argument("--dbn-bench-arg", action="append", default=[],
                     help="extra argument forwarded to dbn_bench "
                          "(repeatable)")
    rec.add_argument("--max-disabled-overhead", type=float, default=0.0,
                     help="fail when disabled tracing costs more than this "
                          "ratio of the uninstrumented loop (0 = no gate; "
                          "CI uses 1.05)")
    rec.add_argument("--max-bidi-vs-alg1", type=float, default=0.0,
                     help="fail when the single-thread bidi-engine batch "
                          "row costs more than this ratio of the "
                          "alg1-directed row (0 = no gate; CI uses 2.0)")
    rec.add_argument("--max-serve-overhead", type=float, default=0.0,
                     help="fail when the serving stack sustains fewer than "
                          "1/R of the bare engine's items/s at the same "
                          "configuration (0 = no gate; CI uses 8.0)")
    rec.add_argument("--max-serve-obs-overhead", type=float, default=0.0,
                     help="fail when the serving stack with sampled "
                          "tracing + metrics timeline enabled sustains "
                          "fewer than 1/R of its own untraced items/s "
                          "(0 = no gate; CI uses 1.15)")
    rec.add_argument("--max-deflection-cost", type=float, default=0.0,
                     help="fail when an O(1) layer-table deflection "
                          "decision costs more than this ratio of the O(k) "
                          "re-scoring decision (0 = no gate; CI uses 0.2)")
    rec.set_defaults(func=cmd_record)

    cmp_ = sub.add_parser("compare", help="gate a report against a baseline")
    cmp_.add_argument("--baseline", required=True)
    cmp_.add_argument("report")
    cmp_.add_argument("--max-ratio", type=float, default=2.0,
                      help="fail when single-thread ns/query exceeds "
                           "baseline * ratio (default 2.0)")
    cmp_.set_defaults(func=cmd_compare)

    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
