#!/usr/bin/env python3
"""Validate trace/1 NDJSON files (the --trace-out format of the dbn tools).

Checks, per file:
  - the first line is the schema header {"schema": "trace/1"};
  - every following line is one JSON object with the required fields
    (name, cat, ph in {B, E, i}, clock in {wall, sim, logical}, numeric ts,
    integer lane) and no unknown fields;
  - span discipline: every span id opens with exactly one B before any
    other reference, closes with at most one E carrying the same name, and
    an E never precedes its B; instants may reference only opened spans;
  - on the same span, end ts >= begin ts (all clocks are monotone within
    one span).

Exit status 0 when every file validates, 1 otherwise. --require-span NAME
additionally fails when no span named NAME appears (used by CI to assert
the smoke trace actually contains route spans).

Usage:
  scripts/check_trace.py trace.ndjson [more.ndjson ...] [--require-span route]
"""

import argparse
import json
import sys

ALLOWED_KEYS = {"name", "cat", "ph", "clock", "ts", "lane", "span", "args"}
PHASES = {"B", "E", "i"}
CLOCKS = {"wall", "sim", "logical"}


def check_file(path, require_span):
    errors = []
    spans = {}  # span id -> {"name", "begin_ts", "ended"}
    counts = {"B": 0, "E": 0, "i": 0}
    seen_span_names = set()

    def err(line_no, message):
        errors.append(f"{path}:{line_no}: {message}")

    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    if not lines:
        return [f"{path}: empty file"], counts
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as e:
        return [f"{path}:1: header is not JSON: {e}"], counts
    if header != {"schema": "trace/1"}:
        return [f"{path}:1: bad header {header!r}"], counts

    for line_no, line in enumerate(lines[1:], start=2):
        if not line:
            err(line_no, "blank line")
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as e:
            err(line_no, f"not JSON: {e}")
            continue
        if not isinstance(event, dict):
            err(line_no, "event is not an object")
            continue
        unknown = set(event) - ALLOWED_KEYS
        if unknown:
            err(line_no, f"unknown fields {sorted(unknown)}")
        for key, types in (("name", str), ("cat", str), ("ph", str),
                           ("clock", str), ("ts", (int, float)),
                           ("lane", int)):
            if key not in event:
                err(line_no, f"missing field {key!r}")
            elif not isinstance(event[key], types):
                err(line_no, f"field {key!r} has wrong type")
        ph = event.get("ph")
        if ph not in PHASES:
            err(line_no, f"bad ph {ph!r}")
            continue
        if event.get("clock") not in CLOCKS:
            err(line_no, f"bad clock {event.get('clock')!r}")
        if "args" in event and not isinstance(event["args"], dict):
            err(line_no, "args is not an object")
        counts[ph] += 1

        span = event.get("span", 0)
        if not isinstance(span, int) or span < 0:
            err(line_no, f"bad span id {span!r}")
            continue
        if span == 0:
            if ph in ("B", "E"):
                err(line_no, f"{ph} event without a span id")
            continue
        state = spans.get(span)
        if ph == "B":
            if state is not None:
                err(line_no, f"span {span} opened twice")
            else:
                spans[span] = {"name": event.get("name"),
                               "begin_ts": event.get("ts", 0),
                               "clock": event.get("clock"),
                               "ended": False}
                seen_span_names.add(event.get("name"))
        elif ph == "E":
            if state is None:
                err(line_no, f"span {span} ends before it begins")
            elif state["ended"]:
                err(line_no, f"span {span} ended twice")
            else:
                state["ended"] = True
                if event.get("name") != state["name"]:
                    err(line_no,
                        f"span {span} ends as {event.get('name')!r}, "
                        f"began as {state['name']!r}")
                if (event.get("clock") == state["clock"]
                        and isinstance(event.get("ts"), (int, float))
                        and event["ts"] < state["begin_ts"]):
                    err(line_no, f"span {span} ends before its begin ts")
        else:  # instant referencing a span
            if state is None:
                err(line_no, f"instant references unopened span {span}")

    for span, state in sorted(spans.items()):
        if not state["ended"]:
            errors.append(f"{path}: span {span} ({state['name']!r}) "
                          "never ends")
    for name in require_span:
        if name not in seen_span_names:
            errors.append(f"{path}: no span named {name!r} found")
    return errors, counts


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+")
    parser.add_argument("--require-span", action="append", default=[],
                        metavar="NAME",
                        help="fail unless a span named NAME appears "
                             "(repeatable)")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args()

    failed = False
    for path in args.files:
        errors, counts = check_file(path, args.require_span)
        total = counts["B"] + counts["E"] + counts["i"]
        if errors:
            failed = True
            for e in errors[:50]:
                print(e, file=sys.stderr)
            if len(errors) > 50:
                print(f"{path}: ... and {len(errors) - 50} more errors",
                      file=sys.stderr)
        elif not args.quiet:
            print(f"check_trace: {path} ok ({total} events: "
                  f"{counts['B']} B / {counts['E']} E / {counts['i']} i)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
