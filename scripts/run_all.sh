#!/usr/bin/env bash
# Build, test, and regenerate every experiment, capturing outputs at the
# repository root (test_output.txt, bench_output.txt).
#
# Every step runs even when an earlier one fails; the script prints a
# per-step summary and exits 1 when any step failed, so callers and CI see
# exactly one aggregated status.
set -euo pipefail
cd "$(dirname "$0")/.."

declare -a failed_steps=()

# run_step <name> <logfile|-> <command...> — run one step, append its output
# to the log, record the failure instead of aborting the whole script.
run_step() {
  local name=$1 logfile=$2
  shift 2
  local status=0
  echo "== ${name}: $*"
  if [[ ${logfile} == - ]]; then
    "$@" || status=$?
  else
    "$@" 2>&1 | tee -a "${logfile}" || status=$?
  fi
  if ((status != 0)); then
    echo "== ${name}: FAILED (exit ${status})" >&2
    failed_steps+=("${name} (exit ${status})")
  fi
  return 0
}

run_step configure - cmake -B build -G Ninja
run_step build - cmake --build build

: >test_output.txt
run_step ctest test_output.txt ctest --test-dir build --output-on-failure

: >bench_output.txt
for b in build/bench/*; do
  [[ -x ${b} ]] || continue
  run_step "bench/$(basename "${b}")" bench_output.txt "${b}"
done

run_step bench-report - python3 scripts/bench_report.py record \
  --build-dir build --smoke --out bench_report.json

# Serving smoke: spawn-mode loadgen over stdio (no ports involved), then
# a TCP boot/drain cycle mirroring CI's serve-smoke job: the daemon runs
# with the observability plane armed (metricsts/1 timeline, sampled
# request traces, slow log), `dbn top --once` scrapes the introspection
# probe mid-load, and check_metrics validates both the live snapshot and
# the flushed timeline alongside the final metrics document.
run_step serve-loadgen - ./build/tools/dbn_loadgen 2 10 \
  "--spawn=./build/tools/dbn serve 2 10 --stdio --threads=2 --cache=1024" \
  --requests=2000 --inflight=32 --distance-frac=0.25 --stats

serve_smoke() {
  rm -f serve.port serve_metrics.json serve_timeline.ndjson \
    serve_live_snapshot.json
  ./build/tools/dbn serve 2 12 --port=0 --port-file=serve.port \
    --threads=2 --metrics-out=serve_metrics.json \
    --metrics-interval=50 --metrics-ts-out=serve_timeline.ndjson \
    --trace-sample=8 --trace-out=serve_trace.ndjson --slow-us=5000 \
    2>/dev/null &
  local serve_pid=$!
  local status=0
  ./build/tools/dbn_loadgen 2 12 --port-file=serve.port \
    --connections=4 --requests=4000 --inflight=64 --stats \
    --out=loadgen_output.ndjson &
  local loadgen_pid=$!
  ./build/tools/dbn_top --port-file=serve.port --once \
    --metrics-out=serve_live_snapshot.json || status=$?
  wait "${loadgen_pid}" || status=$?
  kill -TERM "${serve_pid}" 2>/dev/null || status=1
  wait "${serve_pid}" || status=$?
  python3 scripts/check_metrics.py serve_live_snapshot.json \
    --require-nonzero serve.requests || status=$?
  python3 scripts/check_metrics.py serve_timeline.ndjson \
    --require-nonzero serve.requests \
    --require-nonzero serve.responses_ok || status=$?
  python3 scripts/check_metrics.py serve_metrics.json \
    --require-nonzero serve.requests \
    --require-nonzero serve.responses_ok || status=$?
  rm -f serve.port
  return "${status}"
}
run_step serve-smoke - serve_smoke

# Static-analysis mirror of CI: when clang is available, rebuild with the
# thread-safety wall armed and prove the annotations are live via the
# negative-compile ctest entries; elsewhere the annotations are no-ops,
# so the step self-skips rather than faking a pass.
thread_safety_wall() {
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "thread-safety: clang++ not found, skipping (gcc cannot run the analysis)"
    return 0
  fi
  local status=0
  cmake -B build-tsa -G Ninja -DDBN_THREAD_SAFETY=ON \
    -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ || status=$?
  cmake --build build-tsa || status=$?
  ctest --test-dir build-tsa --output-on-failure -R '^compile_fail_' \
    || status=$?
  return "${status}"
}
run_step thread-safety - thread_safety_wall

# Fuzz harness replay: build the fuzz/ harnesses (libFuzzer under clang,
# replay-only drivers elsewhere) and run every committed seed corpus
# through them via the fuzz-labelled ctest entries.
fuzz_replay() {
  local status=0
  cmake -B build -G Ninja -DDBN_FUZZERS=ON || status=$?
  cmake --build build \
    --target fuzz_serve_frame fuzz_json_parse fuzz_chaos_scenario \
    || status=$?
  ctest --test-dir build --output-on-failure -R '^fuzz_replay_' \
    || status=$?
  return "${status}"
}
run_step fuzz-replay - fuzz_replay

if ((${#failed_steps[@]} > 0)); then
  echo "run_all: ${#failed_steps[@]} step(s) failed:" >&2
  printf '  %s\n' "${failed_steps[@]}" >&2
  exit 1
fi
echo "run_all: all steps passed"
