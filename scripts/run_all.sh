#!/usr/bin/env bash
# Build, test, and regenerate every experiment, capturing outputs at the
# repository root (test_output.txt, bench_output.txt).
#
# Every step runs even when an earlier one fails; the script prints a
# per-step summary and exits 1 when any step failed, so callers and CI see
# exactly one aggregated status.
set -euo pipefail
cd "$(dirname "$0")/.."

declare -a failed_steps=()

# run_step <name> <logfile|-> <command...> — run one step, append its output
# to the log, record the failure instead of aborting the whole script.
run_step() {
  local name=$1 logfile=$2
  shift 2
  local status=0
  echo "== ${name}: $*"
  if [[ ${logfile} == - ]]; then
    "$@" || status=$?
  else
    "$@" 2>&1 | tee -a "${logfile}" || status=$?
  fi
  if ((status != 0)); then
    echo "== ${name}: FAILED (exit ${status})" >&2
    failed_steps+=("${name} (exit ${status})")
  fi
  return 0
}

run_step configure - cmake -B build -G Ninja
run_step build - cmake --build build

: >test_output.txt
run_step ctest test_output.txt ctest --test-dir build --output-on-failure

: >bench_output.txt
for b in build/bench/*; do
  [[ -x ${b} ]] || continue
  run_step "bench/$(basename "${b}")" bench_output.txt "${b}"
done

run_step bench-report - python3 scripts/bench_report.py record \
  --build-dir build --smoke --out bench_report.json

if ((${#failed_steps[@]} > 0)); then
  echo "run_all: ${#failed_steps[@]} step(s) failed:" >&2
  printf '  %s\n' "${failed_steps[@]}" >&2
  exit 1
fi
echo "run_all: all steps passed"
