#!/usr/bin/env python3
"""Validate metrics/1 JSON snapshots (the --metrics-out format).

Checks, per file:
  - the document is {"schema": "metrics/1", "metrics": [...]} and nothing
    else;
  - entries are sorted by name with no duplicates;
  - every entry is one of the three kinds with exactly the fields that
    kind carries:
      counter    {name, kind, count}        count is a non-negative int
      gauge      {name, kind, value}        value is a finite number
      histogram  {name, kind, count, sum, bounds, buckets}
    and for histograms: bounds is strictly increasing, buckets has
    len(bounds) + 1 entries (the last is the overflow bucket), every
    bucket is a non-negative int, and the buckets sum to count.

Exit status 0 when every file validates, 1 otherwise.

--require NAME fails unless an entry named NAME appears (repeatable).
--require-nonzero NAME additionally requires its count/value to be > 0;
CI's serve-smoke job uses this to assert the daemon actually served the
loadgen workload before it drained.

Usage:
  scripts/check_metrics.py dbn.metrics.json \
      --require-nonzero serve.requests --require serve.latency_us
"""

import argparse
import json
import math
import sys

KIND_FIELDS = {
    "counter": {"name", "kind", "count"},
    "gauge": {"name", "kind", "value"},
    "histogram": {"name", "kind", "count", "sum", "bounds", "buckets"},
}


def is_count(x):
    return isinstance(x, int) and not isinstance(x, bool) and x >= 0


def is_finite_number(x):
    return (isinstance(x, (int, float)) and not isinstance(x, bool)
            and math.isfinite(x))


def check_entry(path, i, entry, errors):
    where = f"{path}: metrics[{i}]"
    if not isinstance(entry, dict):
        errors.append(f"{where}: not an object")
        return None
    name = entry.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"{where}: missing or empty name")
        return None
    where = f"{path}: {name}"
    kind = entry.get("kind")
    if kind not in KIND_FIELDS:
        errors.append(f"{where}: unknown kind {kind!r}")
        return name
    expected = KIND_FIELDS[kind]
    if set(entry) != expected:
        errors.append(f"{where}: {kind} carries fields "
                      f"{sorted(entry)}, expected {sorted(expected)}")
        return name
    if kind == "counter":
        if not is_count(entry["count"]):
            errors.append(f"{where}: count {entry['count']!r} is not a "
                          "non-negative integer")
    elif kind == "gauge":
        if not is_finite_number(entry["value"]):
            errors.append(f"{where}: value {entry['value']!r} is not a "
                          "finite number")
    else:
        if not is_count(entry["count"]):
            errors.append(f"{where}: count {entry['count']!r} is not a "
                          "non-negative integer")
        if not is_finite_number(entry["sum"]):
            errors.append(f"{where}: sum {entry['sum']!r} is not a "
                          "finite number")
        bounds = entry["bounds"]
        buckets = entry["buckets"]
        if (not isinstance(bounds, list)
                or not all(is_finite_number(b) for b in bounds)):
            errors.append(f"{where}: bounds is not a list of numbers")
            return name
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            errors.append(f"{where}: bounds are not strictly increasing")
        if (not isinstance(buckets, list)
                or not all(is_count(b) for b in buckets)):
            errors.append(f"{where}: buckets is not a list of "
                          "non-negative integers")
            return name
        if len(buckets) != len(bounds) + 1:
            errors.append(f"{where}: {len(buckets)} buckets for "
                          f"{len(bounds)} bounds (want bounds + 1, the "
                          "last bucket is overflow)")
        elif sum(buckets) != entry["count"]:
            errors.append(f"{where}: buckets sum to {sum(buckets)}, "
                          f"count says {entry['count']}")
    return name


def magnitude(entry):
    if entry.get("kind") == "gauge":
        return entry.get("value", 0)
    return entry.get("count", 0)


def check_file(path, require, require_nonzero):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: {e}"], 0
    if not isinstance(doc, dict) or set(doc) != {"schema", "metrics"}:
        return [f"{path}: document is not "
                '{"schema": ..., "metrics": [...]}'], 0
    if doc["schema"] != "metrics/1":
        return [f"{path}: schema {doc['schema']!r}, expected 'metrics/1'"], 0
    if not isinstance(doc["metrics"], list):
        return [f"{path}: metrics is not a list"], 0

    by_name = {}
    names_in_order = []
    for i, entry in enumerate(doc["metrics"]):
        name = check_entry(path, i, entry, errors)
        if name is None:
            continue
        if name in by_name:
            errors.append(f"{path}: duplicate entry {name!r}")
        by_name[name] = entry
        names_in_order.append(name)
    if names_in_order != sorted(names_in_order):
        errors.append(f"{path}: entries are not sorted by name")

    for name in require + require_nonzero:
        if name not in by_name:
            errors.append(f"{path}: required metric {name!r} missing")
    for name in require_nonzero:
        entry = by_name.get(name)
        if entry is not None and not magnitude(entry) > 0:
            errors.append(f"{path}: {name} is zero "
                          f"({json.dumps(entry)})")
    return errors, len(by_name)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="fail unless a metric named NAME appears "
                             "(repeatable)")
    parser.add_argument("--require-nonzero", action="append", default=[],
                        metavar="NAME",
                        help="like --require, and its count/value must "
                             "be > 0 (repeatable)")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args()

    failed = False
    for path in args.files:
        errors, total = check_file(path, args.require, args.require_nonzero)
        if errors:
            failed = True
            for e in errors[:50]:
                print(e, file=sys.stderr)
            if len(errors) > 50:
                print(f"{path}: ... and {len(errors) - 50} more errors",
                      file=sys.stderr)
        elif not args.quiet:
            print(f"check_metrics: {path} ok ({total} metrics)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
