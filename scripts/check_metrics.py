#!/usr/bin/env python3
"""Validate metrics/1 snapshots and metricsts/1 timelines.

The mode is detected per file from the "schema" field of the first JSON
value: a metrics/1 file is one whole-document snapshot (the --metrics-out
format), a metricsts/1 file is an NDJSON timeline (the --metrics-ts-out
format: one header line, then one line per sample).

metrics/1 checks:
  - the document is {"schema": "metrics/1", "metrics": [...]} and nothing
    else;
  - entries are sorted by name with no duplicates;
  - every entry is one of the three kinds with exactly the fields that
    kind carries:
      counter    {name, kind, count}        count is a non-negative int
      gauge      {name, kind, value}        value is a finite number
      histogram  {name, kind, count, sum, bounds, buckets}
    and for histograms: bounds is strictly increasing, buckets has
    len(bounds) + 1 entries (the last is the overflow bucket), every
    bucket is a non-negative int, and the buckets sum to count.

metricsts/1 checks:
  - the header is {"schema": "metricsts/1", "interval_us", "samples",
    "dropped"} and the sample count matches the body;
  - samples are {"seq", "ts_us", "metrics": [...]} with seq strictly
    increasing and ts_us monotone non-decreasing;
  - every sample's entries pass the metrics/1 entry checks (sorted,
    unique, kind-exact);
  - sample values are cumulative, so per name, counter counts and
    histogram counts never decrease across the timeline.

Exit status 0 when every file validates, 1 otherwise.

--require NAME fails unless an entry named NAME appears (repeatable; for
timelines, anywhere in the timeline).
--require-nonzero NAME additionally requires its count/value to be > 0
(for timelines, in the last sample that carries it); CI's serve-smoke job
uses this to assert the daemon actually served the loadgen workload.

Usage:
  scripts/check_metrics.py dbn.metrics.json \
      --require-nonzero serve.requests --require serve.latency_us
  scripts/check_metrics.py serve.metricsts.ndjson \
      --require-nonzero serve.responses_ok
"""

import argparse
import json
import math
import sys

KIND_FIELDS = {
    "counter": {"name", "kind", "count"},
    "gauge": {"name", "kind", "value"},
    "histogram": {"name", "kind", "count", "sum", "bounds", "buckets"},
}


def is_count(x):
    return isinstance(x, int) and not isinstance(x, bool) and x >= 0


def is_finite_number(x):
    return (isinstance(x, (int, float)) and not isinstance(x, bool)
            and math.isfinite(x))


def check_entry(path, i, entry, errors):
    where = f"{path}: metrics[{i}]"
    if not isinstance(entry, dict):
        errors.append(f"{where}: not an object")
        return None
    name = entry.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"{where}: missing or empty name")
        return None
    where = f"{path}: {name}"
    kind = entry.get("kind")
    if kind not in KIND_FIELDS:
        errors.append(f"{where}: unknown kind {kind!r}")
        return name
    expected = KIND_FIELDS[kind]
    if set(entry) != expected:
        errors.append(f"{where}: {kind} carries fields "
                      f"{sorted(entry)}, expected {sorted(expected)}")
        return name
    if kind == "counter":
        if not is_count(entry["count"]):
            errors.append(f"{where}: count {entry['count']!r} is not a "
                          "non-negative integer")
    elif kind == "gauge":
        if not is_finite_number(entry["value"]):
            errors.append(f"{where}: value {entry['value']!r} is not a "
                          "finite number")
    else:
        if not is_count(entry["count"]):
            errors.append(f"{where}: count {entry['count']!r} is not a "
                          "non-negative integer")
        if not is_finite_number(entry["sum"]):
            errors.append(f"{where}: sum {entry['sum']!r} is not a "
                          "finite number")
        bounds = entry["bounds"]
        buckets = entry["buckets"]
        if (not isinstance(bounds, list)
                or not all(is_finite_number(b) for b in bounds)):
            errors.append(f"{where}: bounds is not a list of numbers")
            return name
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            errors.append(f"{where}: bounds are not strictly increasing")
        if (not isinstance(buckets, list)
                or not all(is_count(b) for b in buckets)):
            errors.append(f"{where}: buckets is not a list of "
                          "non-negative integers")
            return name
        if len(buckets) != len(bounds) + 1:
            errors.append(f"{where}: {len(buckets)} buckets for "
                          f"{len(bounds)} bounds (want bounds + 1, the "
                          "last bucket is overflow)")
        elif sum(buckets) != entry["count"]:
            errors.append(f"{where}: buckets sum to {sum(buckets)}, "
                          f"count says {entry['count']}")
    return name


def magnitude(entry):
    if entry.get("kind") == "gauge":
        return entry.get("value", 0)
    return entry.get("count", 0)


def check_sample_entries(where, entries, errors):
    """metrics/1 entry checks for one entry list; returns {name: entry}."""
    by_name = {}
    names_in_order = []
    for i, entry in enumerate(entries):
        name = check_entry(where, i, entry, errors)
        if name is None:
            continue
        if name in by_name:
            errors.append(f"{where}: duplicate entry {name!r}")
        by_name[name] = entry
        names_in_order.append(name)
    if names_in_order != sorted(names_in_order):
        errors.append(f"{where}: entries are not sorted by name")
    return by_name


def check_timeline(path, lines, require, require_nonzero):
    errors = []
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as e:
        return [f"{path}: header: {e}"], 0
    if (not isinstance(header, dict)
            or set(header) != {"schema", "interval_us", "samples",
                               "dropped"}):
        return [f"{path}: header is not {{schema, interval_us, samples, "
                "dropped}}"], 0
    if not (is_count(header["interval_us"]) and header["interval_us"] > 0):
        errors.append(f"{path}: interval_us {header['interval_us']!r} is "
                      "not a positive integer")
    if not is_count(header["dropped"]):
        errors.append(f"{path}: dropped {header['dropped']!r} is not a "
                      "non-negative integer")
    body = [line for line in lines[1:] if line.strip()]
    if header.get("samples") != len(body):
        errors.append(f"{path}: header says {header.get('samples')!r} "
                      f"samples, file has {len(body)}")

    last_seq = None
    last_ts = None
    # Cumulative floors per name: counter/histogram counts never decrease.
    floors = {}
    last_entry = {}
    for i, line in enumerate(body):
        where = f"{path}: sample[{i}]"
        try:
            sample = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"{where}: {e}")
            continue
        if (not isinstance(sample, dict)
                or set(sample) != {"seq", "ts_us", "metrics"}):
            errors.append(f"{where}: not {{seq, ts_us, metrics}}")
            continue
        if not is_count(sample["seq"]):
            errors.append(f"{where}: seq {sample['seq']!r} is not a "
                          "non-negative integer")
        elif last_seq is not None and sample["seq"] <= last_seq:
            errors.append(f"{where}: seq {sample['seq']} after {last_seq} "
                          "(must be strictly increasing)")
        if is_count(sample["seq"]):
            last_seq = sample["seq"]
        if not is_finite_number(sample["ts_us"]):
            errors.append(f"{where}: ts_us {sample['ts_us']!r} is not a "
                          "finite number")
        elif last_ts is not None and sample["ts_us"] < last_ts:
            errors.append(f"{where}: ts_us {sample['ts_us']} before "
                          f"{last_ts} (must be monotone non-decreasing)")
        if is_finite_number(sample["ts_us"]):
            last_ts = sample["ts_us"]
        if not isinstance(sample["metrics"], list):
            errors.append(f"{where}: metrics is not a list")
            continue
        by_name = check_sample_entries(where, sample["metrics"], errors)
        for name, entry in by_name.items():
            if entry.get("kind") in ("counter", "histogram"):
                count = entry.get("count")
                if is_count(count):
                    floor = floors.get(name)
                    if floor is not None and count < floor:
                        errors.append(
                            f"{where}: {name} count {count} fell below "
                            f"{floor} (timeline values are cumulative)")
                    floors[name] = count
            last_entry[name] = entry

    for name in require + require_nonzero:
        if name not in last_entry:
            errors.append(f"{path}: required metric {name!r} missing "
                          "from every sample")
    for name in require_nonzero:
        entry = last_entry.get(name)
        if entry is not None and not magnitude(entry) > 0:
            errors.append(f"{path}: {name} is zero in its last sample "
                          f"({json.dumps(entry)})")
    return errors, len(body)


def check_file(path, require, require_nonzero):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        return [f"{path}: {e}"], 0
    lines = text.splitlines()
    if lines and '"metricsts/1"' in lines[0]:
        return check_timeline(path, lines, require, require_nonzero)
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        return [f"{path}: {e}"], 0
    if not isinstance(doc, dict) or set(doc) != {"schema", "metrics"}:
        return [f"{path}: document is not "
                '{"schema": ..., "metrics": [...]}'], 0
    if doc["schema"] != "metrics/1":
        return [f"{path}: schema {doc['schema']!r}, expected 'metrics/1'"], 0
    if not isinstance(doc["metrics"], list):
        return [f"{path}: metrics is not a list"], 0

    by_name = check_sample_entries(path, doc["metrics"], errors)

    for name in require + require_nonzero:
        if name not in by_name:
            errors.append(f"{path}: required metric {name!r} missing")
    for name in require_nonzero:
        entry = by_name.get(name)
        if entry is not None and not magnitude(entry) > 0:
            errors.append(f"{path}: {name} is zero "
                          f"({json.dumps(entry)})")
    return errors, len(by_name)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="fail unless a metric named NAME appears "
                             "(repeatable)")
    parser.add_argument("--require-nonzero", action="append", default=[],
                        metavar="NAME",
                        help="like --require, and its count/value must "
                             "be > 0 (repeatable)")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args()

    failed = False
    for path in args.files:
        errors, total = check_file(path, args.require, args.require_nonzero)
        if errors:
            failed = True
            for e in errors[:50]:
                print(e, file=sys.stderr)
            if len(errors) > 50:
                print(f"{path}: ... and {len(errors) - 50} more errors",
                      file=sys.stderr)
        elif not args.quiet:
            print(f"check_metrics: {path} ok ({total} entries)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
