file(REMOVE_RECURSE
  "CMakeFiles/dbn.dir/dbn_cli.cpp.o"
  "CMakeFiles/dbn.dir/dbn_cli.cpp.o.d"
  "dbn"
  "dbn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
