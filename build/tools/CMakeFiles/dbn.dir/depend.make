# Empty dependencies file for dbn.
# This may be replaced when dependencies are built.
