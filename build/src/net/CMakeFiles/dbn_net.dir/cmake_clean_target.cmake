file(REMOVE_RECURSE
  "libdbn_net.a"
)
