file(REMOVE_RECURSE
  "CMakeFiles/dbn_net.dir/adaptive.cpp.o"
  "CMakeFiles/dbn_net.dir/adaptive.cpp.o.d"
  "CMakeFiles/dbn_net.dir/broadcast.cpp.o"
  "CMakeFiles/dbn_net.dir/broadcast.cpp.o.d"
  "CMakeFiles/dbn_net.dir/fault.cpp.o"
  "CMakeFiles/dbn_net.dir/fault.cpp.o.d"
  "CMakeFiles/dbn_net.dir/load_stats.cpp.o"
  "CMakeFiles/dbn_net.dir/load_stats.cpp.o.d"
  "CMakeFiles/dbn_net.dir/message.cpp.o"
  "CMakeFiles/dbn_net.dir/message.cpp.o.d"
  "CMakeFiles/dbn_net.dir/reliable.cpp.o"
  "CMakeFiles/dbn_net.dir/reliable.cpp.o.d"
  "CMakeFiles/dbn_net.dir/simulator.cpp.o"
  "CMakeFiles/dbn_net.dir/simulator.cpp.o.d"
  "CMakeFiles/dbn_net.dir/sort_emulation.cpp.o"
  "CMakeFiles/dbn_net.dir/sort_emulation.cpp.o.d"
  "CMakeFiles/dbn_net.dir/synchronous.cpp.o"
  "CMakeFiles/dbn_net.dir/synchronous.cpp.o.d"
  "CMakeFiles/dbn_net.dir/traffic.cpp.o"
  "CMakeFiles/dbn_net.dir/traffic.cpp.o.d"
  "libdbn_net.a"
  "libdbn_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbn_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
