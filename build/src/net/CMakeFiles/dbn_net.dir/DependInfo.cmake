
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/adaptive.cpp" "src/net/CMakeFiles/dbn_net.dir/adaptive.cpp.o" "gcc" "src/net/CMakeFiles/dbn_net.dir/adaptive.cpp.o.d"
  "/root/repo/src/net/broadcast.cpp" "src/net/CMakeFiles/dbn_net.dir/broadcast.cpp.o" "gcc" "src/net/CMakeFiles/dbn_net.dir/broadcast.cpp.o.d"
  "/root/repo/src/net/fault.cpp" "src/net/CMakeFiles/dbn_net.dir/fault.cpp.o" "gcc" "src/net/CMakeFiles/dbn_net.dir/fault.cpp.o.d"
  "/root/repo/src/net/load_stats.cpp" "src/net/CMakeFiles/dbn_net.dir/load_stats.cpp.o" "gcc" "src/net/CMakeFiles/dbn_net.dir/load_stats.cpp.o.d"
  "/root/repo/src/net/message.cpp" "src/net/CMakeFiles/dbn_net.dir/message.cpp.o" "gcc" "src/net/CMakeFiles/dbn_net.dir/message.cpp.o.d"
  "/root/repo/src/net/reliable.cpp" "src/net/CMakeFiles/dbn_net.dir/reliable.cpp.o" "gcc" "src/net/CMakeFiles/dbn_net.dir/reliable.cpp.o.d"
  "/root/repo/src/net/simulator.cpp" "src/net/CMakeFiles/dbn_net.dir/simulator.cpp.o" "gcc" "src/net/CMakeFiles/dbn_net.dir/simulator.cpp.o.d"
  "/root/repo/src/net/sort_emulation.cpp" "src/net/CMakeFiles/dbn_net.dir/sort_emulation.cpp.o" "gcc" "src/net/CMakeFiles/dbn_net.dir/sort_emulation.cpp.o.d"
  "/root/repo/src/net/synchronous.cpp" "src/net/CMakeFiles/dbn_net.dir/synchronous.cpp.o" "gcc" "src/net/CMakeFiles/dbn_net.dir/synchronous.cpp.o.d"
  "/root/repo/src/net/traffic.cpp" "src/net/CMakeFiles/dbn_net.dir/traffic.cpp.o" "gcc" "src/net/CMakeFiles/dbn_net.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dbn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/debruijn/CMakeFiles/dbn_debruijn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/strings/CMakeFiles/dbn_strings.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
