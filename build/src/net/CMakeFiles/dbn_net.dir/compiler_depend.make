# Empty compiler generated dependencies file for dbn_net.
# This may be replaced when dependencies are built.
