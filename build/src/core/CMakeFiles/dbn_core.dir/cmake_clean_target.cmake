file(REMOVE_RECURSE
  "libdbn_core.a"
)
