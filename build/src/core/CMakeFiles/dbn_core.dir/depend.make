# Empty dependencies file for dbn_core.
# This may be replaced when dependencies are built.
