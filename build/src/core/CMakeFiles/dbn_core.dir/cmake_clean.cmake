file(REMOVE_RECURSE
  "CMakeFiles/dbn_core.dir/average_distance.cpp.o"
  "CMakeFiles/dbn_core.dir/average_distance.cpp.o.d"
  "CMakeFiles/dbn_core.dir/bfs_router.cpp.o"
  "CMakeFiles/dbn_core.dir/bfs_router.cpp.o.d"
  "CMakeFiles/dbn_core.dir/common_substring.cpp.o"
  "CMakeFiles/dbn_core.dir/common_substring.cpp.o.d"
  "CMakeFiles/dbn_core.dir/distance.cpp.o"
  "CMakeFiles/dbn_core.dir/distance.cpp.o.d"
  "CMakeFiles/dbn_core.dir/hop_by_hop.cpp.o"
  "CMakeFiles/dbn_core.dir/hop_by_hop.cpp.o.d"
  "CMakeFiles/dbn_core.dir/path.cpp.o"
  "CMakeFiles/dbn_core.dir/path.cpp.o.d"
  "CMakeFiles/dbn_core.dir/path_builder.cpp.o"
  "CMakeFiles/dbn_core.dir/path_builder.cpp.o.d"
  "CMakeFiles/dbn_core.dir/path_count.cpp.o"
  "CMakeFiles/dbn_core.dir/path_count.cpp.o.d"
  "CMakeFiles/dbn_core.dir/prop5_as_printed.cpp.o"
  "CMakeFiles/dbn_core.dir/prop5_as_printed.cpp.o.d"
  "CMakeFiles/dbn_core.dir/route_engine.cpp.o"
  "CMakeFiles/dbn_core.dir/route_engine.cpp.o.d"
  "CMakeFiles/dbn_core.dir/routers.cpp.o"
  "CMakeFiles/dbn_core.dir/routers.cpp.o.d"
  "CMakeFiles/dbn_core.dir/routing_table.cpp.o"
  "CMakeFiles/dbn_core.dir/routing_table.cpp.o.d"
  "libdbn_core.a"
  "libdbn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
