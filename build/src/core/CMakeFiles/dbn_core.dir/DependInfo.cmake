
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/average_distance.cpp" "src/core/CMakeFiles/dbn_core.dir/average_distance.cpp.o" "gcc" "src/core/CMakeFiles/dbn_core.dir/average_distance.cpp.o.d"
  "/root/repo/src/core/bfs_router.cpp" "src/core/CMakeFiles/dbn_core.dir/bfs_router.cpp.o" "gcc" "src/core/CMakeFiles/dbn_core.dir/bfs_router.cpp.o.d"
  "/root/repo/src/core/common_substring.cpp" "src/core/CMakeFiles/dbn_core.dir/common_substring.cpp.o" "gcc" "src/core/CMakeFiles/dbn_core.dir/common_substring.cpp.o.d"
  "/root/repo/src/core/distance.cpp" "src/core/CMakeFiles/dbn_core.dir/distance.cpp.o" "gcc" "src/core/CMakeFiles/dbn_core.dir/distance.cpp.o.d"
  "/root/repo/src/core/hop_by_hop.cpp" "src/core/CMakeFiles/dbn_core.dir/hop_by_hop.cpp.o" "gcc" "src/core/CMakeFiles/dbn_core.dir/hop_by_hop.cpp.o.d"
  "/root/repo/src/core/path.cpp" "src/core/CMakeFiles/dbn_core.dir/path.cpp.o" "gcc" "src/core/CMakeFiles/dbn_core.dir/path.cpp.o.d"
  "/root/repo/src/core/path_builder.cpp" "src/core/CMakeFiles/dbn_core.dir/path_builder.cpp.o" "gcc" "src/core/CMakeFiles/dbn_core.dir/path_builder.cpp.o.d"
  "/root/repo/src/core/path_count.cpp" "src/core/CMakeFiles/dbn_core.dir/path_count.cpp.o" "gcc" "src/core/CMakeFiles/dbn_core.dir/path_count.cpp.o.d"
  "/root/repo/src/core/prop5_as_printed.cpp" "src/core/CMakeFiles/dbn_core.dir/prop5_as_printed.cpp.o" "gcc" "src/core/CMakeFiles/dbn_core.dir/prop5_as_printed.cpp.o.d"
  "/root/repo/src/core/route_engine.cpp" "src/core/CMakeFiles/dbn_core.dir/route_engine.cpp.o" "gcc" "src/core/CMakeFiles/dbn_core.dir/route_engine.cpp.o.d"
  "/root/repo/src/core/routers.cpp" "src/core/CMakeFiles/dbn_core.dir/routers.cpp.o" "gcc" "src/core/CMakeFiles/dbn_core.dir/routers.cpp.o.d"
  "/root/repo/src/core/routing_table.cpp" "src/core/CMakeFiles/dbn_core.dir/routing_table.cpp.o" "gcc" "src/core/CMakeFiles/dbn_core.dir/routing_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dbn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/strings/CMakeFiles/dbn_strings.dir/DependInfo.cmake"
  "/root/repo/build/src/debruijn/CMakeFiles/dbn_debruijn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
