
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/debruijn/bfs.cpp" "src/debruijn/CMakeFiles/dbn_debruijn.dir/bfs.cpp.o" "gcc" "src/debruijn/CMakeFiles/dbn_debruijn.dir/bfs.cpp.o.d"
  "/root/repo/src/debruijn/dot.cpp" "src/debruijn/CMakeFiles/dbn_debruijn.dir/dot.cpp.o" "gcc" "src/debruijn/CMakeFiles/dbn_debruijn.dir/dot.cpp.o.d"
  "/root/repo/src/debruijn/embedding.cpp" "src/debruijn/CMakeFiles/dbn_debruijn.dir/embedding.cpp.o" "gcc" "src/debruijn/CMakeFiles/dbn_debruijn.dir/embedding.cpp.o.d"
  "/root/repo/src/debruijn/generalized.cpp" "src/debruijn/CMakeFiles/dbn_debruijn.dir/generalized.cpp.o" "gcc" "src/debruijn/CMakeFiles/dbn_debruijn.dir/generalized.cpp.o.d"
  "/root/repo/src/debruijn/graph.cpp" "src/debruijn/CMakeFiles/dbn_debruijn.dir/graph.cpp.o" "gcc" "src/debruijn/CMakeFiles/dbn_debruijn.dir/graph.cpp.o.d"
  "/root/repo/src/debruijn/kautz.cpp" "src/debruijn/CMakeFiles/dbn_debruijn.dir/kautz.cpp.o" "gcc" "src/debruijn/CMakeFiles/dbn_debruijn.dir/kautz.cpp.o.d"
  "/root/repo/src/debruijn/kautz_routing.cpp" "src/debruijn/CMakeFiles/dbn_debruijn.dir/kautz_routing.cpp.o" "gcc" "src/debruijn/CMakeFiles/dbn_debruijn.dir/kautz_routing.cpp.o.d"
  "/root/repo/src/debruijn/sequence.cpp" "src/debruijn/CMakeFiles/dbn_debruijn.dir/sequence.cpp.o" "gcc" "src/debruijn/CMakeFiles/dbn_debruijn.dir/sequence.cpp.o.d"
  "/root/repo/src/debruijn/shuffle_exchange.cpp" "src/debruijn/CMakeFiles/dbn_debruijn.dir/shuffle_exchange.cpp.o" "gcc" "src/debruijn/CMakeFiles/dbn_debruijn.dir/shuffle_exchange.cpp.o.d"
  "/root/repo/src/debruijn/word.cpp" "src/debruijn/CMakeFiles/dbn_debruijn.dir/word.cpp.o" "gcc" "src/debruijn/CMakeFiles/dbn_debruijn.dir/word.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dbn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/strings/CMakeFiles/dbn_strings.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
