file(REMOVE_RECURSE
  "CMakeFiles/dbn_debruijn.dir/bfs.cpp.o"
  "CMakeFiles/dbn_debruijn.dir/bfs.cpp.o.d"
  "CMakeFiles/dbn_debruijn.dir/dot.cpp.o"
  "CMakeFiles/dbn_debruijn.dir/dot.cpp.o.d"
  "CMakeFiles/dbn_debruijn.dir/embedding.cpp.o"
  "CMakeFiles/dbn_debruijn.dir/embedding.cpp.o.d"
  "CMakeFiles/dbn_debruijn.dir/generalized.cpp.o"
  "CMakeFiles/dbn_debruijn.dir/generalized.cpp.o.d"
  "CMakeFiles/dbn_debruijn.dir/graph.cpp.o"
  "CMakeFiles/dbn_debruijn.dir/graph.cpp.o.d"
  "CMakeFiles/dbn_debruijn.dir/kautz.cpp.o"
  "CMakeFiles/dbn_debruijn.dir/kautz.cpp.o.d"
  "CMakeFiles/dbn_debruijn.dir/kautz_routing.cpp.o"
  "CMakeFiles/dbn_debruijn.dir/kautz_routing.cpp.o.d"
  "CMakeFiles/dbn_debruijn.dir/sequence.cpp.o"
  "CMakeFiles/dbn_debruijn.dir/sequence.cpp.o.d"
  "CMakeFiles/dbn_debruijn.dir/shuffle_exchange.cpp.o"
  "CMakeFiles/dbn_debruijn.dir/shuffle_exchange.cpp.o.d"
  "CMakeFiles/dbn_debruijn.dir/word.cpp.o"
  "CMakeFiles/dbn_debruijn.dir/word.cpp.o.d"
  "libdbn_debruijn.a"
  "libdbn_debruijn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbn_debruijn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
