file(REMOVE_RECURSE
  "libdbn_debruijn.a"
)
