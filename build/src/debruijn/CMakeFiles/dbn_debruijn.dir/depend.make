# Empty dependencies file for dbn_debruijn.
# This may be replaced when dependencies are built.
