file(REMOVE_RECURSE
  "libdbn_common.a"
)
