# Empty compiler generated dependencies file for dbn_common.
# This may be replaced when dependencies are built.
