file(REMOVE_RECURSE
  "CMakeFiles/dbn_common.dir/ascii_plot.cpp.o"
  "CMakeFiles/dbn_common.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/dbn_common.dir/rng.cpp.o"
  "CMakeFiles/dbn_common.dir/rng.cpp.o.d"
  "CMakeFiles/dbn_common.dir/table.cpp.o"
  "CMakeFiles/dbn_common.dir/table.cpp.o.d"
  "libdbn_common.a"
  "libdbn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
