# Empty compiler generated dependencies file for dbn_strings.
# This may be replaced when dependencies are built.
