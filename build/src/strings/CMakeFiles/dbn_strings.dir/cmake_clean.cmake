file(REMOVE_RECURSE
  "CMakeFiles/dbn_strings.dir/failure.cpp.o"
  "CMakeFiles/dbn_strings.dir/failure.cpp.o.d"
  "CMakeFiles/dbn_strings.dir/lyndon.cpp.o"
  "CMakeFiles/dbn_strings.dir/lyndon.cpp.o.d"
  "CMakeFiles/dbn_strings.dir/matching.cpp.o"
  "CMakeFiles/dbn_strings.dir/matching.cpp.o.d"
  "CMakeFiles/dbn_strings.dir/naive.cpp.o"
  "CMakeFiles/dbn_strings.dir/naive.cpp.o.d"
  "CMakeFiles/dbn_strings.dir/suffix_array.cpp.o"
  "CMakeFiles/dbn_strings.dir/suffix_array.cpp.o.d"
  "CMakeFiles/dbn_strings.dir/suffix_automaton.cpp.o"
  "CMakeFiles/dbn_strings.dir/suffix_automaton.cpp.o.d"
  "CMakeFiles/dbn_strings.dir/suffix_tree.cpp.o"
  "CMakeFiles/dbn_strings.dir/suffix_tree.cpp.o.d"
  "CMakeFiles/dbn_strings.dir/zfunction.cpp.o"
  "CMakeFiles/dbn_strings.dir/zfunction.cpp.o.d"
  "libdbn_strings.a"
  "libdbn_strings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbn_strings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
