
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/strings/failure.cpp" "src/strings/CMakeFiles/dbn_strings.dir/failure.cpp.o" "gcc" "src/strings/CMakeFiles/dbn_strings.dir/failure.cpp.o.d"
  "/root/repo/src/strings/lyndon.cpp" "src/strings/CMakeFiles/dbn_strings.dir/lyndon.cpp.o" "gcc" "src/strings/CMakeFiles/dbn_strings.dir/lyndon.cpp.o.d"
  "/root/repo/src/strings/matching.cpp" "src/strings/CMakeFiles/dbn_strings.dir/matching.cpp.o" "gcc" "src/strings/CMakeFiles/dbn_strings.dir/matching.cpp.o.d"
  "/root/repo/src/strings/naive.cpp" "src/strings/CMakeFiles/dbn_strings.dir/naive.cpp.o" "gcc" "src/strings/CMakeFiles/dbn_strings.dir/naive.cpp.o.d"
  "/root/repo/src/strings/suffix_array.cpp" "src/strings/CMakeFiles/dbn_strings.dir/suffix_array.cpp.o" "gcc" "src/strings/CMakeFiles/dbn_strings.dir/suffix_array.cpp.o.d"
  "/root/repo/src/strings/suffix_automaton.cpp" "src/strings/CMakeFiles/dbn_strings.dir/suffix_automaton.cpp.o" "gcc" "src/strings/CMakeFiles/dbn_strings.dir/suffix_automaton.cpp.o.d"
  "/root/repo/src/strings/suffix_tree.cpp" "src/strings/CMakeFiles/dbn_strings.dir/suffix_tree.cpp.o" "gcc" "src/strings/CMakeFiles/dbn_strings.dir/suffix_tree.cpp.o.d"
  "/root/repo/src/strings/zfunction.cpp" "src/strings/CMakeFiles/dbn_strings.dir/zfunction.cpp.o" "gcc" "src/strings/CMakeFiles/dbn_strings.dir/zfunction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dbn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
