file(REMOVE_RECURSE
  "libdbn_strings.a"
)
