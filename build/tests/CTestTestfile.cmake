# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/dbn_tests[1]_include.cmake")
add_test(cli_route "/root/repo/build/tools/dbn" "route" "2" "4" "0110" "1001" "--algorithm=st")
set_tests_properties(cli_route PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;57;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_route_wildcards "/root/repo/build/tools/dbn" "route" "2" "5" "00000" "10001" "--wildcards")
set_tests_properties(cli_route_wildcards PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;58;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_distance "/root/repo/build/tools/dbn" "distance" "3" "3" "012" "201")
set_tests_properties(cli_distance PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;59;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_graph "/root/repo/build/tools/dbn" "graph" "2" "3" "--directed")
set_tests_properties(cli_graph PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;60;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_export_dot "/root/repo/build/tools/dbn" "export-dot" "2" "3")
set_tests_properties(cli_export_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;61;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_stats "/root/repo/build/tools/dbn" "stats" "2" "6")
set_tests_properties(cli_stats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;62;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_broadcast "/root/repo/build/tools/dbn" "broadcast" "2" "5" "10110" "--single-port")
set_tests_properties(cli_broadcast PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;63;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_simulate "/root/repo/build/tools/dbn" "simulate" "2" "6" "--rate=0.05" "--duration=50" "--policy=lq")
set_tests_properties(cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;64;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/dbn" "bogus" "2" "3")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;65;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_bad_word "/root/repo/build/tools/dbn" "route" "2" "4" "012" "0110")
set_tests_properties(cli_bad_word PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;67;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_sequence "/root/repo/build/tools/dbn" "sequence" "2" "4" "--method=greedy")
set_tests_properties(cli_sequence PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;69;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_kautz_info "/root/repo/build/tools/dbn" "kautz" "2" "3")
set_tests_properties(cli_kautz_info PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;70;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_kautz_route "/root/repo/build/tools/dbn" "kautz" "2" "3" "010" "201")
set_tests_properties(cli_kautz_route PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;71;add_test;/root/repo/tests/CMakeLists.txt;0;")
