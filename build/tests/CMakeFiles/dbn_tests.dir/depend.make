# Empty dependencies file for dbn_tests.
# This may be replaced when dependencies are built.
