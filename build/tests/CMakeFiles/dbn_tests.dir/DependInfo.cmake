
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_adaptive.cpp" "tests/CMakeFiles/dbn_tests.dir/test_adaptive.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_adaptive.cpp.o.d"
  "/root/repo/tests/test_ascii_plot.cpp" "tests/CMakeFiles/dbn_tests.dir/test_ascii_plot.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_ascii_plot.cpp.o.d"
  "/root/repo/tests/test_average_distance.cpp" "tests/CMakeFiles/dbn_tests.dir/test_average_distance.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_average_distance.cpp.o.d"
  "/root/repo/tests/test_bfs.cpp" "tests/CMakeFiles/dbn_tests.dir/test_bfs.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_bfs.cpp.o.d"
  "/root/repo/tests/test_broadcast.cpp" "tests/CMakeFiles/dbn_tests.dir/test_broadcast.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_broadcast.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/dbn_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_common_substring.cpp" "tests/CMakeFiles/dbn_tests.dir/test_common_substring.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_common_substring.cpp.o.d"
  "/root/repo/tests/test_distance.cpp" "tests/CMakeFiles/dbn_tests.dir/test_distance.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_distance.cpp.o.d"
  "/root/repo/tests/test_dot.cpp" "tests/CMakeFiles/dbn_tests.dir/test_dot.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_dot.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/dbn_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_embedding.cpp" "tests/CMakeFiles/dbn_tests.dir/test_embedding.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_embedding.cpp.o.d"
  "/root/repo/tests/test_failure.cpp" "tests/CMakeFiles/dbn_tests.dir/test_failure.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_failure.cpp.o.d"
  "/root/repo/tests/test_fault.cpp" "tests/CMakeFiles/dbn_tests.dir/test_fault.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_fault.cpp.o.d"
  "/root/repo/tests/test_generalized.cpp" "tests/CMakeFiles/dbn_tests.dir/test_generalized.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_generalized.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/dbn_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_hop_by_hop.cpp" "tests/CMakeFiles/dbn_tests.dir/test_hop_by_hop.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_hop_by_hop.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/dbn_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_invariants.cpp" "tests/CMakeFiles/dbn_tests.dir/test_invariants.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_invariants.cpp.o.d"
  "/root/repo/tests/test_kautz.cpp" "tests/CMakeFiles/dbn_tests.dir/test_kautz.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_kautz.cpp.o.d"
  "/root/repo/tests/test_kautz_routing.cpp" "tests/CMakeFiles/dbn_tests.dir/test_kautz_routing.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_kautz_routing.cpp.o.d"
  "/root/repo/tests/test_kernel_fuzz.cpp" "tests/CMakeFiles/dbn_tests.dir/test_kernel_fuzz.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_kernel_fuzz.cpp.o.d"
  "/root/repo/tests/test_load_stats.cpp" "tests/CMakeFiles/dbn_tests.dir/test_load_stats.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_load_stats.cpp.o.d"
  "/root/repo/tests/test_lyndon.cpp" "tests/CMakeFiles/dbn_tests.dir/test_lyndon.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_lyndon.cpp.o.d"
  "/root/repo/tests/test_matching.cpp" "tests/CMakeFiles/dbn_tests.dir/test_matching.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_matching.cpp.o.d"
  "/root/repo/tests/test_message.cpp" "tests/CMakeFiles/dbn_tests.dir/test_message.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_message.cpp.o.d"
  "/root/repo/tests/test_path.cpp" "tests/CMakeFiles/dbn_tests.dir/test_path.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_path.cpp.o.d"
  "/root/repo/tests/test_path_count.cpp" "tests/CMakeFiles/dbn_tests.dir/test_path_count.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_path_count.cpp.o.d"
  "/root/repo/tests/test_prop5_as_printed.cpp" "tests/CMakeFiles/dbn_tests.dir/test_prop5_as_printed.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_prop5_as_printed.cpp.o.d"
  "/root/repo/tests/test_reliable.cpp" "tests/CMakeFiles/dbn_tests.dir/test_reliable.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_reliable.cpp.o.d"
  "/root/repo/tests/test_route_engine.cpp" "tests/CMakeFiles/dbn_tests.dir/test_route_engine.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_route_engine.cpp.o.d"
  "/root/repo/tests/test_routers.cpp" "tests/CMakeFiles/dbn_tests.dir/test_routers.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_routers.cpp.o.d"
  "/root/repo/tests/test_routing_table.cpp" "tests/CMakeFiles/dbn_tests.dir/test_routing_table.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_routing_table.cpp.o.d"
  "/root/repo/tests/test_sequence.cpp" "tests/CMakeFiles/dbn_tests.dir/test_sequence.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_sequence.cpp.o.d"
  "/root/repo/tests/test_shuffle_exchange.cpp" "tests/CMakeFiles/dbn_tests.dir/test_shuffle_exchange.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_shuffle_exchange.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/dbn_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_simulator_properties.cpp" "tests/CMakeFiles/dbn_tests.dir/test_simulator_properties.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_simulator_properties.cpp.o.d"
  "/root/repo/tests/test_sort_emulation.cpp" "tests/CMakeFiles/dbn_tests.dir/test_sort_emulation.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_sort_emulation.cpp.o.d"
  "/root/repo/tests/test_suffix_array.cpp" "tests/CMakeFiles/dbn_tests.dir/test_suffix_array.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_suffix_array.cpp.o.d"
  "/root/repo/tests/test_suffix_automaton.cpp" "tests/CMakeFiles/dbn_tests.dir/test_suffix_automaton.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_suffix_automaton.cpp.o.d"
  "/root/repo/tests/test_suffix_tree.cpp" "tests/CMakeFiles/dbn_tests.dir/test_suffix_tree.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_suffix_tree.cpp.o.d"
  "/root/repo/tests/test_synchronous.cpp" "tests/CMakeFiles/dbn_tests.dir/test_synchronous.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_synchronous.cpp.o.d"
  "/root/repo/tests/test_traces.cpp" "tests/CMakeFiles/dbn_tests.dir/test_traces.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_traces.cpp.o.d"
  "/root/repo/tests/test_traffic.cpp" "tests/CMakeFiles/dbn_tests.dir/test_traffic.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_traffic.cpp.o.d"
  "/root/repo/tests/test_word.cpp" "tests/CMakeFiles/dbn_tests.dir/test_word.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_word.cpp.o.d"
  "/root/repo/tests/test_zfunction.cpp" "tests/CMakeFiles/dbn_tests.dir/test_zfunction.cpp.o" "gcc" "tests/CMakeFiles/dbn_tests.dir/test_zfunction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dbn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dbn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/debruijn/CMakeFiles/dbn_debruijn.dir/DependInfo.cmake"
  "/root/repo/build/src/strings/CMakeFiles/dbn_strings.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
