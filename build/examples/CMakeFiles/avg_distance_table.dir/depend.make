# Empty dependencies file for avg_distance_table.
# This may be replaced when dependencies are built.
